package autodetect

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (see DESIGN.md §4). Each benchmark regenerates its
// artifact at the small scale and reports the headline metric via
// b.ReportMetric; run cmd/experiments for the full-scale tables behind
// EXPERIMENTS.md.
//
//	go test -bench=. -benchmem

import (
	"strconv"
	"sync"
	"testing"

	"repro/internal/eval"
)

var (
	benchOnce  sync.Once
	benchSuite *eval.Suite
)

// suite returns the shared small-scale experiment suite; the expensive
// pieces (training corpus, statistics, calibrations, detector, test cases)
// are built once and cached inside it.
func suite(b *testing.B) *eval.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite = eval.NewSuite(eval.SmallScale(), 1)
	})
	return benchSuite
}

// metric extracts a cell from a table row by method name and column.
func metric(tab *eval.Table, rowKey string, col int) float64 {
	for _, row := range tab.Rows {
		if row[0] == rowKey {
			v, err := strconv.ParseFloat(row[col], 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

func BenchmarkTable3CorporaSummary(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		tab := s.Table3()
		if len(tab.Rows) != 4 {
			b.Fatal("bad Table 3")
		}
	}
}

func BenchmarkFigure4aWikiPrecision(b *testing.B) {
	s := suite(b)
	var last *eval.Table
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure4a()
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(metric(last, "Auto-Detect", 1), "autodetect-p@k")
	b.ReportMetric(metric(last, "PWheel", 1), "pwheel-p@k")
}

func BenchmarkFigure4bCSVPrecision(b *testing.B) {
	s := suite(b)
	var last *eval.Table
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure4b()
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(metric(last, "Auto-Detect", 1), "autodetect-p@10")
	b.ReportMetric(metric(last, "F-Regex", 1), "fregex-p@10")
}

func BenchmarkTable4TopPredictions(b *testing.B) {
	s := suite(b)
	var last *eval.Table
	for i := 0; i < b.N; i++ {
		tab, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	correct := 0.0
	for _, row := range last.Rows {
		if row[4] == "true" {
			correct++
		}
	}
	b.ReportMetric(correct/float64(len(last.Rows)), "top10-precision")
}

func BenchmarkFigure5WikiAutoEval(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty Figure 5")
		}
	}
}

func BenchmarkFigure6EntXLSAutoEval(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty Figure 6")
		}
	}
}

func BenchmarkFigure7MemoryBudget(b *testing.B) {
	s := suite(b)
	var last *eval.Table
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	if n := len(last.Rows); n > 0 {
		// Languages selected at the smallest and largest budget.
		small, _ := strconv.ParseFloat(last.Rows[0][1], 64)
		large, _ := strconv.ParseFloat(last.Rows[n-1][1], 64)
		b.ReportMetric(small, "langs-min-budget")
		b.ReportMetric(large, "langs-max-budget")
	}
}

func BenchmarkFigure8aSketchCompression(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure8a()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 3 {
			b.Fatal("bad Figure 8a")
		}
	}
}

func BenchmarkFigure8bAggregation(b *testing.B) {
	s := suite(b)
	var last *eval.Table
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure8b()
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.ReportMetric(metric(last, "Auto-Detect", 1), "maxconf-p@k")
	b.ReportMetric(metric(last, "MV", 1), "mv-p@k")
}

func BenchmarkFigure8cTrainingCorpora(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure8c()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			b.Fatal("bad Figure 8c")
		}
	}
}

func BenchmarkTable5RunningTime(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		tab, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 5 {
			b.Fatal("bad Table 5")
		}
	}
}

func BenchmarkFigure17aSmoothing(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure17a()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty Figure 17a")
		}
	}
}

func BenchmarkFigure17bNPMICDF(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		tab, err := s.Figure17b()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			b.Fatal("bad Figure 17b")
		}
	}
}
