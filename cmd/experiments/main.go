// Command experiments regenerates every table and figure of the paper's
// evaluation section (the data behind EXPERIMENTS.md).
//
//	experiments                 # full scale (minutes)
//	experiments -scale small    # quick smoke run
//	experiments -only "Figure 5,Table 5"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/eval"
)

func main() {
	scaleName := flag.String("scale", "full", "experiment scale: full|small")
	only := flag.String("only", "", "comma-separated artifact ids to run (default: all)")
	seed := flag.Int64("seed", 1, "random seed")
	markdown := flag.Bool("md", false, "emit GitHub-flavoured Markdown tables")
	flag.Parse()

	var scale eval.Scale
	switch *scaleName {
	case "full":
		scale = eval.FullScale()
	case "small":
		scale = eval.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	suite := eval.NewSuite(scale, *seed)

	type exp struct {
		id  string
		run func() (*eval.Table, error)
	}
	exps := []exp{
		{"Table 3", func() (*eval.Table, error) { return suite.Table3(), nil }},
		{"Figure 4a", suite.Figure4a},
		{"Figure 4b", suite.Figure4b},
		{"Table 4", suite.Table4},
		{"Figure 5", suite.Figure5},
		{"Figure 6", suite.Figure6},
		{"Figure 7", suite.Figure7},
		{"Figure 8a", suite.Figure8a},
		{"Figure 8b", suite.Figure8b},
		{"Figure 8c", suite.Figure8c},
		{"Table 5", suite.Table5},
		{"Figure 17a", suite.Figure17a},
		{"Figure 17b", suite.Figure17b},
		{"Ablation ST/DT", suite.AblationSelection},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	start := time.Now()
	fmt.Printf("# Auto-Detect experiment run — scale=%s seed=%d (%s)\n\n",
		scale.Name, *seed, time.Now().Format("2006-01-02 15:04:05"))
	for _, e := range exps {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t0 := time.Now()
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(tab.Markdown())
		} else {
			fmt.Println(tab.String())
		}
		fmt.Printf("(%s took %.1fs)\n\n", e.id, time.Since(t0).Seconds())
	}
	fmt.Printf("# total %.1fs\n", time.Since(start).Seconds())
}
