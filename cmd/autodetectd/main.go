// Command autodetectd serves a trained Auto-Detect model over HTTP — the
// "spell-checker for data" deployment mode — with a production-hardened
// lifecycle: graceful shutdown on SIGINT/SIGTERM, hot model reload on
// SIGHUP or POST /v1/admin/reload, liveness/readiness probes, and
// configurable load-shedding limits.
//
//	autodetectd -model model.bin -addr :8080
//	autodetectd -train-dir tables/ -addr :8080       # train on a CSV/TSV directory first
//	autodetectd -train -columns 10000 -addr :8080    # train on a synthetic corpus first
//
// Endpoints:
//
//	GET  /v1/health
//	GET  /v1/livez
//	GET  /v1/readyz
//	POST /v1/check-column  {"values": ["2011-01-01", "2011/01/01", ...]}
//	POST /v1/check-table   {"columns": {"date": [...], "amount": [...]}}
//	POST /v1/check-pair    {"a": "72 kg", "b": "154 lbs"}
//	POST /v1/admin/reload
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pipeline"
	"repro/internal/semantic"
	"repro/internal/service"
)

// loadModelFile reads and integrity-checks a serialized model.
func loadModelFile(path string) (*core.Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

func main() {
	modelPath := flag.String("model", "", "trained model path (see cmd/autodetect train)")
	train := flag.Bool("train", false, "train an in-process model on a synthetic corpus instead")
	trainDir := flag.String("train-dir", "", "train at startup on the .csv/.tsv tables under this directory (streamed); SIGHUP or /v1/admin/reload retrains and hot-swaps")
	columns := flag.Int("columns", 10000, "synthetic corpus size when -train is set")
	pairs := flag.Int("pairs", 10000, "distant-supervision pairs per class when training in-process")
	workers := flag.Int("workers", runtime.NumCPU(), "pipeline parallelism for in-process training")
	sample := flag.Int("sample", 100000, "distant-supervision column sample cap for -train-dir (0 = keep all columns in memory)")
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "random seed when -train is set")
	maxInflight := flag.Int("max-inflight", 256, "concurrent requests before shedding with 429 (0 disables)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables)")
	maxBodyBytes := flag.Int64("max-body-bytes", 8<<20, "request body cap in bytes (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "connection-draining budget on shutdown")
	flag.Parse()

	trainConfig := func() core.TrainConfig {
		cfg := core.DefaultTrainConfig()
		ds := distsup.DefaultConfig()
		ds.PositivePairs, ds.NegativePairs = *pairs, *pairs
		ds.Seed = *seed
		cfg.DistSup = ds
		return cfg
	}
	// buildFromDir streams the directory corpus through the sharded
	// pipeline; it is re-invoked on SIGHUP / admin reload so the serving
	// model tracks the table directory without a restart.
	buildFromDir := func() (*core.Detector, error) {
		src, err := pipeline.NewDirSource(*trainDir, true)
		if err != nil {
			return nil, err
		}
		log.Printf("pipeline build: %d table files under %s, %d workers...", src.Files(), *trainDir, *workers)
		res, err := pipeline.Run(context.Background(), src, pipeline.Options{
			Workers:       *workers,
			Train:         trainConfig(),
			SampleColumns: *sample,
		})
		if err != nil {
			return nil, err
		}
		log.Printf("pipeline build done: %d columns (%d values) in %s, %d languages selected",
			res.Columns, res.Values, res.Elapsed.Round(time.Millisecond), len(res.Report.Selected))
		return res.Detector, nil
	}

	var det *core.Detector
	var sem *semantic.Model
	switch {
	case *modelPath != "":
		var err error
		det, err = loadModelFile(*modelPath)
		if err != nil {
			if errors.Is(err, core.ErrCorruptModel) {
				log.Fatalf("refusing to serve %s: %v", *modelPath, err)
			}
			log.Fatal(err)
		}
		log.Printf("loaded model from %s (%d languages, %d bytes)",
			*modelPath, len(det.Languages()), det.Bytes())
	case *trainDir != "":
		var err error
		det, err = buildFromDir()
		if err != nil {
			log.Fatal(err)
		}
	case *train:
		log.Printf("training on %d synthetic columns with %d workers...", *columns, *workers)
		c := corpus.Generate(corpus.WebProfile(), *columns, *seed)
		res, err := pipeline.Run(context.Background(), pipeline.NewSliceSource(c.Columns), pipeline.Options{
			Workers: *workers,
			Train:   trainConfig(),
		})
		if err != nil {
			log.Fatal(err)
		}
		det = res.Detector
		log.Printf("trained: %d languages, %d bytes", len(res.Report.Selected), res.Report.SelectedBytes)
		if sem, err = semantic.Train(c, semantic.DefaultConfig()); err != nil {
			log.Printf("semantic model unavailable: %v", err)
			sem = nil
		}
	default:
		fmt.Fprintln(os.Stderr, "autodetectd: need -model, -train-dir or -train")
		os.Exit(2)
	}

	svc := service.New(det, sem)
	svc.MaxInFlight = *maxInflight
	svc.RequestTimeout = *requestTimeout
	svc.MaxBodyBytes = *maxBodyBytes
	svc.Logf = log.Printf
	switch {
	case *modelPath != "":
		// Hot reload re-reads the model file; the semantic model (only
		// produced by -train) is not file-backed and stays as-is.
		svc.Reload = func() (*core.Detector, *semantic.Model, error) {
			d, err := loadModelFile(*modelPath)
			return d, sem, err
		}
	case *trainDir != "":
		// Hot reload retrains over the (possibly updated) directory.
		svc.Reload = func() (*core.Detector, *semantic.Model, error) {
			d, err := buildFromDir()
			return d, sem, err
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}

	// SIGHUP → hot reload through the same hook as /v1/admin/reload; the
	// atomic swap means in-flight requests keep their model snapshot.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if svc.Reload == nil {
				log.Printf("SIGHUP ignored: no -model file or -train-dir to reload from")
				continue
			}
			d, sm, err := svc.Reload()
			if err != nil {
				log.Printf("SIGHUP reload failed, keeping current model: %v", err)
				continue
			}
			if err := svc.Swap(d, sm); err != nil {
				log.Printf("SIGHUP swap failed: %v", err)
				continue
			}
			log.Printf("SIGHUP reload succeeded: %d languages, %d bytes",
				len(d.Languages()), d.Bytes())
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("listening on %s (max-inflight=%d request-timeout=%s max-body-bytes=%d)",
		*addr, *maxInflight, *requestTimeout, *maxBodyBytes)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		log.Printf("shutdown signal received, draining connections (up to %s)", *drainTimeout)
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("drain incomplete, forcing close: %v", err)
			_ = srv.Close()
		}
		log.Printf("shutdown complete")
	}
}
