// Command autodetectd serves a trained Auto-Detect model over HTTP — the
// "spell-checker for data" deployment mode.
//
//	autodetectd -model model.bin -addr :8080
//	autodetectd -train -columns 10000 -addr :8080    # train in-process first
//
// Endpoints:
//
//	GET  /v1/health
//	POST /v1/check-column  {"values": ["2011-01-01", "2011/01/01", ...]}
//	POST /v1/check-table   {"columns": {"date": [...], "amount": [...]}}
//	POST /v1/check-pair    {"a": "72 kg", "b": "154 lbs"}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/semantic"
	"repro/internal/service"
)

func main() {
	modelPath := flag.String("model", "", "trained model path (see cmd/autodetect train)")
	train := flag.Bool("train", false, "train an in-process model on a synthetic corpus instead")
	columns := flag.Int("columns", 10000, "synthetic corpus size when -train is set")
	pairs := flag.Int("pairs", 10000, "distant-supervision pairs per class when -train is set")
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "random seed when -train is set")
	flag.Parse()

	var det *core.Detector
	var sem *semantic.Model
	switch {
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		det, err = core.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded model from %s (%d languages, %d bytes)",
			*modelPath, len(det.Languages()), det.Bytes())
	case *train:
		log.Printf("training on %d synthetic columns...", *columns)
		c := corpus.Generate(corpus.WebProfile(), *columns, *seed)
		cfg := core.DefaultTrainConfig()
		ds := distsup.DefaultConfig()
		ds.PositivePairs, ds.NegativePairs = *pairs, *pairs
		ds.Seed = *seed
		cfg.DistSup = ds
		var err error
		var rep *core.TrainReport
		det, rep, err = core.Train(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("trained: %d languages, %d bytes", len(rep.Selected), rep.SelectedBytes)
		if sem, err = semantic.Train(c, semantic.DefaultConfig()); err != nil {
			log.Printf("semantic model unavailable: %v", err)
			sem = nil
		}
	default:
		fmt.Fprintln(os.Stderr, "autodetectd: need -model or -train")
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.New(det, sem).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
