// Command autodetectd serves a trained Auto-Detect model over HTTP — the
// "spell-checker for data" deployment mode — with a production-hardened
// lifecycle: graceful shutdown on SIGINT/SIGTERM, hot model reload on
// SIGHUP or POST /v1/admin/reload, liveness/readiness probes, and
// configurable load-shedding limits. Prometheus metrics are exposed on
// GET /metrics and all logs are structured (logfmt or JSON).
//
//	autodetectd -model model.bin -addr :8080
//	autodetectd -train-dir tables/ -addr :8080       # train on a CSV/TSV directory first
//	autodetectd -train -columns 10000 -addr :8080    # train on a synthetic corpus first
//	autodetectd -train-dsn "$DSN" -train-driver sqlite3 -addr :8080  # train straight from a database
//
// Endpoints:
//
//	GET  /v1/health
//	GET  /v1/livez
//	GET  /v1/readyz
//	GET  /metrics
//	POST /v1/check-column  {"values": ["2011-01-01", "2011/01/01", ...]}
//	POST /v1/check-table   {"columns": {"date": [...], "amount": [...]}}
//	POST /v1/check-pair    {"a": "72 kg", "b": "154 lbs"}
//	POST /v1/admin/reload
//
// With -jobs-dir set, the durable batch-audit API is mounted as well:
//
//	POST   /v1/jobs               submit a whole-table audit (202 + job id)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          poll status and progress
//	GET    /v1/jobs/{id}/results  page through findings
//	DELETE /v1/jobs/{id}          cancel / delete
//
// Jobs are checkpointed per column under -jobs-dir and survive restarts:
// a job interrupted by a crash or drain resumes from its last completed
// column on the next boot, with byte-identical findings.
//
// Distributed corpus builds run the internal/distbuild protocol instead of
// the serving stack and exit when the build completes:
//
//	autodetectd -build-coordinator -train-dir tables/ -build-state state/ \
//	    -build-out model.bin -addr :9090
//	autodetectd -build-worker http://coordinator:9090 -train-dir tables/
//
// The coordinator hands out partition leases, persists accepted shards
// under -build-state (its own restart resumes the build), merges them, and
// atomically writes the finalized model — byte-identical to a
// single-process `autodetect train` over the same directory and training
// flags. Workers that crash mid-partition lose their lease after
// -lease-ttl and the partition is reassigned.
//
// The versioned model registry connects producers to the serving fleet:
//
//	autodetectd -registry-serve -registry-dir registry/ -addr :9000
//	autodetectd -registry-url http://registry:9000 -addr :8080
//	autodetectd -build-coordinator ... -registry-url http://registry:9000
//
// -registry-serve runs the internal/registry store and HTTP API (publish,
// list, fetch with 304 deltas, pin/rollback) behind the same hardening
// chain as the detection API. Replicas started with -registry-url need no
// local model file: they poll the registry's pinned version every
// -registry-poll, download on change, verify the digest, and hot-swap
// through the same atomic path as /v1/admin/reload. A coordinator given
// -registry-url publishes the finalized model after writing -build-out.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dbsource"
	"repro/internal/distbuild"
	"repro/internal/distsup"
	"repro/internal/jobs"
	"repro/internal/observe"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/retry"
	"repro/internal/semantic"
	"repro/internal/service"
)

// loadModelFile reads and integrity-checks a serialized model, reporting
// its provenance (source "file" + content digest) alongside.
func loadModelFile(path string) (*core.Detector, service.ModelInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, service.ModelInfo{}, err
	}
	det, err := core.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, service.ModelInfo{}, err
	}
	sum := sha256.Sum256(raw)
	return det, service.ModelInfo{Source: "file", SHA256: hex.EncodeToString(sum[:])}, nil
}

// parseLevel maps the -log-level flag onto slog levels.
func parseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", s)
	}
	return l, nil
}

func main() {
	modelPath := flag.String("model", "", "trained model path (see cmd/autodetect train)")
	train := flag.Bool("train", false, "train an in-process model on a synthetic corpus instead")
	trainDir := flag.String("train-dir", "", "train at startup on the .csv/.tsv tables under this directory (streamed); SIGHUP or /v1/admin/reload retrains and hot-swaps")
	trainDSN := flag.String("train-dsn", "", "train at startup on every table.column of this SQL database (streamed in keyset pages); SIGHUP or /v1/admin/reload retrains and hot-swaps")
	trainDriver := flag.String("train-driver", dbsource.DriverName, "database/sql driver for -train-dsn (sqlite3, postgres, mysql, or the in-tree in-memory driver)")
	dbAudit := flag.Bool("db-audit", false, "accept whole-database audit submissions on POST /v1/jobs (the server dials the submitted DSN; requires -jobs-dir)")
	columns := flag.Int("columns", 10000, "synthetic corpus size when -train is set")
	pairs := flag.Int("pairs", 10000, "distant-supervision pairs per class when training in-process")
	workers := flag.Int("workers", runtime.NumCPU(), "pipeline parallelism for in-process training")
	sample := flag.Int("sample", 100000, "distant-supervision column sample cap for -train-dir (0 = keep all columns in memory)")
	maxBadFiles := flag.Int("max-bad-files", 0, "quarantine up to N unreadable/unparseable table files instead of failing (-train-dir)")
	maxBadFrac := flag.Float64("max-bad-frac", 0, "quarantine up to this fraction of table files instead of failing (-train-dir)")
	quarantineDir := flag.String("quarantine-dir", "", "directory for the quarantine manifest (quarantine.jsonl) when training from -train-dir")
	ioRetries := flag.Int("io-retries", 3, "attempts per table file for transient I/O errors; 1 disables retrying (-train-dir)")
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "random seed when -train is set")
	maxInflight := flag.Int("max-inflight", 256, "concurrent requests before shedding with 429 (0 disables); the upper bound of the adaptive admission limit")
	latencyTarget := flag.Duration("latency-target", 250*time.Millisecond, "latency the adaptive admission limit steers toward: slower completions shrink the limit, shedding background traffic first")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 disables); an inbound X-Deadline-Ms budget tightens it")
	maxModelStaleness := flag.Duration("max-model-staleness", 0, "/v1/readyz reports status=degraded (still 200) once the served model is older than this (0 disables)")
	maxBodyBytes := flag.Int64("max-body-bytes", 8<<20, "request body cap in bytes (0 disables)")
	maxTableValues := flag.Int("max-table-values", 100000, "total cell cap per /v1/check-table request or batch job (0 disables)")
	buildCoordinator := flag.Bool("build-coordinator", false, "coordinate a distributed corpus build over -train-dir instead of serving; exits once the model is written")
	buildWorkerURL := flag.String("build-worker", "", "join a distributed build as a worker against this coordinator URL; -train-dir must see the same corpus")
	buildPartitions := flag.Int("build-partitions", 16, "partition count for -build-coordinator (clamped to the corpus file count)")
	buildState := flag.String("build-state", "", "coordinator state directory: accepted shards persist here and a restarted coordinator resumes the build (-build-coordinator)")
	buildOut := flag.String("build-out", "model.bin", "finalized model output path (-build-coordinator)")
	buildSummary := flag.String("build-summary", "", "write a JSON build summary (wall clock, lease and shard counters) to this path (-build-coordinator)")
	leaseTTL := flag.Duration("lease-ttl", distbuild.DefaultLeaseTTL, "partition lease TTL; a worker silent this long loses its partition to reassignment (-build-coordinator)")
	registryServe := flag.Bool("registry-serve", false, "serve the versioned model registry instead of the detection API; needs -registry-dir")
	registryDir := flag.String("registry-dir", "", "registry storage directory (-registry-serve)")
	registryURL := flag.String("registry-url", "", "base URL of a model registry: serving replicas pull the pinned model from it (no local model needed); -build-coordinator publishes the finalized model to it")
	registryPoll := flag.Duration("registry-poll", registry.DefaultPoll, "pinned-version poll cadence when pulling from -registry-url")
	jobsDir := flag.String("jobs-dir", "", "durable batch-audit job directory; enables POST /v1/jobs (empty disables)")
	jobWorkers := flag.Int("job-workers", 2, "batch executor pool size (-jobs-dir)")
	maxQueuedJobs := flag.Int("max-queued-jobs", 64, "queued batch jobs before submissions shed with 429 (-jobs-dir)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job execution deadline; expired jobs fail (0 disables, -jobs-dir)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "connection-draining budget on shutdown")
	enablePprof := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof (off by default: profiles leak memory contents)")
	traceDebug := flag.Bool("trace-debug", false, "expose the in-process flight recorder under /debug/traces (off by default: traces carry request attributes)")
	traceSample := flag.Int("trace-sample", 0, "keep every Kth non-error, non-slow trace in the flight recorder (0 = recorder default, negative = errors and slowest only)")
	logFormat := flag.String("log-format", "text", "log output format: text (logfmt) or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autodetectd:", err)
		os.Exit(2)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "autodetectd: bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	// retry.Policy treats MaxAttempts<=0 as "use the default", so 0 would
	// silently mean 3 attempts; reject it rather than surprise the operator.
	if *ioRetries < 1 {
		fmt.Fprintln(os.Stderr, "autodetectd: -io-retries must be >= 1 (1 disables retrying)")
		os.Exit(2)
	}
	logger := observe.NewLogger(os.Stderr, observe.LogOptions{
		Component: "autodetectd",
		JSON:      *logFormat == "json",
		Level:     level,
	})
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// One registry spans the process: serving metrics, pipeline builds and
	// hot-path counters all land on the same /metrics page.
	reg := observe.NewRegistry()

	// One tracer spans the process, too: every mode records spans into the
	// same flight recorder, every mode can expose it on /debug/traces, and
	// cross-process hops (coordinator→worker, publish→pull) carry the
	// trace in a traceparent header so one build or request is one
	// timeline across the fleet.
	recorder := observe.NewFlightRecorder(observe.RecorderConfig{SampleEvery: *traceSample})
	recorder.Register(reg)
	tracer := observe.NewTracer(recorder, nil)

	trainConfig := func() core.TrainConfig {
		cfg := core.DefaultTrainConfig()
		ds := distsup.DefaultConfig()
		ds.PositivePairs, ds.NegativePairs = *pairs, *pairs
		ds.Seed = *seed
		cfg.DistSup = ds
		return cfg
	}
	// Distributed-build modes replace the serving stack entirely: the
	// process runs one build to completion (or rides one out, as a worker)
	// and exits.
	switch {
	case *buildCoordinator && *buildWorkerURL != "":
		fmt.Fprintln(os.Stderr, "autodetectd: -build-coordinator and -build-worker are mutually exclusive")
		os.Exit(2)
	case *registryServe && (*buildCoordinator || *buildWorkerURL != ""):
		fmt.Fprintln(os.Stderr, "autodetectd: -registry-serve and the build modes are mutually exclusive")
		os.Exit(2)
	case *registryServe:
		if *registryDir == "" {
			fmt.Fprintln(os.Stderr, "autodetectd: -registry-serve needs -registry-dir")
			os.Exit(2)
		}
		err := runRegistryServer(logger, reg, registryParams{
			Dir:            *registryDir,
			Addr:           *addr,
			MaxInFlight:    *maxInflight,
			RequestTimeout: *requestTimeout,
			MaxBodyBytes:   *maxBodyBytes,
			Drain:          *drainTimeout,
			Tracer:         tracer,
			Pprof:          *enablePprof,
			TraceDebug:     *traceDebug,
		})
		if err != nil {
			fatal("registry server failed", "error", err)
		}
		return
	case *buildCoordinator:
		if *trainDir == "" || *buildState == "" {
			fmt.Fprintln(os.Stderr, "autodetectd: -build-coordinator needs -train-dir and -build-state")
			os.Exit(2)
		}
		err := runBuildCoordinator(logger, reg, coordParams{
			TrainDir:    *trainDir,
			StateDir:    *buildState,
			Partitions:  *buildPartitions,
			LeaseTTL:    *leaseTTL,
			Addr:        *addr,
			Out:         *buildOut,
			Summary:     *buildSummary,
			RegistryURL: *registryURL,
			Drain:       *drainTimeout,
			Tracer:      tracer,
			Pprof:       *enablePprof,
			TraceDebug:  *traceDebug,
			Options: pipeline.Options{
				Workers:       *workers,
				Train:         trainConfig(),
				SampleColumns: *sample,
				Metrics:       reg,
			},
		})
		if err != nil {
			fatal("distributed build failed", "error", err)
		}
		return
	case *buildWorkerURL != "":
		if *trainDir == "" {
			fmt.Fprintln(os.Stderr, "autodetectd: -build-worker needs -train-dir (the local corpus copy)")
			os.Exit(2)
		}
		if err := runBuildWorker(logger, reg, tracer, *buildWorkerURL, *trainDir, *workers); err != nil {
			fatal("build worker failed", "error", err)
		}
		return
	}

	// buildFromDir streams the directory corpus through the sharded
	// pipeline; it is re-invoked on SIGHUP / admin reload so the serving
	// model tracks the table directory without a restart.
	buildFromDir := func() (*core.Detector, error) {
		src, err := pipeline.NewDirSourceWith(*trainDir, pipeline.DirConfig{
			HasHeader:     true,
			MaxBadFiles:   *maxBadFiles,
			MaxBadFrac:    *maxBadFrac,
			QuarantineDir: *quarantineDir,
			Retry:         retry.Policy{MaxAttempts: *ioRetries},
		})
		if err != nil {
			return nil, err
		}
		logger.Info("pipeline build starting",
			"files", src.Files(), "train_dir", *trainDir, "workers", *workers,
			"max_bad_files", *maxBadFiles, "max_bad_frac", *maxBadFrac, "io_retries", *ioRetries)
		res, err := pipeline.Run(context.Background(), src, pipeline.Options{
			Workers:       *workers,
			Train:         trainConfig(),
			SampleColumns: *sample,
			Metrics:       reg,
		})
		if err != nil {
			return nil, err
		}
		logger.Info("pipeline build done",
			"columns", res.Columns, "values", res.Values,
			"elapsed", res.Elapsed.Round(time.Millisecond).String(),
			"languages", len(res.Report.Selected))
		if res.FilesSkipped > 0 || res.ColumnsQuarantined > 0 {
			logger.Warn("degraded ingestion", "files_skipped", res.FilesSkipped,
				"columns_quarantined", res.ColumnsQuarantined, "quarantine_dir", *quarantineDir)
		}
		return res.Detector, nil
	}

	// buildFromDSN streams every table.column of the database through the
	// same sharded pipeline; like buildFromDir it is re-invoked on SIGHUP /
	// admin reload, re-introspecting so the model tracks the live schema.
	buildFromDSN := func() (*core.Detector, error) {
		src, err := dbsource.NewSource(context.Background(), dbsource.Config{
			Driver:  *trainDriver,
			DSN:     *trainDSN,
			Retry:   retry.Policy{MaxAttempts: *ioRetries},
			Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
		defer src.Close()
		logger.Info("pipeline build starting", "driver", *trainDriver,
			"db_columns", src.Len(), "schema_hash", src.SchemaHash(), "workers", *workers)
		res, err := pipeline.Run(context.Background(), src, pipeline.Options{
			Workers:       *workers,
			Train:         trainConfig(),
			SampleColumns: *sample,
			Metrics:       reg,
		})
		if err != nil {
			return nil, err
		}
		logger.Info("pipeline build done",
			"columns", res.Columns, "values", res.Values,
			"elapsed", res.Elapsed.Round(time.Millisecond).String(),
			"languages", len(res.Report.Selected))
		return res.Detector, nil
	}

	var det *core.Detector
	var sem *semantic.Model
	var initInfo service.ModelInfo
	switch {
	case *modelPath != "":
		var err error
		det, initInfo, err = loadModelFile(*modelPath)
		if err != nil {
			if errors.Is(err, core.ErrCorruptModel) {
				fatal("refusing to serve corrupt model", "model", *modelPath, "error", err)
			}
			fatal("model load failed", "model", *modelPath, "error", err)
		}
		logger.Info("model loaded", "model", *modelPath,
			"languages", len(det.Languages()), "model_bytes", det.Bytes())
	case *trainDir != "":
		var err error
		det, err = buildFromDir()
		if err != nil {
			fatal("pipeline build failed", "train_dir", *trainDir, "error", err)
		}
		initInfo = service.ModelInfo{Source: "train-dir"}
	case *trainDSN != "":
		var err error
		det, err = buildFromDSN()
		if err != nil {
			fatal("pipeline build failed", "train_driver", *trainDriver, "error", err)
		}
		initInfo = service.ModelInfo{Source: "train-dsn"}
	case *train:
		logger.Info("training on synthetic corpus", "columns", *columns, "workers", *workers)
		c := corpus.Generate(corpus.WebProfile(), *columns, *seed)
		res, err := pipeline.Run(context.Background(), pipeline.NewSliceSource(c.Columns), pipeline.Options{
			Workers: *workers,
			Train:   trainConfig(),
			Metrics: reg,
		})
		if err != nil {
			fatal("training failed", "error", err)
		}
		det = res.Detector
		logger.Info("training done",
			"languages", len(res.Report.Selected), "model_bytes", res.Report.SelectedBytes)
		if sem, err = semantic.Train(c, semantic.DefaultConfig()); err != nil {
			logger.Warn("semantic model unavailable", "error", err)
			sem = nil
		}
		initInfo = service.ModelInfo{Source: "synthetic"}
	case *registryURL != "":
		// No local model: start not-ready and let the registry puller
		// deliver the first version; readyz flips once it applies.
		logger.Info("no local model; waiting for the registry's pinned version",
			"registry", *registryURL, "poll", registryPoll.String())
	default:
		fmt.Fprintln(os.Stderr, "autodetectd: need -model, -train-dir, -train-dsn, -train or -registry-url")
		os.Exit(2)
	}

	svc := service.NewWithInfo(det, sem, initInfo)
	svc.MaxInFlight = *maxInflight
	svc.LatencyTarget = *latencyTarget
	svc.RequestTimeout = *requestTimeout
	svc.MaxModelStaleness = *maxModelStaleness
	svc.MaxBodyBytes = *maxBodyBytes
	svc.MaxTableValues = *maxTableValues
	svc.Logger = logger
	svc.Metrics = reg
	svc.EnablePprof = *enablePprof
	svc.Tracer = tracer
	svc.EnableTraceDebug = *traceDebug

	// Batch audit jobs: durable queue + executor under -jobs-dir. Opened
	// before the listener so jobs interrupted by the previous shutdown are
	// already re-enqueued when the first poll arrives.
	var jobMgr *jobs.Manager
	if *jobsDir != "" {
		var err error
		jobMgr, err = jobs.Open(context.Background(), jobs.Config{
			Dir:        *jobsDir,
			Workers:    *jobWorkers,
			MaxQueued:  *maxQueuedJobs,
			JobTimeout: *jobTimeout,
			Model:      svc.Model,
			Metrics:    reg,
			Logger:     logger,
			Tracer:     tracer,
		})
		if err != nil {
			fatal("batch job manager failed to open", "jobs_dir", *jobsDir, "error", err)
		}
		svc.Jobs = jobMgr
		svc.AllowDBAudit = *dbAudit
		logger.Info("batch jobs enabled", "jobs_dir", *jobsDir, "db_audit", *dbAudit,
			"job_workers", *jobWorkers, "max_queued_jobs", *maxQueuedJobs,
			"job_timeout", jobTimeout.String(), "recovered", jobMgr.Recovered())
	}
	// Registry pulling: the puller polls the registry's pinned version and
	// hot-swaps through the same atomic path as /v1/admin/reload.
	var puller *registry.Puller
	if *registryURL != "" {
		// The pull path gets the full degradation kit: a breaker so a dead
		// registry costs one local rejection per poll instead of a retry
		// storm, and a retry budget bounding fleet-wide amplification. An
		// open breaker surfaces on /v1/readyz as degraded-but-serving.
		pullBreaker := resilience.NewBreaker(resilience.BreakerConfig{
			Name:    "registry_pull",
			Metrics: reg,
			Logf:    func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) },
		})
		svc.DegradedCheck = func() []string {
			if pullBreaker.State() != resilience.BreakerClosed {
				return []string{"registry_breaker_open"}
			}
			return nil
		}
		var err error
		puller, err = registry.NewPuller(registry.PullerConfig{
			URL:     *registryURL,
			Poll:    *registryPoll,
			Breaker: pullBreaker,
			Budget:  resilience.NewRetryBudget(resilience.BudgetConfig{Name: "registry_pull", Metrics: reg}),
			Apply: func(info registry.VersionInfo, raw []byte) error {
				d, err := core.Load(bytes.NewReader(raw))
				if err != nil {
					return err
				}
				return svc.SwapInfo(d, sem, service.ModelInfo{
					Version: info.Version, Source: "registry",
					SHA256: info.SHA256, PublishedUnixMs: info.PublishedUnixMs,
				})
			},
			Logf:    func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
			Metrics: reg,
			Tracer:  tracer,
		})
		if err != nil {
			fatal("registry puller setup failed", "registry", *registryURL, "error", err)
		}
	}
	switch {
	case puller != nil:
		// Reload forces an immediate registry poll. The puller's Apply hook
		// already swapped on change, so the handler's follow-up swap just
		// re-stores the model it reports on.
		svc.Reload = func() (*core.Detector, *semantic.Model, service.ModelInfo, error) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if _, _, err := puller.PullNow(ctx); err != nil {
				return nil, nil, service.ModelInfo{}, err
			}
			d, sm := svc.Model()
			if d == nil {
				return nil, nil, service.ModelInfo{}, errors.New("registry has no model published yet")
			}
			return d, sm, svc.Info(), nil
		}
	case *modelPath != "":
		// Hot reload re-reads the model file; the semantic model (only
		// produced by -train) is not file-backed and stays as-is.
		svc.Reload = func() (*core.Detector, *semantic.Model, service.ModelInfo, error) {
			d, info, err := loadModelFile(*modelPath)
			return d, sem, info, err
		}
	case *trainDir != "":
		// Hot reload retrains over the (possibly updated) directory.
		svc.Reload = func() (*core.Detector, *semantic.Model, service.ModelInfo, error) {
			d, err := buildFromDir()
			return d, sem, service.ModelInfo{Source: "train-dir"}, err
		}
	case *trainDSN != "":
		// Hot reload re-introspects and retrains over the live database.
		svc.Reload = func() (*core.Detector, *semantic.Model, service.ModelInfo, error) {
			d, err := buildFromDSN()
			return d, sem, service.ModelInfo{Source: "train-dsn"}, err
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}

	// The puller loop starts before the listener so a model-less replica
	// converges on the registry's pinned version as soon as it is up.
	pullCtx, pullCancel := context.WithCancel(context.Background())
	defer pullCancel()
	if puller != nil {
		go func() { _ = puller.Run(pullCtx) }()
	}

	// SIGHUP → hot reload through the same hook as /v1/admin/reload; the
	// atomic swap means in-flight requests keep their model snapshot.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if svc.Reload == nil {
				logger.Warn("SIGHUP ignored: no -model file, -train-dir or -registry-url to reload from")
				continue
			}
			d, sm, info, err := svc.Reload()
			if err != nil {
				logger.Error("SIGHUP reload failed, keeping current model", "error", err)
				continue
			}
			if err := svc.SwapInfo(d, sm, info); err != nil {
				logger.Error("SIGHUP swap failed", "error", err)
				continue
			}
			logger.Info("SIGHUP reload succeeded",
				"languages", len(d.Languages()), "model_bytes", d.Bytes(),
				"model_version", info.Version, "model_source", info.Source)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr,
		"max_inflight", *maxInflight, "request_timeout", requestTimeout.String(),
		"max_body_bytes", *maxBodyBytes, "pprof", *enablePprof)

	select {
	case err := <-errCh:
		fatal("server failed", "error", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		logger.Info("shutdown signal received, draining connections", "drain_timeout", drainTimeout.String())
		shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Error("drain incomplete, forcing close", "error", err)
			_ = srv.Close()
		}
		if jobMgr != nil {
			// Drain the executor: running jobs persist their per-column
			// checkpoint and resume on the next boot.
			jCtx, jCancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := jobMgr.Close(jCtx); err != nil {
				logger.Error("batch job drain incomplete", "error", err)
			}
			jCancel()
		}
		logger.Info("shutdown complete")
	}
}

// coordParams carries the -build-coordinator flag set.
type coordParams struct {
	TrainDir    string
	StateDir    string
	Partitions  int
	LeaseTTL    time.Duration
	Addr        string
	Out         string
	Summary     string
	RegistryURL string
	Drain       time.Duration
	Tracer      *observe.Tracer
	Pprof       bool
	TraceDebug  bool
	Options     pipeline.Options
}

// buildSummary is the -build-summary payload (BENCH_distbuild.json in CI):
// the wall clock plus every fault-visibility counter, so a smoke harness
// can assert not just that the build finished but that reassignment and
// duplicate-handling actually happened.
type buildSummary struct {
	Partitions      int     `json:"partitions"`
	Restored        int     `json:"restored"`
	WallSeconds     float64 `json:"wall_seconds"`
	LeasesGranted   uint64  `json:"leases_granted"`
	LeasesExpired   uint64  `json:"leases_expired"`
	Reassignments   uint64  `json:"reassignments"`
	ShardsAccepted  uint64  `json:"shards_accepted"`
	ShardsDuplicate uint64  `json:"shards_duplicate"`
	ShardsRejected  uint64  `json:"shards_rejected"`
	Languages       int     `json:"languages"`
	ModelBytes      int     `json:"model_bytes"`
}

// runBuildCoordinator drives one distributed build end to end: serve the
// distbuild protocol (plus /metrics) on addr, wait until every partition's
// shard is accepted, merge and finalize, atomically write the model, then
// drain. SIGINT/SIGTERM abort the build; accepted shards stay under
// StateDir, so rerunning the same command resumes where it stopped.
func runBuildCoordinator(logger *slog.Logger, reg *observe.Registry, p coordParams) error {
	part, err := pipeline.NewDirPartitioner(p.TrainDir, pipeline.DirConfig{HasHeader: true})
	if err != nil {
		return err
	}
	coord, err := distbuild.NewCoordinator(part, distbuild.CoordinatorConfig{
		StateDir:   p.StateDir,
		Partitions: p.Partitions,
		LeaseTTL:   p.LeaseTTL,
		Options:    p.Options,
		Metrics:    reg,
		Tracer:     p.Tracer,
		Logf:       func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		return err
	}
	// Finalize the build's root span no matter how the build ends, so the
	// trace lands in the flight recorder (EndTrace is idempotent).
	defer coord.EndTrace()
	mux := http.NewServeMux()
	mux.Handle("/", coord.Handler())
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("/debug/", observe.DebugHandler(observe.DebugOptions{
		Pprof:    p.Pprof,
		Traces:   p.TraceDebug && p.Tracer != nil,
		Recorder: debugRecorder(p.Tracer),
	}))
	srv := &http.Server{
		Addr:              p.Addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("build coordinator listening", "addr", p.Addr,
		"partitions", coord.Partitions(), "restored", coord.Restored(),
		"lease_ttl", p.LeaseTTL.String(), "state_dir", p.StateDir)

	start := time.Now()
	waitCh := make(chan error, 1)
	go func() { waitCh <- coord.Wait(ctx) }()
	select {
	case err := <-errCh:
		return fmt.Errorf("coordinator server failed: %w", err)
	case err := <-waitCh:
		if err != nil {
			logger.Warn("build interrupted; accepted shards persist, rerun to resume",
				"state_dir", p.StateDir, "status", fmt.Sprintf("%+v", coord.Status()))
			return err
		}
	}

	// Keep serving while finalizing: lingering workers still polling for
	// leases hear "done" and exit cleanly instead of retrying into a wall.
	det, rep, err := coord.BuildModel(context.Background())
	if err != nil {
		return err
	}
	if err := atomicio.WriteTo(p.Out, 0o644, det.Save); err != nil {
		return err
	}
	if p.RegistryURL != "" {
		// Publish the finalized model so the serving fleet picks it up.
		// Idempotent: a rerun of a finished build re-uploads the same bytes
		// and is acknowledged as a duplicate. The publish rides the build
		// trace: the registry persists the injected traceparent, and every
		// replica's hot-swap span joins this build's timeline.
		var buf bytes.Buffer
		if err := det.Save(&buf); err != nil {
			return err
		}
		fp := pipeline.BuildFingerprint(part.Fingerprint(), p.Options)
		pubCtx, endPublish := observe.RecorderSpan(coord.TraceContext(), "publish_model")
		pres, err := registry.PublishModel(pubCtx, p.RegistryURL,
			buf.Bytes(), fp, "distbuild", registry.PublishOptions{
				Retry: retry.Policy{MaxAttempts: 10},
				Breaker: resilience.NewBreaker(resilience.BreakerConfig{
					Name:    "registry_publish",
					Metrics: reg,
					Logf:    func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) },
				}),
				Budget: resilience.NewRetryBudget(resilience.BudgetConfig{Name: "registry_publish", Metrics: reg}),
			})
		if err != nil {
			observe.SetSpanError(pubCtx, err.Error())
			endPublish()
			return fmt.Errorf("model written to %s but registry publish failed: %w", p.Out, err)
		}
		endPublish()
		logger.Info("model published to registry", "registry", p.RegistryURL,
			"version", pres.Version, "status", pres.Status, "current", pres.Current,
			"sha256", pres.SHA256)
	}
	// Finalize the build trace now — while the server is still up — so the
	// completed timeline is visible on /debug/traces before drain.
	coord.EndTrace()
	st := coord.Status()
	sum := buildSummary{
		Partitions:      st.Partitions,
		Restored:        coord.Restored(),
		WallSeconds:     time.Since(start).Seconds(),
		LeasesGranted:   st.LeasesGranted,
		LeasesExpired:   st.LeasesExpired,
		Reassignments:   st.Reassignments,
		ShardsAccepted:  st.ShardsAccepted,
		ShardsDuplicate: st.ShardsDuplicate,
		ShardsRejected:  st.ShardsRejected,
		Languages:       len(rep.Selected),
		ModelBytes:      rep.SelectedBytes,
	}
	logger.Info("distributed build complete", "out", p.Out,
		"partitions", sum.Partitions, "restored", sum.Restored,
		"leases_granted", sum.LeasesGranted, "leases_expired", sum.LeasesExpired,
		"reassignments", sum.Reassignments, "shards_accepted", sum.ShardsAccepted,
		"shards_duplicate", sum.ShardsDuplicate, "shards_rejected", sum.ShardsRejected,
		"languages", sum.Languages, "model_bytes", sum.ModelBytes,
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	if p.Summary != "" {
		raw, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := atomicio.WriteFile(p.Summary, raw, 0o644); err != nil {
			return err
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), p.Drain)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		_ = srv.Close()
	}
	return nil
}

// runBuildWorker joins a distributed build and works until the coordinator
// reports it complete. The generous retry budget is deliberate: a worker
// should ride out a coordinator restart, not die during one.
func runBuildWorker(logger *slog.Logger, reg *observe.Registry, tracer *observe.Tracer, coordinator, dir string, workers int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("build worker starting", "coordinator", coordinator, "dir", dir, "workers", workers)
	st, err := distbuild.RunWorker(ctx, distbuild.WorkerConfig{
		Coordinator: coordinator,
		Dir:         dir,
		Workers:     workers,
		Retry:       retry.Policy{MaxAttempts: 10},
		Breaker: resilience.NewBreaker(resilience.BreakerConfig{
			Name:    "distbuild_worker",
			Metrics: reg,
			Logf:    func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) },
		}),
		Budget: resilience.NewRetryBudget(resilience.BudgetConfig{Name: "distbuild_worker", Metrics: reg}),
		Tracer: tracer,
		Logf:   func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		return err
	}
	logger.Info("build worker done", "partitions_counted", st.PartitionsCounted,
		"leases_lost", st.LeasesLost, "waits", st.Waits, "breaker_waits", st.BreakerWaits)
	return nil
}

// registryParams carries the -registry-serve flag set.
type registryParams struct {
	Dir            string
	Addr           string
	MaxInFlight    int
	RequestTimeout time.Duration
	MaxBodyBytes   int64
	Drain          time.Duration
	Tracer         *observe.Tracer
	Pprof          bool
	TraceDebug     bool
}

// debugRecorder unwraps a possibly-nil tracer's flight recorder for the
// DebugHandler mount.
func debugRecorder(t *observe.Tracer) *observe.FlightRecorder {
	if t == nil {
		return nil
	}
	return t.Recorder()
}

// runRegistryServer serves the versioned model registry until
// SIGINT/SIGTERM. The store rescans its directory on open — re-verifying
// every stored version's digest and quarantining corrupt ones — so a
// restarted registry never serves bytes it cannot vouch for. The API sits
// behind the same hardening chain as the detection service; /v1/livez and
// /metrics bypass the limiter so orchestrators and scrapes survive
// overload.
func runRegistryServer(logger *slog.Logger, reg *observe.Registry, p registryParams) error {
	store, err := registry.Open(p.Dir, registry.Options{
		Metrics: reg,
		Logf:    func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		return err
	}
	cur, pinned, versions := store.List()
	logger.Info("registry open", "dir", p.Dir, "versions", len(versions),
		"current", cur, "pinned", pinned)

	httpMetrics := resilience.NewHTTPMetrics(reg)
	httpMetrics.Route = registry.RouteLabel
	// The registry's traffic is fleet-internal: pulls and publishes retry
	// under budgets, so they are background tier and shed first; the pin
	// surface (an operator rolling back a bad model) is critical and never
	// shed.
	adm := resilience.NewAdmission(resilience.AdmissionConfig{
		MaxConcurrency: p.MaxInFlight,
		Metrics:        reg,
		Tier: func(r *http.Request) resilience.Tier {
			if strings.HasPrefix(r.URL.Path, registry.PathPin) {
				return resilience.TierCritical
			}
			return resilience.TierBackground
		},
	})
	hardened := resilience.Chain(
		adm.Middleware(),
		resilience.DeadlineBudget(p.RequestTimeout, nil, reg),
		resilience.MaxBytes(p.MaxBodyBytes),
	)(registry.NewServer(store).Handler())
	root := http.NewServeMux()
	root.HandleFunc("/v1/livez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"alive"}` + "\n"))
	})
	root.Handle("GET /metrics", reg.Handler())
	root.Handle("/debug/", observe.DebugHandler(observe.DebugOptions{
		Pprof:    p.Pprof,
		Traces:   p.TraceDebug && p.Tracer != nil,
		Recorder: debugRecorder(p.Tracer),
	}))
	root.Handle("/", hardened)
	handler := resilience.Chain(
		resilience.RequestID(),
		resilience.Tracing(p.Tracer, registry.RouteLabel),
		resilience.Metrics(httpMetrics),
		resilience.AccessLog(logger),
		resilience.Recover(func(format string, args ...any) { logger.Error(fmt.Sprintf(format, args...)) }),
	)(root)

	srv := &http.Server{
		Addr:              p.Addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("registry listening", "addr", p.Addr,
		"max_inflight", p.MaxInFlight, "request_timeout", p.RequestTimeout.String(),
		"max_body_bytes", p.MaxBodyBytes)

	select {
	case err := <-errCh:
		return fmt.Errorf("registry server failed: %w", err)
	case <-ctx.Done():
		stop()
		logger.Info("shutdown signal received, draining connections", "drain_timeout", p.Drain.String())
		shCtx, cancel := context.WithTimeout(context.Background(), p.Drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Error("drain incomplete, forcing close", "error", err)
			_ = srv.Close()
		}
		logger.Info("shutdown complete")
	}
	return nil
}
