// Command corpusgen generates synthetic table corpora to CSV files — the
// stand-ins for the paper's WEB / Pub-XLS / WIKI / Ent-XLS corpora.
//
//	corpusgen -profile wiki -columns 1000 -out wiki.csv
//	corpusgen -profile web -columns 5000 -out web.csv -labels wiki-labels.txt
//
// When -labels is given, planted-error ground truth is written as
// "column<TAB>row<TAB>value" lines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
)

func main() {
	profile := flag.String("profile", "web", "profile: web|spreadsheet|wiki|enterprise|csvsuite")
	columns := flag.Int("columns", 1000, "number of columns to generate")
	out := flag.String("out", "corpus.csv", "output CSV path")
	labels := flag.String("labels", "", "optional ground-truth output path")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var c *corpus.Corpus
	switch *profile {
	case "web":
		c = corpus.Generate(corpus.WebProfile(), *columns, *seed)
	case "spreadsheet":
		c = corpus.Generate(corpus.PubXLSProfile(), *columns, *seed)
	case "wiki":
		c = corpus.Generate(corpus.WikiProfile(), *columns, *seed)
	case "enterprise":
		c = corpus.Generate(corpus.EntXLSProfile(), *columns, *seed)
	case "csvsuite":
		c = corpus.CSVSuite()
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	w := bufio.NewWriter(f)
	if err := corpus.WriteCSV(w, c.Columns); err != nil {
		fail(err)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d columns (%d cells, %d dirty columns) to %s\n",
		c.NumColumns(), c.NumValues(), c.DirtyColumns(), *out)

	if *labels != "" {
		lf, err := os.Create(*labels)
		if err != nil {
			fail(err)
		}
		lw := bufio.NewWriter(lf)
		for ci, col := range c.Columns {
			for _, ri := range col.Dirty {
				fmt.Fprintf(lw, "%d\t%d\t%s\n", ci, ri, col.Values[ri])
			}
		}
		if err := lw.Flush(); err != nil {
			fail(err)
		}
		if err := lf.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("ground truth written to %s\n", *labels)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
