// Command corpusgen generates synthetic table corpora to CSV files — the
// stand-ins for the paper's WEB / Pub-XLS / WIKI / Ent-XLS corpora.
//
//	corpusgen -profile wiki -columns 1000 -out wiki.csv
//	corpusgen -profile web -columns 5000 -out web.csv -labels web-labels.txt
//	corpusgen -profile web -columns 1000000 -out-dir corpus/ -cols-per-file 2000
//
// With -out the whole corpus is materialized into one CSV. With -out-dir
// columns are streamed to numbered shard files as they are generated, so
// corpora far larger than memory can be written; the shard directory feeds
// straight into `autodetect train -dir`. When -labels is given, planted-error
// ground truth is written as "column<TAB>row<TAB>value" lines (column
// indices are global across shards).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/corpus"
	"repro/internal/observe"
)

// logger emits generation summaries and failures on stderr, structured
// with the same keys as the rest of the stack.
var logger = observe.NewLogger(os.Stderr, observe.LogOptions{Component: "corpusgen"})

func main() {
	profile := flag.String("profile", "web", "profile: web|spreadsheet|wiki|enterprise|csvsuite")
	columns := flag.Int("columns", 1000, "number of columns to generate")
	out := flag.String("out", "", "output CSV path (single file; default corpus.csv unless -out-dir is set)")
	outDir := flag.String("out-dir", "", "stream the corpus into numbered CSV shards under this directory")
	colsPerFile := flag.Int("cols-per-file", 2000, "columns per shard file with -out-dir")
	labels := flag.String("labels", "", "optional ground-truth output path")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *out != "" && *outDir != "" {
		fmt.Fprintln(os.Stderr, "corpusgen: -out and -out-dir are mutually exclusive")
		os.Exit(2)
	}
	if *outDir == "" && *out == "" {
		*out = "corpus.csv"
	}
	if *colsPerFile <= 0 {
		fmt.Fprintln(os.Stderr, "corpusgen: -cols-per-file must be positive")
		os.Exit(2)
	}

	var p corpus.Profile
	switch *profile {
	case "web":
		p = corpus.WebProfile()
	case "spreadsheet":
		p = corpus.PubXLSProfile()
	case "wiki":
		p = corpus.WikiProfile()
	case "enterprise":
		p = corpus.EntXLSProfile()
	case "csvsuite":
		c := corpus.CSVSuite()
		if *outDir != "" {
			writeSharded(sliceNext(c.Columns), len(c.Columns), *outDir, *colsPerFile, *labels)
		} else {
			writeSingle(c, *out, *labels)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "corpusgen: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	if *outDir != "" {
		// Stream: only one shard's worth of columns is ever in memory.
		stream := corpus.NewStream(p, *seed)
		writeSharded(stream.Next, *columns, *outDir, *colsPerFile, *labels)
		return
	}
	writeSingle(corpus.Generate(p, *columns, *seed), *out, *labels)
}

// sliceNext adapts a materialized column slice to the streaming interface.
func sliceNext(cols []*corpus.Column) func() *corpus.Column {
	i := 0
	return func() *corpus.Column {
		c := cols[i]
		i++
		return c
	}
}

// writeSharded drains n columns from next into numbered CSV shards of at
// most colsPerFile columns each, emitting ground truth (with global column
// indices) along the way. Every shard — and the label file — lands via an
// atomic durable write, so a crash mid-generation never leaves a truncated
// shard for `autodetect train -dir` to trip over.
func writeSharded(next func() *corpus.Column, n int, dir string, colsPerFile int, labelsPath string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	// Ground truth streams into a staged atomic write and is only published
	// by the final Commit: nothing accumulates in memory (a large corpus can
	// carry millions of dirty cells), yet a crash mid-generation still never
	// leaves a half-written label file — only an invisible temp file.
	var labelW *atomicio.Writer
	var labelBuf *bufio.Writer
	if labelsPath != "" {
		var err error
		if labelW, err = atomicio.Create(labelsPath, 0o644); err != nil {
			fail(err)
		}
		defer labelW.Abort()
		labelBuf = bufio.NewWriter(labelW)
	}
	written, values, dirtyCols, shards := 0, 0, 0, 0
	for written < n {
		take := colsPerFile
		if left := n - written; left < take {
			take = left
		}
		chunk := make([]*corpus.Column, take)
		for i := range chunk {
			chunk[i] = next()
			values += len(chunk[i].Values)
			if len(chunk[i].Dirty) > 0 {
				dirtyCols++
			}
			if labelBuf != nil {
				for _, ri := range chunk[i].Dirty {
					if _, err := fmt.Fprintf(labelBuf, "%d\t%d\t%s\n", written+i, ri, chunk[i].Values[ri]); err != nil {
						fail(err)
					}
				}
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%06d.csv", shards))
		if err := atomicio.WriteTo(path, 0o644, func(w io.Writer) error {
			return corpus.WriteCSV(w, chunk)
		}); err != nil {
			fail(err)
		}
		written += take
		shards++
	}
	if labelBuf != nil {
		if err := labelBuf.Flush(); err != nil {
			fail(err)
		}
		if err := labelW.Commit(); err != nil {
			fail(err)
		}
		logger.Info("ground truth written", "labels", labelsPath)
	}
	logger.Info("corpus written", "columns", written, "values", values,
		"dirty_columns", dirtyCols, "shards", shards, "dir", dir)
}

// writeSingle materializes the corpus into one CSV, the original mode.
// Both the corpus and the ground truth land via atomic durable writes.
func writeSingle(c *corpus.Corpus, out, labelsPath string) {
	if err := atomicio.WriteTo(out, 0o644, func(w io.Writer) error {
		return corpus.WriteCSV(w, c.Columns)
	}); err != nil {
		fail(err)
	}
	logger.Info("corpus written", "columns", c.NumColumns(), "values", c.NumValues(),
		"dirty_columns", c.DirtyColumns(), "out", out)

	if labelsPath != "" {
		if err := atomicio.WriteTo(labelsPath, 0o644, func(w io.Writer) error {
			for ci, col := range c.Columns {
				for _, ri := range col.Dirty {
					if _, err := fmt.Fprintf(w, "%d\t%d\t%s\n", ci, ri, col.Values[ri]); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			fail(err)
		}
		logger.Info("ground truth written", "labels", labelsPath)
	}
}

func fail(err error) {
	logger.Error("generation failed", "error", err)
	os.Exit(1)
}
