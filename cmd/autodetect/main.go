// Command autodetect trains Auto-Detect models and detects errors in CSV
// files.
//
// Train a model on a synthetic web-table corpus (or your own CSV corpus)
// and save it:
//
//	autodetect train -profile web -columns 20000 -out model.bin
//	autodetect train -corpus mytables.csv -out model.bin
//
// Detect errors in the columns of a CSV file:
//
//	autodetect detect -model model.bin -in data.csv
//
// Score a single pair of values:
//
//	autodetect pair -model model.bin "2011-01-01" "2011/01/01"
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dbsource"
	"repro/internal/distsup"
	"repro/internal/eval"
	"repro/internal/observe"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/retry"
)

// logger carries training diagnostics on stderr; detection output (the
// data the user piped us for) stays on stdout.
var logger = observe.NewLogger(os.Stderr, observe.LogOptions{Component: "autodetect"})

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "pair":
		err = cmdPair(os.Args[2:])
	case "baselines":
		err = cmdBaselines(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		logger.Error("command failed", "subcommand", os.Args[1], "error", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  autodetect train  -out model.bin [-profile web|spreadsheet] [-columns N] [-corpus file.csv] [-dir tables/] [-dsn DSN -driver name] [-workers N] [-checkpoint dir/] [-checkpoint-every N] [-sample N] [-pairs N] [-budget MB] [-precision P] [-seed N] [-max-bad-files N] [-max-bad-frac F] [-quarantine-dir dir/] [-io-retries N]
  autodetect detect -model model.bin -in data.csv [-header] [-min-confidence P]
  autodetect pair   -model model.bin VALUE1 VALUE2
  autodetect baselines -in data.csv [-header]
  autodetect eval   -model model.bin -in corpus.csv -labels labels.tsv [-k 10,50,100]
  autodetect profile -in data.csv [-header]`)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "model.bin", "output model path")
	profile := fs.String("profile", "web", "synthetic corpus profile (web|spreadsheet)")
	columns := fs.Int("columns", 20000, "synthetic corpus size")
	corpusPath := fs.String("corpus", "", "train on the columns of this CSV instead of a synthetic corpus")
	dir := fs.String("dir", "", "train on every .csv/.tsv under this directory, streamed one table at a time")
	dsn := fs.String("dsn", "", "train on every table.column of this SQL database, streamed in keyset pages")
	dbDriver := fs.String("driver", dbsource.DriverName, "database/sql driver for -dsn (sqlite3, postgres, mysql, or the in-tree in-memory driver)")
	header := fs.Bool("header", true, "table files start with a header row (-corpus/-dir)")
	workers := fs.Int("workers", runtime.NumCPU(), "counting/calibration parallelism")
	checkpoint := fs.String("checkpoint", "", "checkpoint directory: periodic shard saves, resume on restart")
	checkpointEvery := fs.Int("checkpoint-every", 100000, "columns between checkpoints")
	maxBadFiles := fs.Int("max-bad-files", 0, "quarantine up to N unreadable/unparseable table files instead of failing (-dir)")
	maxBadFrac := fs.Float64("max-bad-frac", 0, "quarantine up to this fraction of table files instead of failing (-dir)")
	quarantineDir := fs.String("quarantine-dir", "", "directory for the quarantine manifest (quarantine.jsonl); defaults to no manifest (-dir)")
	ioRetries := fs.Int("io-retries", 3, "attempts per table file for transient I/O errors; 1 disables retrying (-dir)")
	sample := fs.Int("sample", 0, "cap the distant-supervision column sample (0 = keep every column)")
	pairs := fs.Int("pairs", 20000, "distant-supervision pairs per class")
	budget := fs.Int("budget", 64, "memory budget in MB")
	precision := fs.Float64("precision", 0.95, "target precision P")
	seed := fs.Int64("seed", 1, "random seed")
	traceOut := fs.String("trace-out", "", "record the train run in a flight recorder and write its span timeline (JSON) to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := 0
	for _, set := range []bool{*dir != "", *corpusPath != "", *dsn != ""} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return fmt.Errorf("-dir, -corpus and -dsn are mutually exclusive")
	}
	// retry.Policy treats MaxAttempts<=0 as "use the default", so 0 would
	// silently mean 3 attempts; reject it rather than surprise the operator.
	if *ioRetries < 1 {
		return fmt.Errorf("-io-retries must be >= 1 (1 disables retrying)")
	}

	var src pipeline.ColumnSource
	switch {
	case *dir != "":
		ds, err := pipeline.NewDirSourceWith(*dir, pipeline.DirConfig{
			HasHeader:     *header,
			MaxBadFiles:   *maxBadFiles,
			MaxBadFrac:    *maxBadFrac,
			QuarantineDir: *quarantineDir,
			Retry:         retry.Policy{MaxAttempts: *ioRetries},
		})
		if err != nil {
			return err
		}
		logger.Info("streaming table files", "files", ds.Files(), "dir", *dir,
			"max_bad_files", *maxBadFiles, "max_bad_frac", *maxBadFrac, "io_retries", *ioRetries)
		src = ds
	case *dsn != "":
		db, err := dbsource.NewSource(context.Background(), dbsource.Config{
			Driver: *dbDriver,
			DSN:    *dsn,
			Retry:  retry.Policy{MaxAttempts: *ioRetries},
		})
		if err != nil {
			return err
		}
		defer db.Close()
		logger.Info("streaming database columns", "driver", *dbDriver,
			"columns", db.Len(), "schema_hash", db.SchemaHash(), "io_retries", *ioRetries)
		src = db
	case *corpusPath != "":
		f, err := os.Open(*corpusPath)
		if err != nil {
			return err
		}
		cols, err := corpus.ReadCSV(f, *header)
		f.Close()
		if err != nil {
			return err
		}
		src = pipeline.NewSliceSource(cols)
	default:
		var p corpus.Profile
		switch *profile {
		case "web":
			p = corpus.WebProfile()
		case "spreadsheet":
			p = corpus.PubXLSProfile()
		default:
			return fmt.Errorf("unknown profile %q", *profile)
		}
		logger.Info("streaming synthetic columns", "columns", *columns, "profile", p.Name)
		src = pipeline.NewGeneratedSource(p, *columns, *seed)
	}

	cfg := core.DefaultTrainConfig()
	cfg.TargetPrecision = *precision
	cfg.MemoryBudget = *budget << 20
	ds := distsup.DefaultConfig()
	ds.PositivePairs = *pairs
	ds.NegativePairs = *pairs
	ds.Seed = *seed
	cfg.DistSup = ds

	// SIGINT/SIGTERM cancel the build; with -checkpoint set the pipeline
	// persists a final shard first, so the same command resumes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// With -trace-out, the run records into a private flight recorder
	// (sampling off: there is exactly one trace and we want it) and the
	// completed timeline is written as a JSON artifact.
	var tracer *observe.Tracer
	if *traceOut != "" {
		tracer = observe.NewTracer(observe.NewFlightRecorder(observe.RecorderConfig{SampleEvery: 1}), nil)
		ctx = observe.ContextWithTracer(ctx, tracer)
	}
	trainCtx, endTrain := observe.RecorderSpan(ctx, "train")
	dumpTrace := func() error {
		endTrain()
		if tracer == nil {
			return nil
		}
		traces := tracer.Recorder().Snapshot(observe.TraceFilter{})
		if len(traces) == 0 {
			return nil
		}
		raw, err := json.MarshalIndent(traces[0], "", "  ")
		if err != nil {
			return err
		}
		if err := atomicio.WriteFile(*traceOut, raw, 0o644); err != nil {
			return err
		}
		logger.Info("trace written", "trace_out", *traceOut,
			"trace_id", traces[0].TraceID, "spans", len(traces[0].Spans))
		return nil
	}

	logger.Info("training", "workers", *workers, "candidate_languages", 144)
	res, err := pipeline.Run(trainCtx, src, pipeline.Options{
		Workers:         *workers,
		Train:           cfg,
		SampleColumns:   *sample,
		CheckpointDir:   *checkpoint,
		CheckpointEvery: *checkpointEvery,
		Progress:        func(p pipeline.Progress) { pipeline.WriteProgress(os.Stderr, p) },
		ProgressEvery:   2 * time.Second,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) && *checkpoint != "" {
			logger.Warn("interrupted; rerun the same command to resume", "checkpoint", *checkpoint)
		}
		observe.SetSpanError(trainCtx, err.Error())
		if derr := dumpTrace(); derr != nil {
			logger.Warn("trace artifact not written", "error", derr)
		}
		return err
	}
	observe.SetSpanAttr(trainCtx, "columns", strconv.FormatUint(res.Columns, 10))
	rep := res.Report
	logger.Info("trained", "columns", res.Columns, "values", res.Values,
		"elapsed", res.Elapsed.Round(10*time.Millisecond).String(),
		"resumed_columns", res.ResumedColumns)
	if res.FilesSkipped > 0 || res.ColumnsQuarantined > 0 {
		logger.Warn("degraded ingestion", "files_skipped", res.FilesSkipped,
			"columns_quarantined", res.ColumnsQuarantined, "quarantine_dir", *quarantineDir)
	}
	if res.CorruptCheckpointsSkipped > 0 {
		logger.Warn("corrupt checkpoint shards skipped on resume",
			"shards", res.CorruptCheckpointsSkipped)
	}
	for _, st := range res.Stages {
		logger.Info("stage timing", "stage", string(st.Stage),
			"elapsed", st.Duration.Round(time.Millisecond).String())
	}
	logger.Info("selected", "languages", len(rep.Selected), "model_bytes", rep.SelectedBytes,
		"coverage", rep.Coverage, "negatives", rep.TrainingExamples/2)
	for _, l := range rep.Selected {
		fmt.Printf("  %v\n", l)
	}
	// Durable save: temp file + fsync + rename, so a crash mid-write can
	// never leave a truncated model at -out.
	if err := atomicio.WriteTo(*out, 0o644, res.Detector.Save); err != nil {
		return err
	}
	logger.Info("model written", "out", *out, "model_bytes", rep.SelectedBytes)
	return dumpTrace()
}

func loadModel(path string) (*core.Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	modelPath := fs.String("model", "model.bin", "trained model path")
	in := fs.String("in", "", "input CSV file")
	header := fs.Bool("header", true, "first CSV row is a header")
	minConf := fs.Float64("min-confidence", 0.9, "report findings at or above this confidence")
	htmlOut := fs.String("html", "", "also write an HTML audit report to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}
	det, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	cols, err := corpus.ReadCSV(f, *header)
	f.Close()
	if err != nil {
		return err
	}
	rep := &report.Report{
		Title: "Auto-Detect audit of " + *in,
		ModelSummary: fmt.Sprintf("%d languages, %.1f MB statistics",
			len(det.Languages()), float64(det.Bytes())/(1<<20)),
	}
	found := 0
	for _, col := range cols {
		perRow := map[int]report.Finding{}
		for _, finding := range det.DetectColumn(col.Values) {
			if finding.Confidence < *minConf {
				continue
			}
			found++
			rf := report.Finding{
				Partner: finding.Partner, Confidence: finding.Confidence, Kind: "pattern",
			}
			line := fmt.Sprintf("%s: row %d: %q conflicts with %q (confidence %.3f)",
				col.Name, finding.Index+boolToInt(*header), finding.Value, finding.Partner, finding.Confidence)
			if sug, ok := repair.Suggest(col.Values, finding.Value); ok {
				rf.Suggestion = sug.Proposed
				line += fmt.Sprintf(" — suggest %q (%s)", sug.Proposed, sug.Rule)
			}
			perRow[finding.Index] = rf
			fmt.Println(line)
		}
		rep.AddColumn(col.Name, col.Values, perRow)
	}
	fmt.Printf("%d findings across %d columns\n", found, len(cols))
	if *htmlOut != "" {
		hf, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		defer hf.Close()
		if err := rep.Render(hf); err != nil {
			return err
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
	return nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func cmdPair(args []string) error {
	fs := flag.NewFlagSet("pair", flag.ExitOnError)
	modelPath := fs.String("model", "model.bin", "trained model path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("need exactly two values")
	}
	det, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	ps := det.ScorePair(fs.Arg(0), fs.Arg(1))
	fmt.Printf("incompatible=%v confidence=%.3f\n", ps.Flagged, ps.Confidence)
	for _, l := range ps.ByLanguage {
		fmt.Printf("  language %3d: NPMI %+6.3f fires=%v precision=%.3f\n",
			l.LanguageID, l.NPMI, l.Fires, l.Precision)
	}
	return nil
}

// cmdEval scores a model against a labeled corpus: a CSV of columns (as
// written by corpusgen) plus a ground-truth file of "column<TAB>row<TAB>value"
// lines. It reports pooled precision@k.
func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	modelPath := fs.String("model", "model.bin", "trained model path")
	in := fs.String("in", "", "labeled corpus CSV")
	labelsPath := fs.String("labels", "", "ground-truth TSV (column, row, value)")
	kList := fs.String("k", "10,50,100", "comma-separated precision@k cut-offs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *labelsPath == "" {
		return fmt.Errorf("need -in and -labels")
	}
	det, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	cols, err := corpus.ReadCSV(f, true)
	f.Close()
	if err != nil {
		return err
	}
	lf, err := os.Open(*labelsPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	for i := range cols {
		cols[i].Dirty = []int{}
	}
	sc := bufio.NewScanner(lf)
	for sc.Scan() {
		var ci, ri int
		var v string
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 {
			continue
		}
		if _, err := fmt.Sscanf(parts[0]+" "+parts[1], "%d %d", &ci, &ri); err != nil {
			continue
		}
		v = parts[2]
		if ci < 0 || ci >= len(cols) || ri < 0 || ri >= len(cols[ci].Values) {
			return fmt.Errorf("label out of range: %s", sc.Text())
		}
		if cols[ci].Values[ri] != v {
			return fmt.Errorf("label mismatch at column %d row %d: corpus has %q, labels say %q",
				ci, ri, cols[ci].Values[ri], v)
		}
		cols[ci].Dirty = append(cols[ci].Dirty, ri)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	var ks []int
	for _, s := range strings.Split(*kList, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k <= 0 {
			return fmt.Errorf("bad -k entry %q", s)
		}
		ks = append(ks, k)
	}
	r := eval.EvaluateCorpus(&baselines.AutoDetect{Det: det}, cols, ks)
	fmt.Printf("pooled predictions: %d (correct %d)\n", r.Predictions, r.Correct)
	for _, k := range ks {
		fmt.Printf("precision@%d = %.3f\n", k, r.PrecisionAt[k])
	}
	return nil
}

// cmdProfile prints Trifacta-style column profiles (shape, length and
// character-class distributions) for every column of a CSV.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file")
	header := fs.Bool("header", true, "first CSV row is a header")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	cols, err := corpus.ReadCSV(f, *header)
	f.Close()
	if err != nil {
		return err
	}
	for _, col := range cols {
		fmt.Printf("== %s ==\n%s\n", col.Name, profile.Column(col.Values))
	}
	return nil
}

func cmdBaselines(args []string) error {
	fs := flag.NewFlagSet("baselines", flag.ExitOnError)
	in := fs.String("in", "", "input CSV file")
	header := fs.Bool("header", true, "first CSV row is a header")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	cols, err := corpus.ReadCSV(f, *header)
	f.Close()
	if err != nil {
		return err
	}
	for _, col := range cols {
		for _, det := range baselines.All() {
			preds := det.Detect(col.Values)
			if len(preds) == 0 {
				continue
			}
			fmt.Printf("%s: %s flags %q (confidence %.3f)\n",
				col.Name, det.Name(), preds[0].Value, preds[0].Confidence)
		}
	}
	return nil
}
