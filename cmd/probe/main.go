// Command probe is a development aid: it lists the top pooled WIKI
// predictions of the default small-scale detector with their ground-truth
// verdicts, to inspect false positives.
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/baselines"
	"repro/internal/eval"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-cplus" {
		cplusBreakdown()
		return
	}
	s := eval.NewSuite(eval.SmallScale(), 1)
	det, _, err := s.Detector()
	if err != nil {
		panic(err)
	}
	ad := &baselines.AutoDetect{Det: det}
	type hit struct {
		domain, value, partner string
		conf                   float64
		correct                bool
	}
	var hits []hit
	for _, col := range s.WikiTest().Columns {
		preds := ad.Detect(col.Values)
		if len(preds) == 0 {
			continue
		}
		top := preds[0]
		correct := false
		for _, di := range col.Dirty {
			if col.Values[di] == top.Value {
				correct = true
			}
		}
		partner := ""
		fs := det.DetectColumn(col.Values)
		if len(fs) > 0 {
			partner = fs[0].Partner
		}
		hits = append(hits, hit{col.Domain, top.Value, partner, top.Confidence, correct})
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].conf > hits[j].conf })
	n := 50
	if len(hits) < n {
		n = len(hits)
	}
	fmt.Println("top pooled predictions (X = false positive):")
	for i, h := range hits[:n] {
		mark := " "
		if !h.correct {
			mark = "X"
		}
		fmt.Printf("%2d %s [%s] %q vs %q conf=%.3f\n", i+1, mark, h.domain, h.value, h.partner, h.conf)
	}

	for _, pair := range [][2]string{
		{"Ana Kim", "Richard Anderson"},
		{"c0c5b9d9", "b57c057b"},
		{"Portland", "Miami"},
	} {
		ps := det.ScorePair(pair[0], pair[1])
		fmt.Printf("\npair %q vs %q flagged=%v conf=%.3f\n", pair[0], pair[1], ps.Flagged, ps.Confidence)
		for i, l := range ps.ByLanguage {
			cal := det.Languages()[i]
			fmt.Printf("  %v npmi=%+0.3f theta=%+0.3f fires=%v prec=%.3f\n",
				cal.Stats.Language(), l.NPMI, cal.Theta, l.Fires, l.Precision)
		}
	}
}
