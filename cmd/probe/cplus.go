package main

import (
	"fmt"
	"sort"

	"repro/internal/corpus"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// cplusBreakdown reports, per domain, what fraction of generated columns
// pass the Appendix F verified-compatible gate (all crude pattern pairs
// NPMI > 0). Run with: go run ./cmd/probe -cplus
func cplusBreakdown() {
	c := corpus.Generate(corpus.WebProfile(), 6000, 1)
	g := pattern.Crude()
	crude := stats.NewLanguageStats(g, 0)
	type cc struct {
		domain   string
		patterns []string
	}
	cache := make([]cc, len(c.Columns))
	for i, col := range c.Columns {
		vs := col.DistinctValues()
		ps := make([]string, len(vs))
		for j, v := range vs {
			ps[j] = g.Generalize(v)
		}
		cache[i] = cc{col.Domain, ps}
		crude.AddColumn(vs)
	}
	pass := map[string]int{}
	total := map[string]int{}
	for _, col := range cache {
		total[col.domain]++
		ok := true
	outer:
		for a := 0; a < len(col.patterns); a++ {
			for b := a + 1; b < len(col.patterns); b++ {
				if col.patterns[a] == col.patterns[b] {
					continue
				}
				if crude.NPMI(col.patterns[a], col.patterns[b]) <= 0 {
					ok = false
					break outer
				}
			}
		}
		if ok {
			pass[col.domain]++
		}
	}
	var domains []string
	for d := range total {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for _, d := range domains {
		fmt.Printf("%-18s %4d/%4d  %.2f\n", d, pass[d], total[d], float64(pass[d])/float64(total[d]))
	}
}
