package autodetect

import (
	"bytes"
	"sync"
	"testing"
)

var (
	modelOnce sync.Once
	model     *Model
	modelErr  error
)

func sharedModel(t testing.TB) *Model {
	t.Helper()
	modelOnce.Do(func() {
		cols, err := GenerateColumns(ProfileWeb, 4000, 42)
		if err != nil {
			modelErr = err
			return
		}
		cfg := DefaultConfig()
		cfg.TrainingPairs = 4000
		model, modelErr = Train(cols, cfg)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("empty corpus should error")
	}
	if _, err := Train([][]string{{"a"}}, DefaultConfig()); err == nil {
		t.Error("one column should error")
	}
}

func TestGenerateColumns(t *testing.T) {
	for _, p := range []CorpusProfile{ProfileWeb, ProfileSpreadsheet, ProfileWiki, ProfileEnterprise} {
		cols, err := GenerateColumns(p, 50, 1)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(cols) != 50 {
			t.Fatalf("%s: %d columns", p, len(cols))
		}
	}
	if _, err := GenerateColumns("nope", 10, 1); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestModelEndToEnd(t *testing.T) {
	m := sharedModel(t)
	if len(m.Languages()) == 0 {
		t.Fatal("no languages selected")
	}
	if m.Bytes() <= 0 {
		t.Error("zero model size")
	}
	if m.Stats() == "" {
		t.Error("empty stats summary")
	}

	findings := m.DetectColumn([]string{
		"2011-01-01", "2012-05-14", "2013-11-30", "2014-02-07", "2011/06/20",
	})
	if len(findings) == 0 || findings[0].Value != "2011/06/20" {
		t.Errorf("findings = %+v, want the slash date on top", findings)
	}
	if f := findings[0]; f.Index != 4 || f.Partner == "" || f.Confidence <= 0.5 {
		t.Errorf("finding fields: %+v", findings[0])
	}

	v := m.ScorePair("2011-01-01", "2011/01/01")
	if !v.Incompatible {
		t.Errorf("mixed dates not flagged: %+v", v)
	}
	ok := m.ScorePair("2011-01-01", "1999-12-31")
	if ok.Incompatible {
		t.Errorf("same-format dates flagged: %+v", ok)
	}
}

func TestModelSaveLoad(t *testing.T) {
	m := sharedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := m.ScorePair("3-2", "-")
	b := back.ScorePair("3-2", "-")
	if a != b {
		t.Errorf("verdicts differ after round trip: %+v vs %+v", a, b)
	}
	if back.Stats() == "" {
		t.Error("loaded model has empty stats")
	}
}

func TestLanguages144(t *testing.T) {
	if got := len(Languages144()); got != 144 {
		t.Errorf("Languages144 = %d entries", got)
	}
}
