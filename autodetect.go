// Package autodetect is a Go implementation of Auto-Detect (Huang & He,
// "Auto-Detect: Data-Driven Error Detection in Tables", SIGMOD 2018):
// statistics-based single-column error detection driven by pattern
// co-occurrence over large table corpora.
//
// A Model is trained offline on a corpus of (mostly clean) table columns:
//
//	model, err := autodetect.Train(columns, autodetect.DefaultConfig())
//
// and then flags values in new columns that are globally incompatible with
// the rest of the column:
//
//	for _, f := range model.DetectColumn(col) {
//	    fmt.Printf("%q conflicts with %q (confidence %.2f)\n",
//	        f.Value, f.Partner, f.Confidence)
//	}
//
// Unlike local pattern-outlier methods, the verdicts come from global
// co-occurrence statistics: "1,000" among plain integers is fine (the two
// formats co-occur throughout real tables), while a stray "2011/01/01"
// among "2011-01-02"-style dates is flagged even in a 50-50 mix.
package autodetect

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
	"repro/internal/pipeline"
)

// Config parameterizes training.
type Config struct {
	// TargetPrecision is the precision requirement P each selected
	// language is calibrated to (default 0.95, the paper's setting).
	TargetPrecision float64
	// MemoryBudget bounds the statistics footprint in bytes (default 64MB).
	MemoryBudget int
	// Smoothing is the Jelinek–Mercer factor f (default 0.1).
	Smoothing float64
	// TrainingPairs sizes the distant-supervision training set: this many
	// compatible and this many incompatible pairs (default 50000 each).
	TrainingPairs int
	// SketchRatio, in (0,1), compresses co-occurrence dictionaries to this
	// fraction of their exact size using count-min sketches. 0 keeps exact
	// dictionaries.
	SketchRatio float64
	// Seed drives all sampling (default 1).
	Seed int64
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		TargetPrecision: 0.95,
		MemoryBudget:    64 << 20,
		Smoothing:       0.1,
		TrainingPairs:   50000,
		Seed:            1,
	}
}

// Finding is one suspected error in a column.
type Finding struct {
	// Value is the suspected erroneous value.
	Value string
	// Index is the row of the value's first occurrence.
	Index int
	// Partner is the value it conflicts with most confidently.
	Partner string
	// Confidence is the estimated precision of the prediction in [0,1].
	Confidence float64
}

// PairVerdict is the verdict on a single value pair.
type PairVerdict struct {
	// Incompatible is true when any calibrated language fires at its
	// precision-calibrated threshold.
	Incompatible bool
	// Confidence is the estimated precision of the incompatibility call.
	Confidence float64
}

// Model is a trained Auto-Detect detector.
type Model struct {
	det    *core.Detector
	report *core.TrainReport
}

// Train builds a model from a corpus of table columns. Each column is a
// slice of cell values; the corpus is assumed to be mostly clean (the
// paper measures 93–98% clean columns in the web corpora it trains on).
// Training needs at least a few hundred columns to produce usable
// statistics; a few thousand or more is recommended.
func Train(columns [][]string, cfg Config) (*Model, error) {
	if len(columns) < 10 {
		return nil, errors.New("autodetect: need at least 10 training columns")
	}
	c := &corpus.Corpus{Name: "user"}
	for i, col := range columns {
		c.Columns = append(c.Columns, &corpus.Column{
			Name:   fmt.Sprintf("col%d", i),
			Values: col,
		})
	}
	return trainOn(c, cfg)
}

func trainOn(c *corpus.Corpus, cfg Config) (*Model, error) {
	tc := core.DefaultTrainConfig()
	if cfg.TargetPrecision > 0 {
		tc.TargetPrecision = cfg.TargetPrecision
	}
	if cfg.MemoryBudget > 0 {
		tc.MemoryBudget = cfg.MemoryBudget
	}
	if cfg.Smoothing > 0 {
		tc.Smoothing = cfg.Smoothing
	}
	tc.SketchRatio = cfg.SketchRatio
	ds := distsup.DefaultConfig()
	if cfg.TrainingPairs > 0 {
		ds.PositivePairs = cfg.TrainingPairs
		ds.NegativePairs = cfg.TrainingPairs
	}
	if cfg.Seed != 0 {
		ds.Seed = cfg.Seed
	}
	tc.DistSup = ds
	// All training flows through the streaming pipeline; one worker and an
	// uncapped sample reproduce the legacy in-memory Train path exactly.
	res, err := pipeline.Run(context.Background(), pipeline.NewSliceSource(c.Columns), pipeline.Options{
		Workers: 1,
		Train:   tc,
	})
	if err != nil {
		return nil, err
	}
	return &Model{det: res.Detector, report: res.Report}, nil
}

// DetectColumn returns the suspected errors of a column, ranked by
// descending confidence. A nil or single-valued column yields nothing.
func (m *Model) DetectColumn(values []string) []Finding {
	fs := m.det.DetectColumn(values)
	out := make([]Finding, len(fs))
	for i, f := range fs {
		out[i] = Finding{Value: f.Value, Index: f.Index, Partner: f.Partner, Confidence: f.Confidence}
	}
	return out
}

// ScorePair scores a single pair of values for compatibility.
func (m *Model) ScorePair(a, b string) PairVerdict {
	ps := m.det.ScorePair(a, b)
	return PairVerdict{Incompatible: ps.Flagged, Confidence: ps.Confidence}
}

// Languages returns a human-readable description of the selected
// generalization languages.
func (m *Model) Languages() []string {
	out := make([]string, 0, len(m.det.Languages()))
	for _, c := range m.det.Languages() {
		out = append(out, c.Stats.Language().String())
	}
	return out
}

// Bytes returns the in-memory footprint of the model's statistics.
func (m *Model) Bytes() int { return m.det.Bytes() }

// Stats summarizes the training run.
func (m *Model) Stats() string {
	if m.report == nil {
		return fmt.Sprintf("%d languages, %s", len(m.det.Languages()), byteSize(m.det.Bytes()))
	}
	return fmt.Sprintf("%d/%d languages selected, %s statistics, %d training pairs, coverage %d",
		len(m.report.Selected), m.report.CandidateLanguages,
		byteSize(m.det.Bytes()), m.report.TrainingExamples, m.report.Coverage)
}

func byteSize(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Save serializes the model in the integrity-checked v2 format (length
// header + CRC64 trailer). Sketch-compressed models cannot be saved;
// train with SketchRatio 0, save, and compress after loading if needed.
func (m *Model) Save(w io.Writer) error { return m.det.Save(w) }

// Load deserializes a model produced by Save, verifying its checksum.
// Corrupted or truncated inputs fail with an error wrapping
// core.ErrCorruptModel; legacy v1 files load without integrity checks.
func Load(r io.Reader) (*Model, error) {
	det, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Model{det: det}, nil
}

// CorpusProfile names a built-in synthetic corpus profile.
type CorpusProfile string

// Built-in corpus profiles, mirroring the paper's training and test
// corpora (Section 4.1).
const (
	// ProfileWeb is the broad web-table training profile.
	ProfileWeb CorpusProfile = "web"
	// ProfileSpreadsheet is the public-spreadsheet training profile.
	ProfileSpreadsheet CorpusProfile = "spreadsheet"
	// ProfileWiki is the Wikipedia-flavoured test profile.
	ProfileWiki CorpusProfile = "wiki"
	// ProfileEnterprise is the enterprise-spreadsheet test profile.
	ProfileEnterprise CorpusProfile = "enterprise"
)

// GenerateColumns produces n synthetic table columns under a built-in
// profile — a stand-in for the web-scale corpora the paper trains on,
// useful for examples and for bootstrapping a model without data.
func GenerateColumns(profile CorpusProfile, n int, seed int64) ([][]string, error) {
	var p corpus.Profile
	switch profile {
	case ProfileWeb:
		p = corpus.WebProfile()
	case ProfileSpreadsheet:
		p = corpus.PubXLSProfile()
	case ProfileWiki:
		p = corpus.WikiProfile()
		p.ErrorRate = 0
		p.Labeled = false
	case ProfileEnterprise:
		p = corpus.EntXLSProfile()
		p.ErrorRate = 0
		p.Labeled = false
	default:
		return nil, fmt.Errorf("autodetect: unknown profile %q", profile)
	}
	c := corpus.Generate(p, n, seed)
	out := make([][]string, len(c.Columns))
	for i, col := range c.Columns {
		out[i] = col.Values
	}
	return out, nil
}

// Languages144 returns the names of the full candidate language space, in
// ID order — mainly useful for documentation and debugging.
func Languages144() []string {
	all := pattern.All()
	out := make([]string, len(all))
	for i, l := range all {
		out[i] = l.String()
	}
	return out
}
