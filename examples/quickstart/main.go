// Quickstart: train a small Auto-Detect model on a synthetic web-table
// corpus and flag the error in a column — a 30-line end-to-end tour of the
// public API.
package main

import (
	"fmt"
	"log"

	autodetect "repro"
)

func main() {
	// 1. Get training columns. Real deployments train on a large corpus of
	// existing tables; the built-in generator stands in for that here.
	columns, err := autodetect.GenerateColumns(autodetect.ProfileWeb, 5000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train. This computes pattern co-occurrence statistics under 144
	// candidate generalization languages, calibrates each to 95% precision
	// with automatically generated training pairs, and selects the best
	// ensemble under a 64 MB budget.
	cfg := autodetect.DefaultConfig()
	cfg.TrainingPairs = 10000
	model, err := autodetect.Train(columns, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", model.Stats())

	// 3. Detect. The last value uses a different date format — a classic
	// copy-paste error that is invisible to spell checkers.
	column := []string{
		"2011-01-01", "2012-05-14", "2013-11-30",
		"2014-02-07", "2015-08-19", "2011/06/20",
	}
	for _, f := range model.DetectColumn(column) {
		if f.Confidence < 0.5 {
			continue // the majority side of a conflict scores low
		}
		fmt.Printf("row %d: %q conflicts with %q (confidence %.2f)\n",
			f.Index, f.Value, f.Partner, f.Confidence)
	}
}
