// Spreadsheetaudit audits a simulated enterprise spreadsheet corpus the
// way the paper audits Ent-XLS (Section 4): train on clean web tables,
// sweep every column of the audit target, and report the most confident
// findings together with precision against the planted ground truth.
package main

import (
	"fmt"
	"log"
	"sort"

	autodetect "repro"
	"repro/internal/corpus"
)

func main() {
	// Train on the web profile — a different distribution than the audited
	// spreadsheets, as in the paper's cross-corpus setup.
	columns, err := autodetect.GenerateColumns(autodetect.ProfileWeb, 6000, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := autodetect.DefaultConfig()
	cfg.TrainingPairs = 10000
	model, err := autodetect.Train(columns, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", model.Stats())

	// The audit target: 2000 enterprise-style columns with ~3% planted
	// errors (mixed phone formats, unit mismatches, stray punctuation...).
	audit := corpus.Generate(corpus.EntXLSProfile(), 2000, 99)
	fmt.Printf("auditing %d columns (%d planted errors)...\n\n",
		audit.NumColumns(), audit.DirtyColumns())

	type hit struct {
		column  string
		finding autodetect.Finding
		planted bool
	}
	var hits []hit
	for _, col := range audit.Columns {
		fs := model.DetectColumn(col.Values)
		if len(fs) == 0 || fs[0].Confidence < 0.9 {
			continue
		}
		planted := false
		for _, di := range col.Dirty {
			if col.Values[di] == fs[0].Value {
				planted = true
			}
		}
		hits = append(hits, hit{col.Name, fs[0], planted})
	}
	sort.SliceStable(hits, func(i, j int) bool {
		return hits[i].finding.Confidence > hits[j].finding.Confidence
	})

	correct := 0
	for i, h := range hits {
		if h.planted {
			correct++
		}
		if i < 15 {
			fmt.Printf("%2d. [%s] %-22q vs %-22q conf=%.3f planted=%v\n",
				i+1, h.column, h.finding.Value, h.finding.Partner, h.finding.Confidence, h.planted)
		}
	}
	if len(hits) > 0 {
		fmt.Printf("\n%d findings at confidence ≥ 0.9, precision vs planted ground truth: %.3f\n",
			len(hits), float64(correct)/float64(len(hits)))
	} else {
		fmt.Println("no findings above the confidence bar")
	}
}
