// Spreadsheetaudit audits a simulated enterprise spreadsheet corpus the
// way the paper audits Ent-XLS (Section 4): train on clean web tables,
// sweep every column of the audit target, and report the most confident
// findings together with precision against the planted ground truth.
//
// The sweep goes through the serving stack's batch API — the whole
// 2000-column spreadsheet is submitted as one durable job to POST
// /v1/jobs, progress is polled from GET /v1/jobs/{id}, and findings are
// paged from GET /v1/jobs/{id}/results — exactly the flow an operator
// uses against a deployed autodetectd.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/jobs"
	"repro/internal/service"
)

func main() {
	// Train on the web profile — a different distribution than the audited
	// spreadsheets, as in the paper's cross-corpus setup.
	train := corpus.Generate(corpus.WebProfile(), 6000, 11)
	cfg := core.DefaultTrainConfig()
	ds := distsup.DefaultConfig()
	ds.PositivePairs, ds.NegativePairs = 10000, 10000
	cfg.DistSup = ds
	det, report, err := core.Train(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d languages, %d bytes\n", len(report.Selected), det.Bytes())

	// The audit target: 2000 enterprise-style columns with ~3% planted
	// errors (mixed phone formats, unit mismatches, stray punctuation...).
	audit := corpus.Generate(corpus.EntXLSProfile(), 2000, 99)
	fmt.Printf("auditing %d columns (%d planted errors) via the batch API...\n\n",
		audit.NumColumns(), audit.DirtyColumns())

	// Boot the serving stack in-process: the same service.Server +
	// jobs.Manager pair autodetectd runs, against a throwaway job dir.
	jobsDir, err := os.MkdirTemp("", "spreadsheetaudit-jobs-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(jobsDir)
	svc := service.New(det, nil)
	svc.MaxTableValues = 0 // the whole corpus goes up as one job
	mgr, err := jobs.Open(context.Background(), jobs.Config{
		Dir:     jobsDir,
		Workers: runtime.NumCPU(),
		Model:   svc.Model,
		Metrics: svc.Registry(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close(context.Background())
	svc.Jobs = mgr
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Column names repeat across a generated corpus; prefix the index so
	// findings map back to their ground-truth column.
	table := make(map[string][]string, len(audit.Columns))
	for i, col := range audit.Columns {
		table[fmt.Sprintf("%04d-%s", i, col.Name)] = col.Values
	}

	// Submit one job at the example's confidence bar, then poll.
	id := submit(ts.URL, table, 0.9)
	start := time.Now()
	for {
		st := getStatus(ts.URL, id)
		if st.Status == "done" {
			fmt.Printf("job %s done: %d columns, %d findings in %s\n",
				id, st.ColumnsDone, st.FindingsTotal, time.Since(start).Round(time.Millisecond))
			break
		}
		if st.Status == "failed" || st.Status == "cancelled" {
			log.Fatalf("job %s: %s (%s)", id, st.Status, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Page through the findings and keep each column's top finding,
	// mirroring the paper's one-flag-per-column audit review.
	type hit struct {
		column  string
		finding service.Finding
		planted bool
	}
	var hits []hit
	seen := map[string]bool{}
	for page := 0; ; {
		res := getResults(ts.URL, id, page, 500)
		for _, f := range res.Findings {
			if seen[f.Column] {
				continue
			}
			seen[f.Column] = true
			var idx int
			fmt.Sscanf(f.Column, "%d-", &idx)
			col := audit.Columns[idx]
			planted := false
			for _, di := range col.Dirty {
				if col.Values[di] == f.Value {
					planted = true
				}
			}
			hits = append(hits, hit{f.Column, f.Finding, planted})
		}
		if res.NextPage == nil {
			break
		}
		page = *res.NextPage
	}
	sort.SliceStable(hits, func(i, j int) bool {
		return hits[i].finding.Confidence > hits[j].finding.Confidence
	})

	correct := 0
	for i, h := range hits {
		if h.planted {
			correct++
		}
		if i < 15 {
			fmt.Printf("%2d. [%s] %-22q vs %-22q conf=%.3f planted=%v\n",
				i+1, h.column, h.finding.Value, h.finding.Partner, h.finding.Confidence, h.planted)
		}
	}
	if len(hits) > 0 {
		fmt.Printf("\n%d flagged columns at confidence ≥ 0.9, precision vs planted ground truth: %.3f\n",
			len(hits), float64(correct)/float64(len(hits)))
	} else {
		fmt.Println("no findings above the confidence bar")
	}
}

// Minimal wire types for the batch endpoints.
type jobStatus struct {
	ID            string  `json:"id"`
	Status        string  `json:"status"`
	ColumnsDone   int     `json:"columns_done"`
	FindingsTotal int     `json:"findings_total"`
	Progress      float64 `json:"progress"`
	Error         string  `json:"error,omitempty"`
}

type jobResults struct {
	Findings []struct {
		Column string `json:"column"`
		service.Finding
	} `json:"findings"`
	NextPage *int `json:"next_page,omitempty"`
}

func submit(base string, columns map[string][]string, minConf float64) string {
	body, err := json.Marshal(map[string]any{
		"columns": columns, "min_confidence": minConf,
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: status %d: %s", resp.StatusCode, out)
	}
	var st jobStatus
	if err := json.Unmarshal(out, &st); err != nil {
		log.Fatal(err)
	}
	return st.ID
}

func getStatus(base, id string) jobStatus {
	var st jobStatus
	getJSON(base+"/v1/jobs/"+id, &st)
	return st
}

func getResults(base, id string, page, pageSize int) jobResults {
	var res jobResults
	getJSON(fmt.Sprintf("%s/v1/jobs/%s/results?page=%d&page_size=%d", base, id, page, pageSize), &res)
	return res
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		log.Fatal(err)
	}
}
