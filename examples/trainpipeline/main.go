// Trainpipeline walks the full offline pipeline of the paper through the
// public API: corpus → distant-supervision calibration → budgeted language
// selection → serialized model → reload → interactive pair scoring.
package main

import (
	"bytes"
	"fmt"
	"log"

	autodetect "repro"
)

func main() {
	// Stage 1: corpus. Mix the two training profiles the paper uses
	// (web tables + public spreadsheets).
	web, err := autodetect.GenerateColumns(autodetect.ProfileWeb, 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	xls, err := autodetect.GenerateColumns(autodetect.ProfileSpreadsheet, 1500, 2)
	if err != nil {
		log.Fatal(err)
	}
	columns := append(web, xls...)
	fmt.Printf("stage 1: corpus of %d columns\n", len(columns))

	// Stage 2+3: statistics, distant supervision, calibration, selection.
	cfg := autodetect.DefaultConfig()
	cfg.TrainingPairs = 10000
	cfg.MemoryBudget = 16 << 20 // tighter budget: fewer, cheaper languages
	model, err := autodetect.Train(columns, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stage 2: trained —", model.Stats())
	fmt.Println("stage 3: selected languages:")
	for _, l := range model.Languages() {
		fmt.Println("  ", l)
	}

	// Stage 4: serialize and reload (what a client-side deployment ships).
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 4: model serialized to %d bytes\n", buf.Len())
	reloaded, err := autodetect.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 5: interactive scoring with the reloaded model.
	pairs := [][2]string{
		{"2011-01-01", "2012-09-30"}, // same format: compatible
		{"2011-01-01", "2011/01/01"}, // mixed separators: incompatible
		{"1,000", "100"},             // comma thousands vs plain: compatible
		{"3-2", "-"},                 // placeholder among scores: incompatible
		{"72 kg", "154 lbs"},         // unit mismatch: incompatible
	}
	fmt.Println("stage 5: pair verdicts")
	for _, p := range pairs {
		v := reloaded.ScorePair(p[0], p[1])
		fmt.Printf("  %-14q vs %-14q incompatible=%-5v confidence=%.3f\n",
			p[0], p[1], v.Incompatible, v.Confidence)
	}
}
