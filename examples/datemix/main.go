// Datemix reproduces the motivating discussion of the paper's
// introduction: three columns on which local, MDL-style reasoning
// (Potter's Wheel) gives the wrong answer, while global corpus statistics
// (Auto-Detect) match human intuition.
//
//	Col-1  {0, 25, ..., 975, "1,000"}      — the comma integer is FINE
//	Col-2  {ints..., "1.99"}               — the float is FINE
//	Col-3  50-50 mix of 2011-01-xx and 2011/01/xx — the mix is an ERROR
package main

import (
	"fmt"
	"log"
	"strconv"

	autodetect "repro"
	"repro/internal/baselines"
)

func main() {
	columns, err := autodetect.GenerateColumns(autodetect.ProfileWeb, 6000, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := autodetect.DefaultConfig()
	cfg.TrainingPairs = 10000
	model, err := autodetect.Train(columns, cfg)
	if err != nil {
		log.Fatal(err)
	}

	col1 := make([]string, 0, 40)
	for i := 0; i < 39; i++ {
		col1 = append(col1, strconv.Itoa(i*25))
	}
	col1 = append(col1, "1,000")

	col2 := []string{"0", "1", "2", "5", "12", "25", "40", "77", "99", "1.99"}

	var col3 []string
	for d := 1; d <= 6; d++ {
		col3 = append(col3, fmt.Sprintf("2011-01-%02d", d))
		col3 = append(col3, fmt.Sprintf("2011/01/%02d", d))
	}

	pwheel := &baselines.PWheel{}
	for _, c := range []struct {
		name   string
		values []string
		truth  string
	}{
		{"Col-1 (comma integer)", col1, "clean — comma separators co-occur with plain integers globally"},
		{"Col-2 (stray float)", col2, "clean — integers and floats co-occur globally"},
		{"Col-3 (50-50 date mix)", col3, "ERROR — the two date formats never co-occur globally"},
	} {
		fmt.Printf("\n%s\n  ground truth: %s\n", c.name, c.truth)

		if preds := pwheel.Detect(c.values); len(preds) > 0 {
			fmt.Printf("  Potter's Wheel flags %q (confidence %.2f)\n", preds[0].Value, preds[0].Confidence)
		} else {
			fmt.Println("  Potter's Wheel finds nothing")
		}

		findings := model.DetectColumn(c.values)
		flagged := false
		for _, f := range findings {
			if f.Confidence > 0.5 {
				fmt.Printf("  Auto-Detect flags %q vs %q (confidence %.2f)\n", f.Value, f.Partner, f.Confidence)
				flagged = true
				break
			}
		}
		if !flagged {
			fmt.Println("  Auto-Detect finds nothing")
		}
	}
}
