// Semanticmix demonstrates the value-level extension (the paper's stated
// future work): catching errors that are invisible to pattern
// generalization because every value has the same shape — here a city
// slipped into a column of US states.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/semantic"
)

func main() {
	// One corpus feeds both detectors.
	c := corpus.Generate(corpus.WebProfile(), 6000, 5)

	patternModel, _, err := core.Train(c, core.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	valueModel, err := semantic.Train(c, semantic.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	column := []string{"Washington", "Oregon", "Texas", "Florida", "Ohio", "Seattle", "Nevada", "Utah"}
	fmt.Println("column:", column)

	// Pattern-level detection sees only capitalized-word shapes: it cannot
	// identify "Seattle" as the intruder. At best it is silent; at worst it
	// flags an unusually-shaped state instead.
	fmt.Println("\npattern-level (Auto-Detect core):")
	caught, flagged := false, false
	for _, f := range patternModel.DetectColumn(column) {
		if f.Confidence > 0.5 {
			fmt.Printf("  flags %q (%.2f)\n", f.Value, f.Confidence)
			flagged = true
			caught = caught || f.Value == "Seattle"
		}
	}
	switch {
	case !flagged:
		fmt.Println("  nothing — every value generalizes to the same pattern")
	case !caught:
		fmt.Println("  ... but not \"Seattle\": shapes alone cannot see the intruder")
	}

	// Value-level detection knows states co-occur with states.
	fmt.Println("\nvalue-level (semantic extension):")
	for _, f := range valueModel.DetectColumn(column) {
		if f.Confidence > 0.05 {
			fmt.Printf("  flags %q — rarely co-occurs with %q (confidence %.2f)\n",
				f.Value, f.Partner, f.Confidence)
		}
	}

	// The same machinery explains individual pairs.
	fmt.Println("\nvalue-level NPMI:")
	for _, pair := range [][2]string{{"Washington", "Oregon"}, {"Washington", "Seattle"}} {
		if s, ok := valueModel.NPMI(pair[0], pair[1]); ok {
			fmt.Printf("  NPMI(%q, %q) = %+.2f\n", pair[0], pair[1], s)
		}
	}
}
