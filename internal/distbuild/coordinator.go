package distbuild

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/envelope"
	"repro/internal/observe"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

// Defaults for CoordinatorConfig's zero fields.
const (
	DefaultLeaseTTL   = 10 * time.Second
	defaultMaxShard   = int64(1) << 31 // 2 GiB upload cap
	shardFilePattern  = "partition-%04d.shard"
	shardSubdir       = "shards"
	leaseWaitFallback = 1 // seconds a worker should wait when all partitions are leased
)

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	// StateDir is where accepted shards are persisted (under
	// StateDir/shards). A coordinator restarted over a non-empty StateDir
	// resumes the build from the shards already accepted. Required.
	StateDir string
	// Partitions is the requested partition count, clamped to the corpus's
	// file count (minimum 1).
	Partitions int
	// LeaseTTL bounds how long a silent worker keeps a partition (default
	// DefaultLeaseTTL). Workers heartbeat every TTL/3.
	LeaseTTL time.Duration
	// Options is the full build configuration; the counting-relevant knobs
	// are resolved and forwarded to workers, the rest (pair counts,
	// calibration target, memory budget) apply at finalization here.
	Options pipeline.Options
	// Metrics, when set, receives the distbuild_* instrument families.
	Metrics *observe.Registry
	// Tracer, when set, opens a root span covering the whole build in its
	// flight recorder. Granted leases carry its traceparent so worker
	// spans join the build trace, and merge/finalize/publish stages hang
	// off it via TraceContext.
	Tracer *observe.Tracer
	// Logf, when set, receives one line per protocol event.
	Logf func(format string, args ...any)
}

// Coordinator owns one distributed build: the lease table, the accepted
// shards, and the final merge. It is safe for concurrent use by its HTTP
// handler.
type Coordinator struct {
	part   *pipeline.DirPartitioner
	cfg    CoordinatorConfig
	met    *metrics
	now    func() time.Time // injectable clock for lease tests
	logf   func(format string, args ...any)
	shards string // StateDir/shards

	n        int      // partition count (clamped)
	expected []string // expected Partial.Fingerprint per partition
	params   CountParams

	traceCtx     context.Context // carries the build root span when tracing
	endTraceOnce sync.Once
	endTrace     func()
	traceparent  string // propagated in granted leases

	nAccepted  atomic.Uint64
	nDuplicate atomic.Uint64
	nRejected  atomic.Uint64

	mu       sync.Mutex
	table    *leaseTable
	accepted []uint64 // envelope checksum of each accepted shard's bytes
	restored int      // partitions restored from StateDir at startup
	doneCh   chan struct{}
	doneOnce sync.Once
}

// NewCoordinator prepares a coordinator over an already-scanned corpus
// partitioner, computing every partition's expected shard fingerprint and
// restoring any shards a previous incarnation persisted under
// cfg.StateDir.
func NewCoordinator(part *pipeline.DirPartitioner, cfg CoordinatorConfig) (*Coordinator, error) {
	if part == nil {
		return nil, errors.New("distbuild: nil partitioner")
	}
	if cfg.StateDir == "" {
		return nil, errors.New("distbuild: CoordinatorConfig.StateDir is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	c := &Coordinator{
		part:   part,
		cfg:    cfg,
		met:    newMetrics(cfg.Metrics),
		now:    time.Now,
		logf:   cfg.Logf,
		shards: filepath.Join(cfg.StateDir, shardSubdir),
		n:      part.Clamp(cfg.Partitions),
		params: pipeline.ResolveCountParams(cfg.Options),
		doneCh: make(chan struct{}),
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	c.expected = make([]string, c.n)
	for i := 0; i < c.n; i++ {
		fp, err := part.PartitionFingerprint(pipeline.PartitionSpec{Index: i, Count: c.n})
		if err != nil {
			return nil, fmt.Errorf("distbuild: fingerprinting partition %d: %w", i, err)
		}
		c.expected[i] = pipeline.BuildFingerprint(fp, cfg.Options)
	}
	c.traceCtx = context.Background()
	c.endTrace = func() {}
	if cfg.Tracer != nil {
		ctx := observe.ContextWithTracer(context.Background(), cfg.Tracer)
		if cfg.Metrics != nil {
			ctx = observe.ContextWithRegistry(ctx, cfg.Metrics)
		}
		// The build root lives in the recorder only: a span covering an
		// entire multi-minute build would distort the stage-latency
		// histogram that SpanMetric feeds.
		c.traceCtx, c.endTrace = observe.RecorderSpan(ctx, "distbuild_build")
		c.traceparent = observe.SpanContextFrom(c.traceCtx).Traceparent()
	}
	c.table = newLeaseTable(c.n, cfg.LeaseTTL)
	c.accepted = make([]uint64, c.n)
	if err := os.MkdirAll(c.shards, 0o755); err != nil {
		return nil, fmt.Errorf("distbuild: creating shard directory: %w", err)
	}
	if err := c.restore(); err != nil {
		return nil, err
	}
	c.registerGauges(cfg.Metrics)
	c.maybeDone()
	return c, nil
}

// restore rescans the shard directory, re-validating every persisted shard
// against the expected fingerprints. Valid shards complete their partition;
// torn, corrupt, or foreign shards are deleted so their partitions are
// recounted under a fresh lease.
func (c *Coordinator) restore() error {
	for i := 0; i < c.n; i++ {
		path := c.shardPath(i)
		raw, err := os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("distbuild: reading persisted shard %d: %w", i, err)
		}
		p, derr := pipeline.DecodePartial(bytes.NewReader(raw))
		if derr != nil || p.Fingerprint != c.expected[i] {
			c.logf("distbuild: discarding stale shard %s (decode err=%v)", path, derr)
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("distbuild: removing stale shard: %w", err)
			}
			continue
		}
		c.accepted[i] = envelope.Checksum(raw)
		c.table.complete(i)
		c.restored++
	}
	if c.restored > 0 {
		c.logf("distbuild: restored %d/%d partitions from %s", c.restored, c.n, c.shards)
	}
	return nil
}

func (c *Coordinator) shardPath(i int) string {
	return filepath.Join(c.shards, fmt.Sprintf(shardFilePattern, i))
}

// Partitions reports the clamped partition count.
func (c *Coordinator) Partitions() int { return c.n }

// Restored reports how many partitions were recovered from StateDir at
// startup rather than counted by this incarnation's workers.
func (c *Coordinator) Restored() int { return c.restored }

// Handler returns the coordinator's HTTP surface, ready to mount on any
// mux or to wrap in the resilience middleware chain.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathLease, c.handleLease)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("POST "+PathShard, c.handleShard)
	mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errBody struct {
	Error string `json:"error"`
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		c.reject("request")
		writeJSON(w, http.StatusBadRequest, errBody{Error: "lease request needs a worker name"})
		return
	}
	c.mu.Lock()
	c.table.tick(c.now())
	c.observeExpiry()
	if c.table.allDone() {
		c.mu.Unlock()
		writeJSON(w, http.StatusOK, LeaseResponse{Done: true})
		return
	}
	idx, reassigned, ok := c.table.acquire(req.Worker)
	c.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusOK, LeaseResponse{Wait: true, RetryAfterSeconds: leaseWaitFallback})
		return
	}
	c.met.inc(c.met.leasesGranted)
	if reassigned {
		c.met.inc(c.met.leasesReassigned)
		c.logf("distbuild: partition %d reassigned to %s", idx, req.Worker)
	} else {
		c.logf("distbuild: partition %d leased to %s", idx, req.Worker)
	}
	writeJSON(w, http.StatusOK, LeaseResponse{
		Partition:   idx,
		Partitions:  c.n,
		TTLMillis:   c.cfg.LeaseTTL.Milliseconds(),
		Traceparent: c.traceparent,
		Build: BuildParams{
			CorpusFingerprint:    c.part.Fingerprint(),
			PartitionFingerprint: c.expected[idx],
			HasHeader:            c.part.HasHeader(),
			Count:                c.params,
		},
	})
}

// observeExpiry mirrors the table's cumulative expiry count into the
// monotonic metric. Called under c.mu after tick.
// reject counts one refused request in both the status counters and the
// metric family.
func (c *Coordinator) reject(reason string) {
	c.nRejected.Add(1)
	c.met.reject(reason)
}

func (c *Coordinator) observeExpiry() {
	if c.met.leasesExpired == nil {
		return
	}
	if d := float64(c.table.expired) - c.met.leasesExpired.Value(); d > 0 {
		c.met.leasesExpired.Add(d)
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		c.reject("request")
		writeJSON(w, http.StatusBadRequest, errBody{Error: "heartbeat needs a worker name and partition"})
		return
	}
	c.mu.Lock()
	c.table.tick(c.now())
	c.observeExpiry()
	err := c.table.heartbeat(req.Worker, req.Partition)
	c.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusGone, errBody{Error: "lease lost: partition reassigned or completed"})
		return
	}
	c.met.inc(c.met.heartbeats)
	w.WriteHeader(http.StatusNoContent)
}

// handleShard ingests one partition's counted statistics. The decision
// ladder, in order:
//
//	unparseable request          → 400 (permanent)
//	torn/bit-flipped envelope    → 503 + Retry-After (worker re-uploads)
//	wrong build fingerprint      → 409 (permanent: wrong corpus or config)
//	duplicate of accepted shard  → 200 "duplicate" (acknowledged, discarded)
//	different bytes for a done partition → 409 conflict
//	valid + first                → persist atomically, complete, 200 "accepted"
//
// Lease ownership is deliberately NOT checked: a correct shard is a correct
// shard even if it arrives after the uploader's lease lapsed — partials are
// pure functions of (partition, config), so any two workers' shards for the
// same partition carry identical statistics.
func (c *Coordinator) handleShard(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	idx, err := strconv.Atoi(q.Get("partition"))
	if err != nil || idx < 0 || idx >= c.n {
		c.reject("request")
		writeJSON(w, http.StatusBadRequest, errBody{Error: "bad or missing partition index"})
		return
	}
	worker := q.Get("worker")
	raw, err := io.ReadAll(io.LimitReader(r.Body, defaultMaxShard))
	if err != nil {
		// The upload died mid-flight (reset, timeout): retryable.
		c.reject("integrity")
		w.Header().Set("Retry-After", strconv.Itoa(resilience.DefaultRetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: "shard upload interrupted, retry"})
		return
	}
	p, err := pipeline.DecodePartial(bytes.NewReader(raw))
	if err != nil {
		c.reject("integrity")
		c.logf("distbuild: partition %d from %s failed integrity: %v", idx, worker, err)
		w.Header().Set("Retry-After", strconv.Itoa(resilience.DefaultRetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: "shard failed integrity check, re-upload"})
		return
	}
	if p.Fingerprint != c.expected[idx] {
		c.reject("fingerprint")
		c.logf("distbuild: partition %d from %s has fingerprint %q, want %q", idx, worker, p.Fingerprint, c.expected[idx])
		writeJSON(w, http.StatusConflict, errBody{Error: "shard fingerprint does not match this build"})
		return
	}

	sum := envelope.Checksum(raw)
	c.mu.Lock()
	if c.table.isDone(idx) {
		same := c.accepted[idx] == sum
		c.mu.Unlock()
		if same {
			c.nDuplicate.Add(1)
			c.met.inc(c.met.shardsDuplicate)
			c.logf("distbuild: partition %d duplicate upload from %s acknowledged", idx, worker)
			writeJSON(w, http.StatusOK, map[string]string{"status": "duplicate"})
			return
		}
		// Same fingerprint but different bytes should be impossible for
		// honest workers; refuse rather than guess.
		c.reject("conflict")
		writeJSON(w, http.StatusConflict, errBody{Error: "partition already completed with different shard bytes"})
		return
	}
	// Persist before acknowledging: once the worker sees 200 the shard
	// must survive a coordinator crash.
	if err := atomicio.WriteFile(c.shardPath(idx), raw, 0o644); err != nil {
		c.mu.Unlock()
		c.reject("integrity")
		c.logf("distbuild: persisting partition %d: %v", idx, err)
		w.Header().Set("Retry-After", strconv.Itoa(resilience.DefaultRetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, errBody{Error: "could not persist shard, retry"})
		return
	}
	c.accepted[idx] = sum
	c.table.tick(c.now())
	c.observeExpiry()
	c.table.complete(idx)
	done := c.table.allDone()
	c.mu.Unlock()

	c.nAccepted.Add(1)
	c.met.inc(c.met.shardsAccepted)
	c.logf("distbuild: partition %d accepted from %s (%d columns)", idx, worker, p.Columns)
	if done {
		c.maybeDone()
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// Status snapshots build progress.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.table.tick(c.now())
	c.observeExpiry()
	st := StatusResponse{
		Partitions:    c.n,
		Done:          c.table.done,
		Complete:      c.table.allDone(),
		LeasesGranted: c.table.granted,
		LeasesExpired: c.table.expired,
		Reassignments: c.table.reassigned,
	}
	st.ShardsAccepted = c.nAccepted.Load()
	st.ShardsDuplicate = c.nDuplicate.Load()
	st.ShardsRejected = c.nRejected.Load()
	return st
}

func (c *Coordinator) maybeDone() {
	c.mu.Lock()
	done := c.table.allDone()
	c.mu.Unlock()
	if done {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
}

// TraceContext returns the context carrying the build's root span and
// tracer, so callers can hang further stages (model publish, upload) off
// the build trace and inject its traceparent into outbound requests.
// Returns a plain background context when tracing is disabled.
func (c *Coordinator) TraceContext() context.Context { return c.traceCtx }

// EndTrace completes the build's root span, finalizing the trace into
// the flight recorder. Call once the build — including any publish — is
// finished; idempotent.
func (c *Coordinator) EndTrace() { c.endTraceOnce.Do(c.endTrace) }

// Wait blocks until every partition's shard has been accepted or ctx ends.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BuildModel merges the accepted shards in partition-index order and runs
// the finalization stages (canonicalize → distant supervision → calibrate →
// select) under the coordinator's full Options. Index order is what keeps
// the unbounded (SampleColumns=0) configuration byte-identical to a
// single-process build.
func (c *Coordinator) BuildModel(ctx context.Context) (*core.Detector, *core.TrainReport, error) {
	c.mu.Lock()
	done := c.table.allDone()
	c.mu.Unlock()
	if !done {
		return nil, nil, errors.New("distbuild: build incomplete, cannot finalize")
	}
	// Stage spans hang off the build trace (not the caller's cancellation
	// context); Finalize still honors ctx for cancellation.
	mergeCtx, endMerge := observe.Span(c.traceCtx, "merge_shards")
	var merged *pipeline.Partial
	for i := 0; i < c.n; i++ {
		raw, err := os.ReadFile(c.shardPath(i))
		if err != nil {
			observe.SetSpanError(mergeCtx, err.Error())
			endMerge()
			return nil, nil, fmt.Errorf("distbuild: reading accepted shard %d: %w", i, err)
		}
		p, err := pipeline.DecodePartial(bytes.NewReader(raw))
		if err != nil {
			observe.SetSpanError(mergeCtx, err.Error())
			endMerge()
			return nil, nil, fmt.Errorf("distbuild: accepted shard %d no longer valid: %w", i, err)
		}
		if p.Fingerprint != c.expected[i] {
			observe.SetSpanError(mergeCtx, "fingerprint drift")
			endMerge()
			return nil, nil, fmt.Errorf("distbuild: accepted shard %d fingerprint drifted", i)
		}
		if merged == nil {
			merged = p
		} else if err := merged.Merge(p); err != nil {
			observe.SetSpanError(mergeCtx, err.Error())
			endMerge()
			return nil, nil, fmt.Errorf("distbuild: merging shard %d: %w", i, err)
		}
	}
	endMerge()
	finCtx, endFinalize := observe.Span(c.traceCtx, "finalize_model")
	det, rep, err := merged.Finalize(ctx, c.cfg.Options)
	if err != nil {
		observe.SetSpanError(finCtx, err.Error())
	}
	endFinalize()
	return det, rep, err
}
