package distbuild

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/observe"
	"repro/internal/pipeline"
	"repro/internal/resilience"
	"repro/internal/retry"
)

// DefaultAttemptTimeout bounds each individual coordinator call a worker
// makes, so one hung request (a stalled upload over a flaky link) is
// abandoned and retried instead of pinning the worker forever.
const DefaultAttemptTimeout = time.Minute

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name identifies this worker in leases and logs (default
	// hostname-pid).
	Name string
	// Dir is the local path of the corpus directory. Its content must
	// fingerprint-match the coordinator's view (a shared mount or an
	// identical copy); the worker refuses to count a divergent corpus.
	Dir string
	// Workers is the counting parallelism inside this process (default
	// NumCPU via the pipeline).
	Workers int
	// HTTP issues the coordinator calls (default http.DefaultClient).
	// Tests inject fault-injecting transports here.
	HTTP *http.Client
	// Retry shapes every coordinator call. Zero-value fields take the
	// retry package defaults; AttemptTimeout additionally defaults to
	// DefaultAttemptTimeout.
	Retry retry.Policy
	// Breaker, when set, guards the coordinator dependency: every call asks
	// Allow first, and while open the worker sits out a cooldown instead of
	// hammering a coordinator that is down or drowning.
	Breaker *resilience.Breaker
	// Budget, when set, bounds retry amplification across all coordinator
	// calls; folded into Retry.Budget unless that is already set.
	Budget retry.Budget
	// Tracer, when set, records a per-lease counting span into its flight
	// recorder as a child of the coordinator's build trace (joined via
	// the lease's traceparent) and injects the span context into every
	// coordinator call.
	Tracer *observe.Tracer
	// Logf, when set, receives one line per worker event.
	Logf func(format string, args ...any)
}

// WorkerStats summarizes one RunWorker call.
type WorkerStats struct {
	// PartitionsCounted is how many shards this worker got accepted
	// (duplicate acknowledgements count — the work was done).
	PartitionsCounted int
	// LeasesLost counts partitions abandoned mid-count because the
	// coordinator declared the lease gone (usually after a stall).
	LeasesLost int
	// Waits counts lease requests answered "all partitions busy".
	Waits int
	// BreakerWaits counts cooldowns spent because the coordinator breaker
	// was open.
	BreakerWaits int
}

// breakerCooldown is how long a worker sits out after its coordinator
// breaker rejects a lease request. Each loop while open costs the
// coordinator nothing (the rejection is local), so a short cooldown keeps
// the worker responsive to the breaker's half-open probe window.
const breakerCooldown = time.Second

// worker carries the per-run state of RunWorker.
type worker struct {
	cfg    WorkerConfig
	client *http.Client
	logf   func(format string, args ...any)
	part   *pipeline.DirPartitioner // lazily opened on the first lease
}

// RunWorker participates in a distributed build until the coordinator
// reports it complete: lease a partition, count it (heartbeating all the
// while), upload the shard, repeat. It returns nil when the build is done,
// ctx.Err() on cancellation, and a descriptive error when the corpus view
// diverges from the coordinator's or the coordinator refuses this worker's
// shards permanently. Lost leases are not errors — the partition is simply
// someone else's now, and the worker asks for another.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	var stats WorkerStats
	if cfg.Coordinator == "" {
		return stats, errors.New("distbuild: WorkerConfig.Coordinator is required")
	}
	if cfg.Dir == "" {
		return stats, errors.New("distbuild: WorkerConfig.Dir is required")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Retry.AttemptTimeout == 0 {
		cfg.Retry.AttemptTimeout = DefaultAttemptTimeout
	}
	if cfg.Retry.Budget == nil {
		cfg.Retry.Budget = cfg.Budget
	}
	w := &worker{
		cfg:    cfg,
		client: cfg.HTTP,
		logf:   cfg.Logf,
	}
	if w.client == nil {
		w.client = http.DefaultClient
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}

	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		var lease LeaseResponse
		if err := w.postJSON(ctx, PathLease, LeaseRequest{Worker: cfg.Name}, &lease); err != nil {
			if errors.Is(err, resilience.ErrBreakerOpen) {
				// The coordinator breaker is open: sit out a cooldown and
				// re-ask. A down coordinator should idle workers, not kill
				// them — the build resumes when the breaker's probe heals.
				stats.BreakerWaits++
				if serr := sleep(ctx, breakerCooldown); serr != nil {
					return stats, serr
				}
				continue
			}
			return stats, fmt.Errorf("distbuild: requesting lease: %w", err)
		}
		switch {
		case lease.Done:
			w.logf("distbuild worker %s: build complete", cfg.Name)
			return stats, nil
		case lease.Wait:
			stats.Waits++
			if err := sleep(ctx, time.Duration(max(lease.RetryAfterSeconds, 1))*time.Second); err != nil {
				return stats, err
			}
			continue
		}
		err := w.runLease(ctx, lease)
		switch {
		case errors.Is(err, errLeaseLost):
			stats.LeasesLost++
			w.logf("distbuild worker %s: lost lease on partition %d, re-leasing", cfg.Name, lease.Partition)
		case err != nil:
			return stats, err
		default:
			stats.PartitionsCounted++
		}
	}
}

// runLease counts one leased partition and uploads its shard. It returns
// errLeaseLost when the coordinator reassigned the partition mid-count.
// With a tracer configured, the whole lease runs under a count_partition
// span joined to the coordinator's build trace, so heartbeats and the
// shard upload carry the trace over the wire.
func (w *worker) runLease(ctx context.Context, lease LeaseResponse) (err error) {
	if w.cfg.Tracer != nil {
		ctx = observe.ContextWithTracer(ctx, w.cfg.Tracer)
		if sc, ok := observe.ParseTraceparent(lease.Traceparent); ok {
			ctx = observe.ContextWithRemoteParent(ctx, sc)
		}
		var end func()
		ctx, end = observe.RecorderSpan(ctx, "count_partition")
		observe.SetSpanAttr(ctx, "partition", strconv.Itoa(lease.Partition))
		observe.SetSpanAttr(ctx, "worker", w.cfg.Name)
		defer func() {
			if err != nil && !errors.Is(err, errLeaseLost) {
				observe.SetSpanError(ctx, err.Error())
			}
			end()
		}()
	}
	return w.countLease(ctx, lease)
}

// countLease is runLease's body, running under the lease span when
// tracing is enabled.
func (w *worker) countLease(ctx context.Context, lease LeaseResponse) error {
	if w.part == nil {
		part, err := pipeline.NewDirPartitioner(w.cfg.Dir, pipeline.DirConfig{HasHeader: lease.Build.HasHeader})
		if err != nil {
			return fmt.Errorf("distbuild: scanning corpus: %w", err)
		}
		w.part = part
	}
	if got, want := w.part.Fingerprint(), lease.Build.CorpusFingerprint; got != want {
		return fmt.Errorf("distbuild: local corpus fingerprint %q does not match the coordinator's %q — stale mount or divergent copy", got, want)
	}
	src, err := w.part.Open(pipeline.PartitionSpec{Index: lease.Partition, Count: lease.Partitions})
	if err != nil {
		return fmt.Errorf("distbuild: opening partition %d/%d: %w", lease.Partition, lease.Partitions, err)
	}
	opts := lease.Build.Count.Options(w.cfg.Workers)

	// Heartbeat from lease to acknowledged upload. Renewing through the
	// encode and upload tail matters: on a loaded machine that tail can
	// outlast the TTL, and a lease that silently lapsed mid-upload shows up
	// as a spurious expiry and invites another worker to recount a
	// partition whose shard is already in flight. A lost lease cancels the
	// count via cctx; the worker re-leases instead of finishing work nobody
	// wants.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var lost atomic.Bool
	hbDone := make(chan struct{})
	ttl := time.Duration(lease.TTLMillis) * time.Millisecond
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-cctx.Done():
				return
			case <-tick.C:
				err := w.postJSON(cctx, PathHeartbeat, HeartbeatRequest{Worker: w.cfg.Name, Partition: lease.Partition}, nil)
				if err != nil && cctx.Err() == nil {
					// 410 or persistent failure: either way the lease
					// cannot be trusted to still be ours.
					lost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	w.logf("distbuild worker %s: counting partition %d/%d", w.cfg.Name, lease.Partition, lease.Partitions)
	p, err := pipeline.CountPartial(cctx, src, opts)
	if err != nil {
		cancel()
		<-hbDone
		if lost.Load() && ctx.Err() == nil {
			return errLeaseLost
		}
		return fmt.Errorf("distbuild: counting partition %d: %w", lease.Partition, err)
	}
	// The heartbeat goroutine keeps renewing while the shard is encoded and
	// uploaded; it is stopped once the coordinator has acknowledged (a 410
	// in that window is expected — our own accepted upload completes the
	// partition — and harmless, since nothing consults cctx anymore).
	defer func() { cancel(); <-hbDone }()
	if p.Fingerprint != lease.Build.PartitionFingerprint {
		return fmt.Errorf("distbuild: counted partition %d carries fingerprint %q, lease promised %q", lease.Partition, p.Fingerprint, lease.Build.PartitionFingerprint)
	}

	var buf bytes.Buffer
	if err := pipeline.EncodePartial(&buf, p); err != nil {
		return fmt.Errorf("distbuild: encoding shard: %w", err)
	}
	// Upload under the parent context: even if the lease lapses mid-upload,
	// the coordinator accepts any correct shard.
	url := fmt.Sprintf("%s%s?partition=%d&worker=%s", w.cfg.Coordinator, PathShard, lease.Partition, w.cfg.Name)
	upCtx, endUpload := observe.RecorderSpan(ctx, "upload_shard")
	if err := w.do(upCtx, url, "application/octet-stream", buf.Bytes(), nil); err != nil {
		observe.SetSpanError(upCtx, err.Error())
		endUpload()
		return fmt.Errorf("distbuild: uploading partition %d: %w", lease.Partition, err)
	}
	endUpload()
	w.logf("distbuild worker %s: partition %d uploaded (%d columns, %d sample)", w.cfg.Name, lease.Partition, p.Columns, p.SampleSize())
	return nil
}

// postJSON is a retried JSON POST to a coordinator control endpoint.
func (w *worker) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return w.do(ctx, w.cfg.Coordinator+path, "application/json", body, out)
}

// do issues one coordinator call under the worker's retry policy, creating
// a fresh request (and body reader) per attempt so retries of a torn upload
// resend from byte zero.
func (w *worker) do(ctx context.Context, url, contentType string, body []byte, out any) error {
	attempt := func(actx context.Context) error {
		req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", contentType)
		observe.Inject(actx, req.Header)
		resilience.AttachDeadline(actx, req.Header, 0)
		resp, err := w.client.Do(req)
		if err != nil {
			// Transport-level failures (resets, refused connections,
			// injected faults) are transient by construction: every
			// coordinator endpoint is idempotent, so resending is safe
			// even when the original request was actually delivered.
			return retry.Transient(err)
		}
		defer resp.Body.Close()
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		switch {
		case resp.StatusCode == http.StatusOK:
			if out != nil {
				if err := json.Unmarshal(raw, out); err != nil {
					// A torn or short response body is a network fault, not
					// a protocol violation; the request itself was already
					// processed, and every endpoint is idempotent, so
					// re-asking is safe.
					if rerr != nil {
						err = rerr
					}
					return retry.Transient(fmt.Errorf("distbuild: bad coordinator response: %w", err))
				}
			}
			return nil
		case resp.StatusCode == http.StatusNoContent:
			return nil
		case resp.StatusCode == http.StatusGone:
			return fmt.Errorf("%w: %s", errLeaseLost, httpMessage(resp.StatusCode, raw))
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			// A shedding coordinator's Retry-After hint is the backoff
			// floor: the worker never comes back sooner than asked.
			return resilience.RetryAfterFloor(
				retry.Transient(errors.New(httpMessage(resp.StatusCode, raw))), resp.Header)
		default:
			return errors.New(httpMessage(resp.StatusCode, raw))
		}
	}
	return w.cfg.Retry.DoCtx(ctx, func(actx context.Context) error {
		if b := w.cfg.Breaker; b != nil {
			if aerr := b.Allow(); aerr != nil {
				// Non-transient: collapses the retry loop into one local
				// rejection while the breaker is open.
				return aerr
			}
			err := attempt(actx)
			rerr := err
			if errors.Is(rerr, errLeaseLost) {
				rerr = nil // a 410 is the coordinator answering; healthy
			}
			b.Record(rerr)
			return err
		}
		return attempt(actx)
	})
}

// httpMessage renders a coordinator error response for wrapping, favoring
// the JSON error envelope's message when present.
func httpMessage(status int, raw []byte) string {
	var eb errBody
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		return fmt.Sprintf("coordinator answered %d: %s", status, eb.Error)
	}
	return fmt.Sprintf("coordinator answered %d: %s", status, strings.TrimSpace(string(raw)))
}

// sleep waits d honoring ctx.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
