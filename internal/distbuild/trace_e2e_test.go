package distbuild

// Fleet tracing end-to-end: one distributed build produces ONE trace ID
// observable on every process it touched. The coordinator opens the build
// root span; a worker joins it through the lease's traceparent; the
// publish call carries it into the registry server; the registry persists
// it with the version; and a serving replica's hot-swap span descends
// from the coordinator's publish span two processes away. Each "process"
// has its own Tracer + FlightRecorder, and the trace is read back over
// HTTP via the /debug/traces surface on more than one of them.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/observe"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/retry"
)

// keepAllTracer is one simulated process's tracing identity: every
// completed trace is retained so assertions never race tail sampling.
func keepAllTracer(seed uint64) *observe.Tracer {
	return observe.NewTracer(
		observe.NewFlightRecorder(observe.RecorderConfig{SampleEvery: 1}),
		observe.NewIDSource(seed))
}

// findTrace returns the newest retained record matching pred, or fails.
func findTrace(t *testing.T, rec *observe.FlightRecorder, what string, pred func(observe.TraceRecord) bool) observe.TraceRecord {
	t.Helper()
	for _, tr := range rec.Snapshot(observe.TraceFilter{}) {
		if pred(tr) {
			return tr
		}
	}
	t.Fatalf("no retained trace matching %q", what)
	return observe.TraceRecord{}
}

// spanNamed returns the first span with the given name in a record.
func spanNamed(t *testing.T, tr observe.TraceRecord, name string) observe.SpanRecord {
	t.Helper()
	for _, s := range tr.Spans {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("trace %s has no %q span: %+v", tr.TraceID, name, tr.Spans)
	return observe.SpanRecord{}
}

func TestFleetTraceCausality(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	coordTracer := keepAllTracer(11)
	workerTracer := keepAllTracer(22)
	regTracer := keepAllTracer(33)
	replicaTracer := keepAllTracer(44)

	// --- Coordinator: its construction opens the build's root span. ---
	dir, _ := testCorpusDir(t, 300, 40, 23)
	opts := testOptions(100)
	coord := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{
		Partitions: 2, Options: opts, Tracer: coordTracer,
	})
	csrv := httptest.NewServer(coord.Handler())
	defer csrv.Close()

	// --- One worker drains the partitions, joining the build trace. ---
	if _, err := RunWorker(ctx, WorkerConfig{
		Coordinator: csrv.URL,
		Name:        "alpha",
		Dir:         dir,
		Workers:     2,
		Retry:       testRetry(),
		Tracer:      workerTracer,
	}); err != nil {
		t.Fatal(err)
	}
	det, _, err := coord.BuildModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	model := saveModel(t, det)
	part, err := pipeline.NewDirPartitioner(dir, pipeline.DirConfig{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	fp := pipeline.BuildFingerprint(part.Fingerprint(), opts)

	// --- Registry server behind the production middleware chain. ---
	store, err := registry.Open(t.TempDir(), registry.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	handler := resilience.Chain(
		resilience.RequestID(),
		resilience.Tracing(regTracer, registry.RouteLabel),
	)(registry.NewServer(store).Handler())
	rsrv := httptest.NewServer(handler)
	defer rsrv.Close()

	// --- Publish under a publish_model span, as the coordinator does. ---
	pol := retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	pubCtx, endPublish := observe.RecorderSpan(coord.TraceContext(), "publish_model")
	res, err := registry.Publish(pubCtx, rsrv.Client(), rsrv.URL, model, fp, "distbuild", pol)
	endPublish()
	if err != nil || res.Version != 1 {
		t.Fatalf("publish: %+v err=%v", res, err)
	}
	coord.EndTrace()

	// --- A serving replica hot-swaps to the published version. ---
	var mu sync.Mutex
	applied := 0
	puller, err := registry.NewPuller(registry.PullerConfig{
		URL:    rsrv.URL,
		Poll:   15 * time.Millisecond,
		HTTP:   rsrv.Client(),
		Retry:  retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Tracer: replicaTracer,
		Apply: func(info registry.VersionInfo, raw []byte) error {
			mu.Lock()
			applied = info.Version
			mu.Unlock()
			return nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	info, changed, err := puller.PullNow(ctx)
	if err != nil || !changed || info.Version != 1 {
		t.Fatalf("pull: info=%+v changed=%t err=%v", info, changed, err)
	}
	mu.Lock()
	got := applied
	mu.Unlock()
	if got != 1 {
		t.Fatalf("replica applied version %d, want 1", got)
	}

	// --- The causal chain, hop by hop. ---
	// Coordinator: the build root R with publish_model P as its child.
	build := findTrace(t, coordTracer.Recorder(), "distbuild_build",
		func(tr observe.TraceRecord) bool { return tr.Root == "distbuild_build" })
	traceID := build.TraceID
	pub := spanNamed(t, build, "publish_model")
	if pub.ParentID != build.RootSpanID {
		t.Fatalf("publish_model parent %q, want build root %s", pub.ParentID, build.RootSpanID)
	}

	// Worker: count_partition joined the same trace as a child of R.
	lease := findTrace(t, workerTracer.Recorder(), "count_partition",
		func(tr observe.TraceRecord) bool { return tr.Root == "count_partition" })
	if lease.TraceID != traceID {
		t.Fatalf("worker trace %s, want the build trace %s", lease.TraceID, traceID)
	}
	if lease.RemoteParent != build.RootSpanID {
		t.Fatalf("worker remote parent %q, want build root %s", lease.RemoteParent, build.RootSpanID)
	}
	if root := spanNamed(t, lease, "count_partition"); root.Attrs["worker"] != "alpha" {
		t.Fatalf("lease span attrs %v, want worker=alpha", root.Attrs)
	}

	// Registry: the publish POST's server span descends from P.
	srvSpan := findTrace(t, regTracer.Recorder(), "publish server span",
		func(tr observe.TraceRecord) bool { return tr.RemoteParent == pub.SpanID })
	if srvSpan.TraceID != traceID {
		t.Fatalf("registry trace %s, want %s", srvSpan.TraceID, traceID)
	}

	// Replica: the hot-swap descends from the registry's publish span,
	// completing coordinator → registry → replica across three recorders.
	swap := findTrace(t, replicaTracer.Recorder(), "model_hot_swap",
		func(tr observe.TraceRecord) bool { return tr.Root == "model_hot_swap" })
	if swap.TraceID != traceID {
		t.Fatalf("hot-swap trace %s, want %s", swap.TraceID, traceID)
	}
	if swap.RemoteParent != srvSpan.RootSpanID {
		t.Fatalf("hot-swap remote parent %q, want the registry publish span %s",
			swap.RemoteParent, srvSpan.RootSpanID)
	}
	if root := spanNamed(t, swap, "model_hot_swap"); root.Attrs["version"] != "1" {
		t.Fatalf("hot-swap attrs %v, want version=1", root.Attrs)
	}

	// --- The same trace ID is visible over /debug/traces on multiple
	// processes, exactly as an operator would chase it. ---
	for name, rec := range map[string]*observe.FlightRecorder{
		"coordinator": coordTracer.Recorder(),
		"replica":     replicaTracer.Recorder(),
	} {
		dsrv := httptest.NewServer(observe.DebugHandler(observe.DebugOptions{Traces: true, Recorder: rec}))
		body := httpGet(t, dsrv.URL+"/debug/traces")
		if !strings.Contains(body, traceID) {
			t.Errorf("%s /debug/traces does not list trace %s:\n%s", name, traceID, body)
		}
		detail := httpGet(t, dsrv.URL+"/debug/traces/"+traceID)
		var tree struct {
			TraceID string `json:"trace_id"`
			Root    struct {
				Name string `json:"name"`
			} `json:"root"`
		}
		if err := json.Unmarshal([]byte(detail), &tree); err != nil || tree.TraceID != traceID {
			t.Errorf("%s span tree for %s: err=%v body=%s", name, traceID, err, detail)
		}
		dsrv.Close()
	}
}

// httpGet fetches a URL and returns its body, failing on non-200.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body)
}
