package distbuild

// The distributed-build chaos harness: workers behind a fault-injecting
// HTTP transport (torn uploads, blackholed responses), a worker that takes
// a lease and dies without ever heartbeating (the in-process stand-in for
// SIGKILL mid-partition), a zombie worker re-uploading a shard the
// coordinator already accepted, and one full coordinator restart mid-build.
// The build must still converge to the byte-identical single-process model,
// with every injected failure visibly absorbed: leases reassigned,
// duplicates acknowledged-and-discarded, torn uploads refused and retried.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/observe"
)

var distChaosOut = flag.String("distbuild.chaosout", "",
	"write the distributed-build chaos summary (BENCH_distbuild.json) to this path")

// distChaosSummary is the BENCH_distbuild.json payload published by CI.
type distChaosSummary struct {
	Partitions      int     `json:"partitions"`
	Workers         int     `json:"workers"`
	WallSeconds     float64 `json:"wall_seconds"`
	LeasesGranted   uint64  `json:"leases_granted"`
	LeasesExpired   uint64  `json:"leases_expired"`
	Reassignments   uint64  `json:"reassignments"`
	ShardsAccepted  uint64  `json:"shards_accepted"`
	ShardsDuplicate uint64  `json:"shards_duplicate"`
	ShardsRejected  uint64  `json:"shards_rejected"`
	TornUploads     uint64  `json:"torn_uploads"`
	CoordRestarts   int     `json:"coordinator_restarts"`
	ByteIdentical   bool    `json:"byte_identical"`
}

// TestChaosDistributedBuild is the end-to-end robustness property of the
// whole subsystem. Run it with -race; CI does.
func TestChaosDistributedBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes seconds; skipped under -short")
	}
	start := time.Now()
	dir, _ := testCorpusDir(t, 600, 40, 29)
	opts := testOptions(100)
	state := t.TempDir()
	reg := observe.NewRegistry()
	ttl := 700 * time.Millisecond

	mkCoord := func() *Coordinator {
		return newTestCoordinator(t, dir, state, CoordinatorConfig{
			Partitions: 5,
			Options:    opts,
			LeaseTTL:   ttl,
			Metrics:    reg, // shared across incarnations: counters keep accumulating
			Logf:       t.Logf,
		})
	}
	c1 := mkCoord()
	n := c1.Partitions()

	// The server's handler is swappable so a "coordinator crash + restart"
	// keeps the same URL, exactly like a process restarting behind one
	// address.
	var handler atomic.Value
	handler.Store(http.HandlerFunc(c1.Handler().ServeHTTP))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.HandlerFunc).ServeHTTP(w, r)
	}))
	defer srv.Close()
	down := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "coordinator restarting", http.StatusServiceUnavailable)
	})

	// SIGKILL stand-in: this "worker" takes a lease and is never heard from
	// again. Its partition must come back via TTL expiry and reassignment.
	body, _ := json.Marshal(LeaseRequest{Worker: "doomed"})
	resp, err := http.Post(srv.URL+PathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var doomed LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&doomed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doomed.Wait || doomed.Done {
		t.Fatalf("doomed worker got no lease: %+v", doomed)
	}

	// Torn shard upload: a worker's connection dies mid-upload and the
	// coordinator receives a prefix of the shard. It must refuse with a
	// retryable 503, never merge the fragment.
	tornShard, _ := shardFor(t, dir, doomed.Partition, n, opts)
	tresp, err := http.Post(
		fmt.Sprintf("%s%s?partition=%d&worker=torn", srv.URL, PathShard, doomed.Partition),
		"application/octet-stream", bytes.NewReader(tornShard[:len(tornShard)-9]))
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("torn upload: status %d, want 503", tresp.StatusCode)
	}

	// Healthy workers talk through a deterministic fault transport:
	// responses torn after 64 bytes (every JSON response above that size),
	// and blackholes that deliver a request but discard its response —
	// forcing idempotent retries of calls that already happened, including
	// re-uploads of accepted shards. RecoverAfter bounds consecutive
	// faults per endpoint, so the build always makes progress.
	faulty := faultfs.NewTransport(http.DefaultTransport, faultfs.HTTPConfig{
		Seed:          31,
		TruncateRate:  0.5,
		TruncateAfter: 64,
		BlackholeRate: 0.2,
		RecoverAfter:  2,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	workerStats := make([]WorkerStats, 2)
	workerErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerStats[i], workerErrs[i] = RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("chaos-%d", i),
				Dir:         dir,
				Workers:     2,
				HTTP:        &http.Client{Transport: faulty},
				Retry:       testRetry(),
				Logf:        t.Logf,
			})
		}(i)
	}

	// Crash the coordinator once some progress exists but (with high
	// probability) before the build finishes; workers ride out the outage
	// on their retry policies.
	var c2 *Coordinator
	restartDone := make(chan struct{})
	go func() {
		defer close(restartDone)
		for ctx.Err() == nil {
			if st := c1.Status(); st.Done >= 1 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		handler.Store(down)
		time.Sleep(50 * time.Millisecond) // let a few requests hit the outage
		c2 = mkCoord()
		handler.Store(http.HandlerFunc(c2.Handler().ServeHTTP))
		t.Logf("chaos: coordinator restarted with %d/%d partitions restored", c2.Restored(), n)
	}()

	wg.Wait()
	<-restartDone
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d died: %v (stats %+v)", i, err, workerStats[i])
		}
	}
	if c2 == nil {
		t.Fatal("coordinator never restarted")
	}
	if err := c2.Wait(ctx); err != nil {
		t.Fatalf("build incomplete after workers finished: %v", err)
	}

	// Zombie: a worker that died after its upload was accepted but before
	// it saw the 200, restarted, and re-uploaded. Must be acknowledged and
	// discarded, never double-merged.
	raw, err := os.ReadFile(c2.shardPath(0))
	if err != nil {
		t.Fatal(err)
	}
	zresp, err := http.Post(fmt.Sprintf("%s%s?partition=0&worker=zombie", srv.URL, PathShard), "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var ack map[string]string
	if err := json.NewDecoder(zresp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	zresp.Body.Close()
	if zresp.StatusCode != http.StatusOK || ack["status"] != "duplicate" {
		t.Fatalf("zombie re-upload: status %d %v, want 200 duplicate", zresp.StatusCode, ack)
	}

	det, _, err := c2.BuildModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	identical := bytes.Equal(saveModel(t, det), referenceModel(t, dir, opts))
	if !identical {
		t.Error("chaos-built model differs from the single-process model")
	}

	// Fold both incarnations' counters together for the assertions: the
	// doomed lease and its reassignment happened on c1, the tail of the
	// build on c2.
	st1, st2 := c1.Status(), c2.Status()
	sum := distChaosSummary{
		Partitions:      n,
		Workers:         2,
		WallSeconds:     time.Since(start).Seconds(),
		LeasesGranted:   st1.LeasesGranted + st2.LeasesGranted,
		LeasesExpired:   st1.LeasesExpired + st2.LeasesExpired,
		Reassignments:   st1.Reassignments + st2.Reassignments,
		ShardsAccepted:  st1.ShardsAccepted + st2.ShardsAccepted,
		ShardsDuplicate: st1.ShardsDuplicate + st2.ShardsDuplicate,
		ShardsRejected:  st1.ShardsRejected + st2.ShardsRejected,
		TornUploads:     1 + faulty.Blackholes(), // the explicit tear + every upload/response lost in flight
		CoordRestarts:   1,
		ByteIdentical:   identical,
	}
	t.Logf("chaos summary: %+v", sum)

	if sum.Reassignments == 0 {
		t.Error("doomed worker's partition was never reassigned")
	}
	if sum.ShardsRejected == 0 {
		t.Error("no rejected upload observed — the torn shard should have been refused")
	}
	if faulty.Faults() == 0 {
		t.Error("fault transport injected nothing")
	}
	if sum.ShardsDuplicate == 0 {
		t.Error("no duplicate upload was observed")
	}
	if sum.ShardsAccepted+uint64(c2.Restored()) < uint64(n) {
		t.Errorf("accepted %d shards (+%d restored) across incarnations, want ≥ %d", sum.ShardsAccepted, c2.Restored(), n)
	}

	if *distChaosOut != "" {
		raw, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(*distChaosOut, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
