package distbuild

import (
	"errors"
	"time"
)

// errLeaseLost is returned by heartbeat/ownership checks when the caller no
// longer holds the partition — its lease expired and was (or may be)
// reassigned, or the partition already completed. The HTTP layer maps it to
// 410 Gone.
var errLeaseLost = errors.New("distbuild: lease lost")

// Partition lease states. A partition is pending until leased, leased until
// its shard is accepted or its TTL lapses, and done forever after.
type leaseState int

const (
	statePending leaseState = iota
	stateLeased
	stateDone
)

// leaseTable tracks who is counting which partition. It is a passive state
// machine: expiry is evaluated lazily against the injected clock on every
// operation, so there is no background reaper goroutine to leak or to race
// with — a design the fake-clock tests rely on.
//
// Callers hold no reference to table internals; all methods are
// self-locking via the owning Coordinator's mutex — the table itself is NOT
// goroutine-safe.
type leaseTable struct {
	now time.Time // advanced by the owner before each operation
	ttl time.Duration

	states  []leaseState
	workers []string    // lease holder per partition, "" when not leased
	expires []time.Time // lease deadline per partition

	done       int
	granted    uint64
	expired    uint64
	reassigned uint64
	everLeased []bool // partition had a prior lease → next grant is a reassignment
}

func newLeaseTable(partitions int, ttl time.Duration) *leaseTable {
	return &leaseTable{
		ttl:        ttl,
		states:     make([]leaseState, partitions),
		workers:    make([]string, partitions),
		expires:    make([]time.Time, partitions),
		everLeased: make([]bool, partitions),
	}
}

// tick sets the table's notion of now and lapses overdue leases back to
// pending. Owners call it (under their lock) before every operation.
func (t *leaseTable) tick(now time.Time) {
	t.now = now
	for i, st := range t.states {
		if st == stateLeased && now.After(t.expires[i]) {
			t.states[i] = statePending
			t.workers[i] = ""
			t.expired++
		}
	}
}

// acquire grants the lowest-index pending partition to worker. The second
// result reports whether the grant is a reassignment (the partition had
// been leased before and that lease lapsed). ok=false means nothing is
// pending: either the build is complete or every remaining partition is
// leased out.
func (t *leaseTable) acquire(worker string) (idx int, reassigned, ok bool) {
	for i, st := range t.states {
		if st != statePending {
			continue
		}
		reassigned = t.everLeased[i]
		t.states[i] = stateLeased
		t.workers[i] = worker
		t.expires[i] = t.now.Add(t.ttl)
		t.everLeased[i] = true
		t.granted++
		if reassigned {
			t.reassigned++
		}
		return i, reassigned, true
	}
	return 0, false, false
}

// heartbeat extends worker's lease on partition idx, or reports the lease
// lost. Heartbeating a completed partition is also a loss: the worker's
// result is no longer wanted.
func (t *leaseTable) heartbeat(worker string, idx int) error {
	if idx < 0 || idx >= len(t.states) {
		return errLeaseLost
	}
	if t.states[idx] != stateLeased || t.workers[idx] != worker {
		return errLeaseLost
	}
	t.expires[idx] = t.now.Add(t.ttl)
	return nil
}

// complete marks a partition done, releasing any lease on it. Idempotent:
// completing a done partition is a no-op, so duplicate shard uploads and
// restart-restored shards cannot double-count.
func (t *leaseTable) complete(idx int) {
	if idx < 0 || idx >= len(t.states) || t.states[idx] == stateDone {
		return
	}
	t.states[idx] = stateDone
	t.workers[idx] = ""
	t.done++
}

func (t *leaseTable) isDone(idx int) bool {
	return idx >= 0 && idx < len(t.states) && t.states[idx] == stateDone
}

// allDone reports build completion.
func (t *leaseTable) allDone() bool { return t.done == len(t.states) }
