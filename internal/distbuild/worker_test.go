package distbuild

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/retry"
)

// testRetry is a fast worker retry policy for tests: generous attempts,
// tiny backoff, per-attempt timeout small enough to notice a wedged server.
func testRetry() retry.Policy {
	return retry.Policy{
		MaxAttempts:    8,
		BaseDelay:      10 * time.Millisecond,
		MaxDelay:       100 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
	}
}

// TestWorkersBuildByteIdenticalModel: two healthy workers drain the
// partitions over real HTTP and the coordinator's finalized model matches
// the single-process build byte for byte.
func TestWorkersBuildByteIdenticalModel(t *testing.T) {
	dir, _ := testCorpusDir(t, 600, 40, 17)
	opts := testOptions(100)
	c := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{Partitions: 4, Options: opts})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	stats := make([]WorkerStats, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = RunWorker(ctx, WorkerConfig{
				Coordinator: srv.URL,
				Name:        []string{"alpha", "beta"}[i],
				Dir:         dir,
				Workers:     2,
				Retry:       testRetry(),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if total := stats[0].PartitionsCounted + stats[1].PartitionsCounted; total != c.Partitions() {
		t.Errorf("workers counted %d partitions, want %d", total, c.Partitions())
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	det, _, err := c.BuildModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveModel(t, det), referenceModel(t, dir, opts)) {
		t.Fatal("distributed model differs from single-process model")
	}
	st := c.Status()
	if !st.Complete || st.ShardsAccepted != uint64(c.Partitions()) {
		t.Fatalf("status after build = %+v", st)
	}
}

// TestWorkerRefusesDivergentCorpus: a worker whose local directory does not
// fingerprint-match the coordinator's aborts instead of counting garbage.
func TestWorkerRefusesDivergentCorpus(t *testing.T) {
	dir, _ := testCorpusDir(t, 60, 10, 19)
	otherDir, _ := testCorpusDir(t, 60, 10, 23)
	opts := testOptions(0)
	c := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{Partitions: 2, Options: opts})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := RunWorker(ctx, WorkerConfig{
		Coordinator: srv.URL,
		Name:        "stale",
		Dir:         otherDir,
		Retry:       testRetry(),
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("divergent-corpus worker returned %v, want fingerprint mismatch", err)
	}
}
