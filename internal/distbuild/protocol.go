// Package distbuild distributes the corpus-counting stage of an Auto-Detect
// model build (PAPER.md; the O(n) counting pass dominates wall-clock on
// web-scale corpora) across processes: a coordinator partitions the corpus
// directory, hands partitions to workers as TTL-bounded leases, and merges
// the integrity-enveloped statistic shards workers upload back into the
// byte-identical model a single-process pipeline.Run would have produced.
//
// The robustness contract, verified end-to-end by the chaos test:
//
//   - Partitions are leases, not assignments. A worker renews its lease by
//     heartbeating; a missed TTL expires the lease and the partition is
//     reassigned to the next worker that asks. Worker death never wedges a
//     build.
//   - Shard upload is idempotent. A duplicate upload of an already-accepted
//     partition (a worker that died after the coordinator committed but
//     before it saw the 200, then retried) is acknowledged and discarded —
//     never merged twice.
//   - Torn or bit-flipped uploads fail the CRC64 envelope and are refused
//     with a retryable 503; the worker re-uploads.
//   - Accepted shards are persisted with atomicio under the coordinator's
//     state directory, so a coordinator crash resumes the build from the
//     shards already accepted instead of recounting the corpus.
//
// Wire format: JSON request/response bodies on /distbuild/v1/* for control,
// and the binary pipeline shard encoding (AUTODETECT-SH/1) for data.
package distbuild

import "repro/internal/pipeline"

// Endpoint paths. Versioned so a future protocol revision can coexist with
// draining v1 workers.
const (
	PathLease     = "/distbuild/v1/lease"
	PathHeartbeat = "/distbuild/v1/heartbeat"
	PathShard     = "/distbuild/v1/shard"
	PathStatus    = "/distbuild/v1/status"
)

// LeaseRequest asks the coordinator for a partition to count.
type LeaseRequest struct {
	// Worker identifies the requester in leases, logs, and metrics.
	Worker string `json:"worker"`
}

// LeaseResponse is the coordinator's answer to a lease request. Exactly one
// of three shapes comes back: Done (build complete, go away), Wait (every
// pending partition is currently leased — retry after RetryAfterSeconds),
// or a granted lease (Partition/Partitions/TTLMillis/Build populated).
type LeaseResponse struct {
	Done              bool `json:"done,omitempty"`
	Wait              bool `json:"wait,omitempty"`
	RetryAfterSeconds int  `json:"retry_after_seconds,omitempty"`

	// Partition is the granted partition index in [0, Partitions).
	Partition  int `json:"partition"`
	Partitions int `json:"partitions"`
	// TTLMillis is the lease TTL; the worker must heartbeat well within it
	// (TTL/3 is the convention) or the partition is reassigned.
	TTLMillis int64 `json:"ttl_millis"`

	// Traceparent is the build's root span context in W3C form; a tracing
	// worker records its counting spans as children of the coordinator's
	// build trace so the whole distributed build is one causal timeline.
	Traceparent string `json:"traceparent,omitempty"`

	Build BuildParams `json:"build"`
}

// BuildParams pin the worker's counting run to the coordinator's build: the
// corpus identity it must see locally, the configuration knobs that shape
// counting, and the exact fingerprint its uploaded shard must carry.
type BuildParams struct {
	// CorpusFingerprint is the whole-directory fingerprint. A worker whose
	// local corpus view disagrees must abort rather than count garbage.
	CorpusFingerprint string `json:"corpus_fingerprint"`
	// PartitionFingerprint is the expected Partial.Fingerprint for this
	// partition; the coordinator refuses shards that disagree.
	PartitionFingerprint string `json:"partition_fingerprint"`
	// HasHeader mirrors the coordinator's CSV header setting.
	HasHeader bool `json:"has_header"`
	// Count carries the resolved counting knobs (languages by ID,
	// smoothing, sample bound, distant-supervision seed).
	Count CountParams `json:"count"`
}

// CountParams aliases the pipeline's resolved counting knobs.
type CountParams = pipeline.CountParams

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	Worker    string `json:"worker"`
	Partition int    `json:"partition"`
}

// StatusResponse summarizes build progress for /distbuild/v1/status and the
// CI smoke harness.
type StatusResponse struct {
	Partitions      int    `json:"partitions"`
	Done            int    `json:"done"`
	Complete        bool   `json:"complete"`
	LeasesGranted   uint64 `json:"leases_granted"`
	LeasesExpired   uint64 `json:"leases_expired"`
	Reassignments   uint64 `json:"reassignments"`
	ShardsAccepted  uint64 `json:"shards_accepted"`
	ShardsDuplicate uint64 `json:"shards_duplicate"`
	ShardsRejected  uint64 `json:"shards_rejected"`
}
