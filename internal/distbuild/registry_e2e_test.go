package distbuild

// Fleet end-to-end: a distributed build publishes its finalized model to a
// versioned registry, two serving replicas hot-swap to it via conditional
// polling, a pin rolls the whole fleet back, and the steady state is pure
// 304 deltas. This is the full production loop — coordinator → registry →
// pullers → service — with every hop over real HTTP.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/pipeline"
	"repro/internal/registry"
	"repro/internal/retry"
	"repro/internal/service"
)

// fleetReplica is one serving node: a service hot-swapping through a
// registry puller, with the applied bytes captured for byte-identity
// assertions and a private metrics registry for the client 304 counter.
type fleetReplica struct {
	svc    *service.Server
	puller *registry.Puller
	met    *observe.Registry

	mu  sync.Mutex
	raw []byte
}

func (r *fleetReplica) applied() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.raw
}

// newFleetReplica wires a not-ready service to a registry puller exactly
// like cmd/autodetectd does in -registry-url mode.
func newFleetReplica(t *testing.T, base string, client *http.Client) *fleetReplica {
	t.Helper()
	rep := &fleetReplica{svc: service.New(nil, nil), met: observe.NewRegistry()}
	p, err := registry.NewPuller(registry.PullerConfig{
		URL:   base,
		Poll:  15 * time.Millisecond,
		HTTP:  client,
		Retry: retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Apply: func(info registry.VersionInfo, raw []byte) error {
			det, err := core.Load(bytes.NewReader(raw))
			if err != nil {
				return err
			}
			if err := rep.svc.SwapInfo(det, nil, service.ModelInfo{
				Version:         info.Version,
				Source:          "registry",
				SHA256:          info.SHA256,
				PublishedUnixMs: info.PublishedUnixMs,
			}); err != nil {
				return err
			}
			rep.mu.Lock()
			rep.raw = append([]byte(nil), raw...)
			rep.mu.Unlock()
			return nil
		},
		Logf:    t.Logf,
		Metrics: rep.met,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.puller = p
	return rep
}

// waitForVersion polls both replicas until each serves the wanted version
// with exactly the wanted bytes.
func waitForVersion(t *testing.T, replicas []*fleetReplica, version int, want []byte) {
	t.Helper()
	wantSHA := sha256hex(want)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := 0
		for _, r := range replicas {
			info := r.svc.Info()
			if info.Version == version && info.SHA256 == wantSHA && bytes.Equal(r.applied(), want) {
				ok++
			}
		}
		if ok == len(replicas) {
			return
		}
		if time.Now().After(deadline) {
			for i, r := range replicas {
				t.Logf("replica %d: info=%+v", i, r.svc.Info())
			}
			t.Fatalf("fleet did not converge to v%d", version)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sampleValue renders reg and extracts one un-labeled sample, or -1.
func sampleValue(t *testing.T, reg *observe.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad sample %q", name, fields[1])
			}
			return v
		}
	}
	return -1
}

func sha256hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func TestFleetPublishHotSwapRollback(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// --- Distributed build: coordinator + two workers over real HTTP. ---
	dir, _ := testCorpusDir(t, 600, 40, 17)
	opts := testOptions(100)
	coord := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{Partitions: 4, Options: opts})
	csrv := httptest.NewServer(coord.Handler())
	defer csrv.Close()
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, workerErrs[i] = RunWorker(ctx, WorkerConfig{
				Coordinator: csrv.URL,
				Name:        []string{"alpha", "beta"}[i],
				Dir:         dir,
				Workers:     2,
				Retry:       testRetry(),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	det, _, err := coord.BuildModel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	modelV1 := saveModel(t, det)
	part, err := pipeline.NewDirPartitioner(dir, pipeline.DirConfig{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	fpV1 := pipeline.BuildFingerprint(part.Fingerprint(), opts)

	// --- Registry service, as runRegistryServer would host it. ---
	regMetrics := observe.NewRegistry()
	store, err := registry.Open(t.TempDir(), registry.Options{Metrics: regMetrics, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	rsrv := httptest.NewServer(registry.NewServer(store).Handler())
	defer rsrv.Close()

	// --- Publish the distributed build, exactly like the coordinator. ---
	pol := retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	res, err := registry.Publish(ctx, rsrv.Client(), rsrv.URL, modelV1, fpV1, "distbuild", pol)
	if err != nil || res.Status != "accepted" || res.Version != 1 {
		t.Fatalf("publish v1: %+v err=%v", res, err)
	}
	// A rerun of the same finished build is an idempotent duplicate.
	if res, err = registry.Publish(ctx, rsrv.Client(), rsrv.URL, modelV1, fpV1, "distbuild", pol); err != nil || res.Status != "duplicate" {
		t.Fatalf("re-publish v1: %+v err=%v", res, err)
	}

	// --- Two serving replicas poll the registry in the background. ---
	replicas := []*fleetReplica{
		newFleetReplica(t, rsrv.URL, rsrv.Client()),
		newFleetReplica(t, rsrv.URL, rsrv.Client()),
	}
	pullCtx, pullCancel := context.WithCancel(ctx)
	defer pullCancel()
	for _, r := range replicas {
		r := r
		go func() { _ = r.puller.Run(pullCtx) }()
	}
	waitForVersion(t, replicas, 1, modelV1)
	if a, b := replicas[0].applied(), replicas[1].applied(); !bytes.Equal(a, b) {
		t.Fatal("replicas converged to different bytes")
	}

	// --- A second (single-process) build publishes v2; fleet follows. ---
	dir2, _ := testCorpusDir(t, 400, 40, 29)
	opts2 := testOptions(0)
	modelV2 := referenceModel(t, dir2, opts2)
	part2, err := pipeline.NewDirPartitioner(dir2, pipeline.DirConfig{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	fpV2 := pipeline.BuildFingerprint(part2.Fingerprint(), opts2)
	if res, err = registry.Publish(ctx, rsrv.Client(), rsrv.URL, modelV2, fpV2, "distbuild", pol); err != nil || res.Version != 2 {
		t.Fatalf("publish v2: %+v err=%v", res, err)
	}
	waitForVersion(t, replicas, 2, modelV2)

	// --- Pin v1 over the wire: the whole fleet rolls back. ---
	resp, err := http.Post(rsrv.URL+registry.PathPin, "application/json", strings.NewReader(`{"version": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"rollback":true`) {
		t.Fatalf("pin: status=%d body=%s", resp.StatusCode, body)
	}
	waitForVersion(t, replicas, 1, modelV1)

	// --- Steady state is pure 304 deltas: both sides count them. ---
	deadline := time.Now().Add(10 * time.Second)
	for {
		serverHits := sampleValue(t, regMetrics, "autodetect_registry_not_modified_total")
		clientHits := 0
		for _, r := range replicas {
			if sampleValue(t, r.met, "autodetect_registry_client_not_modified_total") >= 1 {
				clientHits++
			}
		}
		if serverHits >= 2 && clientHits == len(replicas) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no 304 deltas at steady state: server=%v clients=%d", serverHits, clientHits)
		}
		time.Sleep(10 * time.Millisecond)
	}
	pullCancel()

	// The registry's own bookkeeping saw the whole story.
	if v := sampleValue(t, regMetrics, "autodetect_registry_rollbacks_total"); v != 1 {
		t.Errorf("rollbacks counter = %v, want 1", v)
	}
	if v := sampleValue(t, regMetrics, "autodetect_registry_current_version"); v != 1 {
		t.Errorf("current_version gauge = %v, want 1", v)
	}
}
