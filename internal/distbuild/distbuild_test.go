package distbuild

// Shared fixtures: a deterministic multi-file corpus directory, the scaled-
// down training configuration the pipeline tests use, and a reference model
// built by the single-process pipeline for byte-identity assertions.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
	"repro/internal/pipeline"
)

// testCorpusDir writes numColumns synthetic web-profile columns as CSV
// files of perFile columns each and returns the directory and file count.
func testCorpusDir(t *testing.T, numColumns, perFile int, seed int64) (string, int) {
	t.Helper()
	dir := t.TempDir()
	c := corpus.Generate(corpus.WebProfile(), numColumns, seed)
	n := 0
	for i := 0; i < len(c.Columns); i += perFile {
		end := i + perFile
		if end > len(c.Columns) {
			end = len(c.Columns)
		}
		var buf bytes.Buffer
		if err := corpus.WriteCSV(&buf, c.Columns[i:end]); err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("table-%04d.csv", n)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return dir, n
}

// testTrainConfig mirrors the pipeline package's scaled-down configuration:
// every fifth language, 1500+1500 training pairs.
func testTrainConfig() core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	all := pattern.All()
	for i := 0; i < len(all); i += 5 {
		cfg.Languages = append(cfg.Languages, all[i])
	}
	ds := distsup.DefaultConfig()
	ds.PositivePairs, ds.NegativePairs = 1500, 1500
	cfg.DistSup = ds
	return cfg
}

func testOptions(sampleColumns int) pipeline.Options {
	return pipeline.Options{Workers: 2, Train: testTrainConfig(), SampleColumns: sampleColumns}
}

// referenceModel builds the single-process model over dir — the byte string
// every distributed build must reproduce exactly.
func referenceModel(t *testing.T, dir string, opts pipeline.Options) []byte {
	t.Helper()
	src, err := pipeline.NewDirSourceWith(dir, pipeline.DirConfig{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return saveModel(t, res.Detector)
}

func saveModel(t *testing.T, det *core.Detector) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestCoordinator builds a coordinator over dir with the given state
// directory (reused across "restarts" in tests).
func newTestCoordinator(t *testing.T, dir, stateDir string, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	part, err := pipeline.NewDirPartitioner(dir, pipeline.DirConfig{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.StateDir = stateDir
	c, err := NewCoordinator(part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
