package distbuild

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/observe"
	"repro/internal/pipeline"
)

// shardFor counts one partition in-process and returns its encoded shard —
// what an honest worker would upload.
func shardFor(t *testing.T, dir string, idx, n int, opts pipeline.Options) ([]byte, *pipeline.Partial) {
	t.Helper()
	part, err := pipeline.NewDirPartitioner(dir, pipeline.DirConfig{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	src, err := part.Open(pipeline.PartitionSpec{Index: idx, Count: n})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.CountPartial(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipeline.EncodePartial(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), p
}

func postLease(t *testing.T, h http.Handler, worker string) LeaseResponse {
	t.Helper()
	body, _ := json.Marshal(LeaseRequest{Worker: worker})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, PathLease, bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("lease: status %d: %s", rec.Code, rec.Body)
	}
	var lr LeaseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

func postShard(t *testing.T, h http.Handler, idx int, raw []byte) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	url := fmt.Sprintf("%s?partition=%d&worker=test", PathShard, idx)
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, url, bytes.NewReader(raw)))
	return rec
}

// TestCoordinatorLeaseFlow: grants walk the partitions in index order,
// carry the build identity, and turn into Wait once everything is leased.
func TestCoordinatorLeaseFlow(t *testing.T) {
	dir, _ := testCorpusDir(t, 120, 10, 3)
	opts := testOptions(40)
	c := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{Partitions: 2, Options: opts})
	h := c.Handler()

	l1 := postLease(t, h, "w1")
	if l1.Done || l1.Wait || l1.Partition != 0 || l1.Partitions != 2 {
		t.Fatalf("first lease = %+v", l1)
	}
	if l1.TTLMillis != DefaultLeaseTTL.Milliseconds() {
		t.Errorf("TTLMillis = %d, want default %d", l1.TTLMillis, DefaultLeaseTTL.Milliseconds())
	}
	part, err := pipeline.NewDirPartitioner(dir, pipeline.DirConfig{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if l1.Build.CorpusFingerprint != part.Fingerprint() {
		t.Error("lease corpus fingerprint differs from the directory's")
	}
	if !l1.Build.HasHeader {
		t.Error("lease dropped the header flag")
	}
	wantFP, err := part.PartitionFingerprint(pipeline.PartitionSpec{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if l1.Build.PartitionFingerprint != pipeline.BuildFingerprint(wantFP, opts) {
		t.Error("lease partition fingerprint is not the expected build fingerprint")
	}

	l2 := postLease(t, h, "w2")
	if l2.Partition != 1 {
		t.Fatalf("second lease partition = %d, want 1", l2.Partition)
	}
	l3 := postLease(t, h, "w3")
	if !l3.Wait || l3.RetryAfterSeconds < 1 {
		t.Fatalf("third lease = %+v, want Wait", l3)
	}

	// Garbage request: 400.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, PathLease, strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad lease request: status %d", rec.Code)
	}
}

// TestCoordinatorShardSemantics: the accept/duplicate/reject ladder.
func TestCoordinatorShardSemantics(t *testing.T) {
	dir, _ := testCorpusDir(t, 120, 10, 5)
	opts := testOptions(40)
	reg := observe.NewRegistry()
	c := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{Partitions: 2, Options: opts, Metrics: reg})
	h := c.Handler()

	good0, p0 := shardFor(t, dir, 0, 2, opts)

	// Torn upload: integrity failure, retryable 503 with the shared
	// Retry-After hint.
	rec := postShard(t, h, 0, good0[:len(good0)-7])
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("torn shard: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "5" {
		t.Errorf("torn shard Retry-After = %q, want \"5\"", rec.Header().Get("Retry-After"))
	}
	// Bit flip: same.
	flipped := append([]byte(nil), good0...)
	flipped[len(flipped)/2] ^= 0x20
	if rec := postShard(t, h, 0, flipped); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("flipped shard: status %d, want 503", rec.Code)
	}

	// Wrong build: counted under different smoothing → fingerprint 409.
	wrongOpts := opts
	wrongOpts.Train.Smoothing = 0.5
	wrong0, _ := shardFor(t, dir, 0, 2, wrongOpts)
	if rec := postShard(t, h, 0, wrong0); rec.Code != http.StatusConflict {
		t.Fatalf("wrong-config shard: status %d, want 409", rec.Code)
	}

	// Valid: accepted and persisted.
	if rec := postShard(t, h, 0, good0); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "accepted") {
		t.Fatalf("valid shard: status %d body %s", rec.Code, rec.Body)
	}
	if _, err := os.Stat(c.shardPath(0)); err != nil {
		t.Fatalf("accepted shard not persisted: %v", err)
	}

	// Exact duplicate: acknowledged, not merged, counted.
	if rec := postShard(t, h, 0, good0); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "duplicate") {
		t.Fatalf("duplicate shard: status %d body %s", rec.Code, rec.Body)
	}

	// Same fingerprint, different bytes (a merged partial keeps the
	// receiver's fingerprint): refused as a conflict.
	_, pOther := shardFor(t, dir, 1, 2, opts)
	if err := p0.Merge(pOther); err != nil {
		t.Fatal(err)
	}
	var evil bytes.Buffer
	if err := pipeline.EncodePartial(&evil, p0); err != nil {
		t.Fatal(err)
	}
	if rec := postShard(t, h, 0, evil.Bytes()); rec.Code != http.StatusConflict {
		t.Fatalf("conflicting shard: status %d, want 409", rec.Code)
	}

	// Out-of-range partition: 400.
	if rec := postShard(t, h, 9, good0); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad partition index: status %d, want 400", rec.Code)
	}

	st := c.Status()
	if st.ShardsAccepted != 1 || st.ShardsDuplicate != 1 || st.ShardsRejected != 5 {
		t.Fatalf("status counters = %+v, want 1 accepted, 1 duplicate, 5 rejected", st)
	}
	if st.Done != 1 || st.Complete {
		t.Fatalf("status progress = %+v, want Done=1 Complete=false", st)
	}
}

// TestCoordinatorCompletesAndFinalizes: accepting every shard closes Wait
// and BuildModel reproduces the single-process model byte for byte.
func TestCoordinatorCompletesAndFinalizes(t *testing.T) {
	dir, _ := testCorpusDir(t, 600, 40, 7)
	opts := testOptions(50)
	c := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{Partitions: 3, Options: opts})
	h := c.Handler()

	if _, _, err := c.BuildModel(context.Background()); err == nil {
		t.Fatal("BuildModel succeeded on an incomplete build")
	}
	n := c.Partitions()
	for i := 0; i < n; i++ {
		raw, _ := shardFor(t, dir, i, n, opts)
		if rec := postShard(t, h, i, raw); rec.Code != http.StatusOK {
			t.Fatalf("shard %d: status %d", i, rec.Code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("Wait after all shards: %v", err)
	}
	det, rep, err := c.BuildModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrainingExamples == 0 {
		t.Error("finalized report has no training examples")
	}
	if !bytes.Equal(saveModel(t, det), referenceModel(t, dir, opts)) {
		t.Fatal("distributed model differs from single-process model")
	}
}

// TestCoordinatorRestartRestores: a new coordinator over the same StateDir
// resumes from persisted shards, deletes corrupt ones, and only leases what
// is still missing.
func TestCoordinatorRestartRestores(t *testing.T) {
	dir, _ := testCorpusDir(t, 600, 40, 9)
	opts := testOptions(40)
	state := t.TempDir()
	c1 := newTestCoordinator(t, dir, state, CoordinatorConfig{Partitions: 3, Options: opts})
	h1 := c1.Handler()
	n := c1.Partitions()
	for i := 0; i < 2; i++ {
		raw, _ := shardFor(t, dir, i, n, opts)
		if rec := postShard(t, h1, i, raw); rec.Code != http.StatusOK {
			t.Fatalf("shard %d: status %d", i, rec.Code)
		}
	}
	// Corrupt the second persisted shard: the restarted coordinator must
	// drop it and re-lease that partition.
	raw, err := os.ReadFile(c1.shardPath(1))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xFF
	if err := os.WriteFile(c1.shardPath(1), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newTestCoordinator(t, dir, state, CoordinatorConfig{Partitions: 3, Options: opts})
	if c2.Restored() != 1 {
		t.Fatalf("Restored() = %d, want 1 (one valid, one corrupted)", c2.Restored())
	}
	h2 := c2.Handler()
	l := postLease(t, h2, "w1")
	if l.Partition != 1 {
		t.Fatalf("restarted coordinator leased partition %d, want 1 (the corrupted one)", l.Partition)
	}
	l2 := postLease(t, h2, "w2")
	if l2.Partition != 2 {
		t.Fatalf("restarted coordinator leased partition %d, want 2", l2.Partition)
	}
	for _, i := range []int{1, 2} {
		raw, _ := shardFor(t, dir, i, n, opts)
		if rec := postShard(t, h2, i, raw); rec.Code != http.StatusOK {
			t.Fatalf("shard %d after restart: status %d", i, rec.Code)
		}
	}
	det, _, err := c2.BuildModel(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveModel(t, det), referenceModel(t, dir, opts)) {
		t.Fatal("restored build differs from single-process model")
	}
}

// TestCoordinatorLeaseExpiryOverHTTP: heartbeats renew; silence reassigns.
// The coordinator's clock is injectable, so no real waiting happens.
func TestCoordinatorLeaseExpiryOverHTTP(t *testing.T) {
	dir, _ := testCorpusDir(t, 60, 10, 11)
	opts := testOptions(0)
	c := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{Partitions: 1, Options: opts, LeaseTTL: 10 * time.Second})
	clk := newFakeClock()
	c.now = clk.now
	h := c.Handler()

	l := postLease(t, h, "w1")
	if l.Wait || l.Done {
		t.Fatalf("lease = %+v", l)
	}
	hb := func(worker string, partition int) int {
		body, _ := json.Marshal(HeartbeatRequest{Worker: worker, Partition: partition})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, PathHeartbeat, bytes.NewReader(body)))
		return rec.Code
	}
	clk.advance(8 * time.Second)
	if code := hb("w1", 0); code != http.StatusNoContent {
		t.Fatalf("in-TTL heartbeat: status %d, want 204", code)
	}
	// Renewed at t=8s, so t=17s is still inside the renewed TTL.
	clk.advance(9 * time.Second)
	if code := hb("w1", 0); code != http.StatusNoContent {
		t.Fatalf("renewed heartbeat: status %d, want 204", code)
	}
	// Silence past the TTL: the lease is gone and the next worker gets it.
	clk.advance(11 * time.Second)
	if code := hb("w1", 0); code != http.StatusGone {
		t.Fatalf("expired heartbeat: status %d, want 410", code)
	}
	l2 := postLease(t, h, "w2")
	if l2.Wait || l2.Partition != 0 {
		t.Fatalf("post-expiry lease = %+v, want partition 0", l2)
	}
	st := c.Status()
	if st.LeasesExpired != 1 || st.Reassignments != 1 {
		t.Fatalf("status = %+v, want 1 expiry and 1 reassignment", st)
	}
}

// TestDistbuildMetricsExposition: the distbuild_* families appear on a
// /metrics scrape of a registry the coordinator is wired to.
func TestDistbuildMetricsExposition(t *testing.T) {
	dir, _ := testCorpusDir(t, 60, 10, 13)
	opts := testOptions(0)
	reg := observe.NewRegistry()
	c := newTestCoordinator(t, dir, t.TempDir(), CoordinatorConfig{Partitions: 2, Options: opts, Metrics: reg})
	h := c.Handler()
	postLease(t, h, "w1")
	raw, _ := shardFor(t, dir, 0, c.Partitions(), opts)
	postShard(t, h, 0, raw)
	postShard(t, h, 0, raw) // duplicate

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"autodetect_distbuild_leases_granted_total 1",
		"autodetect_distbuild_shards_accepted_total 1",
		"autodetect_distbuild_shards_duplicate_total 1",
		"autodetect_distbuild_partitions 2",
		"autodetect_distbuild_partitions_done 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
