package distbuild

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives the lease table deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func tickAt(tb *leaseTable, c *fakeClock)        { tb.tick(c.now()) }

// TestLeaseGrantHeartbeatComplete: the happy path through the state
// machine.
func TestLeaseGrantHeartbeatComplete(t *testing.T) {
	clk := newFakeClock()
	tb := newLeaseTable(2, 10*time.Second)
	tickAt(tb, clk)

	idx, reassigned, ok := tb.acquire("w1")
	if !ok || idx != 0 || reassigned {
		t.Fatalf("first acquire = (%d, %v, %v), want (0, false, true)", idx, reassigned, ok)
	}
	idx2, _, ok := tb.acquire("w2")
	if !ok || idx2 != 1 {
		t.Fatalf("second acquire = (%d, %v), want (1, true)", idx2, ok)
	}
	if _, _, ok := tb.acquire("w3"); ok {
		t.Fatal("third acquire succeeded with no pending partitions")
	}

	// Heartbeats inside the TTL keep the lease alive indefinitely.
	for i := 0; i < 5; i++ {
		clk.advance(6 * time.Second)
		tickAt(tb, clk)
		if err := tb.heartbeat("w1", 0); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	tb.complete(0)
	tb.complete(0) // idempotent
	if tb.done != 1 {
		t.Fatalf("done = %d after double-complete, want 1", tb.done)
	}
	if err := tb.heartbeat("w1", 0); !errors.Is(err, errLeaseLost) {
		t.Fatalf("heartbeat on completed partition: %v, want errLeaseLost", err)
	}
	tb.complete(1)
	if !tb.allDone() {
		t.Fatal("allDone() false with every partition complete")
	}
}

// TestLeaseExpiryReassigns: a silent worker's partition lapses and the next
// acquire is counted as a reassignment.
func TestLeaseExpiryReassigns(t *testing.T) {
	clk := newFakeClock()
	tb := newLeaseTable(1, 10*time.Second)
	tickAt(tb, clk)

	if _, _, ok := tb.acquire("w1"); !ok {
		t.Fatal("acquire failed")
	}
	// Just inside the TTL: still held.
	clk.advance(10 * time.Second)
	tickAt(tb, clk)
	if _, _, ok := tb.acquire("w2"); ok {
		t.Fatal("partition reassigned before its TTL lapsed")
	}
	// Past the TTL: expired and reassignable.
	clk.advance(time.Millisecond)
	tickAt(tb, clk)
	if err := tb.heartbeat("w1", 0); !errors.Is(err, errLeaseLost) {
		t.Fatalf("heartbeat after expiry: %v, want errLeaseLost", err)
	}
	idx, reassigned, ok := tb.acquire("w2")
	if !ok || idx != 0 || !reassigned {
		t.Fatalf("acquire after expiry = (%d, %v, %v), want (0, true, true)", idx, reassigned, ok)
	}
	if tb.expired != 1 || tb.reassigned != 1 || tb.granted != 2 {
		t.Fatalf("counters expired=%d reassigned=%d granted=%d, want 1/1/2", tb.expired, tb.reassigned, tb.granted)
	}
	// The usurped worker cannot renew what it lost.
	if err := tb.heartbeat("w1", 0); !errors.Is(err, errLeaseLost) {
		t.Fatalf("stale worker heartbeat: %v, want errLeaseLost", err)
	}
	if err := tb.heartbeat("w2", 0); err != nil {
		t.Fatalf("new holder heartbeat: %v", err)
	}
}

// TestLeaseHeartbeatBounds: out-of-range partitions are losses, not panics.
func TestLeaseHeartbeatBounds(t *testing.T) {
	tb := newLeaseTable(1, time.Second)
	tb.tick(time.Now())
	for _, idx := range []int{-1, 1, 99} {
		if err := tb.heartbeat("w", idx); !errors.Is(err, errLeaseLost) {
			t.Errorf("heartbeat(%d): %v, want errLeaseLost", idx, err)
		}
	}
	tb.complete(-1)
	tb.complete(99)
	if tb.done != 0 {
		t.Fatalf("out-of-range complete changed done to %d", tb.done)
	}
}
