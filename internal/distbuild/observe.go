package distbuild

import "repro/internal/observe"

// metrics is the nil-safe bundle of distbuild instrument families. A nil
// registry produces a zero bundle whose methods all no-op, so the
// coordinator never branches on "metrics enabled".
type metrics struct {
	leasesGranted    *observe.Counter
	leasesExpired    *observe.Counter
	leasesReassigned *observe.Counter
	heartbeats       *observe.Counter
	shardsAccepted   *observe.Counter
	shardsDuplicate  *observe.Counter
	shardsRejected   *observe.CounterVec
}

func newMetrics(r *observe.Registry) *metrics {
	if r == nil {
		return &metrics{}
	}
	return &metrics{
		leasesGranted: r.Counter("autodetect_distbuild_leases_granted_total",
			"Partition leases granted to workers."),
		leasesExpired: r.Counter("autodetect_distbuild_leases_expired_total",
			"Leases lapsed after missed heartbeats."),
		leasesReassigned: r.Counter("autodetect_distbuild_leases_reassigned_total",
			"Grants of a partition whose earlier lease lapsed."),
		heartbeats: r.Counter("autodetect_distbuild_heartbeats_total",
			"Lease renewals accepted."),
		shardsAccepted: r.Counter("autodetect_distbuild_shards_accepted_total",
			"Statistic shards validated and merged into the build."),
		shardsDuplicate: r.Counter("autodetect_distbuild_shards_duplicate_total",
			"Re-uploads of already-accepted shards, acknowledged and discarded."),
		shardsRejected: r.CounterVec("autodetect_distbuild_shards_rejected_total",
			"Shard uploads refused, by reason (integrity, fingerprint, conflict, request).",
			"reason"),
	}
}

// registerGauges wires the build-progress gauges, which read live
// coordinator state rather than accumulating.
func (c *Coordinator) registerGauges(r *observe.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("autodetect_distbuild_partitions",
		"Partitions the corpus is split into.",
		func() float64 { return float64(len(c.table.states)) })
	r.GaugeFunc("autodetect_distbuild_partitions_done",
		"Partitions whose shard has been accepted.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.table.done)
		})
	r.GaugeFunc("autodetect_distbuild_workers_alive",
		"Workers holding an unexpired lease right now.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.table.tick(c.now())
			alive := map[string]bool{}
			for i, st := range c.table.states {
				if st == stateLeased {
					alive[c.table.workers[i]] = true
				}
			}
			return float64(len(alive))
		})
}

func (m *metrics) inc(c *observe.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (m *metrics) reject(reason string) {
	if m.shardsRejected != nil {
		m.shardsRejected.With(reason).Inc()
	}
}
