package pipeline

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/envelope"
)

// randomColumns builds a deterministic slate of synthetic columns, with
// some exact duplicates so tie handling is exercised.
func randomColumns(n int, seed int64) []*corpus.Column {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]*corpus.Column, 0, n)
	for i := 0; i < n; i++ {
		nv := 1 + rng.Intn(6)
		vals := make([]string, nv)
		for j := range vals {
			vals[j] = string(rune('a'+rng.Intn(26))) + string(rune('0'+rng.Intn(10)))
		}
		cols = append(cols, &corpus.Column{Values: vals})
		if rng.Intn(7) == 0 { // duplicate the column verbatim
			dup := append([]string(nil), vals...)
			cols = append(cols, &corpus.Column{Values: dup})
			i++
		}
	}
	return cols[:n]
}

func sampleValues(cols []*corpus.Column) [][]string {
	out := make([][]string, len(cols))
	for i, c := range cols {
		out[i] = c.Values
	}
	return out
}

// TestSampleOrderInvariant: a bounded sample is a pure function of the
// column multiset — stream order must not matter.
func TestSampleOrderInvariant(t *testing.T) {
	cols := randomColumns(500, 7)
	fwd := newSample(40, 99)
	rev := newSample(40, 99)
	for _, c := range cols {
		fwd.add(c)
	}
	for i := len(cols) - 1; i >= 0; i-- {
		rev.add(cols[i])
	}
	if !reflect.DeepEqual(sampleValues(fwd.finalize()), sampleValues(rev.finalize())) {
		t.Fatal("bounded sample depends on stream order")
	}
}

// TestSampleMergeEqualsGlobal: per-partition bottom-k samples merged in any
// order equal the bottom-k over the whole stream.
func TestSampleMergeEqualsGlobal(t *testing.T) {
	cols := randomColumns(600, 13)
	global := newSample(50, 42)
	for _, c := range cols {
		global.add(c)
	}
	want := sampleValues(global.finalize())

	for _, parts := range []int{2, 3, 5} {
		shards := make([]*sample, parts)
		for i := range shards {
			shards[i] = newSample(50, 42)
		}
		for i, c := range cols {
			shards[i%parts].add(c)
		}
		// Merge in reverse order to prove merge-order independence.
		merged := newSample(50, 42)
		for i := parts - 1; i >= 0; i-- {
			merged.merge(shards[i])
		}
		if got := sampleValues(merged.finalize()); !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-way partitioned sample differs from global bottom-k", parts)
		}
	}
}

// TestSampleUnboundedConcatenates: cap<=0 keeps everything in stream order,
// and merging appends — partition order is the caller's contract.
func TestSampleUnboundedConcatenates(t *testing.T) {
	cols := randomColumns(60, 3)
	a, b := newSample(0, 1), newSample(0, 1)
	for _, c := range cols[:30] {
		a.add(c)
	}
	for _, c := range cols[30:] {
		b.add(c)
	}
	a.merge(b)
	if !reflect.DeepEqual(sampleValues(a.finalize()), sampleValues(cols)) {
		t.Fatal("unbounded merge does not reproduce the stream")
	}
}

// TestSampleRestoreRoundTrip: entries() → restore() preserves the sample
// and keeps accepting columns correctly afterwards.
func TestSampleRestoreRoundTrip(t *testing.T) {
	cols := randomColumns(300, 21)
	direct := newSample(25, 8)
	restored := newSample(25, 8)
	for _, c := range cols[:150] {
		direct.add(c)
	}
	half := newSample(25, 8)
	for _, c := range cols[:150] {
		half.add(c)
	}
	restored.restore(half.entries())
	for _, c := range cols[150:] {
		direct.add(c)
		restored.add(c)
	}
	if !reflect.DeepEqual(sampleValues(direct.finalize()), sampleValues(restored.finalize())) {
		t.Fatal("restore() diverges from the uninterrupted sample")
	}
}

// TestDirPartitionerBounds: partitions tile the file list and the clamped
// count never exceeds the file count.
func TestDirPartitionerBounds(t *testing.T) {
	dir, files := chaosCorpusDir(t, 200, 20, 5)
	p, err := NewDirPartitioner(dir, DirConfig{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Files() != files {
		t.Fatalf("partitioner sees %d files, wrote %d", p.Files(), files)
	}
	if got := p.Clamp(files + 5); got != files {
		t.Errorf("Clamp(%d) = %d, want %d", files+5, got, files)
	}
	if got := p.Clamp(0); got != 1 {
		t.Errorf("Clamp(0) = %d, want 1", got)
	}
	n := p.Clamp(3)
	total := 0
	for i := 0; i < n; i++ {
		src, err := p.Open(PartitionSpec{Index: i, Count: n})
		if err != nil {
			t.Fatal(err)
		}
		total += src.Files()
		fp, err := p.PartitionFingerprint(PartitionSpec{Index: i, Count: n})
		if err != nil {
			t.Fatal(err)
		}
		if fp != src.Fingerprint() {
			t.Errorf("partition %d: PartitionFingerprint disagrees with the opened source", i)
		}
	}
	if total != files {
		t.Errorf("partitions cover %d files, want %d", total, files)
	}
	if _, err := p.Open(PartitionSpec{Index: n, Count: n}); err == nil {
		t.Error("out-of-range partition index accepted")
	}
}

// TestPartialEncodeDecode: shard round trip preserves everything; a single
// flipped byte is rejected with an integrity error.
func TestPartialEncodeDecode(t *testing.T) {
	cols := randomColumns(200, 17)
	opts := Options{Workers: 2, Train: testTrainConfig(), SampleColumns: 30}
	p, err := CountPartial(context.Background(), NewSliceSource(cols), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePartial(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := DecodePartial(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if q.Fingerprint != p.Fingerprint || q.Columns != p.Columns || q.Values != p.Values {
		t.Errorf("decoded header differs: %+v vs %+v", q, p)
	}
	if !reflect.DeepEqual(sampleValues(q.smp.finalize()), sampleValues(p.smp.finalize())) {
		t.Error("decoded sample differs")
	}

	// Flip one payload byte: decode must fail the envelope check.
	torn := append([]byte(nil), buf.Bytes()...)
	torn[len(torn)/2] ^= 0x40
	if _, err := DecodePartial(bytes.NewReader(torn)); !errors.Is(err, envelope.ErrIntegrity) {
		t.Errorf("flipped shard decoded with err=%v, want envelope.ErrIntegrity", err)
	}
	// Truncate: also an integrity failure.
	if _, err := DecodePartial(bytes.NewReader(buf.Bytes()[:buf.Len()-9])); !errors.Is(err, envelope.ErrIntegrity) {
		t.Errorf("truncated shard decoded with err=%v, want envelope.ErrIntegrity", err)
	}
}

// TestPartitionedBuildMatchesSingleProcess: the distributed-build core
// property at the pipeline level, no HTTP involved — counting partitions
// separately, merging the partials, and finalizing produces the
// byte-identical model of one Run over the whole directory.
func TestPartitionedBuildMatchesSingleProcess(t *testing.T) {
	dir, _ := chaosCorpusDir(t, 600, 40, 31)
	for _, tc := range []struct {
		name          string
		sampleColumns int
	}{
		{"unbounded-sample", 0},
		{"bounded-sample", 120},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Workers: 2, Train: testTrainConfig(), SampleColumns: tc.sampleColumns}

			whole, err := NewDirSourceWith(dir, DirConfig{HasHeader: true})
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(context.Background(), whole, opts)
			if err != nil {
				t.Fatal(err)
			}

			part, err := NewDirPartitioner(dir, DirConfig{HasHeader: true})
			if err != nil {
				t.Fatal(err)
			}
			n := part.Clamp(3)
			var merged *Partial
			for i := 0; i < n; i++ {
				src, err := part.Open(PartitionSpec{Index: i, Count: n})
				if err != nil {
					t.Fatal(err)
				}
				p, err := CountPartial(context.Background(), src, opts)
				if err != nil {
					t.Fatal(err)
				}
				if merged == nil {
					merged = p
				} else if err := merged.Merge(p); err != nil {
					t.Fatal(err)
				}
			}
			if merged.Columns != want.Columns || merged.Values != want.Values {
				t.Errorf("partitioned count %d/%d differs from single-process %d/%d",
					merged.Columns, merged.Values, want.Columns, want.Values)
			}
			det, rep, err := merged.Finalize(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.TrainingExamples != want.Report.TrainingExamples {
				t.Errorf("training examples %d vs %d", rep.TrainingExamples, want.Report.TrainingExamples)
			}
			var got, ref bytes.Buffer
			if err := det.Save(&got); err != nil {
				t.Fatal(err)
			}
			if err := want.Detector.Save(&ref); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), ref.Bytes()) {
				t.Fatal("partitioned build model differs from single-process model")
			}
		})
	}
}

// TestCountParamsRoundTrip: reconstructing Options from wire-level
// CountParams preserves the build fingerprint — the contract the
// distributed-build protocol rests on.
func TestCountParamsRoundTrip(t *testing.T) {
	for _, opts := range []Options{
		{},
		{SampleColumns: 7},
		{Train: testTrainConfig(), SampleColumns: 120},
	} {
		cp := ResolveCountParams(opts)
		re := cp.Options(3)
		if got, want := BuildFingerprint("src", re), BuildFingerprint("src", opts); got != want {
			t.Errorf("opts %+v: reconstructed fingerprint %q, want %q", opts, got, want)
		}
	}
}
