package pipeline

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/corpus"
)

// A ColumnSource streams corpus columns one at a time, so the pipeline can
// train on collections far larger than memory. Sources are single-use: one
// Run consumes one source. Next returns io.EOF when the stream ends.
//
// Fingerprint identifies the source's content/configuration; it is stored
// in checkpoints so a resumed build refuses to continue over a different
// corpus than the one it started on.
type ColumnSource interface {
	Next() (*corpus.Column, error)
	Fingerprint() string
}

// SliceSource streams an in-memory column slice. It exists so the legacy
// Train path (whole corpus in memory) runs through the same pipeline.
type SliceSource struct {
	cols []*corpus.Column
	pos  int
}

// NewSliceSource returns a source over the given columns.
func NewSliceSource(cols []*corpus.Column) *SliceSource {
	return &SliceSource{cols: cols}
}

// Next implements ColumnSource.
func (s *SliceSource) Next() (*corpus.Column, error) {
	if s.pos >= len(s.cols) {
		return nil, io.EOF
	}
	c := s.cols[s.pos]
	s.pos++
	return c, nil
}

// Fingerprint implements ColumnSource: a cheap shape hash (column count,
// value count, FNV over sampled values).
func (s *SliceSource) Fingerprint() string {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(str string) {
		for i := 0; i < len(str); i++ {
			h ^= uint64(str[i])
			h *= 1099511628211
		}
	}
	values := 0
	for i, col := range s.cols {
		values += len(col.Values)
		if i%97 == 0 && len(col.Values) > 0 {
			mix(col.Values[0])
		}
	}
	return fmt.Sprintf("slice:%d:%d:%016x", len(s.cols), values, h)
}

// GeneratedSource streams synthetic profile columns without materializing
// them, standing in for the paper's 100M-column web corpora.
type GeneratedSource struct {
	profile corpus.Profile
	n       int
	seed    int64
	stream  *corpus.Stream
}

// NewGeneratedSource streams n columns of the profile from the seed.
func NewGeneratedSource(p corpus.Profile, n int, seed int64) *GeneratedSource {
	return &GeneratedSource{profile: p, n: n, seed: seed, stream: corpus.NewStream(p, seed)}
}

// Next implements ColumnSource.
func (g *GeneratedSource) Next() (*corpus.Column, error) {
	if g.stream.Generated() >= uint64(g.n) {
		return nil, io.EOF
	}
	return g.stream.Next(), nil
}

// Fingerprint implements ColumnSource.
func (g *GeneratedSource) Fingerprint() string {
	// Weights in sorted order so the fingerprint is map-order independent.
	keys := make([]string, 0, len(g.profile.Weights))
	for k := range g.profile.Weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "gen:%s:%d:%d:%d-%d:%g:%v:", g.profile.Name, g.n, g.seed,
		g.profile.MinRows, g.profile.MaxRows, g.profile.ErrorRate, g.profile.Labeled)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%g,", k, g.profile.Weights[k])
	}
	return sb.String()
}

// DirSource streams the columns of every CSV/TSV file under a directory
// (sorted by path for determinism), one file at a time — only a single
// table is ever resident. Hidden files and unknown extensions are skipped.
type DirSource struct {
	dir       string
	hasHeader bool
	files     []string
	sizes     []int64
	fileIdx   int
	pending   []*corpus.Column
}

// NewDirSource scans dir (recursively) for .csv and .tsv files.
func NewDirSource(dir string, hasHeader bool) (*DirSource, error) {
	s := &DirSource{dir: dir, hasHeader: hasHeader}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || strings.HasPrefix(info.Name(), ".") {
			return nil
		}
		switch strings.ToLower(filepath.Ext(path)) {
		case ".csv", ".tsv":
			s.files = append(s.files, path)
			s.sizes = append(s.sizes, info.Size())
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: scanning %s: %w", dir, err)
	}
	if len(s.files) == 0 {
		return nil, fmt.Errorf("pipeline: no .csv or .tsv files under %s", dir)
	}
	// Walk already yields lexical order; keep the invariant explicit.
	sort.Strings(s.files)
	return s, nil
}

// Files returns how many table files the source covers.
func (s *DirSource) Files() int { return len(s.files) }

// Next implements ColumnSource.
func (s *DirSource) Next() (*corpus.Column, error) {
	for len(s.pending) == 0 {
		if s.fileIdx >= len(s.files) {
			return nil, io.EOF
		}
		path := s.files[s.fileIdx]
		s.fileIdx++
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		comma := ','
		if strings.EqualFold(filepath.Ext(path), ".tsv") {
			comma = '\t'
		}
		cols, err := corpus.ReadTable(f, comma, s.hasHeader)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", path, err)
		}
		s.pending = cols
	}
	c := s.pending[0]
	s.pending = s.pending[1:]
	return c, nil
}

// Fingerprint implements ColumnSource: the relative file list with sizes.
// File contents are not hashed (that would cost a full extra read); a
// same-size in-place edit between checkpoint and resume goes undetected,
// which is documented in the resume semantics.
func (s *DirSource) Fingerprint() string {
	var sb strings.Builder
	sb.WriteString("dir:")
	for i, f := range s.files {
		rel, err := filepath.Rel(s.dir, f)
		if err != nil {
			rel = f
		}
		fmt.Fprintf(&sb, "%s=%d;", rel, s.sizes[i])
	}
	fmt.Fprintf(&sb, "header=%v", s.hasHeader)
	return sb.String()
}
