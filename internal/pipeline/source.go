package pipeline

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/retry"
)

// A ColumnSource streams corpus columns one at a time, so the pipeline can
// train on collections far larger than memory. Sources are single-use: one
// Run consumes one source. Next returns io.EOF when the stream ends.
//
// Fingerprint identifies the source's content/configuration; it is stored
// in checkpoints so a resumed build refuses to continue over a different
// corpus than the one it started on.
type ColumnSource interface {
	Next() (*corpus.Column, error)
	Fingerprint() string
}

// SliceSource streams an in-memory column slice. It exists so the legacy
// Train path (whole corpus in memory) runs through the same pipeline.
type SliceSource struct {
	cols []*corpus.Column
	pos  int
}

// NewSliceSource returns a source over the given columns.
func NewSliceSource(cols []*corpus.Column) *SliceSource {
	return &SliceSource{cols: cols}
}

// Next implements ColumnSource.
func (s *SliceSource) Next() (*corpus.Column, error) {
	if s.pos >= len(s.cols) {
		return nil, io.EOF
	}
	c := s.cols[s.pos]
	s.pos++
	return c, nil
}

// Fingerprint implements ColumnSource: a cheap shape hash (column count,
// value count, FNV over sampled values).
func (s *SliceSource) Fingerprint() string {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	mix := func(str string) {
		for i := 0; i < len(str); i++ {
			h ^= uint64(str[i])
			h *= 1099511628211
		}
	}
	values := 0
	for i, col := range s.cols {
		values += len(col.Values)
		if i%97 == 0 && len(col.Values) > 0 {
			mix(col.Values[0])
		}
	}
	return fmt.Sprintf("slice:%d:%d:%016x", len(s.cols), values, h)
}

// GeneratedSource streams synthetic profile columns without materializing
// them, standing in for the paper's 100M-column web corpora.
type GeneratedSource struct {
	profile corpus.Profile
	n       int
	seed    int64
	stream  *corpus.Stream
}

// NewGeneratedSource streams n columns of the profile from the seed.
func NewGeneratedSource(p corpus.Profile, n int, seed int64) *GeneratedSource {
	return &GeneratedSource{profile: p, n: n, seed: seed, stream: corpus.NewStream(p, seed)}
}

// Next implements ColumnSource.
func (g *GeneratedSource) Next() (*corpus.Column, error) {
	if g.stream.Generated() >= uint64(g.n) {
		return nil, io.EOF
	}
	return g.stream.Next(), nil
}

// Fingerprint implements ColumnSource.
func (g *GeneratedSource) Fingerprint() string {
	// Weights in sorted order so the fingerprint is map-order independent.
	keys := make([]string, 0, len(g.profile.Weights))
	for k := range g.profile.Weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "gen:%s:%d:%d:%d-%d:%g:%v:", g.profile.Name, g.n, g.seed,
		g.profile.MinRows, g.profile.MaxRows, g.profile.ErrorRate, g.profile.Labeled)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%g,", k, g.profile.Weights[k])
	}
	return sb.String()
}

// ErrBudgetExhausted is returned (wrapped, with the tally) when a DirSource
// has quarantined more files/columns than its error budget allows. At that
// point the corpus is presumed systematically broken — wrong delimiter,
// wrong directory, dying disk — and aborting beats silently training on a
// sliver of the data.
var ErrBudgetExhausted = errors.New("pipeline: error budget exhausted")

// DirConfig parameterizes a fault-tolerant DirSource.
type DirConfig struct {
	// HasHeader marks the first row of each table as a header.
	HasHeader bool
	// Retry is the transient-I/O retry policy (zero value: retry.Policy
	// defaults — 3 attempts, 50ms base backoff capped at 2s).
	Retry retry.Policy
	// MaxBadFiles is the absolute error budget: how many files/columns may
	// be quarantined before the build aborts.
	MaxBadFiles int
	// MaxBadFrac is the fractional error budget, as a fraction of the
	// scanned file count. The effective budget is
	// max(MaxBadFiles, MaxBadFrac×files); with both zero any persistent
	// failure aborts the build (the pre-fault-tolerance behavior).
	MaxBadFrac float64
	// QuarantineDir, when set, receives quarantine.jsonl — one JSON line
	// per quarantined file or column (path, error, byte offset). On
	// construction an existing manifest is reloaded and its files are
	// pre-skipped, so a resumed build sees the identical column stream
	// even when the original failures were load-order dependent.
	QuarantineDir string
	// Open replaces os.Open — the injection point for the faultfs chaos
	// harness. Nil means the real filesystem.
	Open func(path string) (io.ReadCloser, error)
	// MaxColumnCells quarantines any single column larger than this many
	// cells (default 1<<22): a mega-column is almost always a parse
	// artifact, and one of them can dominate the statistics of an entire
	// shard. Negative disables the guard.
	MaxColumnCells int
}

const defaultMaxColumnCells = 1 << 22

// quarantineManifest is the file name written under DirConfig.QuarantineDir.
const quarantineManifest = "quarantine.jsonl"

// QuarantineEntry is one line of the quarantine manifest.
type QuarantineEntry struct {
	// Kind is "file" (whole table quarantined) or "column".
	Kind string `json:"kind"`
	// Path is the table path relative to the source root.
	Path string `json:"path"`
	// Column is the column index within the file (kind=column).
	Column int `json:"column"`
	// Name is the column name (kind=column).
	Name string `json:"name,omitempty"`
	// Error is the failure that caused the quarantine.
	Error string `json:"error"`
	// Offset is the byte offset of a parse failure, when known.
	Offset int64 `json:"offset,omitempty"`
}

// DirSource streams the columns of every CSV/TSV file under a directory
// (sorted by path for determinism), one file at a time — only a single
// table is ever resident. Hidden files and unknown extensions are skipped.
//
// Ingestion is fault-tolerant: transient open/read errors (EAGAIN, EINTR,
// stale NFS handles, injected faults, ...) are retried with capped
// exponential backoff, persistently-failing files and garbage columns are
// quarantined under the configured error budget, and every quarantine is
// recorded in the manifest so operators can triage after the build.
type DirSource struct {
	dir       string
	hasHeader bool
	files     []string
	sizes     []int64
	fileIdx   int
	pending   []*corpus.Column

	cfg      DirConfig
	open     func(string) (io.ReadCloser, error)
	pol      retry.Policy
	maxCells int
	budget   int
	ctx      context.Context
	met      *sourceMetrics

	budgetUsed     int
	skippedFiles   uint64
	quarCols       uint64
	retries        uint64
	preskip        map[string]bool // rel paths quarantined by an earlier run
	seenFileQuar   map[string]bool
	seenColumnQuar map[string]bool
	manifest       *os.File
}

// NewDirSource scans dir (recursively) for .csv and .tsv files with the
// default (zero-tolerance, no-retry-policy-overrides) configuration.
func NewDirSource(dir string, hasHeader bool) (*DirSource, error) {
	return NewDirSourceWith(dir, DirConfig{HasHeader: hasHeader})
}

// NewDirSourceWith scans dir (recursively) for .csv and .tsv files under
// the given fault-tolerance configuration.
func NewDirSourceWith(dir string, cfg DirConfig) (*DirSource, error) {
	files, sizes, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	return newDirSource(dir, cfg, files, sizes)
}

// scanDir walks dir for .csv/.tsv files, returning paths (sorted, so the
// stream order — and any partitioning of it — is deterministic) and sizes.
func scanDir(dir string) (files []string, sizes []int64, err error) {
	bySize := map[string]int64{}
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || strings.HasPrefix(info.Name(), ".") {
			return nil
		}
		switch strings.ToLower(filepath.Ext(path)) {
		case ".csv", ".tsv":
			files = append(files, path)
			bySize[path] = info.Size()
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: scanning %s: %w", dir, err)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("pipeline: no .csv or .tsv files under %s", dir)
	}
	// Walk already yields lexical order; keep the invariant explicit.
	sort.Strings(files)
	sizes = make([]int64, len(files))
	for i, f := range files {
		sizes[i] = bySize[f]
	}
	return files, sizes, nil
}

// newDirSource builds a DirSource over an already-scanned file list.
func newDirSource(dir string, cfg DirConfig, files []string, sizes []int64) (*DirSource, error) {
	s := &DirSource{
		dir:            dir,
		hasHeader:      cfg.HasHeader,
		files:          files,
		sizes:          sizes,
		cfg:            cfg,
		pol:            cfg.Retry,
		ctx:            context.Background(),
		preskip:        map[string]bool{},
		seenFileQuar:   map[string]bool{},
		seenColumnQuar: map[string]bool{},
	}
	s.open = cfg.Open
	if s.open == nil {
		s.open = func(path string) (io.ReadCloser, error) { return os.Open(path) }
	}
	s.maxCells = cfg.MaxColumnCells
	if s.maxCells == 0 {
		s.maxCells = defaultMaxColumnCells
	}
	s.budget = cfg.MaxBadFiles
	if frac := int(cfg.MaxBadFrac * float64(len(s.files))); frac > s.budget {
		s.budget = frac
	}
	if cfg.QuarantineDir != "" {
		if err := s.openManifest(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openManifest loads any existing quarantine manifest (restoring the budget
// spend and the pre-skip set of a resumed build) and opens it for append.
func (s *DirSource) openManifest() error {
	if err := os.MkdirAll(s.cfg.QuarantineDir, 0o755); err != nil {
		return fmt.Errorf("pipeline: quarantine dir: %w", err)
	}
	path := filepath.Join(s.cfg.QuarantineDir, quarantineManifest)
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var e QuarantineEntry
			// A torn final line (crash mid-append) is skipped, not fatal.
			if json.Unmarshal([]byte(line), &e) != nil {
				continue
			}
			switch e.Kind {
			case "file":
				if !s.seenFileQuar[e.Path] {
					s.seenFileQuar[e.Path] = true
					s.preskip[e.Path] = true
					s.budgetUsed++
				}
			case "column":
				key := fmt.Sprintf("%s#%d", e.Path, e.Column)
				if !s.seenColumnQuar[key] {
					s.seenColumnQuar[key] = true
					s.budgetUsed++
				}
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("pipeline: reading quarantine manifest: %w", err)
	}
	// A resumed build whose restored spend already exceeds the (possibly
	// lowered-via-flags) budget must fail fast here, not proceed over budget
	// until the next fresh quarantine happens to trip checkBudget.
	if s.budgetUsed > s.budget {
		return fmt.Errorf("%w: quarantine manifest at %s restores %d quarantined files/columns, budget is %d",
			ErrBudgetExhausted, path, s.budgetUsed, s.budget)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("pipeline: quarantine manifest: %w", err)
	}
	s.manifest = f
	return nil
}

// BindContext attaches the build's context so retry backoff sleeps abort
// promptly on cancellation. Run calls this before counting starts.
func (s *DirSource) BindContext(ctx context.Context) {
	if ctx != nil {
		s.ctx = ctx
	}
}

// AttachMetrics wires the source's skip/quarantine/retry counters and
// per-file duration histograms onto the registry. Run calls this when
// Options.Metrics is set.
func (s *DirSource) AttachMetrics(met *sourceMetrics) { s.met = met }

// Files returns how many table files the source covers.
func (s *DirSource) Files() int { return len(s.files) }

// Quarantined reports how many files were skipped and how many individual
// columns were quarantined so far (including manifest-restored ones once
// their file is reached).
func (s *DirSource) Quarantined() (files, columns uint64) {
	return s.skippedFiles, s.quarCols
}

// Close releases the quarantine manifest handle. The pipeline closes
// sources it recognizes after a build; a DirSource abandoned mid-stream
// leaks only one descriptor.
func (s *DirSource) Close() error {
	if s.manifest != nil {
		err := s.manifest.Close()
		s.manifest = nil
		return err
	}
	return nil
}

// rel maps an absolute table path to its manifest key.
func (s *DirSource) rel(path string) string {
	r, err := filepath.Rel(s.dir, path)
	if err != nil {
		return path
	}
	return filepath.ToSlash(r)
}

// Next implements ColumnSource. Each call drains the quarantine-filtered
// columns of the current table before moving to the next file; a file that
// cannot be read after retries is quarantined and the stream continues,
// unless the error budget is exhausted.
func (s *DirSource) Next() (*corpus.Column, error) {
	for len(s.pending) == 0 {
		if s.fileIdx >= len(s.files) {
			return nil, io.EOF
		}
		path := s.files[s.fileIdx]
		s.fileIdx++
		rel := s.rel(path)
		if s.preskip[rel] {
			// Quarantined by an earlier run of this build; already counted
			// against the budget at manifest load.
			s.skippedFiles++
			s.met.fileSkipped()
			continue
		}
		cols, err := s.readFile(path)
		if err != nil {
			// A cancelled build surfaces here as a context error:
			// retry.Policy.Do returns ctx.Err() immediately once the context
			// is done, including mid-backoff. That is the build stopping, not
			// the file failing — quarantining it would permanently exclude a
			// healthy file from every resume (the manifest pre-skips it) and,
			// with a zero budget, mask the cancellation as ErrBudgetExhausted.
			// Rewind so the file is re-read on resume and surface the
			// cancellation so count() still writes its final checkpoint.
			if cerr := s.ctx.Err(); cerr != nil {
				s.fileIdx--
				return nil, cerr
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.fileIdx--
				return nil, err
			}
			if qerr := s.quarantineFile(rel, err); qerr != nil {
				return nil, qerr
			}
			continue
		}
		kept := cols[:0]
		for i, c := range cols {
			if verr := validateColumn(c, s.maxCells); verr != nil {
				if qerr := s.quarantineColumn(rel, i, c.Name, verr); qerr != nil {
					return nil, qerr
				}
				continue
			}
			kept = append(kept, c)
		}
		s.pending = kept
	}
	c := s.pending[0]
	s.pending = s.pending[1:]
	return c, nil
}

// readFile opens and parses one table under the retry policy: any attempt
// that fails with a transient error (including a transient read error
// surfacing through the CSV parser, or a failed Close that may indicate a
// truncated readahead) is re-opened and re-parsed from scratch.
func (s *DirSource) readFile(path string) ([]*corpus.Column, error) {
	comma := ','
	if strings.EqualFold(filepath.Ext(path), ".tsv") {
		comma = '\t'
	}
	pol := s.pol
	userOnRetry := pol.OnRetry
	pol.OnRetry = func(attempt int, err error, backoff time.Duration) {
		s.retries++
		s.met.ioRetry()
		if userOnRetry != nil {
			userOnRetry(attempt, err, backoff)
		}
	}
	var cols []*corpus.Column
	err := pol.Do(s.ctx, func() error {
		cols = nil
		t0 := time.Now()
		f, err := s.open(path)
		s.met.openDuration(time.Since(t0))
		if err != nil {
			return err
		}
		t0 = time.Now()
		cols, err = corpus.ReadTable(f, comma, s.hasHeader)
		cerr := f.Close()
		s.met.parseDuration(time.Since(t0))
		if err != nil {
			cols = nil
			return err
		}
		if cerr != nil {
			// A close error on the read path can mean the kernel could not
			// complete readahead; the parse result is suspect, so retry the
			// whole file rather than silently trusting it.
			cols = nil
			return fmt.Errorf("pipeline: closing %s: %w", path, cerr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cols, nil
}

// validateColumn screens one parsed column for binary garbage that would
// poison corpus statistics.
func validateColumn(c *corpus.Column, maxCells int) error {
	if maxCells > 0 && len(c.Values) > maxCells {
		return fmt.Errorf("column has %d cells, cap is %d (mega-column, likely a delimiter artifact)", len(c.Values), maxCells)
	}
	for _, v := range c.Values {
		if strings.IndexByte(v, 0) >= 0 {
			return errors.New("NUL byte in cell value (binary content)")
		}
	}
	return nil
}

// quarantineFile records a persistently-unreadable table and spends one
// budget unit. The returned error is non-nil only when the budget is gone
// or the manifest itself cannot be written.
func (s *DirSource) quarantineFile(rel string, cause error) error {
	s.skippedFiles++
	s.met.fileSkipped()
	entry := QuarantineEntry{Kind: "file", Path: rel, Error: cause.Error()}
	var pe *corpus.ParseError
	if errors.As(cause, &pe) {
		entry.Offset = pe.Offset
	}
	if !s.seenFileQuar[rel] {
		s.seenFileQuar[rel] = true
		s.budgetUsed++
		if err := s.appendManifest(entry); err != nil {
			return err
		}
	}
	return s.checkBudget(cause)
}

// quarantineColumn records one garbage column and spends one budget unit.
func (s *DirSource) quarantineColumn(rel string, idx int, name string, cause error) error {
	s.quarCols++
	s.met.columnQuarantined()
	key := fmt.Sprintf("%s#%d", rel, idx)
	if !s.seenColumnQuar[key] {
		s.seenColumnQuar[key] = true
		s.budgetUsed++
		if err := s.appendManifest(QuarantineEntry{
			Kind: "column", Path: rel, Column: idx, Name: name, Error: cause.Error(),
		}); err != nil {
			return err
		}
	}
	return s.checkBudget(cause)
}

// checkBudget fails the stream once quarantines exceed the configured
// allowance, wrapping the error that tipped it over.
func (s *DirSource) checkBudget(cause error) error {
	if s.budgetUsed > s.budget {
		return fmt.Errorf("%w: %d files/columns quarantined, budget is %d (last: %w)",
			ErrBudgetExhausted, s.budgetUsed, s.budget, cause)
	}
	return nil
}

// appendManifest durably appends one entry; each line is synced so a crash
// immediately after a quarantine decision cannot forget it (forgetting
// would shift the resumed column stream against the checkpoint).
func (s *DirSource) appendManifest(e QuarantineEntry) error {
	if s.manifest == nil {
		return nil
	}
	blob, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("pipeline: quarantine manifest: %w", err)
	}
	if _, err := s.manifest.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("pipeline: quarantine manifest: %w", err)
	}
	if err := s.manifest.Sync(); err != nil {
		return fmt.Errorf("pipeline: quarantine manifest: %w", err)
	}
	return nil
}

// ReadQuarantineManifest parses the manifest under a quarantine directory;
// it tolerates a torn trailing line. Missing manifest yields (nil, nil).
func ReadQuarantineManifest(quarantineDir string) ([]QuarantineEntry, error) {
	f, err := os.Open(filepath.Join(quarantineDir, quarantineManifest))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []QuarantineEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var e QuarantineEntry
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			continue
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// Fingerprint implements ColumnSource: the relative file list with sizes.
// File contents are not hashed (that would cost a full extra read); a
// same-size in-place edit between checkpoint and resume goes undetected,
// which is documented in the resume semantics. Quarantine decisions do not
// enter the fingerprint: the scan list is the corpus identity, and the
// manifest (reloaded on resume) keeps the delivered stream aligned.
func (s *DirSource) Fingerprint() string {
	return dirFingerprint(s.dir, s.files, s.sizes, s.hasHeader)
}

// dirFingerprint is the shared identity of a directory corpus (or a
// contiguous partition of one): the relative file list with sizes plus the
// header flag. DirSource and DirPartitioner both use it, so a partitioned
// build and a single-process build over the same directory agree on the
// corpus identity byte for byte.
func dirFingerprint(dir string, files []string, sizes []int64, hasHeader bool) string {
	var sb strings.Builder
	sb.WriteString("dir:")
	for i, f := range files {
		rel, err := filepath.Rel(dir, f)
		if err != nil {
			rel = f
		}
		fmt.Fprintf(&sb, "%s=%d;", rel, sizes[i])
	}
	fmt.Fprintf(&sb, "header=%v", hasHeader)
	return sb.String()
}

// A PartitionSpec names one contiguous slice of a partitioned directory
// corpus: partition Index of Count. The file range is derived, not carried —
// two machines that agree on (directory contents, Index, Count) derive the
// same range, which is all a distributed-build lease needs to put on the
// wire.
type PartitionSpec struct {
	Index, Count int
}

// DirPartitioner splits a directory corpus into contiguous partitions of
// its sorted file list. Contiguity is what keeps the unbounded
// (SampleColumns=0) distant-supervision sample exact: concatenating
// partitions in index order reproduces the single-process stream order.
type DirPartitioner struct {
	dir   string
	cfg   DirConfig
	files []string
	sizes []int64
}

// NewDirPartitioner scans dir once (the same scan DirSource performs) and
// prepares it for partitioned opens.
func NewDirPartitioner(dir string, cfg DirConfig) (*DirPartitioner, error) {
	files, sizes, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	return &DirPartitioner{dir: dir, cfg: cfg, files: files, sizes: sizes}, nil
}

// Files reports how many table files the directory holds.
func (p *DirPartitioner) Files() int { return len(p.files) }

// Fingerprint is the whole-directory corpus identity — identical to what a
// DirSource over the same directory and header flag reports.
func (p *DirPartitioner) Fingerprint() string {
	return dirFingerprint(p.dir, p.files, p.sizes, p.cfg.HasHeader)
}

// Clamp bounds a requested partition count to what the directory supports:
// at least 1, at most one partition per file.
func (p *DirPartitioner) Clamp(n int) int {
	if n < 1 {
		return 1
	}
	if n > len(p.files) {
		return len(p.files)
	}
	return n
}

// bounds derives the half-open file range [start, end) of one partition.
// Ranges tile the file list: partition i of n covers
// files[i*len/n : (i+1)*len/n).
func (p *DirPartitioner) bounds(spec PartitionSpec) (start, end int, err error) {
	n := spec.Count
	if n != p.Clamp(n) {
		return 0, 0, fmt.Errorf("pipeline: partition count %d invalid for %d files", n, len(p.files))
	}
	if spec.Index < 0 || spec.Index >= n {
		return 0, 0, fmt.Errorf("pipeline: partition index %d out of range [0,%d)", spec.Index, n)
	}
	return spec.Index * len(p.files) / n, (spec.Index + 1) * len(p.files) / n, nil
}

// Open returns a DirSource over one partition's files, with the
// partitioner's DirConfig. The source's own fingerprint covers only the
// partition's slice, so a shard counted from it is pinned to exactly these
// files at these sizes.
func (p *DirPartitioner) Open(spec PartitionSpec) (*DirSource, error) {
	start, end, err := p.bounds(spec)
	if err != nil {
		return nil, err
	}
	return newDirSource(p.dir, p.cfg, p.files[start:end], p.sizes[start:end])
}

// PartitionFingerprint is the corpus identity of one partition — what
// Open(spec).Fingerprint() would report, computed without constructing the
// source. The distributed coordinator uses it to verify an uploaded shard
// counted exactly the files the lease covered.
func (p *DirPartitioner) PartitionFingerprint(spec PartitionSpec) (string, error) {
	start, end, err := p.bounds(spec)
	if err != nil {
		return "", err
	}
	return dirFingerprint(p.dir, p.files[start:end], p.sizes[start:end], p.cfg.HasHeader), nil
}

// HasHeader reports the header flag the partitioner (and every partition it
// opens) runs under — the distributed-build coordinator forwards it to
// workers so both sides parse tables identically.
func (p *DirPartitioner) HasHeader() bool { return p.cfg.HasHeader }
