package pipeline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/corpus"
	"repro/internal/envelope"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Checkpoint shards reuse the model v2 integrity envelope (length header +
// CRC64 trailer) under their own magic, so a truncated or bit-flipped shard
// is rejected on resume instead of silently corrupting the build.
//
// CK/2 replaced the Algorithm-R reservoir fields with bottom-k sample
// entries (per-column selection priority + values). CK/1 shards fail the
// magic check and are treated like any other unreadable shard: resume falls
// back past them, and if nothing valid remains the operator is told to
// clear the directory.
var ckptMagic = []byte("AUTODETECT-CK/2\n")

// maxCheckpointPayload caps the declared payload length a resume will
// allocate for.
const maxCheckpointPayload = 1 << 32

// checkpoint is the durable state of a partially-built corpus pass: the
// merged statistics shard over columns [0, columns), the distant-supervision
// sample entries at the same boundary, and the fingerprint of
// (source, config) the build is only valid for.
type checkpoint struct {
	fingerprint string
	columns     uint64
	values      uint64
	entries     []sampleEntry
	stats       []*stats.LanguageStats
}

// splitmix64 is the finalizer used for sample priorities and retry jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// buildFingerprint ties a checkpoint or shard to the source content and to
// every configuration knob that shapes the counting stage or the sample.
// Worker count and checkpoint cadence are deliberately excluded: a build
// may be resumed with different parallelism and still converge to the
// byte-identical model.
func buildFingerprint(srcFP string, langs []pattern.Language, smoothing float64, sampleCap int, dsSeed int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v1|langs=")
	for _, l := range langs {
		fmt.Fprintf(&sb, "%d,", l.ID)
	}
	fmt.Fprintf(&sb, "|smooth=%g|sample=%d|dsseed=%d|src=%s", smoothing, sampleCap, dsSeed, srcFP)
	return sb.String()
}

// BuildFingerprint resolves opts exactly like Run and CountPartial do and
// returns the fingerprint a build over a source with fingerprint srcFP
// would carry. The distributed-build coordinator uses it to compute the
// expected identity of every partition's shard without opening the
// partition itself.
func BuildFingerprint(srcFP string, opts Options) string {
	tc, ds, langs, _ := resolveTrain(opts)
	return buildFingerprint(srcFP, langs, tc.Smoothing, opts.SampleColumns, ds.Seed)
}

func (c *checkpoint) marshal() ([]byte, error) {
	var buf bytes.Buffer
	var tmp [8]byte
	wu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf.Write(tmp[:])
	}
	wstr := func(s string) {
		wu64(uint64(len(s)))
		buf.WriteString(s)
	}
	wstr(c.fingerprint)
	wu64(c.columns)
	wu64(c.values)
	writeSampleEntries(&buf, c.entries)
	wu64(uint64(len(c.stats)))
	for _, ls := range c.stats {
		blob, err := ls.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("pipeline: serializing shard statistics: %w", err)
		}
		wu64(uint64(len(blob)))
		buf.Write(blob)
	}
	return buf.Bytes(), nil
}

func unmarshalCheckpoint(data []byte) (*checkpoint, error) {
	r := bytes.NewReader(data)
	var tmp [8]byte
	ru64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return 0, errors.New("pipeline: truncated checkpoint")
		}
		return binary.LittleEndian.Uint64(tmp[:]), nil
	}
	rstr := func() (string, error) {
		n, err := ru64()
		if err != nil {
			return "", err
		}
		if n > uint64(r.Len()) {
			return "", errors.New("pipeline: corrupt checkpoint string length")
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", errors.New("pipeline: truncated checkpoint")
		}
		return string(b), nil
	}
	c := &checkpoint{}
	var err error
	if c.fingerprint, err = rstr(); err != nil {
		return nil, err
	}
	if c.columns, err = ru64(); err != nil {
		return nil, err
	}
	if c.values, err = ru64(); err != nil {
		return nil, err
	}
	if c.entries, err = readSampleEntries(r, data); err != nil {
		return nil, err
	}
	nstats, err := ru64()
	if err != nil {
		return nil, err
	}
	if nstats > 4096 {
		return nil, errors.New("pipeline: implausible checkpoint language count")
	}
	c.stats = make([]*stats.LanguageStats, nstats)
	for i := range c.stats {
		bl, err := ru64()
		if err != nil {
			return nil, err
		}
		if bl > uint64(r.Len()) {
			return nil, errors.New("pipeline: corrupt checkpoint statistics length")
		}
		blob := make([]byte, bl)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, errors.New("pipeline: truncated checkpoint")
		}
		ls := &stats.LanguageStats{}
		if err := ls.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("pipeline: checkpoint statistics %d: %w", i, err)
		}
		c.stats[i] = ls
	}
	if r.Len() != 0 {
		return nil, errors.New("pipeline: trailing bytes in checkpoint")
	}
	return c, nil
}

// writeSampleEntries serializes the distant-supervision sample: entry count,
// then per entry the selection priority and the length-framed values. Only
// Values are persisted — distsup reads nothing else from a column — which
// checkpoint round-trip tests have relied on since CK/1.
func writeSampleEntries(buf *bytes.Buffer, entries []sampleEntry) {
	var tmp [8]byte
	wu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf.Write(tmp[:])
	}
	wu64(uint64(len(entries)))
	for _, e := range entries {
		wu64(e.pri)
		wu64(uint64(len(e.col.Values)))
		for _, v := range e.col.Values {
			wu64(uint64(len(v)))
			buf.WriteString(v)
		}
	}
}

// readSampleEntries is the inverse of writeSampleEntries; data is the whole
// payload, used only to bound implausible declared lengths.
func readSampleEntries(r *bytes.Reader, data []byte) ([]sampleEntry, error) {
	var tmp [8]byte
	ru64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return 0, errors.New("pipeline: truncated sample")
		}
		return binary.LittleEndian.Uint64(tmp[:]), nil
	}
	n, err := ru64()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(data)) {
		return nil, errors.New("pipeline: corrupt sample entry count")
	}
	entries := make([]sampleEntry, n)
	for i := range entries {
		if entries[i].pri, err = ru64(); err != nil {
			return nil, err
		}
		nv, err := ru64()
		if err != nil {
			return nil, err
		}
		if nv > uint64(len(data)) {
			return nil, errors.New("pipeline: corrupt sample column length")
		}
		vals := make([]string, nv)
		for j := range vals {
			vl, err := ru64()
			if err != nil {
				return nil, err
			}
			if vl > uint64(r.Len()) {
				return nil, errors.New("pipeline: corrupt sample value length")
			}
			b := make([]byte, vl)
			if _, err := io.ReadFull(r, b); err != nil {
				return nil, errors.New("pipeline: truncated sample")
			}
			vals[j] = string(b)
		}
		entries[i].col = &corpus.Column{Values: vals}
	}
	return entries, nil
}

// checkpointPath names the shard for a column boundary.
func checkpointPath(dir string, columns uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%012d.ckpt", columns))
}

// defaultKeepCheckpoints is how many newest shards survive pruning when
// Options.KeepLastCheckpoints is unset. Keeping more than one is what makes
// the corrupt-newest-shard fallback possible: a torn write (or bit rot) in
// the latest shard costs one checkpoint interval of recounting, not the
// whole build.
const defaultKeepCheckpoints = 3

// writeCheckpoint durably persists the shard — temp file, fsync, rename,
// parent-dir fsync via atomicio — and prunes all but the newest keepLast
// shards.
func writeCheckpoint(dir string, c *checkpoint, keepLast int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	payload, err := c.marshal()
	if err != nil {
		return err
	}
	final := checkpointPath(dir, c.columns)
	if err := atomicio.WriteTo(final, 0o644, func(w io.Writer) error {
		return envelope.Write(w, ckptMagic, payload)
	}); err != nil {
		return fmt.Errorf("pipeline: writing checkpoint: %w", err)
	}
	if keepLast <= 0 {
		keepLast = defaultKeepCheckpoints
	}
	// Prune superseded shards, oldest first, keeping the newest keepLast.
	// Shard names embed the zero-padded column boundary, so lexical order
	// is chronological order.
	shards := listCheckpoints(dir)
	for i := 0; i < len(shards)-keepLast; i++ {
		os.Remove(shards[i])
	}
	return nil
}

// listCheckpoints returns shard paths under dir, oldest first.
func listCheckpoints(dir string) []string {
	matches, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil {
		return nil
	}
	sort.Strings(matches)
	return matches
}

// loadLatestCheckpoint restores the newest *valid* shard in dir, verifying
// integrity, fingerprint and language identity. A CRC-corrupt or truncated
// shard — the signature of a torn write or bit rot — is skipped and the
// next-oldest shard is tried; the skipped paths are returned so the caller
// can surface them. Returns (nil, skipped, nil) when dir holds no
// checkpoint, and an error when every shard is corrupt (resuming from
// nothing would silently discard acknowledged progress).
//
// A shard for a different corpus or configuration stays a hard error, not a
// fallback candidate: that is operator error, and losing hours of counting
// silently would be worse than asking the operator to clear the directory.
func loadLatestCheckpoint(dir, fingerprint string, langs []pattern.Language) (*checkpoint, []string, error) {
	shards := listCheckpoints(dir)
	if len(shards) == 0 {
		return nil, nil, nil
	}
	var skipped []string
	for i := len(shards) - 1; i >= 0; i-- {
		path := shards[i]
		c, err := readCheckpoint(path)
		if err != nil {
			// Integrity failure: fall back to the previous shard.
			skipped = append(skipped, path)
			continue
		}
		if c.fingerprint != fingerprint {
			return nil, skipped, fmt.Errorf("pipeline: checkpoint %s was built over a different corpus or configuration; remove it (or point -checkpoint elsewhere) to start fresh", path)
		}
		if len(c.stats) != len(langs) {
			return nil, skipped, fmt.Errorf("pipeline: checkpoint %s covers %d languages, expected %d", path, len(c.stats), len(langs))
		}
		for j, ls := range c.stats {
			if ls.Language().ID != langs[j].ID {
				return nil, skipped, fmt.Errorf("pipeline: checkpoint %s language %d mismatch", path, j)
			}
		}
		return c, skipped, nil
	}
	return nil, skipped, fmt.Errorf("pipeline: all %d checkpoint shards in %s are corrupt or truncated; remove them to restart from scratch", len(shards), dir)
}

// readCheckpoint loads and integrity-checks a single shard file.
func readCheckpoint(path string) (*checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	defer f.Close()
	payload, err := envelope.Read(f, ckptMagic, maxCheckpointPayload)
	if err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint %s: %w", path, err)
	}
	c, err := unmarshalCheckpoint(payload)
	if err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint %s: %w", path, err)
	}
	return c, nil
}

// removeCheckpoints deletes every shard in dir; called after a successful
// build consumes them.
func removeCheckpoints(dir string) {
	for _, p := range listCheckpoints(dir) {
		os.Remove(p)
	}
}
