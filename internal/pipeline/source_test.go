package pipeline

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func drain(t *testing.T, src ColumnSource) []*corpus.Column {
	t.Helper()
	var out []*corpus.Column
	for {
		c, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
}

func TestDirSourceStreamsAllTables(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "x,y\n1,alpha\n2,beta\n")
	writeFile(t, dir, "sub/b.tsv", "k\tv\n10\tfoo\n")
	writeFile(t, dir, ".hidden.csv", "h\nnope\n")
	writeFile(t, dir, "notes.txt", "not a table")

	src, err := NewDirSource(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if src.Files() != 2 {
		t.Fatalf("Files() = %d, want 2 (hidden and non-table files skipped)", src.Files())
	}
	cols := drain(t, src)
	if len(cols) != 4 {
		t.Fatalf("got %d columns, want 4", len(cols))
	}
	// a.csv sorts before sub/b.tsv.
	if cols[0].Name != "x" || cols[1].Name != "y" || cols[2].Name != "k" || cols[3].Name != "v" {
		t.Errorf("column order/names: %q %q %q %q", cols[0].Name, cols[1].Name, cols[2].Name, cols[3].Name)
	}
	if got := cols[1].Values; len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Errorf("a.csv column y = %v", got)
	}
	if got := cols[3].Values; len(got) != 1 || got[0] != "foo" {
		t.Errorf("b.tsv column v = %v (TSV delimiter not honoured?)", got)
	}
	// Single use: the drained source stays drained.
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("drained source returned %v, want io.EOF", err)
	}
}

func TestDirSourceRejectsEmptyDir(t *testing.T) {
	if _, err := NewDirSource(t.TempDir(), true); err == nil {
		t.Fatal("expected error for directory without tables")
	}
}

func TestDirSourceFingerprint(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "x\n1\n2\n")

	s1, err := NewDirSource(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewDirSource(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Error("fingerprint not stable across scans of the same directory")
	}
	writeFile(t, dir, "b.csv", "y\n3\n")
	s3, err := NewDirSource(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Fingerprint() == s1.Fingerprint() {
		t.Error("fingerprint unchanged after adding a table")
	}
	s4, err := NewDirSource(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if s4.Fingerprint() == s3.Fingerprint() {
		t.Error("fingerprint ignores the header flag")
	}
}

func TestGeneratedSourceMatchesGenerate(t *testing.T) {
	p := corpus.WebProfile()
	const n, seed = 64, 99
	want := corpus.Generate(p, n, seed)
	got := drain(t, NewGeneratedSource(p, n, seed))
	if len(got) != len(want.Columns) {
		t.Fatalf("streamed %d columns, Generate produced %d", len(got), len(want.Columns))
	}
	for i := range got {
		if got[i].Domain != want.Columns[i].Domain {
			t.Fatalf("column %d domain %q != %q", i, got[i].Domain, want.Columns[i].Domain)
		}
		if len(got[i].Values) != len(want.Columns[i].Values) {
			t.Fatalf("column %d has %d values, want %d", i, len(got[i].Values), len(want.Columns[i].Values))
		}
		for j := range got[i].Values {
			if got[i].Values[j] != want.Columns[i].Values[j] {
				t.Fatalf("column %d value %d: %q != %q", i, j, got[i].Values[j], want.Columns[i].Values[j])
			}
		}
	}
	// Same parameters, same fingerprint; different seed, different one.
	if NewGeneratedSource(p, n, seed).Fingerprint() != NewGeneratedSource(p, n, seed).Fingerprint() {
		t.Error("generated fingerprint not deterministic")
	}
	if NewGeneratedSource(p, n, seed).Fingerprint() == NewGeneratedSource(p, n, seed+1).Fingerprint() {
		t.Error("generated fingerprint ignores the seed")
	}
}

func TestSliceSource(t *testing.T) {
	cols := []*corpus.Column{
		{Values: []string{"1", "2"}},
		{Values: []string{"a"}},
	}
	src := NewSliceSource(cols)
	got := drain(t, src)
	if len(got) != 2 || got[0] != cols[0] || got[1] != cols[1] {
		t.Fatalf("slice source did not stream the exact columns: %v", got)
	}
	if NewSliceSource(cols).Fingerprint() == NewSliceSource(cols[:1]).Fingerprint() {
		t.Error("slice fingerprint ignores column count")
	}
}
