package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/observe"
	"repro/internal/retry"
)

func TestDirSourceRetriesTransientOpens(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "x\n1\n2\n")
	writeFile(t, dir, "b.csv", "y\n3\n")

	fs := faultfs.New(faultfs.Config{Seed: 1, TransientRate: 1, RecoverAfter: 2})
	src, err := NewDirSourceWith(dir, DirConfig{
		HasHeader: true,
		Open:      fs.Open,
		Retry:     retry.Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := drain(t, src)
	if len(cols) != 2 {
		t.Fatalf("streamed %d columns, want 2 (faults must be retried, not dropped)", len(cols))
	}
	if fs.TransientInjected() != 4 {
		t.Errorf("injected %d transient faults, want 4 (2 per file)", fs.TransientInjected())
	}
	if files, colsQ := src.Quarantined(); files != 0 || colsQ != 0 {
		t.Errorf("Quarantined() = (%d, %d), want (0, 0): transient faults must not quarantine", files, colsQ)
	}
	if src.retries != 4 {
		t.Errorf("counted %d retries, want 4", src.retries)
	}
}

func TestDirSourceRetriesMidReadFaults(t *testing.T) {
	dir := t.TempDir()
	content := "x,y\n" + strings.Repeat("11,alpha\n", 40)
	writeFile(t, dir, "a.csv", content)

	fs := faultfs.New(faultfs.Config{
		Seed: 2, TransientRate: 1, RecoverAfter: 1, ReadFault: true, ReadFaultAfter: 16,
	})
	src, err := NewDirSourceWith(dir, DirConfig{
		HasHeader: true,
		Open:      fs.Open,
		Retry:     retry.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := drain(t, src)
	if len(cols) != 2 || len(cols[0].Values) != 40 {
		t.Fatalf("after mid-read fault recovery: %d columns, want complete table", len(cols))
	}
}

func TestDirSourceQuarantinesPermanentFailuresUnderBudget(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "bad.csv", "x\n1\n")
	writeFile(t, dir, "good.csv", "y\nok\n")
	qdir := t.TempDir()

	open := func(path string) (io.ReadCloser, error) {
		if strings.HasSuffix(path, "bad.csv") {
			return nil, fmt.Errorf("disk sector unreadable: %w", os.ErrPermission)
		}
		return os.Open(path)
	}
	src, err := NewDirSourceWith(dir, DirConfig{
		HasHeader:     true,
		Open:          open,
		MaxBadFiles:   1,
		QuarantineDir: qdir,
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := drain(t, src)
	if len(cols) != 1 || cols[0].Name != "y" {
		t.Fatalf("streamed %v, want just good.csv's column", cols)
	}
	files, _ := src.Quarantined()
	if files != 1 {
		t.Errorf("files skipped = %d, want 1", files)
	}
	entries, err := ReadQuarantineManifest(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Kind != "file" || entries[0].Path != "bad.csv" {
		t.Fatalf("manifest = %+v, want one file entry for bad.csv", entries)
	}
	if !strings.Contains(entries[0].Error, "unreadable") {
		t.Errorf("manifest entry lost the cause: %q", entries[0].Error)
	}
}

func TestDirSourceBudgetExhaustionAborts(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "x\n1\n")
	writeFile(t, dir, "b.csv", "y\n2\n")
	writeFile(t, dir, "c.csv", "z\n3\n")

	open := func(path string) (io.ReadCloser, error) { return nil, os.ErrPermission }
	src, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, Open: open, MaxBadFiles: 1})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for {
		_, lastErr = src.Next()
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", lastErr)
	}
	// The tipping cause must stay reachable through the budget wrapper so
	// callers can still triage it with errors.Is/As.
	if !errors.Is(lastErr, os.ErrPermission) {
		t.Errorf("budget error severed the cause chain: %v", lastErr)
	}
}

func TestDirSourceCancellationDoesNotQuarantine(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "x\n1\n")
	writeFile(t, dir, "b.csv", "y\n2\n")
	qdir := t.TempDir()

	// Zero budget: before the fix, a cancellation at a file boundary was
	// quarantined and surfaced as ErrBudgetExhausted instead of Canceled.
	src, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, QuarantineDir: qdir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	src.BindContext(ctx)

	// Drain a.csv's single column so the pending buffer is empty and the
	// next call lands exactly on the file boundary.
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	_, err = src.Next()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("cancellation misreported as budget exhaustion: %v", err)
	}
	if files, cols := src.Quarantined(); files != 0 || cols != 0 {
		t.Errorf("Quarantined() = (%d, %d) after cancellation, want (0, 0)", files, cols)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadQuarantineManifest(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("cancellation wrote quarantine entries: %+v", entries)
	}

	// A resumed source over the same quarantine dir must deliver both
	// files: the cancelled run excluded nothing.
	s2, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, QuarantineDir: qdir})
	if err != nil {
		t.Fatal(err)
	}
	if cols := drain(t, s2); len(cols) != 2 {
		t.Fatalf("resume streamed %d columns, want 2", len(cols))
	}
}

func TestDirSourceResumeOverBudgetFailsFast(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "x\n1\n")
	writeFile(t, dir, "b.csv", "y\n2\n")
	writeFile(t, dir, "c.csv", "z\n3\n")
	qdir := t.TempDir()

	// Run 1 quarantines two files under a budget of 2.
	open := func(path string) (io.ReadCloser, error) {
		if strings.HasSuffix(path, "c.csv") {
			return os.Open(path)
		}
		return nil, os.ErrPermission
	}
	s1, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, Open: open, MaxBadFiles: 2, QuarantineDir: qdir})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, s1)

	// Run 2 lowers the budget below the restored spend: construction must
	// fail fast, not proceed over budget until a fresh quarantine trips.
	_, err = NewDirSourceWith(dir, DirConfig{HasHeader: true, MaxBadFiles: 1, QuarantineDir: qdir})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("NewDirSourceWith with lowered budget = %v, want ErrBudgetExhausted", err)
	}

	// The original budget still resumes cleanly.
	s3, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, MaxBadFiles: 2, QuarantineDir: qdir})
	if err != nil {
		t.Fatal(err)
	}
	if cols := drain(t, s3); len(cols) != 1 {
		t.Fatalf("resume streamed %d columns, want 1", len(cols))
	}
}

func TestDirSourceFractionalBudget(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 10; i++ {
		writeFile(t, dir, fmt.Sprintf("f%02d.csv", i), "x\n1\n")
	}
	// 30% of 10 files = budget 3; fail exactly 3 → survives.
	failing := map[string]bool{"f01.csv": true, "f04.csv": true, "f07.csv": true}
	open := func(path string) (io.ReadCloser, error) {
		if failing[filepath.Base(path)] {
			return nil, os.ErrPermission
		}
		return os.Open(path)
	}
	src, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, Open: open, MaxBadFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	cols := drain(t, src)
	if len(cols) != 7 {
		t.Fatalf("streamed %d columns, want 7", len(cols))
	}
}

func TestDirSourceQuarantinesParseErrorWithOffset(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "broken.csv", "a,b\n\"unterminated\n")
	writeFile(t, dir, "fine.csv", "c\nok\n")
	qdir := t.TempDir()

	src, err := NewDirSourceWith(dir, DirConfig{
		HasHeader: true, MaxBadFiles: 1, QuarantineDir: qdir,
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := drain(t, src)
	if len(cols) != 1 || cols[0].Name != "c" {
		t.Fatalf("streamed %v, want fine.csv only", cols)
	}
	entries, err := ReadQuarantineManifest(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Kind != "file" {
		t.Fatalf("manifest = %+v", entries)
	}
	if entries[0].Offset == 0 {
		t.Error("parse-error quarantine entry carries no byte offset")
	}
}

func TestDirSourceQuarantinesGarbageColumns(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "t.csv", "good,binary\nalpha,\x00\x01\x02\nbeta,x\n")
	qdir := t.TempDir()

	src, err := NewDirSourceWith(dir, DirConfig{
		HasHeader: true, MaxBadFiles: 1, QuarantineDir: qdir,
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := drain(t, src)
	if len(cols) != 1 || cols[0].Name != "good" {
		t.Fatalf("streamed %v, want the clean column only", cols)
	}
	if _, q := src.Quarantined(); q != 1 {
		t.Errorf("columns quarantined = %d, want 1", q)
	}
	entries, err := ReadQuarantineManifest(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Kind != "column" || entries[0].Column != 1 || entries[0].Name != "binary" {
		t.Fatalf("manifest = %+v, want one column entry for index 1", entries)
	}
}

func TestDirSourceManifestPreskipKeepsStreamAligned(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "x\n1\n")
	writeFile(t, dir, "b.csv", "y\n2\n")
	writeFile(t, dir, "c.csv", "z\n3\n")
	qdir := t.TempDir()

	// Run 1: b.csv fails persistently and is quarantined.
	open1 := func(path string) (io.ReadCloser, error) {
		if strings.HasSuffix(path, "b.csv") {
			return nil, os.ErrPermission
		}
		return os.Open(path)
	}
	s1, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, Open: open1, MaxBadFiles: 2, QuarantineDir: qdir})
	if err != nil {
		t.Fatal(err)
	}
	cols1 := drain(t, s1)

	// Run 2 (resume): the fault healed, but the manifest must still skip
	// b.csv so the delivered stream matches the checkpointed one.
	s2, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, MaxBadFiles: 2, QuarantineDir: qdir})
	if err != nil {
		t.Fatal(err)
	}
	cols2 := drain(t, s2)
	if len(cols1) != len(cols2) {
		t.Fatalf("resumed stream has %d columns, original had %d", len(cols2), len(cols1))
	}
	for i := range cols1 {
		if cols1[i].Name != cols2[i].Name {
			t.Fatalf("column %d: %q vs %q — manifest pre-skip did not keep the stream aligned", i, cols1[i].Name, cols2[i].Name)
		}
	}
	// Budget continuity: the restored spend is visible, and no duplicate
	// manifest entries were appended.
	entries, err := ReadQuarantineManifest(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("manifest holds %d entries after resume, want 1 (no duplicates)", len(entries))
	}
}

// closeFailer wraps a reader whose Close fails once per path, transiently.
type closeFailer struct {
	io.Reader
	fail bool
}

func (c *closeFailer) Close() error {
	if c.fail {
		return retry.Transient(errors.New("deferred readahead error"))
	}
	return nil
}

func TestDirSourceRetriesFailedClose(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.csv", "x\n1\n")
	opens := 0
	open := func(path string) (io.ReadCloser, error) {
		opens++
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return &closeFailer{Reader: bytes.NewReader(data), fail: opens == 1}, nil
	}
	src, err := NewDirSourceWith(dir, DirConfig{
		HasHeader: true,
		Open:      open,
		Retry:     retry.Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := drain(t, src)
	if len(cols) != 1 {
		t.Fatalf("streamed %d columns, want 1", len(cols))
	}
	if opens != 2 {
		t.Errorf("opened %d times, want 2 (close failure must retry the file)", opens)
	}
}

func TestDirSourceFaultMetricsExported(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "bad.csv", "x\n\"broken\n")
	writeFile(t, dir, "good.csv", "y\nv\n"+strings.Repeat("w\n", 30))

	reg := observe.NewRegistry()
	src, err := NewDirSourceWith(dir, DirConfig{HasHeader: true, MaxBadFiles: 1})
	if err != nil {
		t.Fatal(err)
	}
	src.AttachMetrics(newSourceMetrics(reg))
	drain(t, src)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"autodetect_pipeline_files_skipped_total 1",
		"autodetect_pipeline_columns_quarantined_total 0",
		"autodetect_pipeline_io_retries_total 0",
		"autodetect_pipeline_file_open_seconds_count",
		"autodetect_pipeline_file_parse_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
