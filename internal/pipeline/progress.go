package pipeline

import (
	"fmt"
	"io"
	"time"
)

// Stage names the phases of a pipeline build, in execution order.
type Stage string

// Pipeline stages. Count dominates wall-clock on large corpora; Merge
// covers shard merging at checkpoint barriers and at stream end.
const (
	StageCount     Stage = "count"
	StageMerge     Stage = "merge"
	StageDistsup   Stage = "distsup"
	StageCalibrate Stage = "calibrate"
	StageSelect    Stage = "select"
)

// Progress is a point-in-time snapshot of a running build, delivered to
// Options.Progress.
type Progress struct {
	// Stage is the phase currently executing.
	Stage Stage
	// Columns and Values count corpus columns/cells folded so far,
	// including any restored from a checkpoint.
	Columns, Values uint64
	// ColumnsPerSec and ValuesPerSec are throughput over the build so far
	// (columns processed this run / elapsed; checkpoint-restored columns are
	// excluded from the rate).
	ColumnsPerSec, ValuesPerSec float64
	// Workers is the counting-stage parallelism.
	Workers int
	// Checkpoints counts checkpoint files written this run.
	Checkpoints int
	// Elapsed is time since Run started.
	Elapsed time.Duration
}

// StageTiming records how long one stage took.
type StageTiming struct {
	Stage    Stage
	Duration time.Duration
}

// stageClock accumulates per-stage wall-clock durations in execution order.
type stageClock struct {
	order []Stage
	total map[Stage]time.Duration
}

func newStageClock() *stageClock {
	return &stageClock{total: make(map[Stage]time.Duration)}
}

func (sc *stageClock) add(s Stage, d time.Duration) {
	if _, seen := sc.total[s]; !seen {
		sc.order = append(sc.order, s)
	}
	sc.total[s] += d
}

func (sc *stageClock) timings() []StageTiming {
	out := make([]StageTiming, 0, len(sc.order))
	for _, s := range sc.order {
		out = append(out, StageTiming{Stage: s, Duration: sc.total[s]})
	}
	return out
}

// WriteProgress renders a one-line human-readable progress report; CLI
// callers pass it (wrapped) as Options.Progress.
func WriteProgress(w io.Writer, p Progress) {
	switch p.Stage {
	case StageCount:
		fmt.Fprintf(w, "[%7.1fs] %-9s %d columns (%d values) | %.0f cols/s %.0f vals/s | %d workers | %d checkpoints\n",
			p.Elapsed.Seconds(), p.Stage, p.Columns, p.Values, p.ColumnsPerSec, p.ValuesPerSec, p.Workers, p.Checkpoints)
	default:
		fmt.Fprintf(w, "[%7.1fs] %-9s %d columns (%d values)\n",
			p.Elapsed.Seconds(), p.Stage, p.Columns, p.Values)
	}
}
