package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
)

var (
	benchOut  = flag.String("pipeline.benchout", "", "write the benchmark smoke result (BENCH_pipeline.json) to this path")
	benchCols = flag.Int("pipeline.benchcols", 4000, "corpus size, in columns, for the benchmark smoke")
)

// testTrainConfig keeps the candidate space small enough for fast tests:
// every 5th language of the 144, modest training-pair counts.
func testTrainConfig() core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	all := pattern.All()
	for i := 0; i < len(all); i += 5 {
		cfg.Languages = append(cfg.Languages, all[i])
	}
	ds := distsup.DefaultConfig()
	ds.PositivePairs, ds.NegativePairs = 1500, 1500
	cfg.DistSup = ds
	return cfg
}

var probePairs = [][2]string{
	{"2011-01-01", "2011/01/01"},
	{"2011-01-01", "2012-09-30"},
	{"1,000", "100"},
	{"3-2", "-"},
}

// TestRunMatchesLegacyTrain: the streaming pipeline must make the same
// detection decisions as the in-memory core.Train path — same selected
// languages, same thresholds, same pair verdicts — and worker count must
// not change the serialized model by a single byte.
func TestRunMatchesLegacyTrain(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 1200, 23)
	cfg := testTrainConfig()

	legacy, legacyRep, err := core.Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) *Result {
		t.Helper()
		res, err := Run(context.Background(), NewSliceSource(c.Columns), Options{
			Workers: workers,
			Train:   cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r4 := run(1), run(4)

	if r1.Columns != uint64(len(c.Columns)) {
		t.Errorf("pipeline counted %d columns, corpus has %d", r1.Columns, len(c.Columns))
	}
	if r1.Values != uint64(c.NumValues()) {
		t.Errorf("pipeline counted %d values, corpus has %d", r1.Values, c.NumValues())
	}
	if len(r1.Report.Selected) != len(legacyRep.Selected) {
		t.Fatalf("selected %v vs legacy %v", r1.Report.Selected, legacyRep.Selected)
	}
	for i := range legacyRep.Selected {
		if r1.Report.Selected[i] != legacyRep.Selected[i] {
			t.Fatalf("language %d differs: %v vs %v", i, r1.Report.Selected[i], legacyRep.Selected[i])
		}
	}
	if r1.Report.Coverage != legacyRep.Coverage {
		t.Errorf("coverage %d vs legacy %d", r1.Report.Coverage, legacyRep.Coverage)
	}
	if r1.Report.TrainingExamples != legacyRep.TrainingExamples {
		t.Errorf("training examples %d vs legacy %d", r1.Report.TrainingExamples, legacyRep.TrainingExamples)
	}
	for i, cal := range r1.Detector.Languages() {
		if want := legacy.Languages()[i].Theta; cal.Theta != want {
			t.Errorf("theta differs for %v: %v vs %v", cal.Stats.Language(), cal.Theta, want)
		}
	}
	for _, p := range probePairs {
		x, y := r1.Detector.ScorePair(p[0], p[1]), legacy.ScorePair(p[0], p[1])
		if x.Flagged != y.Flagged || x.Confidence != y.Confidence {
			t.Errorf("pair %v: pipeline %+v vs legacy %+v", p, x, y)
		}
	}

	var b1, b4 bytes.Buffer
	if err := r1.Detector.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r4.Detector.Save(&b4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b4.Bytes()) {
		t.Error("workers=1 and workers=4 produced different model bytes")
	}
}

// cancelAfter wraps a source and cancels a context once n columns have
// been delivered, simulating an interrupt mid-count.
type cancelAfter struct {
	src    ColumnSource
	n      int
	cancel context.CancelFunc
	count  int
}

func (c *cancelAfter) Next() (*corpus.Column, error) {
	if c.count == c.n {
		c.cancel()
	}
	c.count++
	return c.src.Next()
}

func (c *cancelAfter) Fingerprint() string { return c.src.Fingerprint() }

func TestRunCancellation(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 400, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, &cancelAfter{src: NewSliceSource(c.Columns), n: 120, cancel: cancel}, Options{
		Workers: 2,
		Train:   testTrainConfig(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCheckpointResume is the crash/recovery contract: kill a build
// mid-count, resume it from the checkpoint, and the final model must be
// byte-identical to an uninterrupted build.
func TestRunCheckpointResume(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 600, 31)
	cfg := testTrainConfig()
	ckdir := t.TempDir()
	opts := Options{
		Workers:         2,
		Train:           cfg,
		SampleColumns:   150, // exercise reservoir persistence, not just stats
		CheckpointDir:   ckdir,
		CheckpointEvery: 130,
	}

	// Interrupted build.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, &cancelAfter{src: NewSliceSource(c.Columns), n: 300, cancel: cancel}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	shards := listCheckpoints(ckdir)
	if len(shards) == 0 || len(shards) > defaultKeepCheckpoints {
		t.Fatalf("after interrupt: %d checkpoint files, want 1..%d (keep-K pruning)",
			len(shards), defaultKeepCheckpoints)
	}

	// Resume.
	resumed, err := Run(context.Background(), NewSliceSource(c.Columns), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ResumedColumns == 0 {
		t.Error("resume did not restore any columns from the checkpoint")
	}
	if resumed.Columns != uint64(len(c.Columns)) {
		t.Errorf("resumed build covered %d columns, want %d", resumed.Columns, len(c.Columns))
	}
	if left := listCheckpoints(ckdir); len(left) != 0 {
		t.Errorf("successful build left %d checkpoint files behind", len(left))
	}

	// Uninterrupted reference with identical options (fresh checkpoint dir).
	ref := opts
	ref.CheckpointDir = t.TempDir()
	uninterrupted, err := Run(context.Background(), NewSliceSource(c.Columns), ref)
	if err != nil {
		t.Fatal(err)
	}

	var got, want bytes.Buffer
	if err := resumed.Detector.Save(&got); err != nil {
		t.Fatal(err)
	}
	if err := uninterrupted.Detector.Save(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("resumed model differs from uninterrupted model")
	}
}

// TestRunRejectsForeignCheckpoint: resuming over a different corpus or
// configuration must fail loudly, not silently restart.
func TestRunRejectsForeignCheckpoint(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 300, 8)
	cfg := testTrainConfig()
	ckdir := t.TempDir()
	opts := Options{Train: cfg, CheckpointDir: ckdir, CheckpointEvery: 80}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, &cancelAfter{src: NewSliceSource(c.Columns), n: 150, cancel: cancel}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	other := corpus.Generate(corpus.WebProfile(), 280, 9)
	if _, err := Run(context.Background(), NewSliceSource(other.Columns), opts); err == nil {
		t.Fatal("resume over a different corpus should fail")
	}
}

func TestRunProgressAndStages(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 300, 3)
	var reports []Progress
	res, err := Run(context.Background(), NewSliceSource(c.Columns), Options{
		Workers:       2,
		Train:         testTrainConfig(),
		Progress:      func(p Progress) { reports = append(reports, p) },
		ProgressEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Stage]bool{}
	for _, p := range reports {
		seen[p.Stage] = true
		if p.Workers != 2 {
			t.Fatalf("progress reported %d workers, want 2", p.Workers)
		}
	}
	for _, s := range []Stage{StageCount, StageDistsup, StageCalibrate, StageSelect} {
		if !seen[s] {
			t.Errorf("no progress report for stage %s", s)
		}
	}
	timed := map[Stage]bool{}
	for _, st := range res.Stages {
		timed[st.Stage] = true
	}
	for _, s := range []Stage{StageCount, StageMerge, StageDistsup, StageCalibrate, StageSelect} {
		if !timed[s] {
			t.Errorf("no timing recorded for stage %s", s)
		}
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed time")
	}
	var buf bytes.Buffer
	WriteProgress(&buf, reports[len(reports)-1])
	if buf.Len() == 0 {
		t.Error("WriteProgress produced no output")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{}); err == nil {
		t.Error("nil source should error")
	}
	if _, err := Run(context.Background(), NewSliceSource(nil), Options{Train: testTrainConfig()}); err == nil {
		t.Error("empty source should error")
	}
}

// benchResult is one row of BENCH_pipeline.json.
type benchResult struct {
	Workers       int     `json:"workers"`
	Columns       uint64  `json:"columns"`
	Values        uint64  `json:"values"`
	CountSeconds  float64 `json:"count_seconds"`
	ColumnsPerSec float64 `json:"columns_per_sec"`
	ValuesPerSec  float64 `json:"values_per_sec"`
	TotalSeconds  float64 `json:"total_seconds"`
}

// TestBenchmarkSmoke measures counting throughput at 1, 4 and NumCPU
// workers and writes BENCH_pipeline.json. It only runs when
// -pipeline.benchout is set (CI does; plain `go test` skips it).
func TestBenchmarkSmoke(t *testing.T) {
	if *benchOut == "" {
		t.Skip("benchmark smoke disabled; set -pipeline.benchout to enable")
	}
	cfg := testTrainConfig()
	workerSet := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		workerSet = append(workerSet, n)
	}
	var rows []benchResult
	for _, w := range workerSet {
		src := NewGeneratedSource(corpus.WebProfile(), *benchCols, 77)
		res, err := Run(context.Background(), src, Options{Workers: w, Train: cfg, SampleColumns: 2000})
		if err != nil {
			t.Fatal(err)
		}
		var countSec float64
		for _, st := range res.Stages {
			if st.Stage == StageCount {
				countSec = st.Duration.Seconds()
			}
		}
		row := benchResult{
			Workers:      w,
			Columns:      res.Columns,
			Values:       res.Values,
			CountSeconds: countSec,
			TotalSeconds: res.Elapsed.Seconds(),
		}
		if countSec > 0 {
			row.ColumnsPerSec = float64(res.Columns) / countSec
			row.ValuesPerSec = float64(res.Values) / countSec
		}
		rows = append(rows, row)
		t.Logf("workers=%d: %.0f columns/sec (count stage %.2fs, total %.2fs)",
			w, row.ColumnsPerSec, countSec, row.TotalSeconds)
	}
	blob, err := json.MarshalIndent(map[string]any{
		"benchmark": "pipeline_count_throughput",
		"unit":      "columns/sec",
		"num_cpu":   runtime.NumCPU(),
		"results":   rows,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(*benchOut), 0o755); err != nil && filepath.Dir(*benchOut) != "." {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchOut, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
