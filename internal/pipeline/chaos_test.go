package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultfs"
	"repro/internal/retry"
)

var (
	chaosOut    = flag.String("pipeline.chaosout", "", "write the chaos-run summary (BENCH_chaos.json) to this path")
	chaosCycles = flag.Int("pipeline.chaoscycles", 3, "forced kill/resume cycles in the chaos property test")
	chaosRate   = flag.Float64("pipeline.chaosrate", 0.35, "transient fault rate for the chaos property test")
)

// killAfter wraps a DirSource and cancels the build's context once n
// columns have been requested, simulating a hard kill mid-count. It
// forwards the fault-tolerance wiring (context binding, quarantine stats)
// so Run treats it exactly like the underlying DirSource.
type killAfter struct {
	src    *DirSource
	n      int
	cancel context.CancelFunc
	count  int
}

func (k *killAfter) Next() (*corpus.Column, error) {
	k.count++
	if k.count == k.n {
		k.cancel()
	}
	return k.src.Next()
}

func (k *killAfter) Fingerprint() string             { return k.src.Fingerprint() }
func (k *killAfter) BindContext(ctx context.Context) { k.src.BindContext(ctx) }
func (k *killAfter) Quarantined() (uint64, uint64)   { return k.src.Quarantined() }
func (k *killAfter) Close() error                    { return k.src.Close() }

// chaosCorpusDir materializes a generated corpus as a directory of CSV
// shards so the chaos run exercises the real file-reading path.
func chaosCorpusDir(t *testing.T, numColumns, perFile int, seed int64) (string, int) {
	t.Helper()
	dir := t.TempDir()
	c := corpus.Generate(corpus.WebProfile(), numColumns, seed)
	n := 0
	for i := 0; i < len(c.Columns); i += perFile {
		end := i + perFile
		if end > len(c.Columns) {
			end = len(c.Columns)
		}
		var buf bytes.Buffer
		if err := corpus.WriteCSV(&buf, c.Columns[i:end]); err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("shard-%04d.csv", n)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		n++
	}
	return dir, n
}

// chaosSummary is the BENCH_chaos.json payload published by CI.
type chaosSummary struct {
	Columns              int     `json:"columns"`
	Files                int     `json:"files"`
	Runs                 int     `json:"runs"`
	Kills                int     `json:"kills"`
	Resumes              int     `json:"resumes"`
	TornShards           int     `json:"torn_shards"`
	CorruptShardsSkipped int     `json:"corrupt_shards_skipped"`
	TransientFaults      uint64  `json:"transient_faults_injected"`
	IORetries            uint64  `json:"io_retries"`
	FaultRate            float64 `json:"fault_rate"`
	ByteIdentical        bool    `json:"byte_identical"`
	Seconds              float64 `json:"seconds"`
}

// TestChaosKillResume is the end-to-end fault-tolerance property: a build
// over a faulty filesystem — transient open and mid-read failures on every
// run, a hard kill per cycle, and a torn (half-written) newest checkpoint
// after each kill — must converge, after >= chaosCycles forced kill/resume
// cycles, to a model byte-identical to a clean single-shot build over the
// same directory.
func TestChaosKillResume(t *testing.T) {
	const (
		numColumns = 480
		perFile    = 8
		ckptEvery  = 60
	)
	cycles := *chaosCycles
	if cycles < 1 {
		cycles = 1
	}
	dir, numFiles := chaosCorpusDir(t, numColumns, perFile, 101)
	cfg := testTrainConfig()
	baseOpts := Options{
		Workers:         3,
		Train:           cfg,
		SampleColumns:   120,
		CheckpointEvery: ckptEvery,
	}

	// Clean single-shot reference over the same directory, no faults.
	cleanSrc, err := NewDirSource(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	cleanOpts := baseOpts
	cleanOpts.CheckpointDir = t.TempDir()
	clean, err := Run(context.Background(), cleanSrc, cleanOpts)
	if err != nil {
		t.Fatalf("clean reference build: %v", err)
	}
	var wantModel bytes.Buffer
	if err := clean.Detector.Save(&wantModel); err != nil {
		t.Fatal(err)
	}

	// Chaos build: every run sees a fresh fault schedule (new seed), each of
	// the first `cycles` runs is killed mid-count, and after every kill the
	// newest checkpoint shard is torn in half to simulate a crash mid-write.
	sum := chaosSummary{
		Columns:   numColumns,
		Files:     numFiles,
		FaultRate: *chaosRate,
	}
	ckdir := t.TempDir()
	opts := baseOpts
	opts.CheckpointDir = ckdir
	// Kill points spaced so every cycle makes progress past at least one
	// checkpoint boundary beyond the previous cycle's.
	step := numColumns / (cycles + 1)
	if step <= ckptEvery {
		step = ckptEvery + ckptEvery/2
	}
	start := time.Now()
	var final *Result
	for run := 0; ; run++ {
		fs := faultfs.New(faultfs.Config{
			Seed:           uint64(7000 + run),
			TransientRate:  *chaosRate,
			RecoverAfter:   2,
			ReadFault:      run%2 == 1, // alternate open faults and mid-read faults
			ReadFaultAfter: 256,
		})
		src, err := NewDirSourceWith(dir, DirConfig{
			HasHeader: true,
			Open:      fs.Open,
			Retry:     retry.Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		killAt := (run + 1) * step
		if run >= cycles {
			killAt = 1 << 30 // final run: let it finish
		}
		res, err := Run(ctx, &killAfter{src: src, n: killAt, cancel: cancel}, opts)
		cancel()
		sum.Runs++
		sum.TransientFaults += fs.TransientInjected()
		sum.IORetries += src.retries
		if run > 0 {
			sum.Resumes++
			if err == nil && res.ResumedColumns == 0 {
				t.Errorf("run %d resumed nothing despite prior checkpoints", run)
			}
		}
		if err == nil {
			sum.CorruptShardsSkipped += res.CorruptCheckpointsSkipped
			final = res
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("chaos run %d died with a non-kill error: %v", run, err)
		}
		sum.Kills++
		if res != nil {
			sum.CorruptShardsSkipped += res.CorruptCheckpointsSkipped
		}
		if run >= cycles {
			t.Fatalf("final chaos run was killed (killAt=%d), harness bug", killAt)
		}
		// Crash mid-checkpoint-write: tear the newest shard in half. The
		// next run must fall back to the previous shard, not die.
		if shards := listCheckpoints(ckdir); len(shards) >= 2 {
			newest := shards[len(shards)-1]
			fi, err := os.Stat(newest)
			if err != nil {
				t.Fatal(err)
			}
			if err := faultfs.Tear(newest, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
			sum.TornShards++
		}
	}
	sum.Seconds = time.Since(start).Seconds()

	if sum.Kills < cycles {
		t.Errorf("forced %d kills, want >= %d", sum.Kills, cycles)
	}
	if sum.Resumes < cycles {
		t.Errorf("observed %d resumes, want >= %d", sum.Resumes, cycles)
	}
	if sum.TornShards == 0 {
		t.Error("no checkpoint shard was ever torn; the fallback path went unexercised")
	}
	if sum.CorruptShardsSkipped == 0 {
		t.Error("no corrupt shard was skipped on resume; torn writes were not detected")
	}
	if sum.TransientFaults == 0 {
		t.Error("fault injection produced no transient faults; raise -pipeline.chaosrate")
	}
	if final.Columns != uint64(numColumns) {
		t.Errorf("chaos build covered %d columns, want %d", final.Columns, numColumns)
	}
	if files, cols := final.FilesSkipped, final.ColumnsQuarantined; files != 0 || cols != 0 {
		t.Errorf("chaos build quarantined (%d files, %d columns); transient faults must all be retried away", files, cols)
	}

	var gotModel bytes.Buffer
	if err := final.Detector.Save(&gotModel); err != nil {
		t.Fatal(err)
	}
	sum.ByteIdentical = bytes.Equal(gotModel.Bytes(), wantModel.Bytes())
	if !sum.ByteIdentical {
		t.Error("model after chaos kill/resume cycles differs from the clean single-shot build")
	}
	t.Logf("chaos: %d runs, %d kills, %d resumes, %d torn shards, %d corrupt skipped, %d transient faults, %d retries, %.2fs",
		sum.Runs, sum.Kills, sum.Resumes, sum.TornShards, sum.CorruptShardsSkipped,
		sum.TransientFaults, sum.IORetries, sum.Seconds)

	if *chaosOut != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"benchmark": "pipeline_chaos_kill_resume",
			"result":    sum,
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if dir := filepath.Dir(*chaosOut); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(*chaosOut, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
