package pipeline

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/corpus"
	"repro/internal/core"
	"repro/internal/distsup"
	"repro/internal/envelope"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Shard files exchanged by the distributed build (internal/distbuild) carry
// a Partial inside the same integrity envelope as checkpoints, under their
// own magic: a torn upload or a bit flip in transit is rejected at decode,
// never merged.
var shardMagic = []byte("AUTODETECT-SH/1\n")

// Partial is the result of counting one corpus partition without
// finalizing: the per-language statistics, the partition's share of the
// distant-supervision sample, and the fingerprint of (partition source,
// training configuration) it was counted under. Partials from the
// partitions of one corpus merge into exactly the state a single-process
// build holds after its counting stage.
type Partial struct {
	// Fingerprint is buildFingerprint(source, config) — the coordinator
	// recomputes it per partition and refuses shards that disagree.
	Fingerprint string
	// Columns and Values count the corpus cells folded into this partial.
	Columns, Values uint64

	stats []*stats.LanguageStats
	smp   *sample
}

// CountPartial streams src to exhaustion through the same lock-free
// counting fan-out as Run, but stops at the merge barrier: no
// canonicalization, no distant supervision, no calibration. Options is
// resolved exactly like Run's, so a worker counting partition i of a corpus
// and a single-process build over the whole corpus agree on every
// configuration default. Checkpoint options are ignored — a distributed
// worker's unit of durability is the uploaded shard, and a lost worker's
// partition is recounted from scratch under its new lease.
func CountPartial(ctx context.Context, src ColumnSource, opts Options) (*Partial, error) {
	if src == nil {
		return nil, errors.New("pipeline: nil column source")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tc, ds, langs, workers := resolveTrain(opts)
	if bc, ok := src.(interface{ BindContext(context.Context) }); ok {
		bc.BindContext(ctx)
	}
	if am, ok := src.(interface{ AttachMetrics(*sourceMetrics) }); ok {
		am.AttachMetrics(newSourceMetrics(opts.Metrics))
	}
	if cl, ok := src.(io.Closer); ok {
		defer cl.Close()
	}

	p := &Partial{
		Fingerprint: buildFingerprint(src.Fingerprint(), langs, tc.Smoothing, opts.SampleColumns, ds.Seed),
		smp:         newSample(opts.SampleColumns, uint64(ds.Seed)),
	}
	p.stats = make([]*stats.LanguageStats, len(langs))
	for i, l := range langs {
		p.stats[i] = stats.NewLanguageStats(l, tc.Smoothing)
	}

	batches := make(chan []*corpus.Column, workers*2)
	partials := make([]*stats.Builder, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		partials[w] = stats.NewBuilder(langs, tc.Smoothing)
		wg.Add(1)
		go func(pb *stats.Builder) {
			defer wg.Done()
			for batch := range batches {
				for _, col := range batch {
					pb.AddColumn(col.Values)
				}
			}
		}(partials[w])
	}

	var batch []*corpus.Column
	var srcErr error
	for {
		if err := ctx.Err(); err != nil {
			srcErr = err
			break
		}
		col, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			srcErr = err
			break
		}
		p.smp.add(col)
		batch = append(batch, col)
		if len(batch) == columnBatchSize {
			batches <- batch
			batch = nil
		}
		p.Columns++
		p.Values += uint64(len(col.Values))
	}
	if len(batch) > 0 {
		batches <- batch
	}
	close(batches)
	wg.Wait()
	if srcErr != nil {
		if errors.Is(srcErr, ctx.Err()) && ctx.Err() != nil {
			return nil, fmt.Errorf("pipeline: partition count interrupted after %d columns: %w", p.Columns, ctx.Err())
		}
		return nil, fmt.Errorf("pipeline: reading source: %w", srcErr)
	}

	for _, pb := range partials {
		for i, ls := range pb.Stats() {
			if err := p.stats[i].Merge(ls); err != nil {
				return nil, fmt.Errorf("pipeline: merging shard: %w", err)
			}
		}
	}
	return p, nil
}

// Merge folds another partition's partial into the receiver. Statistics and
// bounded samples merge in any order; unbounded samples (SampleColumns=0)
// concatenate, so callers must merge partitions in index order to
// reproduce the single-stream column sequence. Fingerprints are NOT
// compared here — partitions of one build legitimately differ — the caller
// owns shard/build identity checks.
func (p *Partial) Merge(other *Partial) error {
	if other == nil {
		return errors.New("pipeline: cannot merge nil partial")
	}
	if len(p.stats) != len(other.stats) {
		return errors.New("pipeline: partials cover different language sets")
	}
	for i, ls := range p.stats {
		if err := ls.Merge(other.stats[i]); err != nil {
			return fmt.Errorf("pipeline: merging partial: %w", err)
		}
	}
	p.smp.merge(other.smp)
	p.Columns += other.Columns
	p.Values += other.Values
	return nil
}

// Finalize runs the post-counting stages over the (fully merged) partial
// and returns the trained detector: the distributed coordinator's last
// step, identical to what Run does after its own counting stage.
func (p *Partial) Finalize(ctx context.Context, opts Options) (*core.Detector, *core.TrainReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Columns == 0 {
		return nil, nil, errors.New("pipeline: no columns counted")
	}
	tc, ds, _, workers := resolveTrain(opts)
	return finalizeStats(ctx, p.stats, p.smp.finalize(), tc, ds, workers, nil, nil)
}

// SampleSize reports how many distant-supervision columns the partial holds.
func (p *Partial) SampleSize() int { return p.smp.size() }

// EncodePartial writes the partial as an integrity-enveloped shard: magic,
// length header, payload, CRC64 trailer. The payload embeds the sample's
// cap and seed so DecodePartial reconstructs a sample that keeps merging
// correctly.
func EncodePartial(w io.Writer, p *Partial) error {
	var buf bytes.Buffer
	var tmp [8]byte
	wu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf.Write(tmp[:])
	}
	wu64(uint64(len(p.Fingerprint)))
	buf.WriteString(p.Fingerprint)
	wu64(p.Columns)
	wu64(p.Values)
	wu64(uint64(int64(p.smp.cap)))
	wu64(p.smp.seed)
	writeSampleEntries(&buf, p.smp.entries())
	wu64(uint64(len(p.stats)))
	for _, ls := range p.stats {
		blob, err := ls.MarshalBinary()
		if err != nil {
			return fmt.Errorf("pipeline: serializing shard statistics: %w", err)
		}
		wu64(uint64(len(blob)))
		buf.Write(blob)
	}
	return envelope.Write(w, shardMagic, buf.Bytes())
}

// DecodePartial reads and integrity-checks one shard. Torn or bit-flipped
// shards fail with envelope.ErrIntegrity wrapped in the returned error.
func DecodePartial(rd io.Reader) (*Partial, error) {
	payload, err := envelope.Read(rd, shardMagic, maxCheckpointPayload)
	if err != nil {
		return nil, fmt.Errorf("pipeline: shard: %w", err)
	}
	r := bytes.NewReader(payload)
	var tmp [8]byte
	ru64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return 0, errors.New("pipeline: truncated shard")
		}
		return binary.LittleEndian.Uint64(tmp[:]), nil
	}
	p := &Partial{}
	fl, err := ru64()
	if err != nil {
		return nil, err
	}
	if fl > uint64(r.Len()) {
		return nil, errors.New("pipeline: corrupt shard fingerprint length")
	}
	fp := make([]byte, fl)
	if _, err := io.ReadFull(r, fp); err != nil {
		return nil, errors.New("pipeline: truncated shard")
	}
	p.Fingerprint = string(fp)
	if p.Columns, err = ru64(); err != nil {
		return nil, err
	}
	if p.Values, err = ru64(); err != nil {
		return nil, err
	}
	capv, err := ru64()
	if err != nil {
		return nil, err
	}
	seed, err := ru64()
	if err != nil {
		return nil, err
	}
	p.smp = newSample(int(int64(capv)), seed)
	entries, err := readSampleEntries(r, payload)
	if err != nil {
		return nil, err
	}
	p.smp.restore(entries)
	nstats, err := ru64()
	if err != nil {
		return nil, err
	}
	if nstats > 4096 {
		return nil, errors.New("pipeline: implausible shard language count")
	}
	p.stats = make([]*stats.LanguageStats, nstats)
	for i := range p.stats {
		bl, err := ru64()
		if err != nil {
			return nil, err
		}
		if bl > uint64(r.Len()) {
			return nil, errors.New("pipeline: corrupt shard statistics length")
		}
		blob := make([]byte, bl)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, errors.New("pipeline: truncated shard")
		}
		ls := &stats.LanguageStats{}
		if err := ls.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("pipeline: shard statistics %d: %w", i, err)
		}
		p.stats[i] = ls
	}
	if r.Len() != 0 {
		return nil, errors.New("pipeline: trailing bytes in shard")
	}
	return p, nil
}

// CountParams are the resolved configuration knobs that shape the counting
// stage and the build fingerprint — exactly the values a distributed-build
// coordinator must hand its workers for their partials to merge into the
// coordinator's expected model. Languages travel by ID (an index into
// pattern.All()), so distributed builds require language sets drawn from
// pattern.All(); pair counts, calibration targets, and memory budgets are
// deliberately absent because they only matter at finalization, which runs
// on the coordinator under its own full Options.
type CountParams struct {
	LanguageIDs   []int   `json:"language_ids"`
	Smoothing     float64 `json:"smoothing"`
	SampleColumns int     `json:"sample_columns"`
	DistSupSeed   int64   `json:"distsup_seed"`
}

// ResolveCountParams applies the same defaulting as Run and CountPartial
// and extracts the count-relevant knobs.
func ResolveCountParams(opts Options) CountParams {
	tc, ds, langs, _ := resolveTrain(opts)
	cp := CountParams{
		LanguageIDs:   make([]int, len(langs)),
		Smoothing:     tc.Smoothing,
		SampleColumns: opts.SampleColumns,
		DistSupSeed:   ds.Seed,
	}
	for i, l := range langs {
		cp.LanguageIDs[i] = l.ID
	}
	return cp
}

// Options reconstructs counting Options from the wire-level knobs. The
// guarantee — verified by TestCountParamsRoundTrip — is that for any opts,
// BuildFingerprint(fp, ResolveCountParams(opts).Options(w)) equals
// BuildFingerprint(fp, opts): a worker counting under the reconstruction
// produces a partial the coordinator accepts and merges byte-identically.
func (cp CountParams) Options(workers int) Options {
	langs := make([]pattern.Language, len(cp.LanguageIDs))
	for i, id := range cp.LanguageIDs {
		langs[i] = pattern.ByID(id)
	}
	ds := distsup.DefaultConfig()
	ds.Seed = cp.DistSupSeed
	return Options{
		Workers: workers,
		Train: core.TrainConfig{
			Languages: langs,
			Smoothing: cp.Smoothing,
			DistSup:   ds,
		},
		SampleColumns: cp.SampleColumns,
	}
}
