// Package pipeline implements the sharded, streaming corpus-statistics
// build of Auto-Detect: the map-reduce-style aggregation the paper runs
// over ~100M web-table columns (Section 3.4), scaled down to a single
// process with N lock-free counting workers.
//
// A build streams columns from a ColumnSource (CSV/TSV directories,
// generated corpora, or in-memory slices) through a fan-out of worker
// goroutines. Each worker folds its share of columns into a private partial
// accumulator — per-language pattern occurrence counts plus co-occurrence
// dictionaries — so the hot loop takes no locks. Partial shards are merged
// (stats.LanguageStats.Merge, sketch.CountMin.Merge) at checkpoint
// barriers and at stream end, then canonicalized so the final statistics
// are byte-for-byte reproducible regardless of worker count, scheduling,
// or checkpoint/resume boundaries. Distant-supervision columns are drawn
// by a deterministic mergeable bottom-k sample on the single-threaded
// ingestion side — a pure function of the column multiset — so the
// downstream calibration sees the same training pairs whatever the
// parallelism, and partial builds over corpus partitions
// (internal/distbuild) merge into the byte-identical sample of a
// single-process pass.
//
// Periodic checkpoints persist the merged shard, the sample, and the
// stream position inside the model-v2 integrity envelope; an interrupted
// build resumes from the last barrier and converges to the byte-identical
// model an uninterrupted build would have produced.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/observe"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Options parameterizes a pipeline build.
type Options struct {
	// Workers is the counting/calibration parallelism (default NumCPU).
	// Workers=1 reproduces the legacy single-threaded Train exactly.
	Workers int
	// Train carries the algorithm configuration; zero fields are defaulted
	// exactly like core.Train.
	Train core.TrainConfig
	// SampleColumns caps the bottom-k sample of columns kept for distant
	// supervision. 0 keeps every column (exact equivalence with the
	// in-memory Train path, at the cost of holding the corpus's values);
	// production builds over file-resident corpora should set a bound
	// (200k columns is plenty for 50k training pairs).
	SampleColumns int
	// CheckpointDir enables periodic checkpointing into this directory,
	// and resume-from-checkpoint when it already holds a valid shard.
	// Empty disables both.
	CheckpointDir string
	// CheckpointEvery is the column interval between checkpoint barriers
	// (default 100000).
	CheckpointEvery int
	// KeepCheckpoints leaves the final checkpoint shard on disk after a
	// successful build instead of consuming it.
	KeepCheckpoints bool
	// KeepLastCheckpoints is how many newest checkpoint shards survive
	// pruning (default 3). Keeping several is what allows resume to fall
	// back past a torn or bit-rotted newest shard.
	KeepLastCheckpoints int
	// Progress, when set, receives throughput snapshots every
	// ProgressEvery (default 2s) during counting plus one per stage
	// transition. Called from pipeline goroutines.
	Progress func(Progress)
	// ProgressEvery is the progress sampling period.
	ProgressEvery time.Duration
	// Metrics, when set, receives live build telemetry: per-stage
	// cumulative seconds, column/value totals, worker busy time and
	// checkpoint counts (see DESIGN.md "Observability" for the metric
	// names). The daemon passes its serving registry here so a scrape of
	// /metrics shows training progress next to request latencies.
	Metrics *observe.Registry
}

// Result is a completed pipeline build.
type Result struct {
	// Detector is the trained, ready-to-serve model.
	Detector *core.Detector
	// Report summarizes training like core.Train's report.
	Report *core.TrainReport
	// Columns and Values count the corpus cells folded into the model,
	// including checkpoint-restored ones.
	Columns, Values uint64
	// ResumedColumns is how many columns were restored from a checkpoint
	// rather than re-counted (0 for a fresh build).
	ResumedColumns uint64
	// CheckpointsWritten counts shards persisted during this run.
	CheckpointsWritten int
	// CorruptCheckpointsSkipped counts integrity-failed shards that resume
	// fell back past (torn writes, bit rot).
	CorruptCheckpointsSkipped int
	// FilesSkipped and ColumnsQuarantined report the error-budget spend of
	// fault-tolerant sources (zero for sources without a budget).
	FilesSkipped, ColumnsQuarantined uint64
	// Stages holds per-stage wall-clock timings in execution order.
	Stages []StageTiming
	// Elapsed is the total build time of this run.
	Elapsed time.Duration
}

const (
	defaultCheckpointEvery = 100000
	columnBatchSize        = 32
)

// resolveTrain applies the defaults Run documents: core.Train's training
// defaults, the full language space, distsup.DefaultConfig, and NumCPU
// workers. CountPartial applies the identical resolution, so a distributed
// worker and a single-process build starting from the same Options count
// under the same effective configuration.
func resolveTrain(opts Options) (tc core.TrainConfig, ds distsup.Config, langs []pattern.Language, workers int) {
	tc = opts.Train
	if tc.TargetPrecision == 0 {
		tc.TargetPrecision = 0.95
	}
	if tc.MemoryBudget == 0 {
		tc.MemoryBudget = 64 << 20
	}
	if tc.Smoothing == 0 {
		tc.Smoothing = stats.DefaultSmoothing
	}
	langs = tc.Languages
	if langs == nil {
		langs = pattern.All()
	}
	ds = tc.DistSup
	if ds.PositivePairs == 0 && ds.NegativePairs == 0 {
		ds = distsup.DefaultConfig()
	}
	workers = opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return tc, ds, langs, workers
}

// Run executes a full streaming build: count → merge → distant supervision
// → calibrate → select, and returns the trained detector.
//
// On context cancellation the build stops at a consistent column boundary,
// writes a final checkpoint when checkpointing is enabled, and returns the
// context error: re-running with the same source and options resumes and
// produces the byte-identical model of an uninterrupted build.
func Run(ctx context.Context, src ColumnSource, opts Options) (*Result, error) {
	startTime := time.Now()
	if src == nil {
		return nil, errors.New("pipeline: nil column source")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tc, ds, langs, workers := resolveTrain(opts)
	ckptEvery := opts.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = defaultCheckpointEvery
	}
	progressEvery := opts.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 2 * time.Second
	}

	b := &build{
		src:       src,
		langs:     langs,
		tc:        tc,
		ds:        ds,
		workers:   workers,
		ckptDir:   opts.CheckpointDir,
		ckptEvery: ckptEvery,
		clock:     newStageClock(),
		startTime: startTime,
		progress:  opts.Progress,
	}
	b.keepLast = opts.KeepLastCheckpoints
	b.met = newPipelineMetrics(opts.Metrics)
	b.met.setWorkers(workers)
	// Fault-tolerant sources get the build context (so retry backoffs abort
	// on cancellation) and the metrics registry (so budget burn is visible
	// on /metrics while the build runs).
	if bc, ok := src.(interface{ BindContext(context.Context) }); ok {
		bc.BindContext(ctx)
	}
	if am, ok := src.(interface{ AttachMetrics(*sourceMetrics) }); ok {
		am.AttachMetrics(newSourceMetrics(opts.Metrics))
	}
	if cl, ok := src.(io.Closer); ok {
		defer cl.Close()
	}
	b.fingerprint = buildFingerprint(src.Fingerprint(), langs, tc.Smoothing, opts.SampleColumns, ds.Seed)
	b.base = make([]*stats.LanguageStats, len(langs))
	for i, l := range langs {
		b.base[i] = stats.NewLanguageStats(l, tc.Smoothing)
	}
	b.smp = newSample(opts.SampleColumns, uint64(ds.Seed))

	// Resume from the newest valid shard, falling back past torn or
	// corrupted ones.
	if b.ckptDir != "" {
		ck, corrupt, err := loadLatestCheckpoint(b.ckptDir, b.fingerprint, langs)
		if err != nil {
			return nil, err
		}
		b.corruptSkipped = len(corrupt)
		if ck != nil {
			b.base = ck.stats
			b.smp.restore(ck.entries)
			b.columns.Store(ck.columns)
			b.values.Store(ck.values)
			b.resumed = ck.columns
		}
	}

	// Throughput reporter, active for the lifetime of the build.
	if b.progress != nil {
		tick := time.NewTicker(progressEvery)
		done := make(chan struct{})
		defer func() { tick.Stop(); close(done) }()
		go func() {
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					b.report()
				}
			}
		}()
	}

	// Publish restored totals before counting so a scrape during the
	// checkpoint skip phase already shows the resumed position.
	b.met.progress(b.columns.Load(), b.values.Load())

	if err := b.count(ctx); err != nil {
		return nil, err
	}
	if b.columns.Load() == 0 {
		return nil, errors.New("pipeline: source yielded no columns")
	}

	det, report, err := finalizeStats(ctx, b.base, b.smp.finalize(), tc, ds, workers, b.setStage, b.addStage)
	if err != nil {
		return nil, err
	}
	b.met.buildDone()

	if b.ckptDir != "" && !opts.KeepCheckpoints {
		removeCheckpoints(b.ckptDir)
	}
	res := &Result{
		Detector:                  det,
		Report:                    report,
		Columns:                   b.columns.Load(),
		Values:                    b.values.Load(),
		ResumedColumns:            b.resumed,
		CheckpointsWritten:        b.checkpointsWritten(),
		CorruptCheckpointsSkipped: b.corruptSkipped,
		Stages:                    b.clock.timings(),
		Elapsed:                   time.Since(startTime),
	}
	if q, ok := src.(interface{ Quarantined() (uint64, uint64) }); ok {
		res.FilesSkipped, res.ColumnsQuarantined = q.Quarantined()
	}
	return res, nil
}

// build carries the state of one Run.
type build struct {
	src         ColumnSource
	langs       []pattern.Language
	tc          core.TrainConfig
	ds          distsup.Config
	workers     int
	ckptDir     string
	ckptEvery   int
	fingerprint string

	base []*stats.LanguageStats
	smp  *sample

	keepLast int

	columns, values atomic.Uint64
	resumed         uint64
	ckptsWritten    int
	corruptSkipped  int

	clock     *stageClock
	met       *pipelineMetrics
	startTime time.Time

	progress func(Progress)
	// progMu guards stage and ckptsWritten and serializes progress
	// delivery, so Options.Progress never runs concurrently with itself.
	progMu sync.Mutex
	stage  Stage
}

// addStage accumulates a stage duration on the clock and, when a metrics
// registry is attached, on the exported per-stage counters — so a scrape
// during a long build sees stage progress live, not only at the end.
func (b *build) addStage(s Stage, d time.Duration) {
	b.clock.add(s, d)
	b.met.stage(s, d)
}

func (b *build) setStage(s Stage) {
	b.progMu.Lock()
	b.stage = s
	b.progMu.Unlock()
	b.report()
}

func (b *build) noteCheckpoint() {
	b.progMu.Lock()
	b.ckptsWritten++
	b.progMu.Unlock()
	b.met.checkpoint()
}

func (b *build) checkpointsWritten() int {
	b.progMu.Lock()
	defer b.progMu.Unlock()
	return b.ckptsWritten
}

// report delivers one progress snapshot.
func (b *build) report() {
	if b.progress == nil {
		return
	}
	elapsed := time.Since(b.startTime)
	cols, vals := b.columns.Load(), b.values.Load()
	var cps, vps float64
	if secs := elapsed.Seconds(); secs > 0 {
		cps = float64(cols-b.resumed) / secs
		// Value throughput rates only columns counted this run; restored
		// values are excluded the same way.
		vps = cps * avgOr(vals, cols)
	}
	b.progMu.Lock()
	defer b.progMu.Unlock()
	b.progress(Progress{
		Stage: b.stage, Columns: cols, Values: vals,
		ColumnsPerSec: cps, ValuesPerSec: vps,
		Workers: b.workers, Checkpoints: b.ckptsWritten, Elapsed: elapsed,
	})
}

func avgOr(values, columns uint64) float64 {
	if columns == 0 {
		return 0
	}
	return float64(values) / float64(columns)
}

// count runs the streaming fold: skip checkpoint-covered columns, then
// repeat rounds of (fan out to workers → barrier → merge → checkpoint)
// until the source drains or the context is cancelled.
func (b *build) count(ctx context.Context) error {
	b.setStage(StageCount)

	// Re-stream past the checkpoint boundary. The source re-delivers from
	// the start; covered columns are discarded without folding (their
	// counts and reservoir effects are already in the restored shard).
	// Sources that can reposition without materializing values — database
	// sources skip whole table.column walks this way — take the fast path;
	// whatever remainder they report falls through to the discard loop.
	skip := b.resumed
	if skipper, ok := b.src.(interface {
		SkipColumns(n uint64) (uint64, error)
	}); ok && skip > 0 {
		n, err := skipper.SkipColumns(skip)
		if err != nil {
			return fmt.Errorf("pipeline: skipping to checkpoint: %w", err)
		}
		if n > skip {
			return fmt.Errorf("pipeline: source skipped %d columns, asked for %d", n, skip)
		}
		skip -= n
	}
	for skipped := uint64(0); skipped < skip; skipped++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("pipeline: interrupted while skipping to checkpoint: %w", err)
		}
		if _, err := b.src.Next(); err == io.EOF {
			return fmt.Errorf("pipeline: checkpoint covers %d columns but source drained after %d; source changed since checkpoint", b.resumed, b.resumed-skip+skipped)
		} else if err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}

	drained := false
	for !drained {
		roundStart := time.Now()
		batches := make(chan []*corpus.Column, b.workers*2)
		partials := make([]*stats.Builder, b.workers)
		var wg sync.WaitGroup
		for w := 0; w < b.workers; w++ {
			partials[w] = stats.NewBuilder(b.langs, b.tc.Smoothing)
			wg.Add(1)
			go func(pb *stats.Builder) {
				defer wg.Done()
				// Busy time is measured around the fold, not the channel
				// receive, so busy ÷ (count-stage seconds × workers) reads
				// directly as worker utilization.
				var busy time.Duration
				for batch := range batches {
					t := time.Now()
					for _, col := range batch {
						pb.AddColumn(col.Values)
					}
					busy += time.Since(t)
				}
				b.met.busy(busy)
			}(partials[w])
		}

		var (
			roundCols int
			batch     []*corpus.Column
			srcErr    error
			cancelled bool
		)
		for b.ckptDir == "" || roundCols < b.ckptEvery {
			if ctx.Err() != nil {
				cancelled = true
				break
			}
			col, err := b.src.Next()
			if err == io.EOF {
				drained = true
				break
			}
			if err != nil {
				srcErr = err
				break
			}
			b.smp.add(col)
			batch = append(batch, col)
			if len(batch) == columnBatchSize {
				batches <- batch
				batch = nil
			}
			roundCols++
			b.columns.Add(1)
			b.values.Add(uint64(len(col.Values)))
		}
		if len(batch) > 0 {
			batches <- batch
		}
		close(batches)
		wg.Wait()
		b.addStage(StageCount, time.Since(roundStart))

		// Barrier: fold the round's private shards into the base.
		mergeStart := time.Now()
		for _, pb := range partials {
			for i, ls := range pb.Stats() {
				if err := b.base[i].Merge(ls); err != nil {
					return fmt.Errorf("pipeline: merging shard: %w", err)
				}
			}
		}
		b.addStage(StageMerge, time.Since(mergeStart))
		b.met.progress(b.columns.Load(), b.values.Load())

		// A context-aware source (DirSource aborts retry backoffs on
		// cancellation) reports the build's own cancellation as a read
		// error; fold that back into the cancelled path so the final
		// checkpoint is still written.
		if srcErr != nil && ctx.Err() != nil && errors.Is(srcErr, ctx.Err()) {
			cancelled = true
			srcErr = nil
		}
		if srcErr != nil {
			return fmt.Errorf("pipeline: reading source: %w", srcErr)
		}

		// Persist the barrier state: at every full round, and on
		// cancellation so the interrupted work is not lost.
		if b.ckptDir != "" && (!drained || cancelled) {
			if err := writeCheckpoint(b.ckptDir, &checkpoint{
				fingerprint: b.fingerprint,
				columns:     b.columns.Load(),
				values:      b.values.Load(),
				entries:     b.smp.entries(),
				stats:       b.base,
			}, b.keepLast); err != nil {
				return err
			}
			b.noteCheckpoint()
		}
		if cancelled {
			return fmt.Errorf("pipeline: interrupted after %d columns (checkpointed: %v): %w",
				b.columns.Load(), b.ckptDir != "", ctx.Err())
		}
	}
	return nil
}

// finalizeStats runs the post-counting stages shared by Run and the
// distributed-build coordinator: canonicalize the merged statistics, draw
// distant-supervision training pairs from the sampled columns, calibrate
// per-language thresholds, and select the final ensemble. The stage hooks
// are nil-safe; Run passes its progress/metrics plumbing through them.
func finalizeStats(ctx context.Context, base []*stats.LanguageStats, sampleCols []*corpus.Column,
	tc core.TrainConfig, ds distsup.Config, workers int,
	setStage func(Stage), addStage func(Stage, time.Duration)) (*core.Detector, *core.TrainReport, error) {
	if setStage == nil {
		setStage = func(Stage) {}
	}
	if addStage == nil {
		addStage = func(Stage, time.Duration) {}
	}

	// Canonicalize the merged shard so downstream results do not depend on
	// merge interleaving.
	t0 := time.Now()
	for _, ls := range base {
		if err := ls.Canonicalize(); err != nil {
			return nil, nil, err
		}
	}
	addStage(StageMerge, time.Since(t0))

	setStage(StageDistsup)
	t0 = time.Now()
	sample := &corpus.Corpus{Name: "pipeline-sample", Columns: sampleCols}
	data, err := distsup.Generate(sample, ds)
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: generating training data: %w", err)
	}
	addStage(StageDistsup, time.Since(t0))

	setStage(StageCalibrate)
	t0 = time.Now()
	cands, err := calibrateAll(ctx, base, data, workers, tc.TargetPrecision)
	if err != nil {
		return nil, nil, err
	}
	addStage(StageCalibrate, time.Since(t0))

	setStage(StageSelect)
	t0 = time.Now()
	det, report, err := core.BuildDetector(cands, tc.MemoryBudget, tc.Aggregation, tc.SketchRatio)
	if err != nil {
		return nil, nil, err
	}
	addStage(StageSelect, time.Since(t0))
	report.CandidateLanguages = len(base)
	report.TrainingExamples = len(data.Examples)
	report.CompatColumns = data.CompatColumns
	return det, report, nil
}

// calibrateAll derives per-language thresholds in parallel; results land at
// their language's index, so the outcome is order-deterministic.
func calibrateAll(ctx context.Context, base []*stats.LanguageStats, data *distsup.Data, workers int, targetPrecision float64) ([]*core.Calibration, error) {
	cands := make([]*core.Calibration, len(base))
	idx := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cal, err := core.Calibrate(base[i], data, targetPrecision)
				if err != nil {
					errs <- fmt.Errorf("pipeline: calibrating %v: %w", base[i].Language(), err)
					return
				}
				cands[i] = cal
			}
		}()
	}
feed:
	for i := range base {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		case err := <-errs:
			close(idx)
			wg.Wait()
			return nil, err
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline: interrupted during calibration: %w", err)
	}
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	for _, c := range cands {
		if c == nil {
			return nil, errors.New("pipeline: calibration incomplete")
		}
	}
	return cands, nil
}
