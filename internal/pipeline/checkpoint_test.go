package pipeline

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	"repro/internal/corpus"
	"repro/internal/faultfs"
)

// interrupt runs a checkpointed build and cancels it after n delivered
// columns, leaving shards behind for the resume tests.
func interrupt(t *testing.T, cols []*corpus.Column, opts Options, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, &cancelAfter{src: NewSliceSource(cols), n: n, cancel: cancel}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
}

// TestCheckpointFallbackOnTruncatedNewest is the torn-write regression: a
// newest shard truncated mid-file must not forfeit the build — resume must
// fall back to the previous valid shard and still converge to the
// byte-identical model of an uninterrupted build.
func TestCheckpointFallbackOnTruncatedNewest(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 600, 31)
	cfg := testTrainConfig()
	ckdir := t.TempDir()
	opts := Options{
		Workers:         2,
		Train:           cfg,
		SampleColumns:   150,
		CheckpointDir:   ckdir,
		CheckpointEvery: 120,
	}

	interrupt(t, c.Columns, opts, 400)
	shards := listCheckpoints(ckdir)
	if len(shards) < 2 {
		t.Fatalf("need at least 2 shards for a fallback test, got %d", len(shards))
	}

	// Tear the newest shard mid-file.
	newest := shards[len(shards)-1]
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.Tear(newest, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	resumed, err := Run(context.Background(), NewSliceSource(c.Columns), opts)
	if err != nil {
		t.Fatalf("resume past a torn newest shard failed: %v", err)
	}
	if resumed.CorruptCheckpointsSkipped != 1 {
		t.Errorf("CorruptCheckpointsSkipped = %d, want 1", resumed.CorruptCheckpointsSkipped)
	}
	if resumed.ResumedColumns == 0 {
		t.Error("fallback resume restored no columns")
	}
	if resumed.Columns != uint64(len(c.Columns)) {
		t.Errorf("resumed build covered %d columns, want %d", resumed.Columns, len(c.Columns))
	}

	ref := opts
	ref.CheckpointDir = t.TempDir()
	clean, err := Run(context.Background(), NewSliceSource(c.Columns), ref)
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := resumed.Detector.Save(&got); err != nil {
		t.Fatal(err)
	}
	if err := clean.Detector.Save(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("model after torn-checkpoint fallback differs from clean build")
	}
}

// TestCheckpointFallbackOnBitFlip: a CRC-corrupt (not just truncated)
// newest shard is also skipped.
func TestCheckpointFallbackOnBitFlip(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 500, 13)
	opts := Options{
		Workers:         2,
		Train:           testTrainConfig(),
		SampleColumns:   100,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 100,
	}
	interrupt(t, c.Columns, opts, 350)
	shards := listCheckpoints(opts.CheckpointDir)
	if len(shards) < 2 {
		t.Fatalf("need at least 2 shards, got %d", len(shards))
	}
	newest := shards[len(shards)-1]
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.FlipByte(newest, fi.Size()/3, 0x40); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), NewSliceSource(c.Columns), opts)
	if err != nil {
		t.Fatalf("resume past a bit-flipped shard failed: %v", err)
	}
	if res.CorruptCheckpointsSkipped != 1 {
		t.Errorf("CorruptCheckpointsSkipped = %d, want 1", res.CorruptCheckpointsSkipped)
	}
}

// TestCheckpointAllCorruptIsAnError: when every shard fails integrity,
// resume must refuse to silently restart from zero.
func TestCheckpointAllCorruptIsAnError(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 400, 17)
	opts := Options{
		Workers:         1,
		Train:           testTrainConfig(),
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 90,
	}
	interrupt(t, c.Columns, opts, 250)
	shards := listCheckpoints(opts.CheckpointDir)
	if len(shards) == 0 {
		t.Fatal("no shards written")
	}
	for _, s := range shards {
		if err := faultfs.Tear(s, 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(context.Background(), NewSliceSource(c.Columns), opts); err == nil {
		t.Fatal("resume over all-corrupt checkpoints should fail loudly")
	}
}

// TestCheckpointKeepK: pruning honors KeepLastCheckpoints and keeps the
// newest shards.
func TestCheckpointKeepK(t *testing.T) {
	dir := t.TempDir()
	mk := func(columns uint64) *checkpoint {
		return &checkpoint{
			fingerprint: "fp",
			columns:     columns,
		}
	}
	for i := uint64(1); i <= 5; i++ {
		if err := writeCheckpoint(dir, mk(i*100), 2); err != nil {
			t.Fatal(err)
		}
	}
	shards := listCheckpoints(dir)
	if len(shards) != 2 {
		t.Fatalf("kept %d shards, want 2", len(shards))
	}
	if shards[0] != checkpointPath(dir, 400) || shards[1] != checkpointPath(dir, 500) {
		t.Errorf("kept %v, want the newest two (400, 500)", shards)
	}
}
