package pipeline

import (
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/observe"
)

// TestRunExportsMetrics runs a small build against a registry and checks
// that every advertised family is populated: stage seconds, column/value
// totals, worker gauge, busy seconds and the build counter.
func TestRunExportsMetrics(t *testing.T) {
	reg := observe.NewRegistry()
	c := corpus.Generate(corpus.WebProfile(), 400, 7)
	res, err := Run(context.Background(), NewSliceSource(c.Columns), Options{
		Workers: 2,
		Train:   testTrainConfig(),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"autodetect_pipeline_builds_total 1",
		"autodetect_pipeline_workers 2",
		`autodetect_pipeline_stage_seconds_total{stage="count"}`,
		`autodetect_pipeline_stage_seconds_total{stage="merge"}`,
		`autodetect_pipeline_stage_seconds_total{stage="calibrate"}`,
		`autodetect_pipeline_stage_seconds_total{stage="select"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if got := reg.Gauge("autodetect_pipeline_columns", "").Value(); got != float64(res.Columns) {
		t.Errorf("columns gauge = %v, want %d", got, res.Columns)
	}
	if got := reg.Gauge("autodetect_pipeline_values", "").Value(); got != float64(res.Values) {
		t.Errorf("values gauge = %v, want %d", got, res.Values)
	}
	if got := reg.Counter("autodetect_pipeline_worker_busy_seconds_total", "").Value(); got <= 0 {
		t.Errorf("worker busy seconds = %v, want > 0", got)
	}
}

// TestRunWithoutMetricsRegistry pins the nil-registry path: no metrics
// option, no panic, identical result surface.
func TestRunWithoutMetricsRegistry(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 400, 7)
	res, err := Run(context.Background(), NewSliceSource(c.Columns), Options{
		Workers: 1,
		Train:   testTrainConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns != 400 {
		t.Errorf("columns = %d, want 400", res.Columns)
	}
}

// TestCheckpointMetric counts persisted shards through the registry.
func TestCheckpointMetric(t *testing.T) {
	reg := observe.NewRegistry()
	c := corpus.Generate(corpus.WebProfile(), 300, 7)
	_, err := Run(context.Background(), NewSliceSource(c.Columns), Options{
		Workers:         1,
		Train:           testTrainConfig(),
		Metrics:         reg,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("autodetect_pipeline_checkpoints_total", "").Value(); got < 2 {
		t.Errorf("checkpoints counter = %v, want >= 2", got)
	}
}
