package pipeline

import (
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/corpus"
)

// sample is the distant-supervision column sample.
//
// With cap <= 0 every column is kept in stream order — the exact-equivalence
// path that reproduces the in-memory core.Train byte for byte.
//
// With cap > 0 it is a deterministic *mergeable bottom-k* sketch: each
// column's priority is a seeded hash of its content, and the sample is the
// cap columns with the smallest (priority, content) keys. Unlike the
// Algorithm-R reservoir this replaced, the result is a pure function of the
// column *multiset* — independent of stream order, worker scheduling,
// checkpoint boundaries, and (crucially for distributed builds) of how the
// corpus was partitioned: merging per-partition bottom-k samples and
// re-selecting the cap smallest equals the bottom-k of the whole corpus.
type sample struct {
	cap  int
	seed uint64
	cols []*corpus.Column // cap <= 0: every column, stream order
	keep []sampleEntry    // cap > 0: max-heap of the cap smallest keys
}

// sampleEntry pairs a kept column with its selection priority.
type sampleEntry struct {
	pri uint64
	col *corpus.Column
}

func newSample(cap int, seed uint64) *sample {
	return &sample{cap: cap, seed: seed}
}

// add offers one column to the sample.
func (s *sample) add(c *corpus.Column) {
	if s.cap <= 0 {
		s.cols = append(s.cols, c)
		return
	}
	s.addEntry(sampleEntry{pri: colPriority(s.seed, c.Values), col: c})
}

// addEntry folds a pre-prioritized entry in — the merge path reuses it so a
// restored or uploaded entry never has its priority recomputed.
func (s *sample) addEntry(e sampleEntry) {
	if len(s.keep) < s.cap {
		s.keep = append(s.keep, e)
		s.siftUp(len(s.keep) - 1)
		return
	}
	if entryLess(e, s.keep[0]) {
		s.keep[0] = e
		s.siftDown(0)
	}
}

// merge folds another sample into the receiver. For bounded samples the
// result is the bottom-k of the union, in any merge order; for unbounded
// samples columns concatenate in call order, so callers merging corpus
// partitions must do so in partition-index order to reproduce the
// single-stream sequence.
func (s *sample) merge(other *sample) {
	if other == nil {
		return
	}
	if s.cap <= 0 {
		s.cols = append(s.cols, other.cols...)
		return
	}
	for _, e := range other.keep {
		s.addEntry(e)
	}
}

// finalize returns the sampled columns in their canonical order: stream
// order when unbounded, ascending (priority, content) otherwise — never
// heap layout, which is an implementation detail.
func (s *sample) finalize() []*corpus.Column {
	if s.cap <= 0 {
		return s.cols
	}
	entries := append([]sampleEntry(nil), s.keep...)
	sort.Slice(entries, func(i, j int) bool { return entryLess(entries[i], entries[j]) })
	cols := make([]*corpus.Column, len(entries))
	for i, e := range entries {
		cols[i] = e.col
	}
	return cols
}

// size reports how many columns the sample currently holds.
func (s *sample) size() int {
	if s.cap <= 0 {
		return len(s.cols)
	}
	return len(s.keep)
}

// entries exposes the kept set for serialization: (0, col) rows in stream
// order when unbounded, (pri, col) rows in heap order otherwise. Heap order
// is safe to persist because reconstruction re-heapifies and every
// observable result is layout-independent.
func (s *sample) entries() []sampleEntry {
	if s.cap <= 0 {
		out := make([]sampleEntry, len(s.cols))
		for i, c := range s.cols {
			out[i] = sampleEntry{col: c}
		}
		return out
	}
	return s.keep
}

// restore rebuilds the sample from serialized entries.
func (s *sample) restore(entries []sampleEntry) {
	if s.cap <= 0 {
		s.cols = make([]*corpus.Column, len(entries))
		for i, e := range entries {
			s.cols[i] = e.col
		}
		return
	}
	for _, e := range entries {
		s.addEntry(e)
	}
}

// entryLess is the total selection order: priority first, column content
// as the tiebreak. Content ties are genuinely interchangeable — the columns
// are byte-identical where it matters (distsup reads only Values).
func entryLess(a, b sampleEntry) bool {
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return compareValues(a.col.Values, b.col.Values) < 0
}

func compareValues(a, b []string) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// colPriority hashes a column's values (length-framed, so cell boundaries
// matter) into its selection priority.
func colPriority(seed uint64, values []string) uint64 {
	h := fnv.New64a()
	var frame [8]byte
	for _, v := range values {
		n := uint64(len(v))
		for i := range frame {
			frame[i] = byte(n >> (8 * i))
		}
		h.Write(frame[:])
		io.WriteString(h, v)
	}
	return splitmix64(h.Sum64() ^ seed)
}

// Max-heap plumbing over entryLess (root = largest kept key = first to be
// evicted).

func (s *sample) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(s.keep[parent], s.keep[i]) {
			return
		}
		s.keep[parent], s.keep[i] = s.keep[i], s.keep[parent]
		i = parent
	}
}

func (s *sample) siftDown(i int) {
	n := len(s.keep)
	for {
		largest := i
		if l := 2*i + 1; l < n && entryLess(s.keep[largest], s.keep[l]) {
			largest = l
		}
		if r := 2*i + 2; r < n && entryLess(s.keep[largest], s.keep[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		s.keep[i], s.keep[largest] = s.keep[largest], s.keep[i]
		i = largest
	}
}
