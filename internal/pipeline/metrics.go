package pipeline

import (
	"time"

	"repro/internal/observe"
)

// pipelineMetrics holds the build's metric handles on the registry passed
// through Options.Metrics. All families are registered idempotently, so
// repeated builds (the daemon retrains on every SIGHUP) accumulate into
// the same series.
type pipelineMetrics struct {
	builds      *observe.Counter    // autodetect_pipeline_builds_total
	stageSecs   *observe.CounterVec // autodetect_pipeline_stage_seconds_total{stage}
	columns     *observe.Gauge      // autodetect_pipeline_columns
	values      *observe.Gauge      // autodetect_pipeline_values
	workers     *observe.Gauge      // autodetect_pipeline_workers
	busySecs    *observe.Counter    // autodetect_pipeline_worker_busy_seconds_total
	checkpoints *observe.Counter    // autodetect_pipeline_checkpoints_total
}

func newPipelineMetrics(reg *observe.Registry) *pipelineMetrics {
	if reg == nil {
		return nil
	}
	return &pipelineMetrics{
		builds: reg.Counter("autodetect_pipeline_builds_total",
			"Completed pipeline builds since start."),
		stageSecs: reg.CounterVec("autodetect_pipeline_stage_seconds_total",
			"Cumulative wall-clock seconds per pipeline stage.", "stage"),
		columns: reg.Gauge("autodetect_pipeline_columns",
			"Corpus columns folded into the current build, including checkpoint-restored ones."),
		values: reg.Gauge("autodetect_pipeline_values",
			"Corpus cells folded into the current build."),
		workers: reg.Gauge("autodetect_pipeline_workers",
			"Counting/calibration worker parallelism of the current build."),
		busySecs: reg.Counter("autodetect_pipeline_worker_busy_seconds_total",
			"Seconds counting workers spent folding columns (busy time; compare against stage seconds × workers for utilization)."),
		checkpoints: reg.Counter("autodetect_pipeline_checkpoints_total",
			"Checkpoint shards persisted."),
	}
}

// stage records d seconds of stage s; nil-safe.
func (m *pipelineMetrics) stage(s Stage, d time.Duration) {
	if m != nil {
		m.stageSecs.With(string(s)).Add(d.Seconds())
	}
}

// progress reflects the live column/value totals; nil-safe.
func (m *pipelineMetrics) progress(columns, values uint64) {
	if m != nil {
		m.columns.Set(float64(columns))
		m.values.Set(float64(values))
	}
}

// busy accumulates worker fold time; nil-safe.
func (m *pipelineMetrics) busy(d time.Duration) {
	if m != nil {
		m.busySecs.Add(d.Seconds())
	}
}

// setWorkers records the build parallelism; nil-safe.
func (m *pipelineMetrics) setWorkers(n int) {
	if m != nil {
		m.workers.Set(float64(n))
	}
}

// checkpoint counts one persisted shard; nil-safe.
func (m *pipelineMetrics) checkpoint() {
	if m != nil {
		m.checkpoints.Inc()
	}
}

// buildDone counts one completed build; nil-safe.
func (m *pipelineMetrics) buildDone() {
	if m != nil {
		m.builds.Inc()
	}
}
