package pipeline

import (
	"time"

	"repro/internal/observe"
)

// pipelineMetrics holds the build's metric handles on the registry passed
// through Options.Metrics. All families are registered idempotently, so
// repeated builds (the daemon retrains on every SIGHUP) accumulate into
// the same series.
type pipelineMetrics struct {
	builds      *observe.Counter    // autodetect_pipeline_builds_total
	stageSecs   *observe.CounterVec // autodetect_pipeline_stage_seconds_total{stage}
	columns     *observe.Gauge      // autodetect_pipeline_columns
	values      *observe.Gauge      // autodetect_pipeline_values
	workers     *observe.Gauge      // autodetect_pipeline_workers
	busySecs    *observe.Counter    // autodetect_pipeline_worker_busy_seconds_total
	checkpoints *observe.Counter    // autodetect_pipeline_checkpoints_total
}

func newPipelineMetrics(reg *observe.Registry) *pipelineMetrics {
	if reg == nil {
		return nil
	}
	return &pipelineMetrics{
		builds: reg.Counter("autodetect_pipeline_builds_total",
			"Completed pipeline builds since start."),
		stageSecs: reg.CounterVec("autodetect_pipeline_stage_seconds_total",
			"Cumulative wall-clock seconds per pipeline stage.", "stage"),
		columns: reg.Gauge("autodetect_pipeline_columns",
			"Corpus columns folded into the current build, including checkpoint-restored ones."),
		values: reg.Gauge("autodetect_pipeline_values",
			"Corpus cells folded into the current build."),
		workers: reg.Gauge("autodetect_pipeline_workers",
			"Counting/calibration worker parallelism of the current build."),
		busySecs: reg.Counter("autodetect_pipeline_worker_busy_seconds_total",
			"Seconds counting workers spent folding columns (busy time; compare against stage seconds × workers for utilization)."),
		checkpoints: reg.Counter("autodetect_pipeline_checkpoints_total",
			"Checkpoint shards persisted."),
	}
}

// stage records d seconds of stage s; nil-safe.
func (m *pipelineMetrics) stage(s Stage, d time.Duration) {
	if m != nil {
		m.stageSecs.With(string(s)).Add(d.Seconds())
	}
}

// progress reflects the live column/value totals; nil-safe.
func (m *pipelineMetrics) progress(columns, values uint64) {
	if m != nil {
		m.columns.Set(float64(columns))
		m.values.Set(float64(values))
	}
}

// busy accumulates worker fold time; nil-safe.
func (m *pipelineMetrics) busy(d time.Duration) {
	if m != nil {
		m.busySecs.Add(d.Seconds())
	}
}

// setWorkers records the build parallelism; nil-safe.
func (m *pipelineMetrics) setWorkers(n int) {
	if m != nil {
		m.workers.Set(float64(n))
	}
}

// checkpoint counts one persisted shard; nil-safe.
func (m *pipelineMetrics) checkpoint() {
	if m != nil {
		m.checkpoints.Inc()
	}
}

// buildDone counts one completed build; nil-safe.
func (m *pipelineMetrics) buildDone() {
	if m != nil {
		m.builds.Inc()
	}
}

// sourceMetrics are the ingestion-side fault-tolerance families: budget
// burn (files skipped, columns quarantined), retry pressure, and per-file
// open/parse latency. Attached to fault-tolerant sources (DirSource) by
// Run, so /metrics shows budget consumption live during a build.
type sourceMetrics struct {
	filesSkipped *observe.Counter   // autodetect_pipeline_files_skipped_total
	colsQuar     *observe.Counter   // autodetect_pipeline_columns_quarantined_total
	ioRetries    *observe.Counter   // autodetect_pipeline_io_retries_total
	openSecs     *observe.Histogram // autodetect_pipeline_file_open_seconds
	parseSecs    *observe.Histogram // autodetect_pipeline_file_parse_seconds
}

func newSourceMetrics(reg *observe.Registry) *sourceMetrics {
	if reg == nil {
		return nil
	}
	return &sourceMetrics{
		filesSkipped: reg.Counter("autodetect_pipeline_files_skipped_total",
			"Table files skipped after quarantine (unreadable or unparseable past the retry policy)."),
		colsQuar: reg.Counter("autodetect_pipeline_columns_quarantined_total",
			"Individual columns quarantined for failing ingestion validation (binary garbage, mega-columns)."),
		ioRetries: reg.Counter("autodetect_pipeline_io_retries_total",
			"Transient I/O retries performed while opening/parsing table files."),
		openSecs: reg.Histogram("autodetect_pipeline_file_open_seconds",
			"Latency of table file open attempts.", observe.DefBuckets),
		parseSecs: reg.Histogram("autodetect_pipeline_file_parse_seconds",
			"Latency of table file parse attempts (read+close).", observe.DefBuckets),
	}
}

// fileSkipped counts one quarantined file; nil-safe.
func (m *sourceMetrics) fileSkipped() {
	if m != nil {
		m.filesSkipped.Inc()
	}
}

// columnQuarantined counts one quarantined column; nil-safe.
func (m *sourceMetrics) columnQuarantined() {
	if m != nil {
		m.colsQuar.Inc()
	}
}

// ioRetry counts one transient-I/O retry; nil-safe.
func (m *sourceMetrics) ioRetry() {
	if m != nil {
		m.ioRetries.Inc()
	}
}

// openDuration records one open attempt's latency; nil-safe.
func (m *sourceMetrics) openDuration(d time.Duration) {
	if m != nil {
		m.openSecs.Observe(d.Seconds())
	}
}

// parseDuration records one parse attempt's latency; nil-safe.
func (m *sourceMetrics) parseDuration(d time.Duration) {
	if m != nil {
		m.parseSecs.Observe(d.Seconds())
	}
}
