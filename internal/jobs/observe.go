package jobs

import "repro/internal/observe"

// jobBuckets extend the default latency buckets into the minutes range:
// a whole-spreadsheet audit is seconds-to-minutes, not milliseconds.
var jobBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// jobsObs bundles the manager's metric handles, registered idempotently
// on the configured registry (the daemon passes the process-wide one, so
// the jobs_* families land on the same /metrics page as serving and
// pipeline metrics).
type jobsObs struct {
	submitted *observe.Counter
	completed *observe.Counter
	failed    *observe.Counter
	cancelled *observe.Counter
	resumed   *observe.Counter
	depth     *observe.Gauge
	running   *observe.Gauge
	jobDur    *observe.Histogram
	colDur    *observe.Histogram
}

func newJobsObs(reg *observe.Registry) *jobsObs {
	if reg == nil {
		reg = observe.NewRegistry()
	}
	return &jobsObs{
		submitted: reg.Counter("autodetect_jobs_submitted_total",
			"Batch audit jobs accepted into the queue."),
		completed: reg.Counter("autodetect_jobs_completed_total",
			"Batch audit jobs that finished every column."),
		failed: reg.Counter("autodetect_jobs_failed_total",
			"Batch audit jobs that ended in failure (executor error or deadline)."),
		cancelled: reg.Counter("autodetect_jobs_cancelled_total",
			"Batch audit jobs cancelled by clients."),
		resumed: reg.Counter("autodetect_jobs_resumed_total",
			"Executor pickups that continued a job from a non-zero checkpoint (after a crash or drain)."),
		depth: reg.Gauge("autodetect_jobs_queue_depth",
			"Batch audit jobs waiting in the FIFO queue."),
		running: reg.Gauge("autodetect_jobs_running",
			"Batch audit jobs currently executing."),
		jobDur: reg.Histogram("autodetect_job_seconds",
			"End-to-end batch job execution time (per executor pickup).", jobBuckets),
		colDur: reg.Histogram("autodetect_job_column_seconds",
			"Per-column audit time inside batch jobs.", observe.DefBuckets),
	}
}
