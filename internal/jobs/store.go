package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/atomicio"
	"repro/internal/envelope"
)

// On-disk layout: one directory per job under the store root,
//
//	<dir>/<id>/spec.bin   — envelope(specMagic,  JSON Spec), written once
//	<dir>/<id>/state.bin  — envelope(stateMagic, JSON State), rewritten
//	                        atomically at every transition and checkpoint
//
// Both files go through atomicio (temp + fsync + rename + dir fsync), so
// a reader — a poll handler racing a checkpoint, or a recovery scan after
// a kill — only ever sees a complete old or complete new file. The CRC64
// envelope catches anything the filesystem tears anyway.
var (
	specMagic  = []byte("ADJSPEC1")
	stateMagic = []byte("ADJSTAT1")
)

// maxFilePayload bounds the declared payload length of job files (1 GiB),
// the same defense-in-depth cap the model and checkpoint readers use.
const maxFilePayload = 1 << 30

// Store persists job specs and states under one directory. Methods are
// safe for concurrent use on distinct jobs; the Manager serializes the
// writers of any single job.
type Store struct {
	dir string
}

// OpenStore creates (if needed) and opens the job directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

func (st *Store) jobDir(id string) string    { return filepath.Join(st.dir, id) }
func (st *Store) specPath(id string) string  { return filepath.Join(st.dir, id, "spec.bin") }
func (st *Store) statePath(id string) string { return filepath.Join(st.dir, id, "state.bin") }

// PutSpec durably writes the immutable job spec, creating the job dir.
func (st *Store) PutSpec(sp *Spec) error {
	if !validID(sp.ID) {
		return fmt.Errorf("jobs: invalid job id %q", sp.ID)
	}
	if err := os.MkdirAll(st.jobDir(sp.ID), 0o755); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return writeEnveloped(st.specPath(sp.ID), specMagic, sp)
}

// PutState atomically replaces the job's durable state — the per-column
// checkpoint write on the executor's hot path.
func (st *Store) PutState(s *State) error {
	if !validID(s.ID) {
		return fmt.Errorf("jobs: invalid job id %q", s.ID)
	}
	return writeEnveloped(st.statePath(s.ID), stateMagic, s)
}

// GetSpec loads and integrity-checks a job spec. Corruption surfaces as
// envelope.ErrIntegrity; a missing job as ErrNotFound.
func (st *Store) GetSpec(id string) (*Spec, error) {
	sp := new(Spec)
	if err := readEnveloped(st.specPath(id), specMagic, sp); err != nil {
		return nil, err
	}
	return sp, nil
}

// GetState loads and integrity-checks a job state.
func (st *Store) GetState(id string) (*State, error) {
	s := new(State)
	if err := readEnveloped(st.statePath(id), stateMagic, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Delete removes a job's directory entirely.
func (st *Store) Delete(id string) error {
	if !validID(id) {
		return ErrNotFound
	}
	return os.RemoveAll(st.jobDir(id))
}

// List returns every stored job ID (directories whose name parses as a
// job ID), sorted lexicographically for deterministic scans.
func (st *Store) List() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: scanning store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && validID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

func writeEnveloped(path string, magic []byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jobs: encoding %s: %w", filepath.Base(path), err)
	}
	return atomicio.WriteTo(path, 0o644, func(w io.Writer) error {
		return envelope.Write(w, magic, payload)
	})
}

func readEnveloped(path string, magic []byte, v any) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w (%s)", ErrNotFound, filepath.Base(filepath.Dir(path)))
		}
		return fmt.Errorf("jobs: %w", err)
	}
	defer f.Close()
	payload, err := envelope.Read(f, magic, maxFilePayload)
	if err != nil {
		return fmt.Errorf("jobs: %s: %w", path, err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		// A well-formed envelope with undecodable JSON is corruption too:
		// surface it as an integrity failure so recovery treats both alike.
		return fmt.Errorf("jobs: %s: %w: %v", path, envelope.ErrIntegrity, err)
	}
	return nil
}
