package jobs

import (
	"context"
	"sync"
	"testing"

	"repro/internal/observe"
)

// Satellite regression: a job submitted under trace A, interrupted by a
// drain, and resumed by a fresh Manager on the next Open must record its
// execution spans under trace A. The traceparent is persisted in the
// immutable spec, so the link survives process death — the only state
// the resumed process has is what's on disk.
func TestResumedJobCarriesSubmittingTrace(t *testing.T) {
	det := testDetector(t)
	table := testTable(6, 7)
	dir := t.TempDir()

	// Trace A: the submitting request's identity, as the HTTP layer would
	// plant it after parsing the client's traceparent header.
	ids := observe.NewIDSource(42)
	submitSC := observe.SpanContext{TraceID: ids.TraceID(), SpanID: ids.SpanID()}
	submitCtx := observe.ContextWithRemoteParent(context.Background(), submitSC)

	// First life: run without a tracer, kill the manager's context after
	// the second durable checkpoint, mid-job.
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := make(chan struct{})
	var once sync.Once
	m1, err := Open(ctx, Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
		CheckpointHook: func(id string, done int) {
			if done == 2 {
				once.Do(func() {
					cancel()
					close(interrupted)
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(submitCtx, table, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-interrupted
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The spec on disk must carry trace A verbatim.
	sp, err := m1.store.GetSpec(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Traceparent != submitSC.Traceparent() {
		t.Fatalf("persisted traceparent %q, want %q", sp.Traceparent, submitSC.Traceparent())
	}
	mid, err := m1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Status != StatusRunning || mid.ColumnsDone == 0 || mid.ColumnsDone >= len(table) {
		t.Fatalf("after drain: status=%s columns_done=%d", mid.Status, mid.ColumnsDone)
	}

	// Second life: a fresh manager — simulating the restarted process —
	// with a tracer whose recorder keeps every trace.
	tracer := observe.NewTracer(
		observe.NewFlightRecorder(observe.RecorderConfig{SampleEvery: 1}),
		observe.NewIDSource(7))
	m2 := openManager(t, context.Background(), Config{
		Dir: dir, Workers: 1, Model: modelFn(det), Tracer: tracer,
	})
	if m2.Recovered() != 1 {
		t.Fatalf("recovered %d jobs, want 1", m2.Recovered())
	}
	waitStatus(t, m2, st.ID, StatusDone)

	// The resumed execution must appear in the recorder under trace A,
	// as a child of the submitting request's span.
	tc, ok := tracer.Recorder().Trace(submitSC.TraceID.String())
	if !ok {
		t.Fatalf("resumed job's trace %s not in the flight recorder", submitSC.TraceID)
	}
	if tc.RemoteParent != submitSC.SpanID.String() {
		t.Fatalf("remote parent %q, want the submitting span %s", tc.RemoteParent, submitSC.SpanID)
	}
	root := tc.Spans[len(tc.Spans)-1]
	if root.Name != "job_execute" || root.SpanID != tc.RootSpanID {
		t.Fatalf("root span %q (id %s), want job_execute as RootSpanID %s",
			root.Name, root.SpanID, tc.RootSpanID)
	}
	if root.Attrs["job_id"] != st.ID || root.Attrs["resumed"] != "true" {
		t.Fatalf("root attrs %v, want job_id=%s resumed=true", root.Attrs, st.ID)
	}

	// Every remaining column check records a job_column span parented by
	// the resumed root, each naming its column.
	cols := 0
	for _, s := range tc.Spans {
		if s.Name != "job_column" {
			continue
		}
		cols++
		if s.ParentID != root.SpanID {
			t.Fatalf("column span %s parented by %q, want root %s", s.SpanID, s.ParentID, root.SpanID)
		}
		if s.Attrs["column"] == "" {
			t.Fatalf("column span %s missing column attr: %v", s.SpanID, s.Attrs)
		}
	}
	if want := len(table) - mid.ColumnsDone; cols != want {
		t.Fatalf("resumed trace has %d column spans, want %d (resumed from checkpoint %d)",
			cols, want, mid.ColumnsDone)
	}
}
