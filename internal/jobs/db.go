package jobs

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dbsource"
	"repro/internal/observe"
)

// Errors specific to database audit jobs, mapped by the HTTP layer onto
// 400 (ErrDatabase: the DSN is unreachable, the driver unknown, a table
// filter names a missing table) and 413 (ErrTooLarge).
var (
	// ErrDatabase wraps submission-time database failures.
	ErrDatabase = errors.New("jobs: database error")
	// ErrTooLarge reports a database whose row-count snapshot exceeds the
	// caller's value cap.
	ErrTooLarge = errors.New("jobs: database exceeds the value cap")
)

// DBSpec pins a whole-database audit at submission time: the connection
// coordinates, the introspected walk (every table.column with its row
// count, in audit order), and the schema hash the executor re-checks
// before every pickup. The pin is the resume guarantee: values are
// re-streamed from the live database on every execution, so a database
// mutated between checkpoint and resume would silently change findings —
// instead the hash mismatch fails the job loudly.
type DBSpec struct {
	Driver string `json:"driver"`
	// DSN is stored verbatim in the spec file. Credentials in a DSN
	// therefore land on disk under the jobs directory — use trust-based
	// auth or a credential-free DSN where that matters.
	DSN        string   `json:"dsn"`
	Tables     []string `json:"tables,omitempty"`
	SchemaHash string   `json:"schema_hash"`
	Units      []DBUnit `json:"units"`
}

// DBUnit is one pinned table.column with its submission-time row count.
type DBUnit struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Rows   int64  `json:"rows"`
}

// Name is the unit's qualified "table.column" column name.
func (u DBUnit) Name() string { return u.Table + "." + u.Column }

// DBRequest parameterizes SubmitDB.
type DBRequest struct {
	// Driver is the database/sql driver name (defaults to the in-tree
	// dbsource.DriverName).
	Driver string
	// DSN is the data source name (required).
	DSN string
	// Tables optionally restricts the audit to these tables.
	Tables []string
	// MinConfidence filters findings as in table submissions.
	MinConfidence float64
	// MaxValues, when > 0, rejects databases whose total row-count
	// snapshot exceeds it (ErrTooLarge) — the DB analogue of the HTTP
	// layer's MaxTableValues cap.
	MaxValues int
}

// SubmitDB validates, introspects, durably persists, and enqueues a
// whole-database audit job. Introspection happens here, synchronously, so
// a bad DSN or table filter fails the submission with ErrDatabase instead
// of a queued job that dies later; the resulting schema snapshot (units,
// row counts, hash) and the name/type-derived semantic-domain hints are
// pinned into the spec. Queue admission shares Submit's backpressure
// contract (ErrQueueFull, ErrClosed).
func (m *Manager) SubmitDB(ctx context.Context, req DBRequest) (*State, error) {
	if req.DSN == "" {
		return nil, fmt.Errorf("%w: empty DSN", ErrDatabase)
	}
	if req.Driver == "" {
		req.Driver = dbsource.DriverName
	}
	src, err := dbsource.NewSource(ctx, dbsource.Config{
		Driver:  req.Driver,
		DSN:     req.DSN,
		Tables:  req.Tables,
		Metrics: m.reg,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDatabase, err)
	}
	defer src.Close()

	db := &DBSpec{
		Driver:     req.Driver,
		DSN:        req.DSN,
		Tables:     req.Tables,
		SchemaHash: src.SchemaHash(),
	}
	hints := make(map[string]string)
	total := 0
	for i := 0; i < src.Len(); i++ {
		u := src.Unit(i)
		db.Units = append(db.Units, DBUnit{Table: u.Table, Column: u.Column, Rows: u.Rows})
		total += int(u.Rows)
		if u.Hint != "" {
			hints[u.Name()] = u.Hint
		}
	}
	if len(db.Units) == 0 {
		return nil, fmt.Errorf("%w: database has no columns to audit", ErrDatabase)
	}
	if req.MaxValues > 0 && total > req.MaxValues {
		return nil, fmt.Errorf("%w: %d values > cap %d", ErrTooLarge, total, req.MaxValues)
	}
	if len(hints) == 0 {
		hints = nil
	}
	return m.enqueueSpec(ctx, &Spec{DB: db, Hints: hints, MinConfidence: req.MinConfidence})
}

// columnFetcher abstracts where a job's column values come from: table
// jobs carry them in the spec, DB jobs stream them from the database at
// execution time. i indexes Spec.ColumnOrder.
type columnFetcher interface {
	// values returns column i's cell values; an error fails the job.
	values(ctx context.Context, i int) ([]string, error)
	// provenance returns the (source, table) stamped onto column i's
	// findings; empty for sources without one.
	provenance(i int) (source, table string)
	// close releases any held connection; always called after the pickup.
	close()
}

// newFetcher picks the fetcher for a spec. order is the precomputed
// Spec.ColumnOrder. The manager's metric registry rides along so DB page
// reads feed the shared autodetect_db_* families.
func (m *Manager) newFetcher(sp *Spec, order []string) columnFetcher {
	if sp.DB != nil {
		return &dbFetcher{sp: sp, metrics: m.reg}
	}
	return tableFetcher{sp: sp, order: order}
}

// tableFetcher serves values straight out of the spec.
type tableFetcher struct {
	sp    *Spec
	order []string
}

func (f tableFetcher) values(_ context.Context, i int) ([]string, error) {
	return f.sp.Columns[f.order[i]], nil
}
func (f tableFetcher) provenance(int) (string, string) { return "", "" }
func (f tableFetcher) close()                          {}

// dbFetcher re-opens the pinned database lazily on the first fetch of a
// pickup — a job that resumes at its final checkpoint with nothing left
// to do never touches the database at all — and verifies the live schema
// still hashes to the pinned value before serving any values.
type dbFetcher struct {
	sp      *Spec
	metrics *observe.Registry
	src     *dbsource.Source
}

func (f *dbFetcher) values(ctx context.Context, i int) ([]string, error) {
	if f.src == nil {
		src, err := dbsource.NewSource(ctx, dbsource.Config{
			Driver:  f.sp.DB.Driver,
			DSN:     f.sp.DB.DSN,
			Tables:  f.sp.DB.Tables,
			Metrics: f.metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("reopening database: %w", err)
		}
		if src.SchemaHash() != f.sp.DB.SchemaHash {
			hash := src.SchemaHash()
			src.Close()
			return nil, fmt.Errorf("database changed since submission (schema hash %s, pinned %s): refusing to produce findings that mix schema versions", hash, f.sp.DB.SchemaHash)
		}
		f.src = src
	}
	// The hash pin makes live unit i and pinned unit i the same column;
	// check anyway, because serving table A's values as table B's findings
	// is the one corruption worse than failing.
	want := f.sp.DB.Units[i].Name()
	if got := f.src.Unit(i).Name(); got != want {
		return nil, fmt.Errorf("unit %d is %s live but %s pinned despite matching schema hash", i, got, want)
	}
	return f.src.FetchUnit(ctx, i)
}

func (f *dbFetcher) provenance(i int) (string, string) {
	return f.sp.DB.Driver, f.sp.DB.Units[i].Table
}

func (f *dbFetcher) close() {
	if f.src != nil {
		f.src.Close()
		f.src = nil
	}
}
