package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/semantic"
)

// Cancellation causes, distinguished via context.Cause so the executor
// knows whether an interrupted job is terminally cancelled (client asked)
// or should stay resumable on disk (drain, process death).
var (
	errCancelRequested = errors.New("jobs: cancellation requested")
	errDraining        = errors.New("jobs: manager draining")
)

// Config parameterizes a Manager.
type Config struct {
	// Dir is the durable job directory (required).
	Dir string
	// Workers is the executor pool size (default 2).
	Workers int
	// MaxQueued bounds jobs waiting in the FIFO queue; submissions past
	// it fail with ErrQueueFull (default 64).
	MaxQueued int
	// JobTimeout bounds one executor pickup's wall-clock time; an expired
	// job transitions to failed (0 disables).
	JobTimeout time.Duration
	// ColumnFloor, when > 0, stops a job before a column whose remaining
	// deadline budget is below it: the column would be killed mid-score by
	// the JobTimeout anyway, so the executor fails fast at a checkpoint
	// boundary instead of burning a core on doomed work (0 disables).
	ColumnFloor time.Duration
	// Model snapshots the served model pair; called once per executor
	// pickup so a whole job scores against one consistent model even
	// across hot swaps (required; a nil detector fails the job).
	Model func() (*core.Detector, *semantic.Model)
	// Metrics receives the jobs_* families (nil gets a private registry).
	Metrics *observe.Registry
	// Tracer, when set, records executor spans into its flight recorder
	// under the submitting request's trace (persisted in the spec), and
	// attaches trace IDs as job_column_seconds exemplars.
	Tracer *observe.Tracer
	// Logger receives lifecycle events (nil discards).
	Logger *slog.Logger
	// CheckpointHook, when set, runs after every durable per-column
	// checkpoint. It exists for tests — the chaos harness uses it to
	// trigger faultfs kill switches at exact checkpoint boundaries — and
	// must not block in production use.
	CheckpointHook func(jobID string, columnsDone int)
}

// Manager owns the bounded FIFO queue, the worker pool, and the durable
// store. Open recovers persisted jobs and starts the workers; Close
// drains them, leaving running jobs checkpointed for the next Open.
type Manager struct {
	cfg   Config
	store *Store
	obs   *jobsObs
	reg   *observe.Registry

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	queue      chan string
	wg         sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	depth     int // jobs currently in the queue channel
	seq       uint64
	running   map[string]context.CancelCauseFunc
	recovered int
}

// Open opens the durable store under cfg.Dir, re-enqueues every
// non-terminal job in submission order, and starts the worker pool. The
// workers stop when ctx is cancelled or Close is called; either way,
// in-flight jobs stay checkpointed and resume on the next Open.
func Open(ctx context.Context, cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir is required")
	}
	if cfg.Model == nil {
		return nil, errors.New("jobs: Config.Model is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = observe.NewRegistry()
	}
	m := &Manager{
		cfg:     cfg,
		store:   store,
		obs:     newJobsObs(reg),
		reg:     reg,
		running: make(map[string]context.CancelCauseFunc),
	}
	m.baseCtx, m.baseCancel = context.WithCancelCause(ctx)

	requeue, err := m.recover()
	if err != nil {
		return nil, err
	}
	// The channel must hold every recovered job plus a full new-submission
	// budget, so recovery can never block and admission (checked against
	// depth under mu) can never block either.
	m.queue = make(chan string, cfg.MaxQueued+len(requeue))
	for _, id := range requeue {
		m.queue <- id
	}
	m.depth = len(requeue)
	m.recovered = len(requeue)
	m.obs.depth.Set(float64(m.depth))

	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	if len(requeue) > 0 {
		m.logInfo("recovered persisted jobs", "requeued", len(requeue), "dir", cfg.Dir)
	}
	return m, nil
}

// recover scans the store and returns the non-terminal job IDs in
// submission (Seq) order. Jobs whose state file is missing or corrupt but
// whose spec is intact are reset to a fresh queued state — the spec is
// immutable and execution is deterministic, so restarting from column
// zero converges to the same findings. A corrupt spec is unrecoverable
// and the job is marked failed.
func (m *Manager) recover() ([]string, error) {
	ids, err := m.store.List()
	if err != nil {
		return nil, err
	}
	type pending struct {
		id  string
		seq uint64
	}
	var todo []pending
	for _, id := range ids {
		st, err := m.store.GetState(id)
		if err != nil {
			sp, specErr := m.store.GetSpec(id)
			if specErr != nil {
				m.logWarn("job unrecoverable: spec and state unreadable", "job", id, "error", specErr)
				m.writeFailed(id, 0, "spec and state corrupt on recovery")
				continue
			}
			m.logWarn("job state unreadable, restarting from scratch", "job", id, "error", err)
			st = &State{
				ID: id, Seq: sp.Seq, Status: StatusQueued,
				ColumnsTotal: sp.NumColumns(), SubmittedUnix: sp.SubmittedUnix,
			}
			if err := m.store.PutState(st); err != nil {
				return nil, err
			}
		}
		if st.Seq >= m.seq {
			m.seq = st.Seq + 1
		}
		if st.Status.Terminal() {
			continue
		}
		if _, err := m.store.GetSpec(id); err != nil {
			m.logWarn("job spec unreadable, failing job", "job", id, "error", err)
			m.writeFailed(id, st.Seq, "spec corrupt on recovery")
			continue
		}
		todo = append(todo, pending{id: id, seq: st.Seq})
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].seq < todo[j].seq })
	out := make([]string, len(todo))
	for i, p := range todo {
		out[i] = p.id
	}
	return out, nil
}

// writeFailed best-effort marks a job failed during recovery.
func (m *Manager) writeFailed(id string, seq uint64, msg string) {
	st := &State{
		ID: id, Seq: seq, Status: StatusFailed, Error: msg,
		FinishedUnix: time.Now().Unix(),
	}
	if err := m.store.PutState(st); err != nil {
		m.logWarn("could not persist failed state", "job", id, "error", err)
	}
	m.obs.failed.Inc()
}

// Submit validates, durably persists, and enqueues a new job, returning
// its initial state. The submitting context's span identity (if any) is
// persisted in the spec so the executor — now or after a restart —
// records the job's spans under the submission's trace. ErrQueueFull
// signals backpressure (the HTTP layer answers 429 + Retry-After);
// ErrClosed means the manager is draining.
func (m *Manager) Submit(ctx context.Context, columns map[string][]string, minConf float64) (*State, error) {
	return m.SubmitTable(ctx, columns, nil, minConf)
}

// SubmitTable is Submit with optional per-column semantic-domain hints
// (keys are column names, values domains semantic.KnownDomain accepts —
// the HTTP layer validates, this layer stores).
func (m *Manager) SubmitTable(ctx context.Context, columns map[string][]string, hints map[string]string, minConf float64) (*State, error) {
	if len(columns) == 0 {
		return nil, errors.New("jobs: empty table")
	}
	if len(hints) == 0 {
		hints = nil
	}
	return m.enqueueSpec(ctx, &Spec{Columns: columns, Hints: hints, MinConfidence: minConf})
}

// enqueueSpec is the shared admission tail of SubmitTable and SubmitDB:
// it assigns identity and sequence, persists spec then state, and
// enqueues under the backpressure cap.
func (m *Manager) enqueueSpec(ctx context.Context, sp *Spec) (*State, error) {
	id, err := newID()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.depth >= m.cfg.MaxQueued {
		return nil, ErrQueueFull
	}
	now := time.Now().Unix()
	sp.ID = id
	sp.Seq = m.seq
	sp.SubmittedUnix = now
	sp.Traceparent = observe.SpanContextFrom(ctx).Traceparent()
	st := &State{
		ID: id, Seq: m.seq, Status: StatusQueued,
		ColumnsTotal: sp.NumColumns(), SubmittedUnix: now,
	}
	// Spec before state: recovery rebuilds a missing state from the spec,
	// but a state without a spec is unexecutable.
	if err := m.store.PutSpec(sp); err != nil {
		return nil, err
	}
	if err := m.store.PutState(st); err != nil {
		return nil, err
	}
	m.seq++
	m.depth++
	m.obs.depth.Set(float64(m.depth))
	m.obs.submitted.Inc()
	m.queue <- id // never blocks: cap covers MaxQueued admissions
	return st, nil
}

// Get returns a job's durable state as of its last checkpoint.
func (m *Manager) Get(id string) (*State, error) {
	if !validID(id) {
		return nil, ErrNotFound
	}
	return m.store.GetState(id)
}

// List returns every stored job's state in submission order.
func (m *Manager) List() ([]*State, error) {
	ids, err := m.store.List()
	if err != nil {
		return nil, err
	}
	out := make([]*State, 0, len(ids))
	for _, id := range ids {
		st, err := m.store.GetState(id)
		if err != nil {
			continue // corrupt or concurrently deleted: omit from listings
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Cancel requests cancellation of a queued or running job. A queued job
// transitions to cancelled immediately; a running job's context is
// cancelled and its executor persists the terminal state at the next
// column boundary. ErrTerminal reports a job that already finished.
func (m *Manager) Cancel(id string) (*State, error) {
	if !validID(id) {
		return nil, ErrNotFound
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cancel, ok := m.running[id]; ok {
		cancel(errCancelRequested)
		st, err := m.store.GetState(id)
		if err != nil {
			return nil, err
		}
		// Report the requested transition; the executor persists it.
		st.Status = StatusCancelled
		return st, nil
	}
	st, err := m.store.GetState(id)
	if err != nil {
		return nil, err
	}
	if st.Status.Terminal() {
		return st, ErrTerminal
	}
	st.Status = StatusCancelled
	st.Error = "cancelled by client"
	st.FinishedUnix = time.Now().Unix()
	if err := m.store.PutState(st); err != nil {
		return nil, err
	}
	m.obs.cancelled.Inc()
	m.logInfo("job cancelled while queued", "job", id)
	return st, nil
}

// Delete removes a terminal job's record from disk. In-flight jobs must
// be cancelled first (ErrNotTerminal).
func (m *Manager) Delete(id string) error {
	if !validID(id) {
		return ErrNotFound
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// The persisted state is authoritative: an executing job's state says
	// running (ErrNotTerminal below), and once a terminal state is
	// persisted the executor never writes again, so deletion is safe even
	// while its goroutine unwinds.
	st, err := m.store.GetState(id)
	if err != nil {
		return err
	}
	if !st.Status.Terminal() {
		return ErrNotTerminal
	}
	return m.store.Delete(id)
}

// QueueDepth reports the jobs currently waiting in the queue.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.depth
}

// Recovered reports how many persisted jobs Open re-enqueued.
func (m *Manager) Recovered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovered
}

// Close drains the manager: new submissions fail with ErrClosed, workers
// stop at the next column boundary (running jobs keep their durable
// checkpoint and resume on the next Open), and Close returns when every
// worker has exited or ctx expires.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.baseCancel(errDraining)
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain incomplete: %w", ctx.Err())
	}
}

// worker pops job IDs FIFO until the manager drains or dies.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		// Prefer exit once draining, even if jobs are still queued: they
		// are durable and will run on the next Open.
		if m.baseCtx.Err() != nil {
			return
		}
		select {
		case <-m.baseCtx.Done():
			return
		case id := <-m.queue:
			m.mu.Lock()
			m.depth--
			m.obs.depth.Set(float64(m.depth))
			m.mu.Unlock()
			m.runJob(id)
		}
	}
}

// runJob executes one job from its last durable checkpoint.
func (m *Manager) runJob(id string) {
	// Pickup happens under the manager lock so Cancel either sees the job
	// in m.running (and cancels the context we are about to use) or wrote
	// a terminal state we observe here — no window where a cancel is lost.
	m.mu.Lock()
	st, err := m.store.GetState(id)
	if errors.Is(err, ErrNotFound) {
		m.mu.Unlock()
		return // deleted while queued
	}
	if err != nil {
		// Torn on disk after enqueue: rebuild from the immutable spec.
		sp, specErr := m.store.GetSpec(id)
		if specErr != nil {
			m.mu.Unlock()
			m.logWarn("job unexecutable: state and spec unreadable", "job", id, "error", err)
			m.writeFailed(id, 0, "state and spec corrupt")
			return
		}
		m.logWarn("job state unreadable at pickup, restarting from scratch", "job", id, "error", err)
		st = &State{
			ID: id, Seq: sp.Seq, Status: StatusQueued,
			ColumnsTotal: sp.NumColumns(), SubmittedUnix: sp.SubmittedUnix,
		}
	}
	if st.Status.Terminal() {
		m.mu.Unlock()
		return // cancelled while queued
	}
	resumed := st.Status == StatusRunning
	jobCtx, cancel := context.WithCancelCause(m.baseCtx)
	m.running[id] = cancel
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.running, id)
		m.mu.Unlock()
		cancel(nil)
	}()

	sp, err := m.store.GetSpec(id)
	if err != nil {
		m.writeFailed(id, st.Seq, fmt.Sprintf("spec unreadable: %v", err))
		return
	}
	order := sp.ColumnOrder()
	// Defensive invariant check: progress must index into the audit
	// order, and results must align with it. CRC-valid-but-inconsistent
	// state restarts from scratch rather than producing garbage.
	if st.ColumnsDone < 0 || st.ColumnsDone > len(order) || len(st.Results) != st.ColumnsDone {
		m.logWarn("job checkpoint inconsistent, restarting from scratch",
			"job", id, "columns_done", st.ColumnsDone, "results", len(st.Results))
		st.ColumnsDone, st.Results, resumed = 0, nil, false
	}
	if resumed {
		st.Resumes++
		m.obs.resumed.Inc()
		m.logInfo("resuming job from checkpoint", "job", id,
			"columns_done", st.ColumnsDone, "columns_total", len(order))
	}

	st.Status = StatusRunning
	if st.StartedUnix == 0 {
		st.StartedUnix = time.Now().Unix()
	}
	if err := m.store.PutState(st); err != nil {
		m.logWarn("cannot persist running state", "job", id, "error", err)
		m.writeFailed(id, st.Seq, fmt.Sprintf("persisting state: %v", err))
		return
	}

	if m.cfg.JobTimeout > 0 {
		var cancelTimeout context.CancelFunc
		jobCtx, cancelTimeout = context.WithTimeout(jobCtx, m.cfg.JobTimeout)
		defer cancelTimeout()
	}

	m.obs.running.Add(1)
	defer m.obs.running.Add(-1)

	det, sem := m.cfg.Model()
	if det == nil {
		m.finish(st, StatusFailed, "no model loaded")
		return
	}

	ctx := observe.ContextWithRegistry(jobCtx, m.reg)
	// Rejoin the submitting request's trace (persisted in the spec), so a
	// job resumed after a crash still records under the original trace.
	if m.cfg.Tracer != nil {
		ctx = observe.ContextWithTracer(ctx, m.cfg.Tracer)
		if sc, ok := observe.ParseTraceparent(sp.Traceparent); ok {
			ctx = observe.ContextWithRemoteParent(ctx, sc)
		}
	}
	ctx, endJob := observe.Span(ctx, "job_execute")
	observe.SetSpanAttr(ctx, "job_id", id)
	if resumed {
		observe.SetSpanAttr(ctx, "resumed", "true")
	}
	if sp.DB != nil {
		observe.SetSpanAttr(ctx, "db_driver", sp.DB.Driver)
	}
	fetch := m.newFetcher(sp, order)
	defer fetch.close()
	traceID := observe.TraceIDFrom(ctx)
	start := time.Now()
	var execErr error
	for i := st.ColumnsDone; i < len(order); i++ {
		if jobCtx.Err() != nil {
			break
		}
		if m.cfg.ColumnFloor > 0 {
			if dl, ok := jobCtx.Deadline(); ok && time.Until(dl) < m.cfg.ColumnFloor {
				execErr = fmt.Errorf("deadline budget %s below the %s per-column floor at column %d/%d; failing fast at checkpoint",
					time.Until(dl).Round(time.Millisecond), m.cfg.ColumnFloor, i, len(order))
				break
			}
		}
		colStart := time.Now()
		colCtx, endCol := observe.Span(ctx, "job_column")
		observe.SetSpanAttr(colCtx, "column", order[i])
		values, ferr := fetch.values(jobCtx, i)
		if ferr != nil {
			endCol()
			// A context kill surfacing as a fetch error is an interrupt
			// (resume later), not a job failure.
			if jobCtx.Err() != nil {
				break
			}
			execErr = fmt.Errorf("fetching column %s: %w", order[i], ferr)
			break
		}
		fs := audit.CheckColumnHinted(ctx, det, sem, values, sp.MinConfidence, sp.Hints[order[i]])
		endCol()
		if source, table := fetch.provenance(i); source != "" || table != "" {
			for j := range fs {
				fs[j].Source = source
				fs[j].Table = table
			}
		}
		st.Results = append(st.Results, ColumnResult{Column: order[i], Findings: fs})
		st.ColumnsDone = i + 1
		if err := m.store.PutState(st); err != nil {
			execErr = fmt.Errorf("checkpointing column %d: %w", i, err)
			break
		}
		m.obs.colDur.ObserveExemplar(time.Since(colStart).Seconds(), traceID)
		if m.cfg.CheckpointHook != nil {
			m.cfg.CheckpointHook(id, st.ColumnsDone)
		}
	}
	if execErr != nil {
		observe.SetSpanError(ctx, execErr.Error())
	}
	endJob()
	m.obs.jobDur.Observe(time.Since(start).Seconds())

	switch {
	case execErr != nil:
		m.finish(st, StatusFailed, execErr.Error())
	case st.ColumnsDone == len(order):
		m.finish(st, StatusDone, "")
		m.logInfo("job done", "job", id, "columns", len(order),
			"findings", st.FindingsTotal(), "resumes", st.Resumes)
	default:
		cause := context.Cause(jobCtx)
		switch {
		case errors.Is(cause, errCancelRequested):
			m.finish(st, StatusCancelled, "cancelled by client")
			m.logInfo("job cancelled", "job", id, "columns_done", st.ColumnsDone)
		case errors.Is(cause, context.DeadlineExceeded):
			m.finish(st, StatusFailed, fmt.Sprintf("job exceeded %s deadline", m.cfg.JobTimeout))
			m.logWarn("job deadline exceeded", "job", id, "columns_done", st.ColumnsDone)
		default:
			// Drain or external kill: the last checkpoint already has
			// status running; the next Open resumes it from there.
			m.logInfo("job interrupted, checkpoint kept for resume",
				"job", id, "columns_done", st.ColumnsDone)
		}
	}
}

// finish persists a terminal transition and bumps the matching counter.
func (m *Manager) finish(st *State, status Status, errMsg string) {
	st.Status = status
	st.Error = errMsg
	st.FinishedUnix = time.Now().Unix()
	if err := m.store.PutState(st); err != nil {
		m.logWarn("cannot persist terminal state", "job", st.ID, "status", string(status), "error", err)
	}
	switch status {
	case StatusDone:
		m.obs.completed.Inc()
	case StatusFailed:
		m.obs.failed.Inc()
	case StatusCancelled:
		m.obs.cancelled.Inc()
	}
}

func (m *Manager) logInfo(msg string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Info(msg, args...)
	}
}

func (m *Manager) logWarn(msg string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Warn(msg, args...)
	}
}
