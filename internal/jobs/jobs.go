// Package jobs is the asynchronous batch-audit subsystem: a bounded FIFO
// job queue with backpressure, a configurable worker pool that executes
// whole-table audits column-at-a-time against the atomically-snapshotted
// model, and a durable job store that survives restarts.
//
// The paper's production deployment audits entire spreadsheet corpora
// (Section 5 evaluates over millions of corpus columns), not single
// columns per HTTP round-trip; this package is the serving-side analogue:
// clients submit a table once, poll progress, and page through findings
// while the audit runs in the background.
//
// Durability contract: the job spec is written once at submission and the
// execution state (status, per-column progress, findings so far) is
// checkpointed after every completed column, both through the
// internal/atomicio temp+fsync+rename protocol inside the shared CRC64
// integrity envelope. A process kill at any point therefore loses at most
// the column in flight: on restart, queued and running jobs are
// re-enqueued in submission order and resume from the last completed
// column, and — because audit.CheckColumn is deterministic in (model,
// column) — the resumed job's findings are byte-identical to an
// uninterrupted run. A state file corrupted on disk anyway (torn by a
// dying kernel, bit-rotted) fails its CRC on recovery and the job simply
// restarts from column zero, converging to the same bytes.
//
// State machine:
//
//	queued ──► running ──► done
//	   │          │  ├────► failed     (executor error, deadline)
//	   └──────────┴──┴────► cancelled  (DELETE /v1/jobs/{id})
//
// A drain (Manager.Close) or crash is deliberately *not* a transition:
// the job stays queued/running on disk and execution continues on the
// next Open.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"repro/internal/audit"
)

// Status is a job's position in the lifecycle state machine.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final: terminal jobs are never
// re-enqueued on recovery and can be deleted.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Errors surfaced to the HTTP layer, which maps them onto status codes
// (429 + Retry-After, 404, 409, 503).
var (
	// ErrQueueFull is returned by Submit when MaxQueued jobs are already
	// waiting — the backpressure signal behind the API's 429.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit after Close has begun draining.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrTerminal is returned by Cancel when the job already finished.
	ErrTerminal = errors.New("jobs: job already in a terminal state")
	// ErrNotTerminal is returned by Delete for jobs still in flight.
	ErrNotTerminal = errors.New("jobs: job not in a terminal state")
)

// Spec is the immutable description of a batch audit job, written once at
// submission. Exactly one of Columns and DB is set: Columns maps column
// names to cell values exactly as posted (a table job), DB describes a
// whole-database audit whose values are streamed from the database at
// execution time.
type Spec struct {
	ID string `json:"id"`
	// Seq is the submission sequence number; recovery re-enqueues
	// non-terminal jobs in Seq order so FIFO survives restarts.
	Seq     uint64              `json:"seq"`
	Columns map[string][]string `json:"columns,omitempty"`
	// DB, when set, makes this a whole-database audit job; see DBSpec.
	DB *DBSpec `json:"db,omitempty"`
	// Hints maps column names (for DB jobs, "table.column" unit names)
	// onto semantic-domain hints the executor passes to
	// audit.CheckColumnHinted. DB submissions fill it from schema
	// introspection; table submissions may post hints explicitly.
	Hints         map[string]string `json:"hints,omitempty"`
	MinConfidence float64           `json:"min_confidence"`
	SubmittedUnix int64             `json:"submitted_unix"`
	// Traceparent is the submitting request's span context in W3C form,
	// persisted with the spec so every execution of the job — including
	// resumes after a crash or drain, possibly days later in a different
	// process — records its spans under the original submission's trace.
	Traceparent string `json:"traceparent,omitempty"`
}

// ColumnOrder returns the deterministic audit order: column names sorted
// lexicographically (for DB jobs, the pinned "table.column" unit names,
// which introspection already stores sorted). Progress checkpoints are
// indices into this order, so it must be stable across restarts
// regardless of map iteration.
func (sp *Spec) ColumnOrder() []string {
	if sp.DB != nil {
		names := make([]string, len(sp.DB.Units))
		for i, u := range sp.DB.Units {
			names[i] = u.Name()
		}
		return names
	}
	names := make([]string, 0, len(sp.Columns))
	for name := range sp.Columns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NumColumns is the number of columns the job audits — the checkpoint
// denominator, valid for both table and DB jobs.
func (sp *Spec) NumColumns() int {
	if sp.DB != nil {
		return len(sp.DB.Units)
	}
	return len(sp.Columns)
}

// TotalValues is the cell count across all columns (the quantity bounded
// by the server's MaxTableValues cap). For DB jobs it is the row count
// snapshot taken at submission.
func (sp *Spec) TotalValues() int {
	if sp.DB != nil {
		total := int64(0)
		for _, u := range sp.DB.Units {
			total += u.Rows
		}
		return int(total)
	}
	total := 0
	for _, vs := range sp.Columns {
		total += len(vs)
	}
	return total
}

// ColumnResult holds the findings of one completed column.
type ColumnResult struct {
	Column   string          `json:"column"`
	Findings []audit.Finding `json:"findings"`
}

// State is the durable execution state of a job, checkpointed atomically
// after every completed column. Results has exactly ColumnsDone entries,
// in Spec.ColumnOrder order.
type State struct {
	ID           string         `json:"id"`
	Seq          uint64         `json:"seq"`
	Status       Status         `json:"status"`
	ColumnsTotal int            `json:"columns_total"`
	ColumnsDone  int            `json:"columns_done"`
	Results      []ColumnResult `json:"results,omitempty"`
	Error        string         `json:"error,omitempty"`
	// Resumes counts executor pickups that continued from a non-zero
	// checkpoint — i.e. how many times a crash or drain interrupted it.
	Resumes       int   `json:"resumes,omitempty"`
	SubmittedUnix int64 `json:"submitted_unix"`
	StartedUnix   int64 `json:"started_unix,omitempty"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`
}

// FindingsTotal is the number of findings across completed columns.
func (st *State) FindingsTotal() int {
	n := 0
	for _, cr := range st.Results {
		n += len(cr.Findings)
	}
	return n
}

// newID returns a 16-hex-char job ID from crypto/rand.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// validID gates IDs accepted from clients and directory names accepted
// from recovery scans: exactly 16 lowercase hex characters, so a crafted
// job ID can never traverse outside the jobs directory.
func validID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}
