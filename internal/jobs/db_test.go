package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/corpus"
	"repro/internal/dbsource"
	"repro/internal/faultfs"
)

// seedJobDB builds a three-table in-memory database out of the same dirty
// generator the table-job tests audit, plus an email column with planted
// format errors so the schema-hint path produces findings. It returns the
// database and the per-table column sets (values as the strings the DB
// serves), for CSV-export equivalence runs.
func seedJobDB(t *testing.T, seed int64) (*dbsource.MemDB, map[string][]*corpus.Column) {
	t.Helper()
	c := corpus.Generate(corpus.EntXLSProfile(), 9, seed)
	tables := map[string][]*corpus.Column{}
	for i, col := range c.Columns {
		table := fmt.Sprintf("t%d", i%3)
		tables[table] = append(tables[table], &corpus.Column{
			Name:   fmt.Sprintf("%03d_%s", i, strings.ReplaceAll(col.Name, ".", "_")),
			Values: col.Values,
		})
	}
	emails := []string{
		"ann@example.com", "bob@example.com", "carol@example.com", "dave@example.com",
		"eve@example.com", "not an email", "frank@example.com", "grace@example.com",
		"heidi@example.com", "ivan@example.com", "judy@example.com", "5551234",
	}
	tables["t0"] = append(tables["t0"], &corpus.Column{Name: "email", Values: emails})

	db := dbsource.NewMemDB()
	for name, cols := range tables {
		mem := make([]dbsource.MemCol, len(cols))
		for i, col := range cols {
			vals := make([]any, len(col.Values))
			for j, v := range col.Values {
				vals[j] = v
			}
			mem[i] = dbsource.MemCol{Name: col.Name, Type: "TEXT", Values: vals}
		}
		db.AddTable(name, mem...)
	}
	return db, tables
}

// stripProvenance zeroes the Source/Table stamps so DB findings compare
// byte-for-byte against CSV findings (whose provenance is empty).
func stripProvenance(results []ColumnResult) []ColumnResult {
	out := make([]ColumnResult, len(results))
	for i, cr := range results {
		out[i] = ColumnResult{Column: cr.Column, Findings: append([]audit.Finding(nil), cr.Findings...)}
		for j := range out[i].Findings {
			out[i].Findings[j].Source = ""
			out[i].Findings[j].Table = ""
		}
	}
	return out
}

// TestDBAuditMatchesCSVAudit is the equivalence half of the acceptance
// criteria: auditing a database through dbsource and auditing the same
// data exported to CSV must produce identical findings. The CSV leg
// really round-trips through corpus.WriteCSV/ReadCSV — the comparison
// covers NULL/type normalization, unit ordering, and hint parity, not
// just the executor.
func TestDBAuditMatchesCSVAudit(t *testing.T) {
	det := testDetector(t)
	db, tables := seedJobDB(t, 77)
	dbsource.Register("jobs-eq", db)

	m := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 2, Model: modelFn(det),
	})

	dbSt, err := m.SubmitDB(context.Background(), DBRequest{DSN: "mem://jobs-eq"})
	if err != nil {
		t.Fatal(err)
	}
	dbDone := waitStatus(t, m, dbSt.ID, StatusDone)
	if dbDone.FindingsTotal() == 0 {
		t.Fatal("DB audit produced no findings; equivalence would be vacuous")
	}

	// Export every table to CSV bytes and read them back — the same
	// round-trip an operator's dump would take — then audit as a plain
	// table job keyed by the qualified unit names with the same hints the
	// DB submission derived from the schema.
	columns := map[string][]string{}
	hints := map[string]string{}
	for table, cols := range tables {
		var buf bytes.Buffer
		if err := corpus.WriteCSV(&buf, cols); err != nil {
			t.Fatal(err)
		}
		back, err := corpus.ReadCSV(&buf, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range back {
			unit := table + "." + col.Name
			columns[unit] = col.Values
			if h := dbsource.NameHint(col.Name, "TEXT"); h != "" {
				hints[unit] = h
			}
		}
	}
	csvSt, err := m.SubmitTable(context.Background(), columns, hints, 0)
	if err != nil {
		t.Fatal(err)
	}
	csvDone := waitStatus(t, m, csvSt.ID, StatusDone)

	// The DB leg must actually flag the planted bad emails via the
	// schema-derived hint, with table provenance stamped on.
	foundDomain := false
	for _, cr := range dbDone.Results {
		for _, f := range cr.Findings {
			if f.Source != dbsource.DriverName || f.Table == "" {
				t.Fatalf("DB finding missing provenance: %+v", f)
			}
			if cr.Column == "t0.email" && f.Kind == "domain" {
				foundDomain = true
			}
		}
	}
	if !foundDomain {
		t.Error("expected a domain finding on t0.email from the schema hint")
	}

	got, err := json.Marshal(stripProvenance(dbDone.Results))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(csvDone.Results)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("DB audit != CSV audit\ndb:  %s\ncsv: %s", got, want)
	}
}

// TestDBChaosKillResumeByteIdentical is the resume half of the acceptance
// criteria, mirroring the table-job chaos test: the executor is killed at
// checkpoint boundaries across four manager generations (with one torn
// and one bit-flipped state file between them), and the eventually-
// completed whole-database audit must be byte-identical to an
// uninterrupted run against the same database.
func TestDBChaosKillResumeByteIdentical(t *testing.T) {
	det := testDetector(t)
	db, _ := seedJobDB(t, 99)
	dbsource.Register("jobs-chaos", db)

	cleanMgr := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
	})
	cst, err := cleanMgr.SubmitDB(context.Background(), DBRequest{DSN: "mem://jobs-chaos"})
	if err != nil {
		t.Fatal(err)
	}
	clean := waitStatus(t, cleanMgr, cst.ID, StatusDone)
	if clean.FindingsTotal() == 0 {
		t.Fatal("clean run produced no findings; byte comparison would be vacuous")
	}
	want, err := json.Marshal(clean.Results)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var id string
	const killCycles = 4
	for cycle := 0; cycle < killCycles; cycle++ {
		ctx, cancelCause := context.WithCancelCause(context.Background())
		ks := faultfs.NewKillSwitch(2, func() {
			cancelCause(errors.New("chaos: injected kill"))
		})
		m, err := Open(ctx, Config{
			Dir: dir, Workers: 1, Model: modelFn(det),
			CheckpointHook: func(string, int) { ks.Hit() },
		})
		if err != nil {
			t.Fatalf("cycle %d open: %v", cycle, err)
		}
		if cycle == 0 {
			st, err := m.SubmitDB(context.Background(), DBRequest{DSN: "mem://jobs-chaos"})
			if err != nil {
				t.Fatal(err)
			}
			id = st.ID
		} else if m.Recovered() != 1 {
			t.Fatalf("cycle %d recovered %d jobs, want 1", cycle, m.Recovered())
		}
		deadline := time.Now().Add(60 * time.Second)
		for !ks.Fired() {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: kill switch never fired", cycle)
			}
			time.Sleep(2 * time.Millisecond)
		}
		cctx, ccancel := context.WithTimeout(context.Background(), 20*time.Second)
		if err := m.Close(cctx); err != nil {
			t.Fatalf("cycle %d close: %v", cycle, err)
		}
		ccancel()
		cancelCause(nil)

		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("cycle %d state after kill: %v", cycle, err)
		}
		if st.Status.Terminal() {
			t.Fatalf("cycle %d: job reached %s before enough kills", cycle, st.Status)
		}
		statePath := filepath.Join(dir, id, "state.bin")
		switch cycle {
		case 0:
			tearFile(t, statePath)
		case 1:
			if err := faultfs.FlipByte(statePath, 20, 0x40); err != nil {
				t.Fatal(err)
			}
		}
	}

	m := openManager(t, context.Background(), Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
	})
	done := waitStatus(t, m, id, StatusDone)
	if done.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1 after %d kills", done.Resumes, killCycles)
	}
	got, err := json.Marshal(done.Results)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("chaos-run findings differ from clean run after %d kills\nclean: %s\nchaos: %s",
			killCycles, want, got)
	}
}

// TestDBSchemaPinFailsLoudly: a database mutated between checkpoint and
// resume must fail the resumed job with the pinned-hash error, never
// silently produce findings from the new schema.
func TestDBSchemaPinFailsLoudly(t *testing.T) {
	det := testDetector(t)
	db, _ := seedJobDB(t, 55)
	dbsource.Register("jobs-pin", db)

	dir := t.TempDir()
	ctx, cancelCause := context.WithCancelCause(context.Background())
	ks := faultfs.NewKillSwitch(1, func() {
		cancelCause(errors.New("chaos: injected kill"))
	})
	m, err := Open(ctx, Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
		CheckpointHook: func(string, int) { ks.Hit() },
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.SubmitDB(context.Background(), DBRequest{DSN: "mem://jobs-pin"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for !ks.Fired() {
		if time.Now().After(deadline) {
			t.Fatal("kill switch never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cctx, ccancel := context.WithTimeout(context.Background(), 20*time.Second)
	if err := m.Close(cctx); err != nil {
		t.Fatal(err)
	}
	ccancel()
	cancelCause(nil)

	// Mutate the database while the job sleeps on disk.
	db.AddTable("t0", dbsource.MemCol{Name: "email", Type: "TEXT", Values: []any{"x@y.zz"}})

	m2 := openManager(t, context.Background(), Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
	})
	failed := waitStatus(t, m2, st.ID, StatusFailed)
	if !strings.Contains(failed.Error, "changed since submission") {
		t.Fatalf("error = %q, want the schema-pin message", failed.Error)
	}
}

// TestSubmitDBValidation covers the submission-time error surface.
func TestSubmitDBValidation(t *testing.T) {
	det := testDetector(t)
	m := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
	})
	if _, err := m.SubmitDB(context.Background(), DBRequest{}); !errors.Is(err, ErrDatabase) {
		t.Errorf("empty DSN: %v, want ErrDatabase", err)
	}
	if _, err := m.SubmitDB(context.Background(), DBRequest{DSN: "mem://jobs-definitely-unregistered"}); !errors.Is(err, ErrDatabase) {
		t.Errorf("unknown registry name: %v, want ErrDatabase", err)
	}
	if _, err := m.SubmitDB(context.Background(), DBRequest{Driver: "oracle", DSN: "x"}); !errors.Is(err, ErrDatabase) {
		t.Errorf("unknown driver: %v, want ErrDatabase", err)
	}
	db, _ := seedJobDB(t, 11)
	dbsource.Register("jobs-cap", db)
	if _, err := m.SubmitDB(context.Background(), DBRequest{DSN: "mem://jobs-cap", MaxValues: 3}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("tiny cap: %v, want ErrTooLarge", err)
	}
	if _, err := m.SubmitDB(context.Background(), DBRequest{DSN: "mem://jobs-cap", Tables: []string{"missing"}}); !errors.Is(err, ErrDatabase) {
		t.Errorf("bad table filter: %v, want ErrDatabase", err)
	}
}

// TestDBSpecOrderStable pins the spec-level ordering contract: ColumnOrder
// over a DB spec equals the sorted unit names, matching what a table job
// keyed by the same names would audit.
func TestDBSpecOrderStable(t *testing.T) {
	sp := &Spec{DB: &DBSpec{Units: []DBUnit{
		{Table: "a", Column: "x", Rows: 2},
		{Table: "a", Column: "y", Rows: 2},
		{Table: "b", Column: "x", Rows: 3},
	}}}
	order := sp.ColumnOrder()
	sorted := append([]string(nil), order...)
	sort.Strings(sorted)
	if fmt.Sprint(order) != fmt.Sprint(sorted) {
		t.Fatalf("DB column order %v not sorted", order)
	}
	if sp.NumColumns() != 3 || sp.TotalValues() != 7 {
		t.Fatalf("NumColumns=%d TotalValues=%d", sp.NumColumns(), sp.TotalValues())
	}
}
