package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultfs"
)

// tearFile truncates a store file to half its size — a torn write landed
// on disk — so its CRC envelope fails on the next read.
func tearFile(t *testing.T, path string) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultfs.Tear(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
}

// TestChaosKillResumeByteIdentical is the subsystem's headline property
// under real fault injection: the executor is killed mid-job four times
// via faultfs kill switches at checkpoint boundaries, the newest state
// checkpoint is torn once and bit-flipped once between cycles, and the
// eventually-completed job must still produce findings byte-identical to
// an uninterrupted clean run.
func TestChaosKillResumeByteIdentical(t *testing.T) {
	det := testDetector(t)
	table := testTable(24, 99)

	// Clean reference run in its own directory.
	cleanMgr := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
	})
	cst, err := cleanMgr.Submit(context.Background(), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	clean := waitStatus(t, cleanMgr, cst.ID, StatusDone)
	if clean.FindingsTotal() == 0 {
		t.Fatal("clean run produced no findings; byte comparison would be vacuous")
	}
	want, err := json.Marshal(clean.Results)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: each cycle opens a manager whose kill switch fires on the
	// second per-column checkpoint, then drains and optionally corrupts the
	// freshest checkpoint before the next cycle recovers it.
	dir := t.TempDir()
	var id string
	const killCycles = 4
	for cycle := 0; cycle < killCycles; cycle++ {
		ctx, cancelCause := context.WithCancelCause(context.Background())
		ks := faultfs.NewKillSwitch(2, func() {
			cancelCause(errors.New("chaos: injected kill"))
		})
		m, err := Open(ctx, Config{
			Dir: dir, Workers: 1, Model: modelFn(det),
			CheckpointHook: func(string, int) { ks.Hit() },
		})
		if err != nil {
			t.Fatalf("cycle %d open: %v", cycle, err)
		}
		if cycle == 0 {
			st, err := m.Submit(context.Background(), table, 0)
			if err != nil {
				t.Fatal(err)
			}
			id = st.ID
		} else if m.Recovered() != 1 {
			t.Fatalf("cycle %d recovered %d jobs, want 1", cycle, m.Recovered())
		}
		deadline := time.Now().Add(60 * time.Second)
		for !ks.Fired() {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: kill switch never fired", cycle)
			}
			time.Sleep(2 * time.Millisecond)
		}
		cctx, ccancel := context.WithTimeout(context.Background(), 20*time.Second)
		if err := m.Close(cctx); err != nil {
			t.Fatalf("cycle %d close: %v", cycle, err)
		}
		ccancel()
		cancelCause(nil)

		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("cycle %d state after kill: %v", cycle, err)
		}
		if st.Status.Terminal() {
			t.Fatalf("cycle %d: job reached %s before enough kills", cycle, st.Status)
		}
		statePath := filepath.Join(dir, id, "state.bin")
		switch cycle {
		case 0:
			// Torn write on top of the kill: CRC fails, job restarts from
			// column zero.
			tearFile(t, statePath)
		case 1:
			// Bit rot inside the payload (offset past the 16-byte header).
			if err := faultfs.FlipByte(statePath, 20, 0x40); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Final cycle: no kill switch; the job must resume from its last valid
	// checkpoint and converge.
	m := openManager(t, context.Background(), Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
	})
	done := waitStatus(t, m, id, StatusDone)
	if done.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1 after %d kills", done.Resumes, killCycles)
	}
	got, err := json.Marshal(done.Results)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("chaos-run findings differ from clean run after %d kills\nclean: %s\nchaos: %s",
			killCycles, want, got)
	}
	if done.FindingsTotal() != clean.FindingsTotal() {
		t.Fatalf("findings total %d != clean %d", done.FindingsTotal(), clean.FindingsTotal())
	}
}
