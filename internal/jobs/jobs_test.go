package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
	"repro/internal/semantic"
)

var (
	mdlOnce sync.Once
	mdlDet  *core.Detector
	mdlSem  *semantic.Model
	mdlErr  error
)

// testDetector builds one cheap model pair for the whole package.
func testDetector(t *testing.T) *core.Detector {
	t.Helper()
	mdlOnce.Do(func() {
		c := corpus.Generate(corpus.WebProfile(), 1500, 31)
		cfg := core.DefaultTrainConfig()
		cfg.Languages = []pattern.Language{pattern.Crude(), pattern.L1(), pattern.L2()}
		ds := distsup.DefaultConfig()
		ds.PositivePairs, ds.NegativePairs = 1500, 1500
		cfg.DistSup = ds
		mdlDet, _, mdlErr = core.Train(c, cfg)
		if mdlErr != nil {
			return
		}
		mdlSem, mdlErr = semantic.Train(c, semantic.DefaultConfig())
	})
	if mdlErr != nil {
		t.Fatal(mdlErr)
	}
	return mdlDet
}

func modelFn(det *core.Detector) func() (*core.Detector, *semantic.Model) {
	return func() (*core.Detector, *semantic.Model) { return det, mdlSem }
}

// testTable builds a dirty audit table with unique column names.
func testTable(cols int, seed int64) map[string][]string {
	c := corpus.Generate(corpus.EntXLSProfile(), cols, seed)
	out := make(map[string][]string, len(c.Columns))
	for i, col := range c.Columns {
		out[fmt.Sprintf("%03d-%s", i, col.Name)] = col.Values
	}
	return out
}

func openManager(t *testing.T, ctx context.Context, cfg Config) *Manager {
	t.Helper()
	m, err := Open(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := m.Close(cctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return m
}

// waitStatus polls until the job reaches want, failing fast on a
// different terminal state.
func waitStatus(t *testing.T, m *Manager, id string, want Status) *State {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err == nil && st.Status == want {
			return st
		}
		if err == nil && st.Status.Terminal() && !want.Terminal() {
			t.Fatalf("job %s reached terminal %s (error %q) while waiting for %s",
				id, st.Status, st.Error, want)
		}
		if err == nil && st.Status.Terminal() && want.Terminal() && st.Status != want {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.Status, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for job %s to reach %s", id, want)
	return nil
}

func TestSubmitRunDone(t *testing.T) {
	det := testDetector(t)
	table := testTable(32, 99)
	m := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 2, Model: modelFn(det),
	})
	st, err := m.Submit(context.Background(), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusQueued || st.ColumnsTotal != len(table) {
		t.Fatalf("initial state: %+v", st)
	}
	done := waitStatus(t, m, st.ID, StatusDone)
	if done.ColumnsDone != len(table) || len(done.Results) != len(table) {
		t.Fatalf("done state: done=%d results=%d want %d",
			done.ColumnsDone, len(done.Results), len(table))
	}
	if done.FindingsTotal() == 0 {
		t.Fatal("dirty table produced no findings")
	}
	if done.StartedUnix == 0 || done.FinishedUnix == 0 {
		t.Fatalf("missing timestamps: %+v", done)
	}
	// Results must follow the deterministic audit order.
	sp, err := m.store.GetSpec(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range sp.ColumnOrder() {
		if done.Results[i].Column != name {
			t.Fatalf("result %d is column %q, want %q", i, done.Results[i].Column, name)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	det := testDetector(t)
	m := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
	})
	if _, err := m.Submit(context.Background(), nil, 0); err == nil {
		t.Fatal("empty table must be rejected")
	}
}

// blockedManager returns a manager whose single worker blocks inside the
// model snapshot until release is closed — the deterministic way to hold
// a job "running" while the test manipulates the queue.
func blockedManager(t *testing.T, cfg Config) (*Manager, chan struct{}) {
	t.Helper()
	det := testDetector(t)
	release := make(chan struct{})
	cfg.Workers = 1
	cfg.Model = func() (*core.Detector, *semantic.Model) {
		<-release
		return det, mdlSem
	}
	m := openManager(t, context.Background(), cfg)
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})
	return m, release
}

// submitAndOccupy submits one job and waits until the worker has popped
// it (queue depth back to zero), so subsequent submissions measure pure
// queue capacity.
func submitAndOccupy(t *testing.T, m *Manager) *State {
	t.Helper()
	st, err := m.Submit(context.Background(), testTable(2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for m.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return st
}

func TestQueueFullBackpressure(t *testing.T) {
	m, release := blockedManager(t, Config{Dir: t.TempDir(), MaxQueued: 2})
	first := submitAndOccupy(t, m)

	var queued []*State
	for i := 0; i < 2; i++ {
		st, err := m.Submit(context.Background(), testTable(2, int64(10+i)), 0)
		if err != nil {
			t.Fatalf("submission %d within capacity: %v", i, err)
		}
		queued = append(queued, st)
	}
	if _, err := m.Submit(context.Background(), testTable(2, 99), 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission: got %v, want ErrQueueFull", err)
	}
	close(release)
	waitStatus(t, m, first.ID, StatusDone)
	for _, st := range queued {
		waitStatus(t, m, st.ID, StatusDone)
	}
}

func TestFIFOOrder(t *testing.T) {
	var mu sync.Mutex
	var pickups []string
	m, release := blockedManager(t, Config{
		Dir: t.TempDir(), MaxQueued: 8,
		CheckpointHook: func(id string, done int) {
			if done == 1 {
				mu.Lock()
				pickups = append(pickups, id)
				mu.Unlock()
			}
		},
	})
	first := submitAndOccupy(t, m)
	want := []string{first.ID}
	for i := 0; i < 3; i++ {
		st, err := m.Submit(context.Background(), testTable(2, int64(20+i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, st.ID)
	}
	close(release)
	for _, id := range want {
		waitStatus(t, m, id, StatusDone)
	}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(pickups) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want FIFO %v", pickups, want)
	}
}

func TestCancelQueued(t *testing.T) {
	m, release := blockedManager(t, Config{Dir: t.TempDir(), MaxQueued: 4})
	first := submitAndOccupy(t, m)
	queued, err := m.Submit(context.Background(), testTable(2, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil || st.Status != StatusCancelled {
		t.Fatalf("cancel queued: %v %v", st, err)
	}
	if _, err := m.Cancel(queued.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel: got %v, want ErrTerminal", err)
	}
	close(release)
	waitStatus(t, m, first.ID, StatusDone)
	got := waitStatus(t, m, queued.ID, StatusCancelled)
	if got.ColumnsDone != 0 {
		t.Fatalf("cancelled-while-queued job ran %d columns", got.ColumnsDone)
	}
}

func TestCancelRunning(t *testing.T) {
	det := testDetector(t)
	var m *Manager
	cancelled := make(chan struct{})
	var once sync.Once
	m = openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
		CheckpointHook: func(id string, done int) {
			once.Do(func() {
				if _, err := m.Cancel(id); err != nil {
					t.Errorf("cancel running: %v", err)
				}
				close(cancelled)
			})
		},
	})
	st, err := m.Submit(context.Background(), testTable(6, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-cancelled
	got := waitStatus(t, m, st.ID, StatusCancelled)
	if got.ColumnsDone == 0 || got.ColumnsDone >= got.ColumnsTotal {
		t.Fatalf("cancelled mid-run, columns_done=%d of %d", got.ColumnsDone, got.ColumnsTotal)
	}
	if got.Error != "cancelled by client" {
		t.Fatalf("error = %q", got.Error)
	}
}

func TestJobDeadline(t *testing.T) {
	det := testDetector(t)
	m := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
		JobTimeout: 30 * time.Millisecond,
		CheckpointHook: func(id string, done int) {
			time.Sleep(40 * time.Millisecond) // force the deadline past
		},
	})
	st, err := m.Submit(context.Background(), testTable(6, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := waitStatus(t, m, st.ID, StatusFailed)
	if got.ColumnsDone >= got.ColumnsTotal {
		t.Fatal("job finished despite the deadline")
	}
	if want := "deadline"; !strings.Contains(got.Error, want) {
		t.Fatalf("error = %q, want mention of %q", got.Error, want)
	}
}

func TestDeleteSemantics(t *testing.T) {
	m, release := blockedManager(t, Config{Dir: t.TempDir(), MaxQueued: 4})
	first := submitAndOccupy(t, m)
	if err := m.Delete(first.ID); !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("delete running: got %v, want ErrNotTerminal", err)
	}
	close(release)
	waitStatus(t, m, first.ID, StatusDone)
	if err := m.Delete(first.ID); err != nil {
		t.Fatalf("delete done: %v", err)
	}
	if _, err := m.Get(first.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: got %v, want ErrNotFound", err)
	}
	if err := m.Delete(first.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: got %v, want ErrNotFound", err)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	det := testDetector(t)
	m, err := Open(context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), testTable(2, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}

// TestDrainResumeByteIdentical is the core durability property in its
// simplest form: a job interrupted by a drain mid-execution resumes on
// the next Open and produces byte-identical findings to a clean run.
func TestDrainResumeByteIdentical(t *testing.T) {
	det := testDetector(t)
	table := testTable(8, 11)

	// Clean reference run.
	cleanMgr := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
	})
	cst, err := cleanMgr.Submit(context.Background(), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	clean := waitStatus(t, cleanMgr, cst.ID, StatusDone)
	want, err := json.Marshal(clean.Results)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: kill the manager's context after the second
	// checkpoint, mid-job.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := make(chan struct{})
	var once sync.Once
	m1, err := Open(ctx, Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
		CheckpointHook: func(id string, done int) {
			if done == 2 {
				once.Do(func() {
					cancel()
					close(interrupted)
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(context.Background(), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-interrupted
	if err := m1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	mid, err := m1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Status != StatusRunning || mid.ColumnsDone == 0 || mid.ColumnsDone >= len(table) {
		t.Fatalf("after drain: status=%s columns_done=%d", mid.Status, mid.ColumnsDone)
	}

	// Reopen: the job must be recovered, resumed, and converge.
	m2 := openManager(t, context.Background(), Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
	})
	if m2.Recovered() != 1 {
		t.Fatalf("recovered %d jobs, want 1", m2.Recovered())
	}
	final := waitStatus(t, m2, st.ID, StatusDone)
	if final.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1", final.Resumes)
	}
	got, err := json.Marshal(final.Results)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed findings differ from clean run\nclean: %s\nresumed: %s", want, got)
	}
}

// TestRecoveryRebuildsCorruptState: a job whose state file fails its CRC
// restarts from the immutable spec and still converges to the clean
// run's bytes.
func TestRecoveryRebuildsCorruptState(t *testing.T) {
	det := testDetector(t)
	table := testTable(4, 13)

	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const id = "00112233aabbccdd"
	sp := &Spec{ID: id, Seq: 0, Columns: table, SubmittedUnix: 1}
	if err := store.PutSpec(sp); err != nil {
		t.Fatal(err)
	}
	// A running state whose results are inconsistent garbage, then a torn
	// file on top: both layers of defense should funnel into a clean
	// restart.
	bad := &State{ID: id, Status: StatusRunning, ColumnsTotal: 4, ColumnsDone: 3, SubmittedUnix: 1}
	if err := store.PutState(bad); err != nil {
		t.Fatal(err)
	}
	tearFile(t, filepath.Join(dir, id, "state.bin"))

	m := openManager(t, context.Background(), Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
	})
	final := waitStatus(t, m, id, StatusDone)
	if final.ColumnsDone != 4 || len(final.Results) != 4 {
		t.Fatalf("rebuilt job incomplete: %+v", final)
	}

	// Reference run over the same table.
	m2 := openManager(t, context.Background(), Config{
		Dir: t.TempDir(), Workers: 1, Model: modelFn(det),
	})
	st2, err := m2.Submit(context.Background(), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	clean := waitStatus(t, m2, st2.ID, StatusDone)
	a, _ := json.Marshal(final.Results)
	b, _ := json.Marshal(clean.Results)
	if string(a) != string(b) {
		t.Fatalf("rebuilt findings differ from clean run\nclean: %s\nrebuilt: %s", b, a)
	}
}

// TestRecoveryFailsCorruptSpec: an unreadable spec is unexecutable; the
// job must surface as failed rather than vanish or wedge the queue.
func TestRecoveryFailsCorruptSpec(t *testing.T) {
	det := testDetector(t)
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const id = "ffeeddccbbaa9988"
	if err := store.PutSpec(&Spec{ID: id, Columns: testTable(2, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := store.PutState(&State{ID: id, Status: StatusQueued, ColumnsTotal: 2}); err != nil {
		t.Fatal(err)
	}
	tearFile(t, filepath.Join(dir, id, "spec.bin"))

	m := openManager(t, context.Background(), Config{
		Dir: dir, Workers: 1, Model: modelFn(det),
	})
	st := waitStatus(t, m, id, StatusFailed)
	if !strings.Contains(st.Error, "spec") {
		t.Fatalf("error = %q, want mention of the corrupt spec", st.Error)
	}
}
