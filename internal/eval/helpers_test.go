package eval

import "testing"

func TestCdfAt(t *testing.T) {
	sorted := []float64{-1, -0.5, 0, 0, 0.5, 1}
	cases := []struct {
		x    float64
		want float64
	}{
		{-2, 0}, {-1, 1.0 / 6}, {-0.5, 2.0 / 6}, {0, 4.0 / 6}, {0.9, 5.0 / 6}, {1, 1},
	}
	for _, c := range cases {
		if got := cdfAt(sorted, c.x); got != c.want {
			t.Errorf("cdfAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if cdfAt(nil, 0) != 0 {
		t.Error("empty distribution should be 0")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		512:       "512B",
		2 << 10:   "2.0KB",
		3 << 20:   "3.0MB",
		(3 << 30): "3.0GB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestKHeaderAndGridHeader(t *testing.T) {
	ks := kHeader([]int{10, 100})
	if len(ks) != 2 || ks[0] != "p@10" || ks[1] != "p@100" {
		t.Errorf("kHeader = %v", ks)
	}
	gs := gridHeader([]float64{-1, 0.5})
	if len(gs) != 2 || gs[0] != "≤-1.0" || gs[1] != "≤+0.5" {
		t.Errorf("gridHeader = %v", gs)
	}
}

func TestResultRow(t *testing.T) {
	r := Result{Method: "m", PrecisionAt: map[int]float64{5: 0.5, 10: 1}}
	row := resultRow(r, []int{5, 10})
	if len(row) != 3 || row[0] != "m" || row[1] != "0.500" || row[2] != "1.000" {
		t.Errorf("resultRow = %v", row)
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{SmallScale(), FullScale()} {
		if s.TrainColumns <= 0 || s.TestColumns <= 0 || s.DirtyCases <= 0 {
			t.Errorf("%s: zero sizes", s.Name)
		}
		if len(s.CorpusKs) == 0 || len(s.CaseKs) == 0 || len(s.CSVKs) == 0 {
			t.Errorf("%s: missing k grids", s.Name)
		}
		if len(s.MemoryBudgets) < 2 || len(s.SketchRatios) < 2 || len(s.SmoothingFactors) < 2 {
			t.Errorf("%s: missing sweep points", s.Name)
		}
	}
}

func TestAutoCasesUnknownCorpus(t *testing.T) {
	s := NewSuite(SmallScale(), 1)
	if _, err := s.autoCases("nope", 1); err == nil {
		t.Error("unknown corpus should error")
	}
}
