package eval

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/corpus"
)

// The experiment suite is expensive to build; share one per test binary.
var (
	suiteOnce sync.Once
	suite     *Suite
)

func sharedSuite(t testing.TB) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite = NewSuite(SmallScale(), 1)
	})
	return suite
}

func TestBuildAutoEval(t *testing.T) {
	p := corpus.WikiProfile()
	p.ErrorRate = 0
	src := corpus.Generate(p, 2000, 3)
	cases, err := BuildAutoEval(src, 100, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	dirty, clean := 0, 0
	for _, c := range cases {
		if c.Dirty() {
			dirty++
			if c.Values[c.DirtyIndex] != c.DirtyValue {
				t.Fatal("DirtyIndex does not point at DirtyValue")
			}
		} else {
			clean++
			if c.DirtyValue != "" {
				t.Fatal("clean case carries a dirty value")
			}
		}
		if len(c.Values) < 4 {
			t.Fatal("case too short")
		}
	}
	if dirty != 100 {
		t.Errorf("dirty cases = %d, want 100", dirty)
	}
	if clean != 200 {
		t.Errorf("clean cases = %d, want 200", clean)
	}
}

func TestBuildAutoEvalErrors(t *testing.T) {
	if _, err := BuildAutoEval(nil, 10, 10, 1); err == nil {
		t.Error("nil corpus should error")
	}
	tiny := &corpus.Corpus{Columns: []*corpus.Column{
		{Values: []string{"a", "b"}}, {Values: []string{"c"}},
	}}
	if _, err := BuildAutoEval(tiny, 10, 10, 1); err == nil {
		t.Error("tiny corpus should error")
	}
}

// perfectDetector names the planted value with confidence 1 on dirty
// cases and stays silent on clean ones (it cheats by looking at labels).
type scriptedDetector struct {
	answers map[int]baselines.Prediction // case index → prediction
	calls   int
}

func (s *scriptedDetector) Name() string { return "scripted" }
func (s *scriptedDetector) Detect(values []string) []baselines.Prediction {
	p, ok := s.answers[s.calls]
	s.calls++
	if !ok {
		return nil
	}
	return []baselines.Prediction{p}
}

func TestEvaluateCasesPrecision(t *testing.T) {
	cases := []Case{
		{Values: []string{"a", "b", "XX"}, DirtyValue: "XX", DirtyIndex: 2},
		{Values: []string{"c", "d"}, DirtyIndex: -1},
		{Values: []string{"e", "f", "YY"}, DirtyValue: "YY", DirtyIndex: 2},
	}
	det := &scriptedDetector{answers: map[int]baselines.Prediction{
		0: {Index: 2, Value: "XX", Confidence: 0.9}, // correct
		1: {Index: 0, Value: "c", Confidence: 0.8},  // false positive (clean case)
		2: {Index: 0, Value: "e", Confidence: 0.7},  // wrong value
	}}
	r := EvaluateCases(det, cases, []int{1, 2, 3})
	if r.PrecisionAt[1] != 1 {
		t.Errorf("p@1 = %v", r.PrecisionAt[1])
	}
	if r.PrecisionAt[2] != 0.5 {
		t.Errorf("p@2 = %v", r.PrecisionAt[2])
	}
	if got := r.PrecisionAt[3]; got < 0.32 || got > 0.34 {
		t.Errorf("p@3 = %v", got)
	}
	if r.Predictions != 3 || r.Correct != 1 {
		t.Errorf("predictions=%d correct=%d", r.Predictions, r.Correct)
	}
}

func TestEvaluateCorpusUsesLabels(t *testing.T) {
	cols := []*corpus.Column{
		{Values: []string{"3-2", "1-0", "4-4", "2-1", "0-0", "5-3", "2-2", "-"}, Dirty: []int{7}},
		{Values: []string{"x", "y"}, Dirty: []int{}},
		{Values: []string{"unlabeled"}}, // skipped
	}
	r := EvaluateCorpus(&baselines.PWheel{}, cols, []int{1})
	if r.Predictions == 0 {
		t.Fatal("expected at least one prediction")
	}
	if r.PrecisionAt[1] != 1 {
		t.Errorf("p@1 = %v; PWheel should catch the placeholder first", r.PrecisionAt[1])
	}
}

func TestEvaluateEmptyPool(t *testing.T) {
	det := &scriptedDetector{answers: map[int]baselines.Prediction{}}
	r := EvaluateCases(det, []Case{{Values: []string{"a", "b"}, DirtyIndex: -1}}, []int{10})
	if r.Predictions != 0 || r.PrecisionAt[10] != 0 {
		t.Errorf("unexpected result %+v", r)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	if !strings.Contains(s, "X — demo") || !strings.Contains(s, "long-header") {
		t.Errorf("rendering broken:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
	md := tab.Markdown()
	for _, want := range []string{"**X — demo**", "| a | long-header |", "|---|---|", "| 333 | 4 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestSuiteSmokeTable3 exercises corpus generation without training.
func TestSuiteSmokeTable3(t *testing.T) {
	s := sharedSuite(t)
	tab := s.Table3()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 3 rows = %d", len(tab.Rows))
	}
	if tab.Rows[3][2] != "441" {
		t.Errorf("CSV suite should report 441 columns, got %v", tab.Rows[3])
	}
}

// TestSuiteAllArtifacts regenerates every table and figure at the small
// scale and sanity-checks structure: every artifact renders, has rows, and
// numeric cells parse.
func TestSuiteAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	s := sharedSuite(t)
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"Table 3": false, "Figure 4a": false, "Figure 4b": false, "Table 4": false,
		"Figure 5": false, "Figure 6": false, "Figure 7": false,
		"Figure 8a": false, "Figure 8b": false, "Figure 8c": false,
		"Table 5": false, "Figure 17a": false, "Figure 17b": false,
		"Ablation ST/DT": false,
	}
	for _, tab := range tables {
		if _, ok := want[tab.ID]; !ok {
			t.Errorf("unexpected artifact %q", tab.ID)
			continue
		}
		want[tab.ID] = true
		if len(tab.Rows) == 0 || len(tab.Header) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: ragged row %v", tab.ID, row)
			}
		}
		if tab.String() == "" || tab.Markdown() == "" {
			t.Errorf("%s: rendering failed", tab.ID)
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("artifact %q missing from All()", id)
		}
	}
}

// TestSuiteHeadlineShape runs the expensive experiments once (shared
// suite) and checks the paper's qualitative claims hold: Auto-Detect tops
// Figure 4a, and precision degrades as the dirty:clean ratio drops.
func TestSuiteHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	s := sharedSuite(t)
	f4a, err := s.Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	if f4a.Rows[0][0] != "Auto-Detect" {
		t.Fatalf("first row should be Auto-Detect: %v", f4a.Rows[0])
	}
	// Auto-Detect's p@smallest-k should be at least 0.9 and at least as
	// good as every baseline.
	adP := f4a.Rows[0][1]
	if adP < "0.900" {
		t.Errorf("Auto-Detect p@%d = %s on WIKI", s.Scale.CorpusKs[0], adP)
	}

	f5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// Find Auto-Detect rows at 1:1 and 1:10; the 1:1 precision at the
	// largest k should not be below the 1:10 one.
	var p11, p110 string
	for _, row := range f5.Rows {
		if row[1] == "Auto-Detect" {
			if row[0] == "1:1" {
				p11 = row[len(row)-1]
			}
			if row[0] == "1:10" {
				p110 = row[len(row)-1]
			}
		}
	}
	if p11 == "" || p110 == "" {
		t.Fatal("missing Auto-Detect rows in Figure 5")
	}
	if p11 < p110 {
		t.Errorf("precision should not improve as clean columns are added: 1:1=%s < 1:10=%s", p11, p110)
	}
}
