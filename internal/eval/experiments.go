package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Scale sizes an experiment run. Small keeps unit tests and benchmarks
// fast; Full is used by cmd/experiments to regenerate EXPERIMENTS.md.
type Scale struct {
	// Name labels the scale in output.
	Name string
	// TrainColumns sizes the WEB+Pub-XLS training corpus.
	TrainColumns int
	// TestColumns sizes each labeled test corpus (WIKI, Ent-XLS).
	TestColumns int
	// DirtyCases is the number of auto-eval dirty cases per figure.
	DirtyCases int
	// CorpusKs are the precision@k cut-offs for labeled-corpus figures
	// (Figure 4a).
	CorpusKs []int
	// CaseKs are the cut-offs for auto-eval figures (Figures 5–8).
	CaseKs []int
	// CSVKs are the cut-offs for the CSV suite (Figure 4b).
	CSVKs []int
	// TrainPairs sizes T+ and T− each.
	TrainPairs int
	// MemoryBudgets are the Figure 7 sweep points, in bytes.
	MemoryBudgets []int
	// SketchRatios are the Figure 8a sweep points (1 = exact).
	SketchRatios []float64
	// SmoothingFactors are the Figure 17a sweep points.
	SmoothingFactors []float64
}

// SmallScale returns a laptop-seconds configuration for tests and benches.
func SmallScale() Scale {
	return Scale{
		Name:             "small",
		TrainColumns:     6000,
		TestColumns:      3000,
		DirtyCases:       300,
		CorpusKs:         []int{5, 10, 25},
		CaseKs:           []int{10, 50, 100, 300},
		CSVKs:            []int{10, 20, 30, 40, 50},
		TrainPairs:       5000,
		MemoryBudgets:    []int{64 << 10, 1 << 20, 4 << 20},
		SketchRatios:     []float64{1, 0.1, 0.01},
		SmoothingFactors: []float64{0, 0.1, 0.2, 0.4, 0.8, 1},
	}
}

// FullScale returns the configuration used to regenerate EXPERIMENTS.md:
// a 10K-column training corpus (the largest for which all 144 candidate
// statistics fit in memory simultaneously — parameter sweeps need them
// live; see core.TrainBatched for bigger single-model training) and the
// paper's k grid scaled to corpus sizes a single machine can hold.
func FullScale() Scale {
	return Scale{
		Name:             "full",
		TrainColumns:     10000,
		TestColumns:      10000,
		DirtyCases:       2000,
		CorpusKs:         []int{50, 100, 200, 300},
		CaseKs:           []int{50, 100, 500, 1000, 2000},
		CSVKs:            []int{10, 20, 30, 40, 50},
		TrainPairs:       20000,
		MemoryBudgets:    []int{256 << 10, 4 << 20, 16 << 20, 64 << 20},
		SketchRatios:     []float64{1, 0.1, 0.01},
		SmoothingFactors: []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1},
	}
}

// Table is one rendered experiment artifact.
type Table struct {
	// ID is the paper artifact id (e.g. "Figure 5").
	ID string
	// Title describes the artifact.
	Title string
	// Header holds column names.
	Header []string
	// Rows holds the data, pre-formatted.
	Rows [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s — %s**\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Suite owns the shared state of an experiment run: the training corpus,
// the pipeline (statistics + training pairs), calibrations and the default
// detector, all built lazily and reused across experiments.
type Suite struct {
	// Scale sizes everything.
	Scale Scale
	// Seed drives all generation.
	Seed int64

	trainCorpus *corpus.Corpus
	pipe        *core.Pipeline
	cands       []*core.Calibration
	det         *core.Detector
	rep         *core.TrainReport

	wikiTest *corpus.Corpus // labeled, with planted errors
	entTest  *corpus.Corpus

	wikiCases map[int][]Case // ratio → auto-eval cases
	entCases  map[int][]Case
}

// NewSuite returns an empty suite at the given scale.
func NewSuite(s Scale, seed int64) *Suite {
	return &Suite{Scale: s, Seed: seed, wikiCases: map[int][]Case{}, entCases: map[int][]Case{}}
}

// TrainCorpus lazily generates the WEB + Pub-XLS training mix.
func (s *Suite) TrainCorpus() *corpus.Corpus {
	if s.trainCorpus == nil {
		web := corpus.Generate(corpus.WebProfile(), s.Scale.TrainColumns*3/4, s.Seed)
		xls := corpus.Generate(corpus.PubXLSProfile(), s.Scale.TrainColumns/4, s.Seed+1)
		cols := append(append([]*corpus.Column{}, web.Columns...), xls.Columns...)
		s.trainCorpus = &corpus.Corpus{Name: "WEB+Pub-XLS", Columns: cols}
	}
	return s.trainCorpus
}

func (s *Suite) trainConfig() core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.DistSup.PositivePairs = s.Scale.TrainPairs
	cfg.DistSup.NegativePairs = s.Scale.TrainPairs
	cfg.DistSup.Seed = s.Seed
	return cfg
}

// Pipeline lazily builds statistics and training pairs.
func (s *Suite) Pipeline() (*core.Pipeline, error) {
	if s.pipe == nil {
		p, err := core.NewPipeline(s.TrainCorpus(), s.trainConfig())
		if err != nil {
			return nil, err
		}
		s.pipe = p
	}
	return s.pipe, nil
}

// Calibrations lazily calibrates every candidate at the default 0.95
// precision target.
func (s *Suite) Calibrations() ([]*core.Calibration, error) {
	if s.cands == nil {
		p, err := s.Pipeline()
		if err != nil {
			return nil, err
		}
		cands, err := p.Calibrate(0.95)
		if err != nil {
			return nil, err
		}
		s.cands = cands
	}
	return s.cands, nil
}

// Detector lazily builds the default detector (64 MB budget,
// max-confidence aggregation, exact stores).
func (s *Suite) Detector() (*core.Detector, *core.TrainReport, error) {
	if s.det == nil {
		cands, err := s.Calibrations()
		if err != nil {
			return nil, nil, err
		}
		det, rep, err := core.BuildDetector(cands, 64<<20, core.AggMaxConfidence, 0)
		if err != nil {
			return nil, nil, err
		}
		s.det, s.rep = det, rep
	}
	return s.det, s.rep, nil
}

// WikiTest lazily generates the labeled WIKI test corpus.
func (s *Suite) WikiTest() *corpus.Corpus {
	if s.wikiTest == nil {
		s.wikiTest = corpus.Generate(corpus.WikiProfile(), s.Scale.TestColumns, s.Seed+10)
	}
	return s.wikiTest
}

// EntTest lazily generates the labeled Ent-XLS test corpus.
func (s *Suite) EntTest() *corpus.Corpus {
	if s.entTest == nil {
		s.entTest = corpus.Generate(corpus.EntXLSProfile(), s.Scale.TestColumns, s.Seed+11)
	}
	return s.entTest
}

// autoCases lazily builds Section 4.4 cases at the given clean multiple.
func (s *Suite) autoCases(which string, ratio int) ([]Case, error) {
	var cacheMap map[int][]Case
	switch which {
	case "wiki":
		cacheMap = s.wikiCases
	case "ent":
		cacheMap = s.entCases
	default:
		return nil, fmt.Errorf("eval: unknown test corpus %q", which)
	}
	if cs, ok := cacheMap[ratio]; ok {
		return cs, nil
	}
	var src *corpus.Corpus
	var seed int64
	if which == "wiki" {
		p := corpus.WikiProfile()
		p.ErrorRate = 0
		src = corpus.Generate(p, s.Scale.TestColumns, s.Seed+20)
		seed = s.Seed + 30
	} else {
		p := corpus.EntXLSProfile()
		p.ErrorRate = 0
		src = corpus.Generate(p, s.Scale.TestColumns, s.Seed+21)
		seed = s.Seed + 31
	}
	cs, err := BuildAutoEval(src, s.Scale.DirtyCases, s.Scale.DirtyCases*ratio, seed)
	if err != nil {
		return nil, err
	}
	cacheMap[ratio] = cs
	return cs, nil
}

// autoDetectMethod wraps the default detector as a ranked method.
func (s *Suite) autoDetectMethod() (baselines.Detector, error) {
	det, _, err := s.Detector()
	if err != nil {
		return nil, err
	}
	return &baselines.AutoDetect{Det: det}, nil
}

// fmtP formats a precision value.
func fmtP(x float64) string { return fmt.Sprintf("%.3f", x) }

// resultRow renders one method's precision@k row.
func resultRow(r Result, ks []int) []string {
	row := []string{r.Method}
	for _, k := range ks {
		row = append(row, fmtP(r.PrecisionAt[k]))
	}
	return row
}

// Table3 reproduces Table 3: the corpora summary.
func (s *Suite) Table3() *Table {
	rows := [][]string{}
	add := func(name, role string, c *corpus.Corpus) {
		rows = append(rows, []string{name, role,
			fmt.Sprintf("%d", c.NumColumns()),
			fmt.Sprintf("%d", c.NumValues()),
			fmt.Sprintf("%d", c.DirtyColumns()),
		})
	}
	add("WEB+Pub-XLS", "train", s.TrainCorpus())
	add("WIKI", "test", s.WikiTest())
	add("Ent-XLS", "test", s.EntTest())
	add("CSV", "test", corpus.CSVSuite())
	return &Table{
		ID:     "Table 3",
		Title:  "summary of table corpora (synthetic substitutes)",
		Header: []string{"corpus", "role", "#col", "#values", "#dirty-col"},
		Rows:   rows,
	}
}

// Figure4a reproduces Figure 4(a): precision@k of every method on the
// labeled WIKI corpus.
func (s *Suite) Figure4a() (*Table, error) {
	ad, err := s.autoDetectMethod()
	if err != nil {
		return nil, err
	}
	methods := append([]baselines.Detector{ad}, baselines.AllPlusUnion()...)
	ks := s.Scale.CorpusKs
	t := &Table{
		ID:     "Figure 4a",
		Title:  "precision@k on WIKI (labeled corpus, top prediction per column)",
		Header: append([]string{"method"}, kHeader(ks)...),
	}
	cols := s.WikiTest().Columns
	for _, m := range methods {
		t.Rows = append(t.Rows, resultRow(EvaluateCorpus(m, cols, ks), ks))
	}
	return t, nil
}

// Figure4b reproduces Figure 4(b): precision@k on the labeled CSV suite.
func (s *Suite) Figure4b() (*Table, error) {
	ad, err := s.autoDetectMethod()
	if err != nil {
		return nil, err
	}
	methods := append([]baselines.Detector{ad}, baselines.AllPlusUnion()...)
	ks := s.Scale.CSVKs
	t := &Table{
		ID:     "Figure 4b",
		Title:  "precision@k on the CSV suite (441 labeled columns)",
		Header: append([]string{"method"}, kHeader(ks)...),
	}
	cols := corpus.CSVSuite().Columns
	for _, m := range methods {
		t.Rows = append(t.Rows, resultRow(EvaluateCorpus(m, cols, ks), ks))
	}
	return t, nil
}

// Table4 reproduces Table 4: the top-10 most confident incompatible pairs
// found on WIKI.
func (s *Suite) Table4() (*Table, error) {
	det, _, err := s.Detector()
	if err != nil {
		return nil, err
	}
	type hit struct {
		v1, v2 string
		conf   float64
		dirty  bool
	}
	var hits []hit
	for _, col := range s.WikiTest().Columns {
		fs := det.DetectColumn(col.Values)
		if len(fs) == 0 {
			continue
		}
		top := fs[0]
		correct := false
		for _, di := range col.Dirty {
			if col.Values[di] == top.Value {
				correct = true
			}
		}
		hits = append(hits, hit{top.Value, top.Partner, top.Confidence, correct})
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].conf > hits[j].conf })
	if len(hits) > 10 {
		hits = hits[:10]
	}
	t := &Table{
		ID:     "Table 4",
		Title:  "top-10 predicted incompatible values on WIKI",
		Header: []string{"k", "v1 (suspect)", "v2 (partner)", "confidence", "labeled-error"},
	}
	for i, h := range hits {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1), h.v1, h.v2, fmtP(h.conf), fmt.Sprintf("%v", h.dirty),
		})
	}
	return t, nil
}

// autoEvalFigure runs the Section 4.4 protocol for one corpus at the three
// dirty:clean ratios of Figures 5 and 6.
func (s *Suite) autoEvalFigure(id, title, which string) (*Table, error) {
	ad, err := s.autoDetectMethod()
	if err != nil {
		return nil, err
	}
	methods := []baselines.Detector{
		ad, &baselines.FRegex{}, &baselines.PWheel{}, &baselines.DBoost{},
		&baselines.SVDD{}, &baselines.DBOD{}, &baselines.LOF{},
	}
	ks := s.Scale.CaseKs
	t := &Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"ratio", "method"}, kHeader(ks)...),
	}
	for _, ratio := range []int{1, 5, 10} {
		cases, err := s.autoCases(which, ratio)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			r := EvaluateCases(m, cases, ks)
			row := append([]string{fmt.Sprintf("1:%d", ratio)}, resultRow(r, ks)...)
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Figure5 reproduces Figure 5: auto-eval precision@k on WIKI.
func (s *Suite) Figure5() (*Table, error) {
	return s.autoEvalFigure("Figure 5", "auto-eval precision@k on WIKI (dirty:clean 1:1, 1:5, 1:10)", "wiki")
}

// Figure6 reproduces Figure 6: auto-eval precision@k on Ent-XLS.
func (s *Suite) Figure6() (*Table, error) {
	return s.autoEvalFigure("Figure 6", "auto-eval precision@k on Ent-XLS (dirty:clean 1:1, 1:5, 1:10)", "ent")
}

// Figure7 reproduces Figure 7: quality under different memory budgets.
func (s *Suite) Figure7() (*Table, error) {
	cands, err := s.Calibrations()
	if err != nil {
		return nil, err
	}
	cases, err := s.autoCases("ent", 10)
	if err != nil {
		return nil, err
	}
	ks := s.Scale.CaseKs
	t := &Table{
		ID:     "Figure 7",
		Title:  "precision@k vs memory budget on Ent-XLS (1:10)",
		Header: append([]string{"budget", "#langs"}, kHeader(ks)...),
	}
	for _, budget := range s.Scale.MemoryBudgets {
		det, rep, err := core.BuildDetector(cands, budget, core.AggMaxConfidence, 0)
		if err != nil {
			return nil, err
		}
		r := EvaluateCases(&baselines.AutoDetect{Det: det}, cases, ks)
		row := []string{formatBytes(budget), fmt.Sprintf("%d", len(rep.Selected))}
		for _, k := range ks {
			row = append(row, fmtP(r.PrecisionAt[k]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure8a reproduces Figure 8(a): count-min sketch compression at 100%,
// 10% and 1% of the exact co-occurrence store size.
func (s *Suite) Figure8a() (*Table, error) {
	cands, err := s.Calibrations()
	if err != nil {
		return nil, err
	}
	cases, err := s.autoCases("ent", 10)
	if err != nil {
		return nil, err
	}
	ks := s.Scale.CaseKs
	t := &Table{
		ID:     "Figure 8a",
		Title:  "precision@k with count-min sketch compression on Ent-XLS (1:10)",
		Header: append([]string{"store-size", "bytes"}, kHeader(ks)...),
	}
	for _, ratio := range s.Scale.SketchRatios {
		sk := ratio
		if sk >= 1 {
			sk = 0 // exact
		}
		det, _, err := core.BuildDetector(cands, 64<<20, core.AggMaxConfidence, sk)
		if err != nil {
			return nil, err
		}
		r := EvaluateCases(&baselines.AutoDetect{Det: det}, cases, ks)
		row := []string{fmt.Sprintf("%.0f%%", ratio*100), formatBytes(det.Bytes())}
		for _, k := range ks {
			row = append(row, fmtP(r.PrecisionAt[k]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure8b reproduces Figure 8(b): aggregation strategies, plus the best
// single language (BestOne).
func (s *Suite) Figure8b() (*Table, error) {
	det, _, err := s.Detector()
	if err != nil {
		return nil, err
	}
	cands, err := s.Calibrations()
	if err != nil {
		return nil, err
	}
	cases, err := s.autoCases("ent", 10)
	if err != nil {
		return nil, err
	}
	ks := s.Scale.CaseKs
	t := &Table{
		ID:     "Figure 8b",
		Title:  "aggregation strategies on Ent-XLS (1:10)",
		Header: append([]string{"aggregation"}, kHeader(ks)...),
	}
	defer det.SetAggregation(core.AggMaxConfidence)
	for _, agg := range []core.Aggregation{
		core.AggMaxConfidence, core.AggAvgNPMI, core.AggMinNPMI,
		core.AggMajorityVote, core.AggWeightedMajorityVote,
	} {
		det.SetAggregation(agg)
		r := EvaluateCases(&baselines.AutoDetect{Det: det, DisplayName: agg.String()}, cases, ks)
		t.Rows = append(t.Rows, resultRow(r, ks))
	}
	det.SetAggregation(core.AggMaxConfidence)

	// BestOne: the single language with the largest coverage, regardless
	// of memory.
	var best *core.Calibration
	for _, c := range cands {
		if best == nil || c.CoverageCount() > best.CoverageCount() {
			best = c
		}
	}
	single, err := core.NewDetector([]*core.Calibration{best}, core.AggMaxConfidence)
	if err != nil {
		return nil, err
	}
	r := EvaluateCases(&baselines.AutoDetect{Det: single, DisplayName: "BestOne"}, cases, ks)
	t.Rows = append(t.Rows, resultRow(r, ks))
	return t, nil
}

// Figure8c reproduces Figure 8(c): sensitivity to the training corpus —
// the small WIKI corpus versus the larger WEB corpus, tested on Ent-XLS.
func (s *Suite) Figure8c() (*Table, error) {
	cases, err := s.autoCases("ent", 10)
	if err != nil {
		return nil, err
	}
	ks := s.Scale.CaseKs
	t := &Table{
		ID:     "Figure 8c",
		Title:  "training corpus sensitivity, tested on Ent-XLS (1:10)",
		Header: append([]string{"train-corpus", "#col"}, kHeader(ks)...),
	}

	// WIKI training corpus: an order of magnitude smaller, like the paper's
	// 30M-vs-350M comparison.
	wp := corpus.WikiProfile()
	wp.ErrorRate = 0
	wp.Labeled = false
	wikiTrain := corpus.Generate(wp, s.Scale.TrainColumns/10, s.Seed+40)

	for _, tc := range []struct {
		name string
		c    *corpus.Corpus
	}{
		{"WIKI (small)", wikiTrain},
		{"WEB (large)", s.TrainCorpus()},
	} {
		var det *core.Detector
		if tc.c == s.trainCorpus {
			det, _, err = s.Detector()
			if err != nil {
				return nil, err
			}
		} else {
			var err2 error
			det, _, err2 = core.Train(tc.c, s.trainConfig())
			if err2 != nil {
				return nil, err2
			}
		}
		r := EvaluateCases(&baselines.AutoDetect{Det: det}, cases, ks)
		row := []string{tc.name, fmt.Sprintf("%d", tc.c.NumColumns())}
		for _, k := range ks {
			row = append(row, fmtP(r.PrecisionAt[k]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table5 reproduces Table 5: average running time per column.
func (s *Suite) Table5() (*Table, error) {
	ad, err := s.autoDetectMethod()
	if err != nil {
		return nil, err
	}
	methods := []baselines.Detector{
		&baselines.FRegex{}, &baselines.PWheel{}, &baselines.DBoost{},
		&baselines.Linear{}, ad,
	}
	cols := s.EntTest().Columns
	n := len(cols)
	if n > 500 {
		n = 500
	}
	t := &Table{
		ID:     "Table 5",
		Title:  "average running time per column",
		Header: []string{"method", "ms/column"},
	}
	for _, m := range methods {
		start := time.Now()
		for _, col := range cols[:n] {
			m.Detect(col.Values)
		}
		avg := time.Since(start).Seconds() * 1000 / float64(n)
		t.Rows = append(t.Rows, []string{m.Name(), fmt.Sprintf("%.3f", avg)})
	}
	return t, nil
}

// Figure17a reproduces Figure 17(a): sensitivity to the smoothing factor.
// It recalibrates and reselects at each factor, restoring the default
// afterwards.
func (s *Suite) Figure17a() (*Table, error) {
	p, err := s.Pipeline()
	if err != nil {
		return nil, err
	}
	cases, err := s.autoCases("ent", 10)
	if err != nil {
		return nil, err
	}
	k := s.Scale.CaseKs[len(s.Scale.CaseKs)-2]
	t := &Table{
		ID:     "Figure 17a",
		Title:  fmt.Sprintf("precision@%d vs smoothing factor f on Ent-XLS (1:10)", k),
		Header: []string{"f", fmt.Sprintf("p@%d", k)},
	}
	defer func() {
		p.SetSmoothing(stats.DefaultSmoothing)
		s.cands = nil
		s.det = nil
	}()
	for _, f := range s.Scale.SmoothingFactors {
		p.SetSmoothing(f)
		cands, err := p.Calibrate(0.95)
		if err != nil {
			return nil, err
		}
		det, _, err := core.BuildDetector(cands, 64<<20, core.AggMaxConfidence, 0)
		if err != nil {
			// f = 1 collapses NPMI to 0 everywhere: no language can fire.
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", f), "0.000"})
			continue
		}
		r := EvaluateCases(&baselines.AutoDetect{Det: det}, cases, []int{k})
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", f), fmtP(r.PrecisionAt[k])})
	}
	return t, nil
}

// Figure17b reproduces Figure 17(b): the cumulative NPMI distribution of
// two generalization languages (the paper's L1 and L2).
func (s *Suite) Figure17b() (*Table, error) {
	p, err := s.Pipeline()
	if err != nil {
		return nil, err
	}
	langs := []pattern.Language{pattern.L1(), pattern.L2()}
	grid := []float64{-1, -0.8, -0.6, -0.4, -0.2, 0, 0.2, 0.4, 0.6, 0.8, 1}
	t := &Table{
		ID:     "Figure 17b",
		Title:  "CDF of pair NPMI under L1 and L2",
		Header: append([]string{"language"}, gridHeader(grid)...),
	}
	for _, want := range langs {
		var ls *stats.LanguageStats
		for _, cand := range p.Stats {
			if cand.Language() == want {
				ls = cand
				break
			}
		}
		if ls == nil {
			continue
		}
		dist := ls.PairNPMIDistribution()
		row := []string{want.String()}
		for _, x := range grid {
			row = append(row, fmtP(cdfAt(dist, x)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationSelection compares threshold/selection strategies on Ent-XLS
// (1:10): the paper's ST greedy selection (Algorithm 1), the DT
// local-search heuristic (Definition 4, this repo's extension), and a
// naive variant that reuses the ST language set but forces one shared
// threshold across languages (what Section 3.2 argues against: NPMI scores
// are not comparable across languages).
func (s *Suite) AblationSelection() (*Table, error) {
	p, err := s.Pipeline()
	if err != nil {
		return nil, err
	}
	cands, err := s.Calibrations()
	if err != nil {
		return nil, err
	}
	cases, err := s.autoCases("ent", 10)
	if err != nil {
		return nil, err
	}
	ks := s.Scale.CaseKs
	t := &Table{
		ID:     "Ablation ST/DT",
		Title:  "selection & threshold strategies on Ent-XLS (1:10)",
		Header: append([]string{"strategy", "#langs", "coverage"}, kHeader(ks)...),
	}
	addRow := func(name string, sel *core.Selection) error {
		det, err := core.NewDetector(sel.Chosen, core.AggMaxConfidence)
		if err != nil {
			return err
		}
		r := EvaluateCases(&baselines.AutoDetect{Det: det, DisplayName: name}, cases, ks)
		row := []string{name, fmt.Sprintf("%d", len(sel.Chosen)), fmt.Sprintf("%d", sel.Coverage)}
		for _, k := range ks {
			row = append(row, fmtP(r.PrecisionAt[k]))
		}
		t.Rows = append(t.Rows, row)
		return nil
	}

	budget := 64 << 20
	st, err := core.SelectGreedy(cands, budget)
	if err != nil {
		return nil, err
	}
	if err := addRow("ST greedy (Alg. 1)", st); err != nil {
		return nil, err
	}

	dt, err := core.SelectDT(cands, p.Data, budget, 0.95, 16)
	if err != nil {
		return nil, err
	}
	if err := addRow("DT local search", dt); err != nil {
		return nil, err
	}

	// Naive shared threshold: ST's languages with one uncalibrated global
	// threshold θ = −0.5 (the "clearly negative NPMI" intuition of
	// Example 2). Section 3.2's point is that NPMI is not comparable
	// across languages, so any fixed θ is miscalibrated for most of them.
	shared := make([]*core.Calibration, len(st.Chosen))
	for i, c := range st.Chosen {
		cc := *c
		cc.Theta = -0.5
		shared[i] = &cc
	}
	sharedCov := 0
	for _, e := range p.Data.Examples {
		if !e.Incompatible {
			continue
		}
		for _, cc := range shared {
			if cc.Covers(cc.Stats.NPMIRunsLOO(e.URuns, e.VRuns, false)) {
				sharedCov++
				break
			}
		}
	}
	if err := addRow("shared θ=-0.5 (naive)", &core.Selection{Chosen: shared, Coverage: sharedCov, Bytes: st.Bytes}); err != nil {
		return nil, err
	}
	return t, nil
}

// cdfAt returns the fraction of sorted values ≤ x.
func cdfAt(sorted []float64, x float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	lo := sort.SearchFloat64s(sorted, x)
	for lo < len(sorted) && sorted[lo] <= x {
		lo++
	}
	return float64(lo) / float64(len(sorted))
}

func kHeader(ks []int) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("p@%d", k)
	}
	return out
}

func gridHeader(grid []float64) []string {
	out := make([]string, len(grid))
	for i, g := range grid {
		out[i] = fmt.Sprintf("≤%+.1f", g)
	}
	return out
}

func formatBytes(b int) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// All runs every experiment in paper order.
func (s *Suite) All() ([]*Table, error) {
	tables := []*Table{s.Table3()}
	type exp func() (*Table, error)
	for _, e := range []exp{
		s.Figure4a, s.Figure4b, s.Table4,
		s.Figure5, s.Figure6, s.Figure7,
		s.Figure8a, s.Figure8b, s.Figure8c,
		s.Table5, s.Figure17a, s.Figure17b,
		s.AblationSelection,
	} {
		t, err := e()
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
