// Package eval implements the evaluation machinery of the Auto-Detect
// paper: the automatic test-case generation protocol of Section 4.4 (mix
// one verified-incompatible value into a verified-clean column, at
// dirty:clean ratios of 1:1, 1:5 and 1:10), pooled precision@k over ranked
// predictions, and the experiment runners behind every table and figure of
// the evaluation section.
package eval

import (
	"errors"
	"math/rand"
	"sort"

	"repro/internal/baselines"
	"repro/internal/corpus"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Case is one evaluation column.
type Case struct {
	// Values are the column cells.
	Values []string
	// DirtyValue is the planted incompatible value ("" for clean cases).
	DirtyValue string
	// DirtyIndex is the planted value's row (−1 for clean cases).
	DirtyIndex int
}

// Dirty reports whether the case contains a planted error.
func (c *Case) Dirty() bool { return c.DirtyIndex >= 0 }

// BuildAutoEval implements the Section 4.4 protocol against a test corpus:
// verified-compatible columns (under unsmoothed crude NPMI) become the
// clean pool; dirty cases are built by inserting a value u from one clean
// column into another clean column C2, requiring u to be crude-incompatible
// (NPMI < −0.3) with every value of C2. It returns nDirty dirty cases and
// nClean clean cases.
func BuildAutoEval(c *corpus.Corpus, nDirty, nClean int, seed int64) ([]Case, error) {
	if c == nil || len(c.Columns) < 4 {
		return nil, errors.New("eval: test corpus too small")
	}
	r := rand.New(rand.NewSource(seed))
	g := pattern.Crude()

	crude := stats.NewLanguageStats(g, 0)
	type colCache struct {
		values   []string
		patterns []string
	}
	cache := make([]colCache, len(c.Columns))
	for i, col := range c.Columns {
		vs := col.DistinctValues()
		ps := make([]string, len(vs))
		for j, v := range vs {
			ps[j] = g.Generalize(v)
		}
		cache[i] = colCache{vs, ps}
		crude.AddColumn(vs)
	}

	var clean []int
	for i := range cache {
		vs := cache[i]
		if len(vs.values) < 4 || len(vs.values) > 60 {
			continue
		}
		ok := true
	outer:
		for a := 0; a < len(vs.patterns); a++ {
			for b := a + 1; b < len(vs.patterns); b++ {
				if vs.patterns[a] == vs.patterns[b] {
					continue
				}
				if crude.NPMI(vs.patterns[a], vs.patterns[b]) <= 0 {
					ok = false
					break outer
				}
			}
		}
		if ok {
			clean = append(clean, i)
		}
	}
	if len(clean) < 4 {
		return nil, errors.New("eval: too few verified-clean columns")
	}

	var cases []Case
	attempts := 0
	for len(cases) < nDirty && attempts < nDirty*200 {
		attempts++
		c1 := cache[clean[r.Intn(len(clean))]]
		c2 := cache[clean[r.Intn(len(clean))]]
		u := c1.values[r.Intn(len(c1.values))]
		up := g.Generalize(u)
		incompatible := true
		for _, p := range c2.patterns {
			if up == p || crude.NPMI(up, p) >= -0.3 {
				incompatible = false
				break
			}
		}
		if !incompatible {
			continue
		}
		values := make([]string, 0, len(c2.values)+1)
		values = append(values, c2.values...)
		pos := r.Intn(len(values) + 1)
		values = append(values, "")
		copy(values[pos+1:], values[pos:])
		values[pos] = u
		cases = append(cases, Case{Values: values, DirtyValue: u, DirtyIndex: pos})
	}
	if len(cases) == 0 {
		return nil, errors.New("eval: could not build any dirty cases")
	}
	for i := 0; i < nClean; i++ {
		cc := cache[clean[r.Intn(len(clean))]]
		values := make([]string, len(cc.values))
		copy(values, cc.values)
		cases = append(cases, Case{Values: values, DirtyIndex: -1})
	}
	r.Shuffle(len(cases), func(i, j int) { cases[i], cases[j] = cases[j], cases[i] })
	return cases, nil
}

// PooledPrediction is one ranked prediction across the whole test set.
type PooledPrediction struct {
	// Case indexes the originating case.
	Case int
	// Value is the predicted erroneous value.
	Value string
	// Confidence ranks the prediction.
	Confidence float64
	// Correct is true when the prediction hits the planted/labeled error.
	Correct bool
}

// Result is one method's pooled evaluation.
type Result struct {
	// Method is the detector's display name.
	Method string
	// PrecisionAt maps each requested k to precision@k.
	PrecisionAt map[int]float64
	// Predictions is the number of pooled predictions.
	Predictions int
	// Correct is the number of correct pooled predictions.
	Correct int
}

// EvaluateCases runs the detector over generated cases, pooling each
// case's single most confident prediction and computing precision@k for
// each requested k. A prediction on a clean case is a false positive; a
// prediction on a dirty case is correct iff it names the planted value.
func EvaluateCases(det baselines.Detector, cases []Case, ks []int) Result {
	var pool []PooledPrediction
	for ci := range cases {
		preds := det.Detect(cases[ci].Values)
		if len(preds) == 0 {
			continue
		}
		top := preds[0]
		pool = append(pool, PooledPrediction{
			Case:       ci,
			Value:      top.Value,
			Confidence: top.Confidence,
			Correct:    cases[ci].Dirty() && top.Value == cases[ci].DirtyValue,
		})
	}
	return summarize(det.Name(), pool, ks)
}

// EvaluateCorpus runs the detector over a labeled corpus (columns with
// non-nil Dirty), pooling each column's top prediction; a prediction is
// correct iff it names a labeled dirty cell.
func EvaluateCorpus(det baselines.Detector, cols []*corpus.Column, ks []int) Result {
	var pool []PooledPrediction
	for ci, col := range cols {
		if col.Dirty == nil {
			continue
		}
		preds := det.Detect(col.Values)
		if len(preds) == 0 {
			continue
		}
		top := preds[0]
		correct := false
		for _, di := range col.Dirty {
			if col.Values[di] == top.Value {
				correct = true
				break
			}
		}
		pool = append(pool, PooledPrediction{
			Case:       ci,
			Value:      top.Value,
			Confidence: top.Confidence,
			Correct:    correct,
		})
	}
	return summarize(det.Name(), pool, ks)
}

// summarize sorts the pool by confidence and computes precision@k.
func summarize(name string, pool []PooledPrediction, ks []int) Result {
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Confidence > pool[j].Confidence })
	res := Result{Method: name, PrecisionAt: make(map[int]float64, len(ks)), Predictions: len(pool)}
	for _, p := range pool {
		if p.Correct {
			res.Correct++
		}
	}
	for _, k := range ks {
		kk := k
		if kk > len(pool) {
			kk = len(pool)
		}
		if kk == 0 {
			res.PrecisionAt[k] = 0
			continue
		}
		correct := 0
		for _, p := range pool[:kk] {
			if p.Correct {
				correct++
			}
		}
		res.PrecisionAt[k] = float64(correct) / float64(kk)
	}
	return res
}
