// Package faultfs is the fault-injecting filesystem harness for the
// training pipeline, generalizing internal/resilience/faultinject (which
// targets HTTP serving) to the ingestion side: deterministic, seedable
// injection of transient open failures that recover after N attempts,
// permanently-broken paths, mid-read errors, short/torn writes, and
// crash-point kill switches.
//
// Everything is deterministic in (Seed, path, attempt), so a chaos run is
// reproducible: the same seed injects the same faults at the same places,
// which is what lets property tests assert that a fault-riddled,
// thrice-killed build converges to the byte-identical model of a clean one.
//
// Like faultinject, this is a test harness: production packages must not
// import it outside of tests.
package faultfs

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/retry"
)

// ErrInjected is the root of every injected failure; test assertions can
// errors.Is against it.
var ErrInjected = errors.New("faultfs: injected fault")

// Opener matches the pluggable file-open hook of pipeline.DirConfig.
type Opener func(path string) (io.ReadCloser, error)

// Config parameterizes an FS. Rates select *paths* (deterministically, by
// hash), not individual operations: a transient path fails its first
// RecoverAfter opens then works forever, modelling a flaky NFS export that
// heals; a permanent path never opens, modelling an unreadable file.
type Config struct {
	// Seed drives every injection decision.
	Seed uint64
	// TransientRate is the fraction of paths (0..1) that fail transiently.
	TransientRate float64
	// RecoverAfter is how many times a transient path fails before it
	// recovers (default 2).
	RecoverAfter int
	// PermanentRate is the fraction of paths that always fail to open.
	// Permanent selection is independent of transient selection; a path
	// that draws both is permanent.
	PermanentRate float64
	// ReadFault makes transient paths open successfully but fail mid-read
	// (after ReadFaultAfter bytes) instead of failing at open — exercising
	// the reopen-and-reparse path rather than the open-retry path.
	ReadFault bool
	// ReadFaultAfter is the byte offset of injected read errors (default 64).
	ReadFaultAfter int64
}

// FS wraps an Opener with injected faults. Safe for concurrent use.
type FS struct {
	open Opener
	cfg  Config

	mu    sync.Mutex
	fails map[string]int // transient failures delivered so far, per path

	transientInjected atomic.Uint64
	permanentInjected atomic.Uint64
	opens             atomic.Uint64
}

// New returns an FS over the real filesystem (os.Open).
func New(cfg Config) *FS {
	return NewWith(func(path string) (io.ReadCloser, error) { return os.Open(path) }, cfg)
}

// NewWith returns an FS over an arbitrary underlying opener.
func NewWith(open Opener, cfg Config) *FS {
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 2
	}
	if cfg.ReadFaultAfter <= 0 {
		cfg.ReadFaultAfter = 64
	}
	return &FS{open: open, cfg: cfg, fails: make(map[string]int)}
}

// Open implements Opener with fault injection in front of the wrapped
// opener. Injected transient errors are marked with retry.Transient, so the
// ingestion retry policy classifies them exactly like a real EAGAIN;
// permanent errors are unmarked and quarantine instead of retrying.
func (f *FS) Open(path string) (io.ReadCloser, error) {
	f.opens.Add(1)
	if f.pathSelected(path, "permanent", f.cfg.PermanentRate) {
		f.permanentInjected.Add(1)
		return nil, fmt.Errorf("%w: permanent open failure for %s", ErrInjected, path)
	}
	if f.pathSelected(path, "transient", f.cfg.TransientRate) {
		f.mu.Lock()
		failed := f.fails[path]
		inject := failed < f.cfg.RecoverAfter
		if inject {
			f.fails[path] = failed + 1
		}
		f.mu.Unlock()
		if inject {
			f.transientInjected.Add(1)
			if f.cfg.ReadFault {
				rc, err := f.open(path)
				if err != nil {
					return nil, err
				}
				return &faultReader{rc: rc, after: f.cfg.ReadFaultAfter, path: path}, nil
			}
			return nil, retry.Transient(fmt.Errorf("%w: transient open failure %d/%d for %s",
				ErrInjected, failed+1, f.cfg.RecoverAfter, path))
		}
	}
	return f.open(path)
}

// TransientInjected reports how many transient faults were delivered.
func (f *FS) TransientInjected() uint64 { return f.transientInjected.Load() }

// PermanentInjected reports how many permanent faults were delivered.
func (f *FS) PermanentInjected() uint64 { return f.permanentInjected.Load() }

// Opens reports the total open attempts observed (including faulted ones).
func (f *FS) Opens() uint64 { return f.opens.Load() }

// pathSelected deterministically decides whether a path is in the faulty
// fraction for a given fault kind.
func (f *FS) pathSelected(path, kind string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	io.WriteString(h, kind)
	io.WriteString(h, path)
	v := splitmix64(h.Sum64() ^ f.cfg.Seed)
	return float64(v)/float64(^uint64(0)) < rate
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultReader delivers the stream up to `after` bytes, then returns one
// injected transient error. Close closes the underlying file either way.
type faultReader struct {
	rc    io.ReadCloser
	after int64
	read  int64
	path  string
}

func (r *faultReader) Read(p []byte) (int, error) {
	if r.read >= r.after {
		return 0, retry.Transient(fmt.Errorf("%w: transient read failure at offset %d of %s",
			ErrInjected, r.read, r.path))
	}
	if rem := r.after - r.read; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := r.rc.Read(p)
	r.read += int64(n)
	return n, err
}

func (r *faultReader) Close() error { return r.rc.Close() }

// ShortWriter silently accepts only the first Cap bytes and reports the
// rest as written — a lying disk or a torn buffer flush. Wrap a checkpoint
// or model writer with it to produce exactly the corruption the integrity
// envelope must catch.
type ShortWriter struct {
	W   io.Writer
	Cap int64

	written int64
}

func (s *ShortWriter) Write(p []byte) (int, error) {
	if s.written >= s.Cap {
		return len(p), nil // lie: claim success, persist nothing
	}
	keep := p
	if rem := s.Cap - s.written; int64(len(keep)) > rem {
		keep = keep[:rem]
	}
	n, err := s.W.Write(keep)
	s.written += int64(n)
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// Tear truncates path to keep bytes — a torn write landed on disk. It is
// how chaos tests corrupt the newest checkpoint between kill/resume cycles.
func Tear(path string, keep int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if keep > fi.Size() {
		keep = fi.Size()
	}
	return os.Truncate(path, keep)
}

// FlipByte XORs mask into the byte at offset of path — a single bit-rotted
// byte in an otherwise intact file.
func FlipByte(path string, offset int64, mask byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		return err
	}
	b[0] ^= mask
	_, err = f.WriteAt(b[:], offset)
	return err
}

// KillSwitch cancels a context after N trigger hits — the in-process
// stand-in for `kill -9` at a crash point. Hits beyond the Nth are no-ops.
type KillSwitch struct {
	hits   atomic.Int64
	after  int64
	cancel context.CancelFunc
}

// NewKillSwitch arms a switch that fires cancel on the after-th Hit.
func NewKillSwitch(after int, cancel context.CancelFunc) *KillSwitch {
	return &KillSwitch{after: int64(after), cancel: cancel}
}

// Hit records one crash-point crossing, killing the context if armed count
// is reached.
func (k *KillSwitch) Hit() {
	if k.hits.Add(1) == k.after {
		k.cancel()
	}
}

// Fired reports whether the switch has killed its context.
func (k *KillSwitch) Fired() bool { return k.hits.Load() >= k.after }
