package faultfs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/retry"
)

// memOpener serves fixed contents from memory.
func memOpener(files map[string]string) Opener {
	return func(path string) (io.ReadCloser, error) {
		s, ok := files[path]
		if !ok {
			return nil, os.ErrNotExist
		}
		return io.NopCloser(strings.NewReader(s)), nil
	}
}

func TestTransientFaultRecoversAfterN(t *testing.T) {
	fs := NewWith(memOpener(map[string]string{"a.csv": "x,y\n1,2\n"}), Config{
		Seed: 7, TransientRate: 1, RecoverAfter: 3,
	})
	for i := 0; i < 3; i++ {
		_, err := fs.Open("a.csv")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("open %d: err = %v, want injected fault", i, err)
		}
		if !retry.IsTransient(err) {
			t.Fatalf("open %d: injected transient fault not classified transient", i)
		}
	}
	rc, err := fs.Open("a.csv")
	if err != nil {
		t.Fatalf("open after recovery: %v", err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "x,y\n1,2\n" {
		t.Errorf("recovered read = %q", got)
	}
	if fs.TransientInjected() != 3 {
		t.Errorf("TransientInjected = %d, want 3", fs.TransientInjected())
	}
}

func TestPermanentFaultNeverRecovers(t *testing.T) {
	fs := NewWith(memOpener(map[string]string{"a.csv": "x"}), Config{
		Seed: 7, PermanentRate: 1,
	})
	for i := 0; i < 5; i++ {
		_, err := fs.Open("a.csv")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("open %d: err = %v, want injected fault", i, err)
		}
		if retry.IsTransient(err) {
			t.Fatal("permanent fault must not classify as transient")
		}
	}
	if fs.PermanentInjected() != 5 {
		t.Errorf("PermanentInjected = %d, want 5", fs.PermanentInjected())
	}
}

func TestRateSelectionIsDeterministicAndPartial(t *testing.T) {
	files := map[string]string{}
	for i := 0; i < 200; i++ {
		files[filepath.Join("d", string(rune('a'+i%26))+string(rune('0'+i/26)))] = "x"
	}
	count := func(seed uint64) (int, map[string]bool) {
		fs := NewWith(memOpener(files), Config{Seed: seed, TransientRate: 0.3, RecoverAfter: 1})
		faulty := map[string]bool{}
		for p := range files {
			if _, err := fs.Open(p); err != nil {
				faulty[p] = true
			}
		}
		return len(faulty), faulty
	}
	n1, f1 := count(42)
	n2, f2 := count(42)
	if n1 != n2 {
		t.Fatalf("same seed selected %d then %d faulty paths", n1, n2)
	}
	for p := range f1 {
		if !f2[p] {
			t.Fatalf("same seed selected different paths")
		}
	}
	if n1 == 0 || n1 == len(files) {
		t.Errorf("rate 0.3 selected %d/%d paths; want a strict subset", n1, len(files))
	}
}

func TestReadFaultFailsMidStream(t *testing.T) {
	content := strings.Repeat("a,b\n", 100)
	fs := NewWith(memOpener(map[string]string{"a.csv": content}), Config{
		Seed: 3, TransientRate: 1, RecoverAfter: 1, ReadFault: true, ReadFaultAfter: 10,
	})
	rc, err := fs.Open("a.csv")
	if err != nil {
		t.Fatalf("ReadFault mode should open fine, got %v", err)
	}
	_, err = io.ReadAll(rc)
	rc.Close()
	if !errors.Is(err, ErrInjected) || !retry.IsTransient(err) {
		t.Fatalf("mid-read err = %v, want injected transient", err)
	}
	// Second open: recovered.
	rc, err = fs.Open("a.csv")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || string(got) != content {
		t.Fatalf("recovered read err=%v len=%d", err, len(got))
	}
}

func TestShortWriterLies(t *testing.T) {
	var buf bytes.Buffer
	sw := &ShortWriter{W: &buf, Cap: 5}
	n, err := sw.Write([]byte("0123456789"))
	if err != nil || n != 10 {
		t.Fatalf("Write = (%d, %v), want (10, nil)", n, err)
	}
	if buf.String() != "01234" {
		t.Errorf("persisted %q, want torn prefix 01234", buf.String())
	}
	if n, _ := sw.Write([]byte("more")); n != 4 {
		t.Errorf("post-cap write reported %d", n)
	}
	if buf.String() != "01234" {
		t.Errorf("post-cap write persisted data: %q", buf.String())
	}
}

func TestTearAndFlipByte(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	if err := os.WriteFile(p, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Tear(p, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p)
	if string(got) != "0123" {
		t.Fatalf("after Tear: %q", got)
	}
	if err := FlipByte(p, 2, 0xFF); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(p)
	if got[2] == '2' {
		t.Error("FlipByte left the byte unchanged")
	}
}

func TestKillSwitch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	k := NewKillSwitch(3, cancel)
	k.Hit()
	k.Hit()
	if ctx.Err() != nil {
		t.Fatal("killed before the armed hit count")
	}
	if k.Fired() {
		t.Fatal("Fired before the armed hit count")
	}
	k.Hit()
	if ctx.Err() == nil {
		t.Fatal("third hit should cancel")
	}
	k.Hit() // further hits are no-ops
	if !k.Fired() {
		t.Fatal("Fired() should report true after the kill")
	}
}
