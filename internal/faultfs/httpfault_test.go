package faultfs

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/retry"
)

// echoServer counts delivered requests and echoes a fixed body.
func echoServer(t *testing.T, hits *atomic.Uint64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, strings.Repeat("corpus-shard-bytes.", 20))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.Do(req)
}

func TestHTTPDropNeverDelivers(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{Seed: 1, DropRate: 1, RecoverAfter: 3})
	c := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		_, err := get(t, c, srv.URL+"/lease")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("request %d: err = %v, want injected fault", i, err)
		}
		if !retry.IsTransient(err) {
			t.Errorf("request %d: injected drop not classified transient", i)
		}
	}
	if hits.Load() != 0 {
		t.Errorf("server saw %d requests, want 0 (drops must not deliver)", hits.Load())
	}
	if tr.Drops() != 3 {
		t.Errorf("Drops = %d, want 3", tr.Drops())
	}
}

func TestHTTPServerErrorSynthesized(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{Seed: 2, ServerErrorRate: 1, RetryAfterSeconds: 7})
	c := &http.Client{Transport: tr}
	resp, err := get(t, c, srv.URL+"/shard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}
	if hits.Load() != 0 {
		t.Errorf("server saw %d requests, want 0 (503s are synthesized)", hits.Load())
	}
	if tr.ServerErrors() != 1 {
		t.Errorf("ServerErrors = %d, want 1", tr.ServerErrors())
	}
}

func TestHTTPBlackholeDeliversThenFails(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{Seed: 3, BlackholeRate: 1})
	c := &http.Client{Transport: tr}
	_, err := get(t, c, srv.URL+"/shard")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if !retry.IsTransient(err) {
		t.Error("blackhole error not classified transient")
	}
	if hits.Load() != 1 {
		t.Errorf("server saw %d requests, want 1 (blackhole must deliver)", hits.Load())
	}
	if tr.Blackholes() != 1 {
		t.Errorf("Blackholes = %d, want 1", tr.Blackholes())
	}
}

func TestHTTPTruncateTearsResponseBody(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{Seed: 4, TruncateRate: 1, TruncateAfter: 10})
	c := &http.Client{Transport: tr}
	resp, err := get(t, c, srv.URL+"/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want injected tear", err)
	}
	if len(body) != 10 {
		t.Errorf("read %d bytes before tear, want 10", len(body))
	}
	if !retry.IsTransient(err) {
		t.Error("tear error not classified transient")
	}
	if tr.Truncates() != 1 {
		t.Errorf("Truncates = %d, want 1", tr.Truncates())
	}
}

// TestHTTPRecoverAfterGuaranteesProgress: even with every rate maxed, a key
// passes through cleanly after RecoverAfter consecutive faults, so a
// retrying caller always completes.
func TestHTTPRecoverAfterGuaranteesProgress(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{
		Seed: 5, DropRate: 1, ServerErrorRate: 1, BlackholeRate: 1, TruncateRate: 1, RecoverAfter: 2,
	})
	c := &http.Client{Transport: tr}
	var ok bool
	for i := 0; i < 3; i++ {
		resp, err := get(t, c, srv.URL+"/lease")
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			if _, rerr := io.ReadAll(resp.Body); rerr == nil {
				ok = true
			}
		}
		resp.Body.Close()
	}
	if !ok {
		t.Fatal("no clean round trip within RecoverAfter+1 attempts")
	}
	if tr.Faults() != 2 {
		t.Errorf("Faults = %d, want 2 (capped by RecoverAfter)", tr.Faults())
	}
}

// TestHTTPDeterministic: same seed, same request sequence, same faults.
func TestHTTPDeterministic(t *testing.T) {
	run := func(seed uint64) []uint64 {
		var hits atomic.Uint64
		srv := echoServer(t, &hits)
		tr := NewTransport(srv.Client().Transport, HTTPConfig{
			Seed: seed, DropRate: 0.3, ServerErrorRate: 0.2, BlackholeRate: 0.2, TruncateRate: 0.2,
		})
		c := &http.Client{Transport: tr}
		paths := []string{"/lease", "/heartbeat", "/shard", "/lease", "/shard", "/heartbeat", "/status", "/shard"}
		for _, p := range paths {
			for i := 0; i < 4; i++ {
				resp, err := get(t, c, srv.URL+p)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return []uint64{tr.Drops(), tr.ServerErrors(), tr.Blackholes(), tr.Truncates()}
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault counts differ across identical runs: %v vs %v", a, b)
		}
	}
	if c := run(12); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] && a[3] == c[3] {
		t.Logf("warning: seeds 11 and 12 drew identical fault counts %v (possible but unlikely)", a)
	}
}

// TestHTTPWithRetryPolicy: the intended pairing — a retry.Policy with
// per-attempt timeouts rides out injected connection faults end to end.
func TestHTTPWithRetryPolicy(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{Seed: 6, DropRate: 1, RecoverAfter: 2})
	c := &http.Client{Transport: tr}
	p := retry.Policy{MaxAttempts: 4, Sleep: func(context.Context, time.Duration) error { return nil }}
	var status int
	err := p.DoCtx(context.Background(), func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/lease", nil)
		if err != nil {
			return err
		}
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		status = resp.StatusCode
		return nil
	})
	if err != nil {
		t.Fatalf("retried request failed: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if tr.Drops() != 2 {
		t.Errorf("Drops = %d, want 2 before recovery", tr.Drops())
	}
}

func TestHTTPForcedStallBlocksUntilCancel(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{Seed: 1})
	c := &http.Client{Transport: tr}
	tr.SetStall(true)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/models", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Do(req)
	if err == nil {
		t.Fatal("stalled request must fail once the context expires")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("request failed after %v, want a hang until the ~50ms deadline", elapsed)
	}
	if hits.Load() != 0 {
		t.Errorf("server saw %d requests, want 0 (stalls never deliver)", hits.Load())
	}
	if tr.Stalls() == 0 {
		t.Error("Stalls counter never incremented")
	}
}

func TestHTTPForcedStallHealReleasesInFlight(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{Seed: 1})
	c := &http.Client{Transport: tr}
	tr.SetStall(true)

	done := make(chan error, 1)
	go func() {
		resp, err := get(t, c, srv.URL+"/models")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	// Give the round trip time to park on the stall gate, then heal.
	time.Sleep(20 * time.Millisecond)
	tr.SetStall(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("healed request failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healing the stall did not release the in-flight request")
	}
	if hits.Load() != 1 {
		t.Errorf("server saw %d requests, want 1 after heal", hits.Load())
	}
}

func TestHTTPRateStallRespectsRecoverAfter(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{Seed: 1, StallRate: 1, RecoverAfter: 2})
	c := &http.Client{Transport: tr}
	// With StallRate 1 and RecoverAfter 2, the third attempt passes clean.
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/models", nil)
		resp, err := c.Do(req)
		cancel()
		if i < 2 {
			if err == nil {
				t.Fatalf("attempt %d: expected a stall, got a response", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("attempt %d after RecoverAfter: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := tr.Stalls(); got != 2 {
		t.Errorf("Stalls = %d, want 2", got)
	}
	if hits.Load() != 1 {
		t.Errorf("server saw %d requests, want 1", hits.Load())
	}
}

func TestHTTPTrickleDribblesBody(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{
		Seed: 1, TrickleRate: 1, TrickleDelay: time.Millisecond, RecoverAfter: 1,
	})
	c := &http.Client{Transport: tr}
	resp, err := get(t, c, srv.URL+"/models")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading trickled body: %v", err)
	}
	want := strings.Repeat("corpus-shard-bytes.", 20)
	if string(body) != want {
		t.Fatalf("trickled body corrupted: %d bytes, want %d", len(body), len(want))
	}
	// One byte per ~1ms over ~380 bytes: the read must have taken a while.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("trickled read finished in %v, want a visible dribble", elapsed)
	}
	if tr.Trickles() != 1 {
		t.Errorf("Trickles = %d, want 1", tr.Trickles())
	}
}

func TestHTTPTrickleAbortsOnCancel(t *testing.T) {
	var hits atomic.Uint64
	srv := echoServer(t, &hits)
	tr := NewTransport(srv.Client().Transport, HTTPConfig{
		Seed: 1, TrickleRate: 1, TrickleDelay: 20 * time.Millisecond, RecoverAfter: 1,
	})
	c := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/models", nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("trickled read must abort when the context expires")
	}
}
