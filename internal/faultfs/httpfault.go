package faultfs

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/retry"
)

// HTTPConfig parameterizes a Transport. Rates select individual round trips
// (deterministically, by hash of the request key and its per-key sequence
// number), and — mirroring the filesystem harness — a key never suffers more
// than RecoverAfter consecutive faults, so every caller that retries makes
// progress eventually no matter how hostile the rates.
type HTTPConfig struct {
	// Seed drives every injection decision.
	Seed uint64
	// DropRate is the fraction of round trips that fail with a connection
	// error *before* the request reaches the server — the request is never
	// delivered.
	DropRate float64
	// ServerErrorRate is the fraction of round trips answered with a
	// synthesized 503 (carrying a Retry-After header) without delivering
	// the request.
	ServerErrorRate float64
	// BlackholeRate is the fraction of round trips where the request IS
	// delivered and processed by the server but the response is discarded
	// and a connection error returned — the fault that turns a retrying
	// client into a duplicate sender.
	BlackholeRate float64
	// TruncateRate is the fraction of round trips whose response body is
	// torn after TruncateAfter bytes — the download-side integrity fault.
	TruncateRate float64
	// TruncateAfter is the byte offset of injected response tears
	// (default 64).
	TruncateAfter int64
	// StallRate is the fraction of round trips that hang — the request is
	// never delivered and RoundTrip blocks until the request context is
	// cancelled. This is the fault that a plain retry loop cannot ride out
	// without per-attempt timeouts: nothing errors, nothing answers.
	StallRate float64
	// TrickleRate is the fraction of round trips whose response body
	// arrives one byte per TrickleDelay — the slow-loris read-side fault
	// that holds a caller's connection (and deadline budget) hostage
	// without ever failing.
	TrickleRate float64
	// TrickleDelay is the per-byte delay of trickled bodies (default 10ms).
	TrickleDelay time.Duration
	// RecoverAfter caps consecutive faults per request key (default 2): a
	// key that has eaten that many faults in a row passes through cleanly
	// at least once before it can be faulted again.
	RecoverAfter int
	// RetryAfterSeconds is the Retry-After hint on synthesized 503s
	// (default 1).
	RetryAfterSeconds int
}

// Transport wraps an http.RoundTripper with deterministic injected faults.
// Safe for concurrent use. Like FS, it is a test harness: production
// packages must not import it outside of tests.
type Transport struct {
	next http.RoundTripper
	cfg  HTTPConfig

	mu   sync.Mutex
	seq  map[string]uint64 // round trips observed per key, for determinism
	runs map[string]int    // consecutive faults delivered per key

	stallMu sync.Mutex
	stallCh chan struct{} // non-nil while force-stalled; closed on heal

	requests   atomic.Uint64
	drops      atomic.Uint64
	serverErrs atomic.Uint64
	blackholes atomic.Uint64
	truncates  atomic.Uint64
	stalls     atomic.Uint64
	trickles   atomic.Uint64
}

// NewTransport wraps next (default http.DefaultTransport) with fault
// injection.
func NewTransport(next http.RoundTripper, cfg HTTPConfig) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 2
	}
	if cfg.TruncateAfter <= 0 {
		cfg.TruncateAfter = 64
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	if cfg.TrickleDelay <= 0 {
		cfg.TrickleDelay = 10 * time.Millisecond
	}
	return &Transport{next: next, cfg: cfg, seq: make(map[string]uint64), runs: make(map[string]int)}
}

// faultKind is what the picker decided to do to one round trip.
type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	faultServerError
	faultBlackhole
	faultTruncate
	faultStall
	faultTrickle
)

// RoundTrip implements http.RoundTripper. Injected connection-level errors
// are marked with retry.Transient so a retry.Policy classifies them exactly
// like a real ECONNRESET; synthesized 503s are ordinary responses the
// caller's own status classification must handle.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	key := req.Method + " " + req.URL.Path
	if ch := t.stallGate(); ch != nil {
		// Forced stall (SetStall): hang until the caller gives up or the
		// fault is healed; healing releases in-flight round trips to
		// proceed normally, modelling an upstream that un-wedges.
		t.stalls.Add(1)
		select {
		case <-req.Context().Done():
			drainRequest(req)
			return nil, retry.Transient(fmt.Errorf("%w: stalled %s until caller gave up: %v",
				ErrInjected, key, req.Context().Err()))
		case <-ch:
		}
	}
	kind := t.pick(key)
	switch kind {
	case faultDrop:
		t.drops.Add(1)
		drainRequest(req)
		return nil, retry.Transient(fmt.Errorf("%w: dropped %s before delivery", ErrInjected, key))
	case faultServerError:
		t.serverErrs.Add(1)
		drainRequest(req)
		body := "injected 503\n"
		resp := &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Retry-After": []string{strconv.Itoa(t.cfg.RetryAfterSeconds)}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		return resp, nil
	case faultBlackhole:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err // a real failure outranks the injected one
		}
		t.blackholes.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, retry.Transient(fmt.Errorf("%w: blackholed response to %s after delivery", ErrInjected, key))
	case faultTruncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		t.truncates.Add(1)
		resp.Body = &truncatedBody{rc: resp.Body, after: t.cfg.TruncateAfter, key: key}
		resp.ContentLength = -1
		return resp, nil
	case faultStall:
		t.stalls.Add(1)
		<-req.Context().Done()
		drainRequest(req)
		return nil, retry.Transient(fmt.Errorf("%w: stalled %s until caller gave up: %v",
			ErrInjected, key, req.Context().Err()))
	case faultTrickle:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		t.trickles.Add(1)
		resp.Body = &trickleBody{rc: resp.Body, delay: t.cfg.TrickleDelay, ctx: req.Context()}
		resp.ContentLength = -1
		return resp, nil
	default:
		return t.next.RoundTrip(req)
	}
}

// pick decides the fate of one round trip: deterministic in (Seed, key,
// per-key sequence number), with the RecoverAfter progress cap.
func (t *Transport) pick(key string) faultKind {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq[key]
	t.seq[key] = n + 1
	kind := faultNone
	if t.runs[key] < t.cfg.RecoverAfter {
		switch {
		case t.drawn("drop", key, n, t.cfg.DropRate):
			kind = faultDrop
		case t.drawn("503", key, n, t.cfg.ServerErrorRate):
			kind = faultServerError
		case t.drawn("blackhole", key, n, t.cfg.BlackholeRate):
			kind = faultBlackhole
		case t.drawn("truncate", key, n, t.cfg.TruncateRate):
			kind = faultTruncate
		case t.drawn("stall", key, n, t.cfg.StallRate):
			kind = faultStall
		case t.drawn("trickle", key, n, t.cfg.TrickleRate):
			kind = faultTrickle
		}
	}
	if kind == faultNone {
		t.runs[key] = 0
	} else {
		t.runs[key]++
	}
	return kind
}

// drawn is the per-round-trip analogue of FS.pathSelected, additionally
// keyed by the sequence number so each attempt draws independently.
func (t *Transport) drawn(kind, key string, seq uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	io.WriteString(h, kind)
	io.WriteString(h, key)
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(seq >> (8 * i))
	}
	h.Write(buf[:])
	v := splitmix64(h.Sum64() ^ t.cfg.Seed)
	return float64(v)/float64(^uint64(0)) < rate
}

// Requests reports total round trips observed (including faulted ones).
func (t *Transport) Requests() uint64 { return t.requests.Load() }

// Drops reports requests failed before delivery.
func (t *Transport) Drops() uint64 { return t.drops.Load() }

// ServerErrors reports synthesized 503 responses.
func (t *Transport) ServerErrors() uint64 { return t.serverErrs.Load() }

// Blackholes reports delivered-then-discarded responses.
func (t *Transport) Blackholes() uint64 { return t.blackholes.Load() }

// Truncates reports torn response bodies.
func (t *Transport) Truncates() uint64 { return t.truncates.Load() }

// Stalls reports round trips that hung until caller cancellation (rate-based
// and forced).
func (t *Transport) Stalls() uint64 { return t.stalls.Load() }

// Trickles reports slow-loris response bodies delivered byte-by-byte.
func (t *Transport) Trickles() uint64 { return t.trickles.Load() }

// Faults reports the total injected faults of all kinds.
func (t *Transport) Faults() uint64 {
	return t.Drops() + t.ServerErrors() + t.Blackholes() + t.Truncates() + t.Stalls() + t.Trickles()
}

// SetStall toggles the forced-stall fault: while on, every round trip hangs
// (bypassing rates and the RecoverAfter progress cap) until the caller's
// context is cancelled or the stall is healed with SetStall(false), which
// also releases the round trips currently hanging. This is the chaos
// harness's "upstream wedged / upstream recovered" switch.
func (t *Transport) SetStall(on bool) {
	t.stallMu.Lock()
	defer t.stallMu.Unlock()
	if on {
		if t.stallCh == nil {
			t.stallCh = make(chan struct{})
		}
		return
	}
	if t.stallCh != nil {
		close(t.stallCh)
		t.stallCh = nil
	}
}

// stallGate returns the channel a forced-stalled round trip must wait on,
// or nil when no forced stall is active.
func (t *Transport) stallGate() chan struct{} {
	t.stallMu.Lock()
	defer t.stallMu.Unlock()
	return t.stallCh
}

// drainRequest disposes of the request body on paths that never hand the
// request to the underlying transport — RoundTrip owns the body either way.
func drainRequest(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// truncatedBody delivers the response up to `after` bytes, then returns one
// injected transient error — the read-side twin of faultReader.
type truncatedBody struct {
	rc    io.ReadCloser
	after int64
	read  int64
	key   string
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.read >= b.after {
		return 0, retry.Transient(fmt.Errorf("%w: response to %s torn at offset %d",
			ErrInjected, b.key, b.read))
	}
	if rem := b.after - b.read; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := b.rc.Read(p)
	b.read += int64(n)
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// trickleBody delivers the response one byte per delay — a read-side
// slow-loris. Cancelling the request context aborts the dribble.
type trickleBody struct {
	rc    io.ReadCloser
	delay time.Duration
	ctx   context.Context
}

func (b *trickleBody) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	select {
	case <-b.ctx.Done():
		return 0, retry.Transient(fmt.Errorf("%w: trickled body abandoned: %v", ErrInjected, b.ctx.Err()))
	case <-time.After(b.delay):
	}
	return b.rc.Read(p[:1])
}

func (b *trickleBody) Close() error { return b.rc.Close() }
