package observe

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// seedDebugTracer records one three-span trace and one error trace.
func seedDebugTracer() *Tracer {
	tr := newTestTracer(11)
	ctx := ContextWithTracer(context.Background(), tr)
	rctx, endRoot := RecorderSpan(ctx, "POST /v1/check-table")
	cctx, endCol := Span(rctx, "check_column")
	_, endDet := Span(cctx, "detect_pattern")
	endDet()
	endCol()
	endRoot()

	ectx, endErr := RecorderSpan(ctx, "POST /v1/jobs")
	SetSpanError(ectx, "queue full")
	endErr()
	return tr
}

func TestDebugHandlerListAndFilters(t *testing.T) {
	tr := seedDebugTracer()
	h := DebugHandler(DebugOptions{Traces: true, Recorder: tr.Recorder()})

	get := func(url string) (int, map[string]any) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var body map[string]any
		_ = json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body
	}

	code, body := get("/debug/traces")
	if code != 200 {
		t.Fatalf("list: %d", code)
	}
	traces := body["traces"].([]any)
	if len(traces) != 2 {
		t.Fatalf("listed %d traces, want 2", len(traces))
	}
	newest := traces[0].(map[string]any)
	if newest["root"] != "POST /v1/jobs" || newest["error"] != true {
		t.Fatalf("newest trace: %v", newest)
	}

	code, body = get("/debug/traces?error=1")
	if code != 200 || len(body["traces"].([]any)) != 1 {
		t.Fatalf("error filter: %d %v", code, body)
	}
	code, body = get("/debug/traces?limit=1")
	if code != 200 || len(body["traces"].([]any)) != 1 {
		t.Fatalf("limit filter: %d %v", code, body)
	}
	if code, _ = get("/debug/traces?min_ms=junk"); code != 400 {
		t.Fatalf("bad min_ms: %d, want 400", code)
	}
	if code, _ = get("/debug/traces?limit=-1"); code != 400 {
		t.Fatalf("bad limit: %d, want 400", code)
	}
}

func TestDebugHandlerSpanTree(t *testing.T) {
	tr := seedDebugTracer()
	h := DebugHandler(DebugOptions{Traces: true, Recorder: tr.Recorder()})

	// Find the three-span trace's ID from the listing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var listing struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Spans   int    `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	var id string
	for _, tc := range listing.Traces {
		if tc.Spans == 3 {
			id = tc.TraceID
		}
	}
	if id == "" {
		t.Fatalf("no 3-span trace in %+v", listing)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+id, nil))
	if rec.Code != 200 {
		t.Fatalf("show: %d", rec.Code)
	}
	var body struct {
		TraceID string `json:"trace_id"`
		Root    struct {
			Name     string `json:"name"`
			Children []struct {
				Name     string `json:"name"`
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != id || body.Root.Name != "POST /v1/check-table" {
		t.Fatalf("tree root: %+v", body)
	}
	if len(body.Root.Children) != 1 || body.Root.Children[0].Name != "check_column" ||
		len(body.Root.Children[0].Children) != 1 || body.Root.Children[0].Children[0].Name != "detect_pattern" {
		t.Fatalf("tree nesting wrong: %+v", body.Root)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/deadbeef", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace: %d, want 404", rec.Code)
	}
}

func TestDebugHandlerDisabledSurfacesAnswer404(t *testing.T) {
	tr := seedDebugTracer()
	// Everything off: both surfaces 404 like unknown paths.
	h := DebugHandler(DebugOptions{})
	for _, url := range []string{"/debug/traces", "/debug/pprof/", "/debug/anything"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 404 {
			t.Errorf("disabled %s: %d, want 404", url, rec.Code)
		}
	}
	// Traces on, pprof off — and vice versa — stay independent.
	h = DebugHandler(DebugOptions{Traces: true, Recorder: tr.Recorder()})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Fatalf("pprof should stay 404: %d", rec.Code)
	}
	h = DebugHandler(DebugOptions{Pprof: true})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Fatalf("traces should stay 404: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("enabled pprof index: %d, want 200", rec.Code)
	}
}
