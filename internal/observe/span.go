package observe

import (
	"context"
	"sync"
	"time"
)

// SpanMetric is the histogram family Span records into, labeled by the
// span's slash-joined path.
const SpanMetric = "autodetect_span_seconds"

// Span starts timing a named stage and returns a context for nested spans
// plus an end function. Ending the span records its wall-clock duration
// into the SpanMetric histogram of the context's registry (see
// ContextWithRegistry; Default otherwise), labeled with the span path:
// nested spans join their names with '/', so a column check inside a
// table request records as "check_table/check_column".
//
// When the context additionally carries a Tracer (ContextWithTracer —
// planted by the resilience middleware or a job executor), the span also
// records its identity, parent/child structure, start time, duration,
// attrs (SetSpanAttr) and error state (SetSpanError) into the tracer's
// flight recorder. The first span under a tracer becomes the local root:
// it either starts a fresh trace or joins the remote trace planted by
// ContextWithRemoteParent, and its end finalizes the trace for tail
// sampling. Without a tracer the behavior is exactly the pre-tracing
// one: two time.Now calls and one histogram lookup.
//
// End functions are idempotent-hostile by design: call each exactly once.
func Span(ctx context.Context, name string) (context.Context, func()) {
	path := name
	if parent, ok := ctx.Value(spanPathKey).(string); ok && parent != "" {
		path = parent + "/" + name
	}
	reg := RegistryFrom(ctx)
	ctx, st := startSpan(ctx, name)
	start := time.Now()
	ctx = context.WithValue(ctx, spanPathKey, path)
	return ctx, func() {
		d := time.Since(start)
		reg.HistogramVec(SpanMetric, "Duration of instrumented stages by span path.",
			DefBuckets, "span").With(path).Observe(d.Seconds())
		if st != nil {
			st.end(d)
		}
	}
}

// RecorderSpan starts a span recorded only into the flight recorder — no
// SpanMetric histogram sample and no span-path contribution. Transport
// middleware uses it for the per-request server span, whose latency is
// already measured by autodetect_http_request_seconds; double-counting
// it under SpanMetric would skew existing dashboards. Without a tracer
// in ctx it is a no-op returning ctx unchanged.
func RecorderSpan(ctx context.Context, name string) (context.Context, func()) {
	ctx, st := startSpan(ctx, name)
	if st == nil {
		return ctx, func() {}
	}
	return ctx, func() { st.end(time.Since(st.start)) }
}

// startSpan creates the recorder-side state for a new span when a tracer
// is bound; returns (ctx, nil) otherwise.
func startSpan(ctx context.Context, name string) (context.Context, *spanState) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	st := &spanState{tr: tr, name: name, start: time.Now()}
	st.startUnix = st.start.UnixNano()
	if parent, ok := ctx.Value(activeSpanKey).(*spanState); ok && parent != nil {
		st.buf = parent.buf
		st.sc = SpanContext{TraceID: parent.sc.TraceID, SpanID: tr.ids.SpanID()}
		st.parent = parent.sc.SpanID
	} else {
		st.root = true
		var tid TraceID
		if remote, ok := ctx.Value(remoteParentKey).(SpanContext); ok && remote.Valid() {
			tid = remote.TraceID
			st.parent = remote.SpanID
			st.remote = true
		} else {
			tid = tr.ids.TraceID()
		}
		st.sc = SpanContext{TraceID: tid, SpanID: tr.ids.SpanID()}
		st.buf = &traceBuf{traceID: tid}
	}
	return context.WithValue(ctx, activeSpanKey, st), st
}

// spanState is the recorder-side identity of one live span.
type spanState struct {
	tr        *Tracer
	buf       *traceBuf
	sc        SpanContext
	parent    SpanID
	name      string
	start     time.Time
	startUnix int64
	root      bool
	remote    bool // parent is in another process

	mu    sync.Mutex
	err   string
	attrs map[string]string
}

func (st *spanState) end(d time.Duration) {
	st.mu.Lock()
	rec := SpanRecord{
		SpanID:        st.sc.SpanID.String(),
		Name:          st.name,
		StartUnixNano: st.startUnix,
		DurationNanos: d.Nanoseconds(),
		Error:         st.err,
		Attrs:         st.attrs,
	}
	st.attrs = nil
	st.mu.Unlock()
	if !st.parent.IsZero() {
		rec.ParentID = st.parent.String()
	}
	r := st.tr.rec
	r.spansTotal.Add(1)
	if st.root {
		// The root completes the trace: its own record rides along into
		// finalize rather than through the shared buffer.
		remote := ""
		if st.remote {
			remote = st.parent.String()
		}
		r.finalize(st.buf, rec, remote)
		return
	}
	st.buf.add(rec, r.cfg.MaxSpans, rec.Error != "")
}

// SetSpanError marks the innermost active span (and therefore its trace)
// as failed; error traces are always retained by the flight recorder.
// No-op without an active span.
func SetSpanError(ctx context.Context, msg string) {
	st, _ := ctx.Value(activeSpanKey).(*spanState)
	if st == nil || msg == "" {
		return
	}
	st.mu.Lock()
	st.err = msg
	st.mu.Unlock()
}

// SetSpanAttr attaches a key/value pair to the innermost active span's
// flight-recorder record. Values must be bounded (never raw payload
// data); they surface in /debug/traces, not in metrics labels. No-op
// without an active span.
func SetSpanAttr(ctx context.Context, key, value string) {
	st, _ := ctx.Value(activeSpanKey).(*spanState)
	if st == nil {
		return
	}
	st.mu.Lock()
	if st.attrs == nil {
		st.attrs = make(map[string]string, 4)
	}
	st.attrs[key] = value
	st.mu.Unlock()
}
