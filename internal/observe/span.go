package observe

import (
	"context"
	"time"
)

// SpanMetric is the histogram family Span records into, labeled by the
// span's slash-joined path.
const SpanMetric = "autodetect_span_seconds"

// Span starts timing a named stage and returns a context for nested spans
// plus an end function. Ending the span records its wall-clock duration
// into the SpanMetric histogram of the context's registry (see
// ContextWithRegistry; Default otherwise), labeled with the span path:
// nested spans join their names with '/', so a column check inside a
// table request records as "check_table/check_column".
//
// The fast path costs two time.Now calls and one histogram lookup — cheap
// enough for per-request and per-stage use, but not for per-pair inner
// loops; those use HotCounter.
//
// End functions are idempotent-hostile by design: call each exactly once.
func Span(ctx context.Context, name string) (context.Context, func()) {
	path := name
	if parent, ok := ctx.Value(spanPathKey).(string); ok && parent != "" {
		path = parent + "/" + name
	}
	reg := RegistryFrom(ctx)
	start := time.Now()
	ctx = context.WithValue(ctx, spanPathKey, path)
	return ctx, func() {
		reg.HistogramVec(SpanMetric, "Duration of instrumented stages by span path.",
			DefBuckets, "span").With(path).Observe(time.Since(start).Seconds())
	}
}
