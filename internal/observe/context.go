package observe

import "context"

type ctxKey int

const (
	requestIDKey ctxKey = iota
	registryKey
	spanPathKey
	tracerKey
	activeSpanKey
	remoteParentKey
)

// ContextWithRequestID returns a context carrying the request ID that the
// correlating slog handler (see NewLogger) attaches to every record
// logged through the ctx-aware slog methods.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID stored by ContextWithRequestID, or
// "" when the context carries none.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// ContextWithRegistry returns a context directing Span timings into reg
// instead of the process Default registry.
func ContextWithRegistry(ctx context.Context, reg *Registry) context.Context {
	return context.WithValue(ctx, registryKey, reg)
}

// RegistryFrom returns the registry bound by ContextWithRegistry, falling
// back to Default.
func RegistryFrom(ctx context.Context) *Registry {
	if reg, ok := ctx.Value(registryKey).(*Registry); ok {
		return reg
	}
	return defaultRegistry
}
