package observe

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	ids := NewIDSource(42)
	sc := SpanContext{TraceID: ids.TraceID(), SpanID: ids.SpanID()}
	hdr := sc.Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55 (%q)", len(hdr), hdr)
	}
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent framing wrong: %q", hdr)
	}
	back, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent rejected own output %q", hdr)
	}
	if back != sc {
		t.Fatalf("round trip changed the context: %+v != %+v", back, sc)
	}
}

func TestParseTraceparentRejectsHostileValues(t *testing.T) {
	valid := SpanContext{TraceID: NewIDSource(1).TraceID(), SpanID: NewIDSource(2).SpanID()}.Traceparent()
	bad := []string{
		"",
		"00",
		valid + "x",                      // oversized
		valid[:54],                       // truncated
		strings.ToUpper(valid),           // uppercase hex
		"01" + valid[2:],                 // future version
		strings.Replace(valid, "-", "_", 1),
		"00-" + strings.Repeat("0", 32) + "-" + valid[36:],      // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + "-01",            // zero span ID
		"00-" + strings.Repeat("g", 32) + "-" + valid[36:52] + "-01", // non-hex
		strings.Repeat("A", 55),
		valid[:53] + "zz", // non-hex flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("control: valid value %q rejected", valid)
	}
}

func TestIDSourceDeterministicAndNonZero(t *testing.T) {
	a, b := NewIDSource(7), NewIDSource(7)
	for i := 0; i < 100; i++ {
		ta, tb := a.TraceID(), b.TraceID()
		if ta != tb {
			t.Fatalf("iteration %d: same seed produced %s and %s", i, ta, tb)
		}
		if ta.IsZero() {
			t.Fatalf("iteration %d: zero trace ID", i)
		}
		sa, sb := a.SpanID(), b.SpanID()
		if sa != sb || sa.IsZero() {
			t.Fatalf("iteration %d: span IDs %s / %s", i, sa, sb)
		}
	}
	if NewIDSource(8).TraceID() == NewIDSource(9).TraceID() {
		t.Fatal("different seeds produced the same first trace ID")
	}
}

// newTestTracer returns a tracer whose recorder admits everything, for
// tests that assert on exact recorded structure.
func newTestTracer(seed uint64) *Tracer {
	return NewTracer(NewFlightRecorder(RecorderConfig{SampleEvery: 1}), NewIDSource(seed))
}

func TestSpanRecordsTreeIntoRecorder(t *testing.T) {
	tr := newTestTracer(1)
	ctx := ContextWithTracer(context.Background(), tr)

	rctx, endRoot := Span(ctx, "check_table")
	c1, end1 := Span(rctx, "check_column")
	SetSpanAttr(c1, "column", "date")
	end1()
	c2, end2 := Span(rctx, "check_column")
	SetSpanError(c2, "boom")
	end2()
	endRoot()

	traces := tr.Recorder().Snapshot(TraceFilter{})
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	tc := traces[0]
	if tc.Root != "check_table" || len(tc.Spans) != 3 {
		t.Fatalf("trace root=%q spans=%d, want check_table/3", tc.Root, len(tc.Spans))
	}
	if !tc.Error || tc.Reason != "error" {
		t.Fatalf("child error should mark the trace: error=%t reason=%q", tc.Error, tc.Reason)
	}
	root := tc.Spans[len(tc.Spans)-1]
	if root.SpanID != tc.RootSpanID || root.ParentID != "" {
		t.Fatalf("last span should be the parentless root: %+v (root_span_id %s)", root, tc.RootSpanID)
	}
	for _, s := range tc.Spans[:2] {
		if s.Name != "check_column" || s.ParentID != root.SpanID {
			t.Fatalf("child span %+v should hang off root %s", s, root.SpanID)
		}
	}
	if tc.Spans[0].Attrs["column"] != "date" {
		t.Fatalf("attr lost: %+v", tc.Spans[0].Attrs)
	}
	if tc.Spans[1].Error != "boom" {
		t.Fatalf("span error lost: %+v", tc.Spans[1])
	}
}

func TestSpanJoinsRemoteParent(t *testing.T) {
	tr := newTestTracer(3)
	remote := SpanContext{TraceID: NewIDSource(99).TraceID(), SpanID: NewIDSource(99).SpanID()}
	ctx := ContextWithRemoteParent(ContextWithTracer(context.Background(), tr), remote)

	sctx, end := RecorderSpan(ctx, "count_partition")
	if got := TraceIDFrom(sctx); got != remote.TraceID.String() {
		t.Fatalf("local root trace ID = %s, want remote %s", got, remote.TraceID)
	}
	end()

	traces := tr.Recorder().Snapshot(TraceFilter{})
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	tc := traces[0]
	if tc.TraceID != remote.TraceID.String() {
		t.Fatalf("trace ID %s, want %s", tc.TraceID, remote.TraceID)
	}
	if tc.RemoteParent != remote.SpanID.String() {
		t.Fatalf("remote parent %q, want %s", tc.RemoteParent, remote.SpanID)
	}
	if tc.Spans[len(tc.Spans)-1].ParentID != remote.SpanID.String() {
		t.Fatalf("local root should parent to the remote span: %+v", tc.Spans)
	}
}

func TestSpanWithoutTracerIsMetricOnly(t *testing.T) {
	reg := NewRegistry()
	ctx := ContextWithRegistry(context.Background(), reg)
	sctx, end := Span(ctx, "check_column")
	if TraceIDFrom(sctx) != "" {
		t.Fatal("no tracer bound, but a trace ID appeared")
	}
	end()
	_, endR := RecorderSpan(ctx, "noop")
	endR() // must not panic without a tracer
}

func TestInjectAndSpanContextFrom(t *testing.T) {
	tr := newTestTracer(5)
	ctx := ContextWithTracer(context.Background(), tr)
	h := make(headerMap)
	Inject(ctx, h) // no active span: nothing to inject
	if len(h) != 0 {
		t.Fatalf("inject without a span wrote %v", h)
	}
	sctx, end := RecorderSpan(ctx, "client_call")
	defer end()
	Inject(sctx, h)
	sc, ok := ParseTraceparent(h[HeaderTraceparent])
	if !ok {
		t.Fatalf("injected header %q does not parse", h[HeaderTraceparent])
	}
	if sc != SpanContextFrom(sctx) {
		t.Fatalf("injected %+v, active span is %+v", sc, SpanContextFrom(sctx))
	}
}

type headerMap map[string]string

func (h headerMap) Set(k, v string) { h[k] = v }

// finalizeTrace pushes one synthetic completed trace through the
// recorder's admission path with a controlled duration.
func finalizeTrace(r *FlightRecorder, id byte, dur time.Duration, isErr bool) {
	var tid TraceID
	tid[0] = id
	tid[15] = 1
	root := SpanRecord{SpanID: "feedfeedfeedfeed", Name: "root", DurationNanos: dur.Nanoseconds()}
	if isErr {
		root.Error = "boom"
	}
	r.finalize(&traceBuf{traceID: tid}, root, "")
}

func TestRecorderTailSampling(t *testing.T) {
	// SlowN=1 with a descending duration series: only the first trace is
	// "slow" (later ones never beat the slowest-1 threshold), errors are
	// always kept, and every 5th of the rest is the background sample.
	r := NewFlightRecorder(RecorderConfig{Capacity: 64, SlowN: 1, SampleEvery: 5})
	finalizeTrace(r, 0, time.Second, false) // completed #1: slow (fills the set)
	for i := 1; i <= 20; i++ {
		finalizeTrace(r, byte(i), time.Millisecond, i == 7) // #8 is an error
	}
	var reasons []string
	for _, tc := range r.Snapshot(TraceFilter{}) {
		reasons = append(reasons, tc.Reason)
	}
	// Completions 5, 10, 15, 20 are sampled; #1 slow; #8 error. #5 is both
	// "every 5th" and not slow → sampled. Newest first.
	want := []string{"sampled", "sampled", "sampled", "error", "sampled", "slow"}
	if len(reasons) != len(want) {
		t.Fatalf("retained %d traces (%v), want %d", len(reasons), reasons, len(want))
	}
	for i := range want {
		if reasons[i] != want[i] {
			t.Fatalf("reasons = %v, want %v", reasons, want)
		}
	}
	if got := r.droppedTotal.Load(); got != 21-6 {
		t.Fatalf("dropped = %d, want 15", got)
	}
}

func TestRecorderDisabledSamplingKeepsOnlyErrorsAndSlow(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Capacity: 64, SlowN: 1, SampleEvery: -1})
	finalizeTrace(r, 0, time.Second, false)
	for i := 1; i <= 10; i++ {
		finalizeTrace(r, byte(i), time.Millisecond, false)
	}
	finalizeTrace(r, 11, time.Millisecond, true)
	got := r.Snapshot(TraceFilter{})
	if len(got) != 2 || got[0].Reason != "error" || got[1].Reason != "slow" {
		t.Fatalf("retained %v, want [error slow]", got)
	}
}

func TestRecorderRingEvictsOldest(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Capacity: 2, SampleEvery: 1})
	for i := 1; i <= 3; i++ {
		finalizeTrace(r, byte(i), time.Duration(i)*time.Millisecond, false)
	}
	got := r.Snapshot(TraceFilter{})
	if len(got) != 2 {
		t.Fatalf("ring holds %d, want 2", len(got))
	}
	var t1 TraceID
	t1[0], t1[15] = 1, 1
	if _, ok := r.Trace(t1.String()); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	var t3 TraceID
	t3[0], t3[15] = 3, 1
	if _, ok := r.Trace(t3.String()); !ok {
		t.Fatal("newest trace missing")
	}
}

func TestRecorderSnapshotFilters(t *testing.T) {
	r := NewFlightRecorder(RecorderConfig{Capacity: 16, SampleEvery: 1})
	finalizeTrace(r, 1, time.Millisecond, false)
	finalizeTrace(r, 2, 100*time.Millisecond, false)
	finalizeTrace(r, 3, time.Millisecond, true)
	if got := r.Snapshot(TraceFilter{ErrorOnly: true}); len(got) != 1 || !got[0].Error {
		t.Fatalf("ErrorOnly: %v", got)
	}
	if got := r.Snapshot(TraceFilter{MinDuration: 50 * time.Millisecond}); len(got) != 1 {
		t.Fatalf("MinDuration: %v", got)
	}
	if got := r.Snapshot(TraceFilter{Limit: 2}); len(got) != 2 {
		t.Fatalf("Limit: %v", got)
	}
}

func TestRecorderCapsSpansPerTrace(t *testing.T) {
	tr := NewTracer(NewFlightRecorder(RecorderConfig{MaxSpans: 4, SampleEvery: 1}), NewIDSource(1))
	ctx := ContextWithTracer(context.Background(), tr)
	rctx, endRoot := RecorderSpan(ctx, "root")
	for i := 0; i < 10; i++ {
		_, end := RecorderSpan(rctx, "child")
		end()
	}
	endRoot()
	traces := tr.Recorder().Snapshot(TraceFilter{})
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces", len(traces))
	}
	// 4 children kept + the root record itself rides along.
	if len(traces[0].Spans) != 5 || traces[0].DroppedSpans != 6 {
		t.Fatalf("spans=%d dropped=%d, want 5/6", len(traces[0].Spans), traces[0].DroppedSpans)
	}
}
