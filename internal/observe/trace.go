package observe

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// Distributed tracing identifiers, W3C Trace Context style.
//
// A trace is identified by a 16-byte TraceID; every span within it by an
// 8-byte SpanID. Both render as lowercase hex. Context propagates between
// processes in the `traceparent` HTTP header using the W3C format
//
//	00-<32 hex trace-id>-<16 hex parent-span-id>-01
//
// (version 00, sampled flag always 01 — sampling here is tail-based in
// the flight recorder, not head-based in the propagated flags).

// HeaderTraceparent is the propagation header, lowercase per W3C.
const HeaderTraceparent = "traceparent"

// traceparentLen is the exact length of a version-00 traceparent value:
// 2 + 1 + 32 + 1 + 16 + 1 + 2.
const traceparentLen = 55

// TraceID identifies one end-to-end trace across processes.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of a span: the trace it belongs
// to and its own span ID. The zero value is invalid.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value, or
// "" when the context is invalid.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	b := make([]byte, 0, traceparentLen)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, sc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.SpanID[:])
	b = append(b, "-01"...)
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header value. It is strict:
// the value must be exactly 55 bytes of version "00" layout with
// lowercase hex IDs, and both IDs must be non-zero. Anything else —
// oversized values, uppercase hex, future versions, garbage from hostile
// clients — is rejected so malformed input can never reach logs or
// metrics labels.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) != traceparentLen {
		return SpanContext{}, false
	}
	if s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	// Flags must be two hex digits; we accept any, emit "01".
	if !isLowerHex(s[53:]) {
		return SpanContext{}, false
	}
	var sc SpanContext
	if !isLowerHex(s[3:35]) || !isLowerHex(s[36:52]) {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// IDSource generates trace and span IDs from a splitmix64 stream. It is
// safe for concurrent use (one atomic add per 8 bytes of ID) and fully
// deterministic for a given seed, which lets tests pin exact IDs.
type IDSource struct{ state atomic.Uint64 }

// NewIDSource returns a source seeded with seed.
func NewIDSource(seed uint64) *IDSource {
	s := &IDSource{}
	s.state.Store(seed)
	return s
}

// newRandomIDSource seeds from crypto/rand, falling back to a fixed odd
// constant if the system source fails (IDs must keep flowing regardless).
func newRandomIDSource() *IDSource {
	var b [8]byte
	seed := uint64(0x9e3779b97f4a7c15)
	if _, err := crand.Read(b[:]); err == nil {
		seed = binary.LittleEndian.Uint64(b[:])
	}
	return NewIDSource(seed)
}

// next advances the splitmix64 stream one step.
func (s *IDSource) next() uint64 {
	z := s.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TraceID returns a new non-zero trace ID.
func (s *IDSource) TraceID() TraceID {
	for {
		var t TraceID
		binary.BigEndian.PutUint64(t[:8], s.next())
		binary.BigEndian.PutUint64(t[8:], s.next())
		if !t.IsZero() {
			return t
		}
	}
}

// SpanID returns a new non-zero span ID.
func (s *IDSource) SpanID() SpanID {
	for {
		var id SpanID
		binary.BigEndian.PutUint64(id[:], s.next())
		if !id.IsZero() {
			return id
		}
	}
}

// Tracer ties an ID source to a flight recorder. A process builds one
// Tracer at startup, binds it into request contexts (ContextWithTracer,
// usually via the resilience middleware), and every observe.Span under
// that context records structure into the recorder in addition to its
// usual histogram sample.
type Tracer struct {
	ids *IDSource
	rec *FlightRecorder
}

// NewTracer builds a tracer recording into rec. A nil ids gets a
// crypto/rand-seeded source; tests pass NewIDSource(seed) to pin IDs.
func NewTracer(rec *FlightRecorder, ids *IDSource) *Tracer {
	if ids == nil {
		ids = newRandomIDSource()
	}
	if rec == nil {
		rec = NewFlightRecorder(RecorderConfig{})
	}
	return &Tracer{ids: ids, rec: rec}
}

// Recorder returns the tracer's flight recorder.
func (t *Tracer) Recorder() *FlightRecorder { return t.rec }

// ContextWithTracer binds a tracer into the context; spans started under
// it record into the tracer's flight recorder.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer bound by ContextWithTracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextWithRemoteParent records a span context received from another
// process (parsed from its traceparent header). The next span started
// under this context becomes a local root joining the remote trace as a
// child of the remote span.
func ContextWithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteParentKey, sc)
}

// SpanContextFrom returns the identity of the innermost active span, or
// the remote parent when no local span has started yet, or the zero
// SpanContext. Its Traceparent() is what outbound HTTP hops inject.
func SpanContextFrom(ctx context.Context) SpanContext {
	if st, ok := ctx.Value(activeSpanKey).(*spanState); ok && st != nil {
		return st.sc
	}
	sc, _ := ctx.Value(remoteParentKey).(SpanContext)
	return sc
}

// TraceIDFrom returns the hex trace ID of the context's span, or "".
// The slog correlate handler joins it into every log record.
func TraceIDFrom(ctx context.Context) string {
	if sc := SpanContextFrom(ctx); sc.Valid() {
		return sc.TraceID.String()
	}
	return ""
}

// Inject writes the context's span identity into an outbound header set.
// No-op when the context carries no valid span.
func Inject(ctx context.Context, h headerSetter) {
	if sc := SpanContextFrom(ctx); sc.Valid() {
		h.Set(HeaderTraceparent, sc.Traceparent())
	}
}

// headerSetter is satisfied by http.Header.
type headerSetter interface{ Set(key, value string) }
