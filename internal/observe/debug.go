package observe

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// DebugOptions gates the diagnostic surface mounted by DebugHandler.
type DebugOptions struct {
	// Pprof enables the net/http/pprof handlers under /debug/pprof/.
	Pprof bool
	// Traces enables the flight-recorder viewer under /debug/traces.
	Traces bool
	// Recorder backs /debug/traces; required when Traces is set.
	Recorder *FlightRecorder
}

// DebugHandler returns the single handler every daemon mounts at
// /debug/: pprof and the trace viewer share it so gating is uniform — a
// disabled surface answers 404 exactly like an unknown path, leaking
// nothing about what the build could expose.
//
// Trace endpoints:
//
//	GET /debug/traces               — retained traces, newest first
//	    ?min_ms=N    only traces at least N milliseconds long
//	    ?error=1     only error traces
//	    ?limit=N     at most N entries
//	GET /debug/traces/{trace_id}    — one trace as a span tree with
//	                                  per-span durations
func DebugHandler(opts DebugOptions) http.Handler {
	mux := http.NewServeMux()
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if opts.Traces && opts.Recorder != nil {
		rec := opts.Recorder
		mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
			listTraces(w, r, rec)
		})
		mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
			showTrace(w, r, rec, r.PathValue("id"))
		})
	}
	return mux
}

// traceSummary is one row of the /debug/traces listing.
type traceSummary struct {
	TraceID    string  `json:"trace_id"`
	Root       string  `json:"root"`
	StartUnix  float64 `json:"start_unix"`
	DurationMS float64 `json:"duration_ms"`
	Error      bool    `json:"error"`
	Reason     string  `json:"reason"`
	Spans      int     `json:"spans"`
}

func listTraces(w http.ResponseWriter, r *http.Request, rec *FlightRecorder) {
	q := r.URL.Query()
	var f TraceFilter
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad min_ms", http.StatusBadRequest)
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("error"); v == "1" || v == "true" {
		f.ErrorOnly = true
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	traces := rec.Snapshot(f)
	out := make([]traceSummary, len(traces))
	for i, t := range traces {
		out[i] = traceSummary{
			TraceID:    t.TraceID,
			Root:       t.Root,
			StartUnix:  float64(t.StartUnixNano) / 1e9,
			DurationMS: float64(t.DurationNanos) / 1e6,
			Error:      t.Error,
			Reason:     t.Reason,
			Spans:      len(t.Spans),
		}
	}
	writeJSON(w, map[string]any{"traces": out})
}

// spanNode is one span in the rendered tree of a single trace.
type spanNode struct {
	SpanID     string            `json:"span_id"`
	Name       string            `json:"name"`
	StartUnix  float64           `json:"start_unix"`
	DurationMS float64           `json:"duration_ms"`
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*spanNode       `json:"children,omitempty"`
}

func showTrace(w http.ResponseWriter, r *http.Request, rec *FlightRecorder, id string) {
	t, ok := rec.Trace(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	// Hang every span off its parent; spans with a missing parent
	// (span-cap overflow, remote parent) attach to the local root so
	// nothing disappears from the rendering.
	nodes := make(map[string]*spanNode, len(t.Spans))
	for _, s := range t.Spans {
		if s.SpanID == "" {
			continue
		}
		nodes[s.SpanID] = &spanNode{
			SpanID:     s.SpanID,
			Name:       s.Name,
			StartUnix:  float64(s.StartUnixNano) / 1e9,
			DurationMS: float64(s.DurationNanos) / 1e6,
			Error:      s.Error,
			Attrs:      s.Attrs,
		}
	}
	root := nodes[t.RootSpanID]
	if root == nil {
		root = &spanNode{
			Name:       t.Root,
			StartUnix:  float64(t.StartUnixNano) / 1e9,
			DurationMS: float64(t.DurationNanos) / 1e6,
		}
	}
	for _, s := range t.Spans {
		n := nodes[s.SpanID]
		if n == nil || n == root {
			continue
		}
		if p, ok := nodes[s.ParentID]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			root.Children = append(root.Children, n)
		}
	}
	sortTree(root)
	writeJSON(w, map[string]any{
		"trace_id":      t.TraceID,
		"remote_parent": t.RemoteParent,
		"error":         t.Error,
		"reason":        t.Reason,
		"dropped_spans": t.DroppedSpans,
		"root":          root,
	})
}

func sortTree(n *spanNode) {
	sort.SliceStable(n.Children, func(i, j int) bool {
		return n.Children[i].StartUnix < n.Children[j].StartUnix
	})
	for _, c := range n.Children {
		sortTree(c)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
