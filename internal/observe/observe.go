// Package observe is the dependency-free observability core of the
// Auto-Detect serving and training stack: a metrics registry with
// Prometheus text-format exposition, a log/slog-based structured logger
// with request-ID correlation, a lightweight span API for timing nested
// stages, and cache-line-striped hot counters cheap enough for the
// detection inner loop.
//
// Everything in this package uses only the standard library, takes no
// locks on the metric write paths (counters and histogram cells are
// atomics), and is safe for concurrent use. The intended wiring:
//
//	reg := observe.NewRegistry()
//	requests := reg.CounterVec("autodetect_http_requests_total",
//	    "HTTP requests served.", "route", "code")
//	latency := reg.HistogramVec("autodetect_http_request_seconds",
//	    "HTTP request latency.", observe.DefBuckets, "route")
//	...
//	requests.With("/v1/check-column", "200").Inc()
//	latency.With("/v1/check-column").Observe(time.Since(t0).Seconds())
//	mux.Handle("/metrics", reg.Handler())
//
// Metric names follow the Prometheus conventions: an `autodetect_`
// namespace prefix, `_total` suffix on counters, base units (seconds,
// bytes) in the name. Label cardinality must stay bounded: routes are
// normalized to a fixed set, stages and span names are compile-time
// constants, and nothing derived from request payloads is ever used as a
// label value.
package observe

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram buckets in seconds,
// spanning sub-millisecond pair scoring to multi-second pipeline stages.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Registry holds named metric families and renders them in Prometheus
// text format. The zero value is not usable; construct with NewRegistry.
// Registration methods are idempotent: asking for an existing name with
// the same kind returns the existing metric, a kind clash panics (it is a
// programming error, caught by any test that touches the path).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// family is one named metric family: exactly one of the concrete fields
// is set, according to kind.
type family struct {
	name, help string
	kind       string // "counter", "gauge", "histogram"
	labels     []string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	counterFn func() uint64
	gaugeFn   func() float64

	// vec children, keyed by joined label values; nil for plain metrics.
	mu       sync.RWMutex
	children map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by Span when the context
// carries no explicit registry.
func Default() *Registry { return defaultRegistry }

// register installs a family or returns the existing one of the same kind.
func (r *Registry) register(name, help, kind string, labels []string, build func() *family) *family {
	if err := checkName(name); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if err := checkName(l); err != nil {
			panic(err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("observe: %s re-registered as %s with %d labels (was %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := build()
	f.name, f.help, f.kind, f.labels = name, help, kind, labels
	r.fams[name] = f
	return f
}

func checkName(name string) error {
	if name == "" {
		return errors.New("observe: empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("observe: invalid metric or label name %q", name)
		}
	}
	return nil
}

// Counter returns the named monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, func() *family {
		return &family{counter: &Counter{}}
	})
	return f.counter
}

// CounterFunc exposes an externally maintained monotonic value (for
// example a package-level HotCounter) as a counter family. The function
// must be safe for concurrent use; it is called at scrape time only.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", nil, func() *family {
		return &family{counterFn: fn}
	})
}

// Gauge returns the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, func() *family {
		return &family{gauge: &Gauge{}}
	})
	return f.gauge
}

// GaugeFunc exposes an externally computed value as a gauge family,
// evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, func() *family {
		return &family{gaugeFn: fn}
	})
}

// Histogram returns the named fixed-bucket histogram. buckets are upper
// bounds in increasing order; the +Inf bucket is implicit. nil buckets
// default to DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, func() *family {
		return &family{hist: newHistogram(buckets)}
	})
	return f.hist
}

// CounterVec returns the named counter family partitioned by labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, "counter", labels, func() *family {
		return &family{children: make(map[string]any)}
	})
	return &CounterVec{fam: f}
}

// GaugeVec returns the named gauge family partitioned by labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(name, help, "gauge", labels, func() *family {
		return &family{children: make(map[string]any)}
	})
	return &GaugeVec{fam: f}
}

// HistogramVec returns the named histogram family partitioned by labels.
// All children share the same buckets (nil defaults to DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, "histogram", labels, func() *family {
		return &family{children: make(map[string]any)}
	})
	return &HistogramVec{fam: f, buckets: buckets}
}

// Counter is a monotonically increasing float64 counter. Increments are
// lock-free (CAS on the bit pattern); use HotCounter where a shared CAS
// cell would contend.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by d, which must be non-negative.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("observe: counter decrement")
	}
	addFloat(&c.bits, d)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d (negative allowed).
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		new_ := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, new_) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. Observation is
// lock-free: one atomic add on the bucket cell and one CAS on the sum.
//
// Bucket semantics follow Prometheus: an observation v lands in the first
// bucket whose upper bound satisfies v <= le, so a value exactly on a
// boundary counts into that boundary's bucket.
type Histogram struct {
	uppers  []float64
	cells   []atomic.Uint64 // len(uppers)+1; last cell is the +Inf overflow
	sumBits atomic.Uint64
	// exemplars holds the most recent exemplar per bucket (incl. +Inf),
	// published atomically and rendered only by WriteOpenMetrics.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one observed value to the trace that produced it,
// OpenMetrics-style, so a histogram tail can be followed into
// /debug/traces.
type exemplar struct {
	traceID string
	value   float64
	unixMs  int64
}

func newHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("observe: histogram buckets must be strictly increasing")
		}
	}
	uppers := make([]float64, len(buckets))
	copy(uppers, buckets)
	return &Histogram{
		uppers:    uppers,
		cells:     make([]atomic.Uint64, len(uppers)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(uppers)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first bucket with le >= v
	h.cells[i].Add(1)
	addFloat(&h.sumBits, v)
}

// ObserveExemplar records one value and, when traceID is non-empty,
// publishes it as the bucket's exemplar. The 0.0.4 text exposition is
// unchanged; WriteOpenMetrics appends exemplars to bucket lines so a
// scraper can link latency tails to flight-recorder traces.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.cells[i].Add(1)
	addFloat(&h.sumBits, v)
	if traceID != "" {
		h.exemplars[i].Store(&exemplar{traceID: traceID, value: v, unixMs: time.Now().UnixMilli()})
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.cells {
		n += h.cells[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an estimate of quantile q by linear interpolation
// inside the bucket that crosses the target rank, assuming observations
// distribute uniformly within each bucket and values are non-negative
// (the first finite bucket interpolates up from 0). It is a
// bucket-resolution estimate — good enough for smoke benchmarks and
// alerts, not for billing.
//
// Edge behavior is pinned by tests: q is clamped to [0,1]; an empty
// histogram, a histogram declared with zero finite buckets, or a NaN q
// returns NaN; and a rank that lands in the +Inf overflow bucket
// returns the highest finite bucket bound — the histogram holds no
// information above it, so the estimate clamps there rather than
// inventing a value or returning +Inf.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || len(h.uppers) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	q = math.Min(math.Max(q, 0), 1)
	target := q * float64(total)
	var cum float64
	lower := 0.0
	for i, u := range h.uppers {
		c := float64(h.cells[i].Load())
		if cum+c >= target {
			if c == 0 {
				return u
			}
			return lower + (u-lower)*((target-cum)/c)
		}
		cum += c
		lower = u
	}
	return h.uppers[len(h.uppers)-1] // rank is in the +Inf bucket: clamp to the last finite bound
}

// CounterVec partitions counters by label values.
type CounterVec struct{ fam *family }

// With returns the child counter for the given label values, creating it
// on first use. The number of values must match the declared labels.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec partitions gauges by label values.
type GaugeVec struct{ fam *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec partitions histograms by label values.
type HistogramVec struct {
	fam     *family
	buckets []float64
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.child(values, func() any { return newHistogram(v.buckets) }).(*Histogram)
}

func (f *family) child(values []string, build func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("observe: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = build()
	f.children[key] = c
	return c
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4), families and children in sorted order so output is
// deterministic and diffable in golden tests. Exemplars are never
// rendered here — 0.0.4 has no syntax for them.
func (r *Registry) WriteText(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders the same families in the OpenMetrics flavor:
// identical sample lines, plus `# {trace_id="..."} value timestamp`
// exemplars appended to histogram bucket lines that have one, and a
// terminating `# EOF`. Served by Handler when the scraper negotiates
// Accept: application/openmetrics-text.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.write(w, true)
}

func (r *Registry) write(w io.Writer, exemplars bool) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b, exemplars)
	}
	if exemplars {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder, exemplars bool) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.children == nil {
		switch {
		case f.counter != nil:
			writeSample(b, f.name, "", "", f.counter.Value())
		case f.counterFn != nil:
			writeSample(b, f.name, "", "", float64(f.counterFn()))
		case f.gauge != nil:
			writeSample(b, f.name, "", "", f.gauge.Value())
		case f.gaugeFn != nil:
			writeSample(b, f.name, "", "", f.gaugeFn())
		case f.hist != nil:
			writeHistogram(b, f.name, "", f.hist, exemplars)
		}
		return
	}
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	for i, k := range keys {
		lbl := renderLabels(f.labels, strings.Split(k, "\x00"))
		switch c := children[i].(type) {
		case *Counter:
			writeSample(b, f.name, "", lbl, c.Value())
		case *Gauge:
			writeSample(b, f.name, "", lbl, c.Value())
		case *Histogram:
			writeHistogram(b, f.name, lbl, c, exemplars)
		}
	}
}

// renderLabels renders `name="value"` pairs without the surrounding
// braces, so histogram exposition can append its le label.
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func writeSample(b *strings.Builder, name, suffix, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram, exemplars bool) {
	var cum uint64
	for i, u := range h.uppers {
		cum += h.cells[i].Load()
		writeBucket(b, name, joinLabels(labels, `le="`+formatFloat(u)+`"`), float64(cum), h, i, exemplars)
	}
	cum += h.cells[len(h.uppers)].Load()
	writeBucket(b, name, joinLabels(labels, `le="+Inf"`), float64(cum), h, len(h.uppers), exemplars)
	writeSample(b, name, "_sum", labels, h.Sum())
	writeSample(b, name, "_count", labels, float64(cum))
}

// writeBucket writes one cumulative bucket sample, appending the
// bucket's exemplar in OpenMetrics syntax when requested and present:
//
//	name_bucket{le="0.25"} 17 # {trace_id="4bf9..."} 0.213 1723111845.123
func writeBucket(b *strings.Builder, name, labels string, v float64, h *Histogram, i int, exemplars bool) {
	if !exemplars {
		writeSample(b, name, "_bucket", labels, v)
		return
	}
	e := h.exemplars[i].Load()
	b.WriteString(name)
	b.WriteString("_bucket{")
	b.WriteString(labels)
	b.WriteString("} ")
	b.WriteString(formatFloat(v))
	if e != nil {
		b.WriteString(` # {trace_id="`)
		b.WriteString(escapeLabel(e.traceID))
		b.WriteString(`"} `)
		b.WriteString(formatFloat(e.value))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(float64(e.unixMs)/1000, 'f', 3, 64))
	}
	b.WriteByte('\n')
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	s := fmt.Sprintf("%g", v)
	return s
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format, for mounting at GET /metrics. Scrapers that send
// Accept: application/openmetrics-text get the OpenMetrics flavor with
// histogram exemplars; everyone else gets plain 0.0.4 text unchanged.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
