package observe

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := reg.Counter("test_total", "help"); again != c {
		t.Fatal("re-registration should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add should panic")
		}
	}()
	c.Add(-1)
}

func TestKindClashPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clash", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering clash as gauge should panic")
		}
	}()
	reg.Gauge("clash", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name should panic")
		}
	}()
	reg.Counter("bad-name", "h")
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "h")
	g.Set(5)
	g.Add(-2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

// TestHistogramBucketBoundaries pins the Prometheus le semantics: an
// observation exactly on a bucket's upper bound counts into that bucket,
// one epsilon above it spills into the next, and values beyond the last
// bound land in +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "h", []float64{0.1, 0.5, 1})

	h.Observe(0.1) // boundary: le="0.1"
	h.Observe(0.100001)
	h.Observe(0.5)  // boundary: le="0.5"
	h.Observe(1.0)  // boundary: le="1"
	h.Observe(37.0) // +Inf only

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="0.5"} 3`, // cumulative: 0.1, 0.100001, 0.5
		`lat_bucket{le="1"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.1+0.100001+0.5+1+37; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets should panic")
		}
	}()
	reg.Histogram("bad", "h", []float64{1, 1})
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", "h", []float64{10, 20, 30})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 30)) // uniform over [0,30)
	}
	if p50 := h.Quantile(0.5); p50 < 5 || p50 > 25 {
		t.Errorf("p50 = %v, want within the middle buckets", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 20 || p99 > 30 {
		t.Errorf("p99 = %v, want in the last finite bucket", p99)
	}
}

// TestConcurrentIncrements hammers every metric type from many goroutines;
// run with -race this is the data-race regression test for the registry's
// lock-free write paths.
func TestConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_total", "h")
	g := reg.Gauge("conc_gauge", "h")
	h := reg.Histogram("conc_hist", "h", []float64{0.5})
	vec := reg.CounterVec("conc_vec_total", "h", "worker")
	var hot HotCounter

	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.75)
				vec.With(lbl).Inc()
				hot.Inc(uintptr(i))
			}
		}(w)
	}
	wg.Wait()

	const want = goroutines * perG
	if got := c.Value(); got != want {
		t.Errorf("counter = %v, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %v, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := hot.Load(); got != want {
		t.Errorf("hot counter = %d, want %d", got, want)
	}
	var vecSum float64
	for w := 0; w < goroutines; w++ {
		vecSum += vec.With(string(rune('a' + w))).Value()
	}
	if vecSum != want {
		t.Errorf("vec sum = %v, want %d", vecSum, want)
	}
}

// TestExpositionGolden locks the full Prometheus text rendering: family
// ordering, HELP/TYPE lines, label escaping, histogram buckets, funcs.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_requests_total", "Requests.\nSecond line").Add(42)
	reg.Gauge("a_up", "Process up.").Set(1)
	reg.CounterFunc("c_fn_total", "From a func.", func() uint64 { return 7 })
	reg.GaugeFunc("d_fn", "Gauge func.", func() float64 { return 2.5 })
	vec := reg.CounterVec("e_by_route_total", "Per route.", "route", "code")
	vec.With("/v1/check-column", "200").Add(3)
	vec.With(`we"ird\`, "500").Inc()
	reg.Histogram("f_seconds", "Latency.", []float64{0.25, 1}).Observe(0.5)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_up Process up.
# TYPE a_up gauge
a_up 1
# HELP b_requests_total Requests.\nSecond line
# TYPE b_requests_total counter
b_requests_total 42
# HELP c_fn_total From a func.
# TYPE c_fn_total counter
c_fn_total 7
# HELP d_fn Gauge func.
# TYPE d_fn gauge
d_fn 2.5
# HELP e_by_route_total Per route.
# TYPE e_by_route_total counter
e_by_route_total{route="/v1/check-column",code="200"} 3
e_by_route_total{route="we\"ird\\",code="500"} 1
# HELP f_seconds Latency.
# TYPE f_seconds histogram
f_seconds_bucket{le="0.25"} 0
f_seconds_bucket{le="1"} 1
f_seconds_bucket{le="+Inf"} 1
f_seconds_sum 0.5
f_seconds_count 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
