package observe

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestQuantileEmptyHistogramIsNaN(t *testing.T) {
	h := NewRegistry().Histogram("q_empty_seconds", "help", []float64{0.1, 1})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) on empty histogram = %v, want NaN", q, got)
		}
	}
}

func TestQuantileNaNInputIsNaN(t *testing.T) {
	h := NewRegistry().Histogram("q_nan_seconds", "help", []float64{0.1, 1})
	h.Observe(0.05)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}
}

// The +Inf overflow bucket has no finite upper bound to interpolate
// toward; the estimate pins to the last finite boundary instead of
// returning +Inf or garbage.
func TestQuantilePinsOverflowBucketToLastFiniteBound(t *testing.T) {
	h := NewRegistry().Histogram("q_inf_seconds", "help", []float64{0.1, 1})
	for i := 0; i < 10; i++ {
		h.Observe(50) // all mass beyond the last finite bucket
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("Quantile(%v) = %v, want a finite pin", q, got)
		}
		if got != 1 {
			t.Fatalf("Quantile(%v) = %v, want the last finite bound 1", q, got)
		}
	}
	// Mixed: half the mass below 0.1, half in +Inf. The median sits on the
	// finite side; the p99 pins to the last finite bound.
	h2 := NewRegistry().Histogram("q_mixed_seconds", "help", []float64{0.1, 1})
	for i := 0; i < 10; i++ {
		h2.Observe(0.05)
		h2.Observe(50)
	}
	if got := h2.Quantile(0.5); got > 0.1 {
		t.Fatalf("median = %v, want <= 0.1", got)
	}
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("p99 = %v, want pinned to 1", got)
	}
}

func TestQuantileClampsOutOfRangeQ(t *testing.T) {
	h := NewRegistry().Histogram("q_clamp_seconds", "help", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	lo, hi := h.Quantile(-3), h.Quantile(7)
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi || hi > 2 {
		t.Fatalf("clamped quantiles lo=%v hi=%v, want finite ordered <= 2", lo, hi)
	}
}

func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	h := NewRegistry().Histogram("q_interp_seconds", "help", []float64{1, 2})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in (0, 1]
	}
	// Rank q*100 of 100 observations, all in the first bucket: linear
	// interpolation from 0 toward 1.
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("median = %v, want 0.5 by interpolation", got)
	}
	if got := h.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("max = %v, want 1", got)
	}
}

func TestExemplarsOnlyInOpenMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("exemplar_seconds", "help", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveExemplar(0.5, "") // no trace: counted, no exemplar

	var plain strings.Builder
	if err := reg.WriteText(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "#") && strings.Contains(plain.String(), "trace_id=") {
		t.Fatalf("plain 0.0.4 exposition leaked exemplar syntax:\n%s", plain.String())
	}
	if !strings.Contains(plain.String(), `exemplar_seconds_bucket{le="0.1"} 1`) {
		t.Fatalf("plain exposition lost the bucket sample:\n%s", plain.String())
	}

	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	if !strings.Contains(out, `exemplar_seconds_bucket{le="0.1"} 1 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05`) {
		t.Fatalf("OpenMetrics exposition missing the exemplar:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition must end with # EOF:\n%q", out[len(out)-40:])
	}
}

func TestMetricsHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("nego_seconds", "help", []float64{1}).ObserveExemplar(0.5, "abcd1234abcd1234abcd1234abcd1234")

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); strings.Contains(ct, "openmetrics") {
		t.Fatalf("default scrape negotiated OpenMetrics: %s", ct)
	}
	if strings.Contains(rec.Body.String(), "trace_id=") {
		t.Fatal("default scrape leaked exemplars")
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Fatalf("Accept negotiation ignored: %s", ct)
	}
	if !strings.Contains(rec.Body.String(), `# {trace_id="abcd1234abcd1234abcd1234abcd1234"}`) {
		t.Fatalf("OpenMetrics scrape missing exemplar:\n%s", rec.Body.String())
	}
}
