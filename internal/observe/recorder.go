package observe

import (
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder keeps the recent interesting traces of one process
// in a fixed-size ring so an operator (or the fleet e2e) can ask "what
// did that slow request actually do" after the fact, without shipping
// spans anywhere.
//
// Admission is tail-based — decided when a trace completes, not when it
// starts: error traces are always kept, traces slower than the current
// slowest-N admission threshold are kept, and of the remainder every
// K-th completed trace is kept as a background sample. Everything else
// is counted and dropped.

// RecorderConfig sizes a FlightRecorder. Zero fields take the defaults
// noted on each.
type RecorderConfig struct {
	// Capacity is the number of completed traces retained (default 256).
	Capacity int
	// MaxSpans caps spans kept per trace; further spans are counted in
	// TraceRecord.DroppedSpans (default 512).
	MaxSpans int
	// SlowN is the size of the slowest-N admission set (default 32). A
	// completing trace strictly slower than the fastest member is "slow"
	// (strict, so a tight cluster of identical latencies does not admit
	// everything). The set resets every slowWindow completions so it
	// adapts when the latency regime shifts.
	SlowN int
	// SampleEvery keeps one of every K non-error, non-slow traces
	// (default 16). Set 1 to keep everything (tests), <0 to disable the
	// background sample.
	SampleEvery int
}

const slowWindow = 4096

// SpanRecord is one completed span inside a recorded trace.
type SpanRecord struct {
	SpanID        string            `json:"span_id"`
	ParentID      string            `json:"parent_id,omitempty"`
	Name          string            `json:"name"`
	StartUnixNano int64             `json:"start_unix_nano"`
	DurationNanos int64             `json:"duration_nanos"`
	Error         string            `json:"error,omitempty"`
	Attrs         map[string]string `json:"attrs,omitempty"`
}

// TraceRecord is one completed, admitted trace. Spans are in completion
// order; the local root is last (its ID repeats in RootSpanID).
// RemoteParent is the span ID of the upstream process's span when the
// trace was joined via a traceparent header, letting cross-process
// timelines stitch.
type TraceRecord struct {
	TraceID       string       `json:"trace_id"`
	Root          string       `json:"root"`
	RootSpanID    string       `json:"root_span_id"`
	RemoteParent  string       `json:"remote_parent,omitempty"`
	StartUnixNano int64        `json:"start_unix_nano"`
	DurationNanos int64        `json:"duration_nanos"`
	Error         bool         `json:"error"`
	Reason        string       `json:"reason"` // "error", "slow" or "sampled"
	DroppedSpans  int          `json:"dropped_spans,omitempty"`
	Spans         []SpanRecord `json:"spans"`
}

// FlightRecorder is the per-process ring of recently completed traces.
// Span recording takes one small per-trace mutex; the recorder-wide lock
// is touched only when a trace completes or a snapshot is read.
type FlightRecorder struct {
	cfg RecorderConfig

	spansTotal   atomic.Uint64 // spans recorded into trace buffers
	tracesTotal  atomic.Uint64 // traces completed (admitted or not)
	retained     atomic.Uint64 // traces admitted to the ring
	droppedTotal atomic.Uint64 // traces completed but not admitted

	mu        sync.Mutex
	ring      []TraceRecord
	next      int // ring write cursor
	count     int // filled entries, <= cap
	completed uint64
	slow      []int64 // min-heap of the slowest-N durations this window
}

// NewFlightRecorder builds a recorder with cfg (zero values defaulted).
func NewFlightRecorder(cfg RecorderConfig) *FlightRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 512
	}
	if cfg.SlowN <= 0 {
		cfg.SlowN = 32
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 16
	}
	return &FlightRecorder{cfg: cfg, ring: make([]TraceRecord, cfg.Capacity)}
}

// Register exposes the recorder's counters on reg as the
// autodetect_trace_* families.
func (r *FlightRecorder) Register(reg *Registry) {
	reg.CounterFunc("autodetect_trace_spans_total",
		"Spans recorded into in-flight trace buffers.", r.spansTotal.Load)
	reg.CounterFunc("autodetect_traces_completed_total",
		"Traces completed in this process (admitted or not).", r.tracesTotal.Load)
	reg.CounterFunc("autodetect_traces_retained_total",
		"Completed traces admitted to the flight-recorder ring.", r.retained.Load)
	reg.CounterFunc("autodetect_traces_dropped_total",
		"Completed traces not admitted by tail sampling.", r.droppedTotal.Load)
}

// traceBuf accumulates the spans of one in-flight local trace. It is
// created by the local root span and shared down the context tree.
type traceBuf struct {
	traceID TraceID

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
	err     bool
}

func (b *traceBuf) add(s SpanRecord, max int, isErr bool) {
	b.mu.Lock()
	if isErr {
		b.err = true
	}
	if len(b.spans) >= max {
		b.dropped++
	} else {
		b.spans = append(b.spans, s)
	}
	b.mu.Unlock()
}

// finalize runs when a local root span ends: decide admission, and on
// admission copy the trace into the ring.
func (r *FlightRecorder) finalize(b *traceBuf, root SpanRecord, remoteParent string) {
	b.mu.Lock()
	spans := append(b.spans, root)
	b.spans = nil
	dropped := b.dropped
	isErr := b.err || root.Error != ""
	b.mu.Unlock()

	r.tracesTotal.Add(1)
	dur := root.DurationNanos

	r.mu.Lock()
	r.completed++
	if r.completed%slowWindow == 0 {
		r.slow = r.slow[:0]
	}
	reason := ""
	switch {
	case isErr:
		reason = "error"
	case len(r.slow) < r.cfg.SlowN || dur > r.slow[0]:
		reason = "slow"
	case r.cfg.SampleEvery > 0 && r.completed%uint64(r.cfg.SampleEvery) == 0:
		reason = "sampled"
	}
	r.noteSlow(dur)
	if reason == "" {
		r.mu.Unlock()
		r.droppedTotal.Add(1)
		return
	}
	r.ring[r.next] = TraceRecord{
		TraceID:       b.traceID.String(),
		Root:          root.Name,
		RootSpanID:    root.SpanID,
		RemoteParent:  remoteParent,
		StartUnixNano: root.StartUnixNano,
		DurationNanos: dur,
		Error:         isErr,
		Reason:        reason,
		DroppedSpans:  dropped,
		Spans:         spans,
	}
	r.next = (r.next + 1) % len(r.ring)
	if r.count < len(r.ring) {
		r.count++
	}
	r.mu.Unlock()
	r.retained.Add(1)
}

// noteSlow feeds one completed duration into the slowest-N min-heap.
// Caller holds r.mu.
func (r *FlightRecorder) noteSlow(d int64) {
	if len(r.slow) < r.cfg.SlowN {
		r.slow = append(r.slow, d)
		// sift up
		for i := len(r.slow) - 1; i > 0; {
			p := (i - 1) / 2
			if r.slow[p] <= r.slow[i] {
				break
			}
			r.slow[p], r.slow[i] = r.slow[i], r.slow[p]
			i = p
		}
		return
	}
	if d <= r.slow[0] {
		return
	}
	r.slow[0] = d
	// sift down
	for i := 0; ; {
		l, rr := 2*i+1, 2*i+2
		m := i
		if l < len(r.slow) && r.slow[l] < r.slow[m] {
			m = l
		}
		if rr < len(r.slow) && r.slow[rr] < r.slow[m] {
			m = rr
		}
		if m == i {
			return
		}
		r.slow[i], r.slow[m] = r.slow[m], r.slow[i]
		i = m
	}
}

// TraceFilter selects traces for Snapshot.
type TraceFilter struct {
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// ErrorOnly keeps only error traces.
	ErrorOnly bool
	// Limit caps the number returned (0 = all retained).
	Limit int
}

// Snapshot returns copies of retained traces matching f, newest first.
func (r *FlightRecorder) Snapshot(f TraceFilter) []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.count)
	for i := 0; i < r.count; i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		t := r.ring[idx]
		if f.ErrorOnly && !t.Error {
			continue
		}
		if t.DurationNanos < f.MinDuration.Nanoseconds() {
			continue
		}
		out = append(out, t)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Trace returns the retained trace with the given hex ID. When the same
// trace ID was recorded by several local roots (one trace spanning
// several inbound requests), the newest record wins.
func (r *FlightRecorder) Trace(id string) (TraceRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.count; i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		if r.ring[idx].TraceID == id {
			return r.ring[idx], true
		}
	}
	return TraceRecord{}, false
}
