package observe

import (
	"context"
	"io"
	"log/slog"
)

// LogOptions configures NewLogger.
type LogOptions struct {
	// Component is attached to every record as component=<value>; the
	// shared key lets one aggregation pipeline split daemon, trainer and
	// generator logs.
	Component string
	// JSON selects slog.JSONHandler output; false emits logfmt-style text.
	JSON bool
	// Level is the minimum level (default Info).
	Level slog.Leveler
}

// NewLogger builds the stack-wide structured logger: a slog text or JSON
// handler wrapped so that records logged with the ctx-aware methods
// (InfoContext & co.) automatically carry request_id when the context
// passed through ContextWithRequestID and trace_id when it carries an
// active span — the same context the resilience middleware populates —
// so every log line of a request correlates with its X-Request-Id
// response header and its entry in /debug/traces.
func NewLogger(w io.Writer, opts LogOptions) *slog.Logger {
	ho := &slog.HandlerOptions{Level: opts.Level}
	var h slog.Handler
	if opts.JSON {
		h = slog.NewJSONHandler(w, ho)
	} else {
		h = slog.NewTextHandler(w, ho)
	}
	l := slog.New(correlate{h})
	if opts.Component != "" {
		l = l.With("component", opts.Component)
	}
	return l
}

// correlate injects request_id and trace_id from the record's context.
type correlate struct{ slog.Handler }

func (c correlate) Handle(ctx context.Context, r slog.Record) error {
	if id := RequestIDFrom(ctx); id != "" {
		r.AddAttrs(slog.String("request_id", id))
	}
	if tid := TraceIDFrom(ctx); tid != "" {
		r.AddAttrs(slog.String("trace_id", tid))
	}
	return c.Handler.Handle(ctx, r)
}

func (c correlate) WithAttrs(attrs []slog.Attr) slog.Handler {
	return correlate{c.Handler.WithAttrs(attrs)}
}

func (c correlate) WithGroup(name string) slog.Handler {
	return correlate{c.Handler.WithGroup(name)}
}
