package observe

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"
)

var tracingBenchOut = flag.String("observe.benchout", "",
	"write the trace-recorder overhead smoke result (BENCH_tracing.json) to this path")

// BenchmarkRecorderSpan measures the cost of one completed child span
// under a bound tracer: allocate state, record, append into the shared
// trace buffer. This is the per-span tax every traced request pays.
func BenchmarkRecorderSpan(b *testing.B) {
	tr := NewTracer(NewFlightRecorder(RecorderConfig{SampleEvery: -1}), NewIDSource(1))
	ctx := ContextWithTracer(context.Background(), tr)
	rctx, endRoot := RecorderSpan(ctx, "bench_root")
	defer endRoot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, end := RecorderSpan(rctx, "child")
		end()
	}
}

// BenchmarkRecorderTraceFinalize measures a whole small trace: root +
// three children, finalized through tail-sampling admission.
func BenchmarkRecorderTraceFinalize(b *testing.B) {
	tr := NewTracer(NewFlightRecorder(RecorderConfig{SampleEvery: -1}), NewIDSource(1))
	ctx := ContextWithTracer(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rctx, endRoot := RecorderSpan(ctx, "root")
		for j := 0; j < 3; j++ {
			_, end := RecorderSpan(rctx, "child")
			end()
		}
		endRoot()
	}
}

// tracingBench is the BENCH_tracing.json payload.
type tracingBench struct {
	Benchmark       string  `json:"benchmark"`
	NumCPU          int     `json:"num_cpu"`
	Spans           int     `json:"spans"`
	NsPerSpan       float64 `json:"ns_per_span"`
	NsPerTrace      float64 `json:"ns_per_trace"`
	SpansPerTrace   int     `json:"spans_per_trace"`
	TracesRetained  uint64  `json:"traces_retained"`
	TracesCompleted uint64  `json:"traces_completed"`
}

// TestTracingOverheadSmoke measures recorder overhead per completed span
// and enforces the subsystem's budget: under a microsecond per span, so
// tracing every request is affordable. Writes BENCH_tracing.json when
// -observe.benchout is set (CI does; plain `go test` skips).
func TestTracingOverheadSmoke(t *testing.T) {
	if *tracingBenchOut == "" {
		t.Skip("tracing smoke disabled; set -observe.benchout to enable")
	}
	rec := NewFlightRecorder(RecorderConfig{})
	tr := NewTracer(rec, NewIDSource(1))
	ctx := ContextWithTracer(context.Background(), tr)

	const traces = 20000
	const children = 4
	start := time.Now()
	for i := 0; i < traces; i++ {
		rctx, endRoot := RecorderSpan(ctx, "root")
		for j := 0; j < children; j++ {
			_, end := RecorderSpan(rctx, "child")
			end()
		}
		endRoot()
	}
	elapsed := time.Since(start)

	spans := traces * (children + 1)
	nsPerSpan := float64(elapsed.Nanoseconds()) / float64(spans)
	if got := rec.tracesTotal.Load(); got != traces {
		t.Fatalf("completed %d traces, want %d", got, traces)
	}
	// The acceptance budget, with slack only from the measurement itself:
	// each completed span (start + record + buffer append, amortizing
	// finalize) must stay under 1µs.
	if nsPerSpan >= 1000 {
		t.Fatalf("recorder overhead %.1f ns/span, budget < 1000 ns/span", nsPerSpan)
	}

	out := tracingBench{
		Benchmark:       "trace_recorder_overhead",
		NumCPU:          runtime.NumCPU(),
		Spans:           spans,
		NsPerSpan:       nsPerSpan,
		NsPerTrace:      float64(elapsed.Nanoseconds()) / float64(traces),
		SpansPerTrace:   children + 1,
		TracesRetained:  rec.retained.Load(),
		TracesCompleted: rec.tracesTotal.Load(),
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*tracingBenchOut, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("trace recorder overhead: %.1f ns/span (%d spans)", nsPerSpan, spans)
}
