package observe

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

func TestSpanNestingAndRegistryBinding(t *testing.T) {
	reg := NewRegistry()
	ctx := ContextWithRegistry(context.Background(), reg)

	ctx1, endOuter := Span(ctx, "check_table")
	_, endInner := Span(ctx1, "check_column")
	endInner()
	endOuter()

	vec := reg.HistogramVec(SpanMetric, "Duration of instrumented stages by span path.", DefBuckets, "span")
	if got := vec.With("check_table").Count(); got != 1 {
		t.Errorf("outer span count = %d, want 1", got)
	}
	if got := vec.With("check_table/check_column").Count(); got != 1 {
		t.Errorf("nested span count = %d, want 1", got)
	}
}

func TestSpanFallsBackToDefaultRegistry(t *testing.T) {
	_, end := Span(context.Background(), "fallback_span")
	end()
	var b strings.Builder
	if err := Default().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `autodetect_span_seconds_count{span="fallback_span"} 1`) {
		t.Errorf("default registry missing fallback span:\n%s", b.String())
	}
}

func TestLoggerRequestIDCorrelation(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Component: "testd"})
	ctx := ContextWithRequestID(context.Background(), "abc123")
	l.InfoContext(ctx, "served", "route", "/v1/check-column")

	line := buf.String()
	for _, want := range []string{"request_id=abc123", "component=testd", "route=/v1/check-column", "served"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}

	// Without a request ID in context, the attr is absent.
	buf.Reset()
	l.Info("plain")
	if strings.Contains(buf.String(), "request_id") {
		t.Errorf("request_id attr should be absent: %s", buf.String())
	}
}

func TestLoggerJSONAndLevel(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogOptions{Component: "j", JSON: true, Level: slog.LevelWarn})
	l.Info("dropped")
	if buf.Len() != 0 {
		t.Errorf("info below level should be dropped: %s", buf.String())
	}
	l.Warn("kept", "workers", 4)
	out := buf.String()
	for _, want := range []string{`"component":"j"`, `"workers":4`, `"kept"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON log missing %q: %s", want, out)
		}
	}
}
