package observe

import "sync/atomic"

// hotStripes is the number of counter cells a HotCounter spreads its
// increments over. Must be a power of two.
const hotStripes = 16

// hotCell pads each counter to its own cache line so stripes on different
// cores do not false-share.
type hotCell struct {
	n atomic.Uint64
	_ [56]byte
}

// HotCounter is a cache-line-striped monotonic counter for instrumenting
// inner loops (pair scoring, sketch probes) where a single shared atomic
// would serialize cores on one cache line. Callers pick a stripe with any
// cheap per-call value — a hash key, a loop length — and increments on
// different stripes proceed without contention. Reads sum the stripes and
// are monotonic but not linearizable, which is exactly what a metrics
// scrape needs.
//
// The zero value is ready to use, so packages can declare counters as
// package-level vars with no init cost and expose them to a Registry via
// CounterFunc.
type HotCounter struct {
	cells [hotStripes]hotCell
}

// Add increments the counter by n on the stripe selected by key.
func (c *HotCounter) Add(key uintptr, n uint64) {
	c.cells[key&(hotStripes-1)].n.Add(n)
}

// Inc increments the counter by 1 on the stripe selected by key.
func (c *HotCounter) Inc(key uintptr) { c.Add(key, 1) }

// Load returns the current total across all stripes.
func (c *HotCounter) Load() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}
