package profile

import (
	"strings"
	"testing"
)

func TestColumnBasics(t *testing.T) {
	p := Column([]string{"3-2", "1-0", "4-4", "", "12-3", "3-2"})
	if p.Rows != 6 || p.Empty != 1 || p.Distinct != 4 {
		t.Errorf("rows/empty/distinct = %d/%d/%d", p.Rows, p.Empty, p.Distinct)
	}
	if len(p.Shapes) != 1 || p.Shapes[0].Shape != `\D-\D` || p.Shapes[0].Count != 5 {
		t.Errorf("shapes = %+v", p.Shapes)
	}
	if p.MinLen != 3 || p.MaxLen != 4 {
		t.Errorf("lengths %d-%d", p.MinLen, p.MaxLen)
	}
	if p.DigitPct < 50 || p.SymbolPct <= 0 || p.LetterPct != 0 {
		t.Errorf("class mix = %.0f/%.0f/%.0f", p.LetterPct, p.DigitPct, p.SymbolPct)
	}
	if p.NumericShare != 0 {
		t.Errorf("scores are not numeric, share = %v", p.NumericShare)
	}
}

func TestColumnShapesRanked(t *testing.T) {
	p := Column([]string{"2011-01-02", "2012-03-04", "2013-05-06", "Jan 2011", "-"})
	if len(p.Shapes) != 3 {
		t.Fatalf("shapes = %+v", p.Shapes)
	}
	if p.Shapes[0].Shape != `\D-\D-\D` || p.Shapes[0].Count != 3 {
		t.Errorf("dominant shape = %+v", p.Shapes[0])
	}
	for i := 1; i < len(p.Shapes); i++ {
		if p.Shapes[i].Count > p.Shapes[i-1].Count {
			t.Error("shapes not ranked")
		}
	}
}

func TestNumericShare(t *testing.T) {
	p := Column([]string{"1,000", "250", "3.14", "abc"})
	if p.NumericShare != 0.75 {
		t.Errorf("numeric share = %v", p.NumericShare)
	}
}

func TestLengthHistogram(t *testing.T) {
	values := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		values = append(values, strings.Repeat("x", 1+i%20))
	}
	p := Column(values)
	if len(p.LengthHistogram) == 0 || len(p.LengthHistogram) > 8 {
		t.Fatalf("histogram buckets = %d", len(p.LengthHistogram))
	}
	total := 0
	for _, b := range p.LengthHistogram {
		total += b.Count
	}
	if total != 40 {
		t.Errorf("histogram total = %d", total)
	}
}

func TestEmptyColumn(t *testing.T) {
	p := Column(nil)
	if p.Rows != 0 || p.Distinct != 0 || len(p.Shapes) != 0 {
		t.Errorf("empty profile = %+v", p)
	}
	all := Column([]string{"", "  "})
	if all.Empty != 2 || all.Distinct != 0 {
		t.Errorf("blank-only profile = %+v", all)
	}
}

func TestStringRendering(t *testing.T) {
	p := Column([]string{"2011-01-02", "2012-03-04", "Jan 2011", "1,000"})
	s := p.String()
	for _, want := range []string{"rows 4", "distinct 4", "shapes:", "lengths:", `\D-\D-\D`} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
