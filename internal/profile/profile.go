// Package profile computes single-column profiles: the shape, length and
// character-class distributions that commercial data-preparation tools
// surface as visual histograms next to each column (Appendix A, Figures
// 13/15 — Trifacta's and OpenRefine's primary quality-inspection UI).
// Auto-Detect's verdicts tell a user *that* a value is incompatible; a
// profile shows the column context that makes it so.
package profile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pattern"
)

// ShapeCount is one structural pattern with its support.
type ShapeCount struct {
	// Shape is the run-length-collapsed crude pattern (e.g. `\D-\D`).
	Shape string
	// Example is a representative raw value.
	Example string
	// Count is the number of cells with this shape.
	Count int
}

// Bucket is one histogram bucket.
type Bucket struct {
	// Label describes the bucket.
	Label string
	// Count is the bucket's size.
	Count int
}

// Profile summarizes one column.
type Profile struct {
	// Rows is the number of cells, Empty the number of blank cells.
	Rows, Empty int
	// Distinct is the number of distinct non-empty values.
	Distinct int
	// Shapes lists structural patterns by descending support.
	Shapes []ShapeCount
	// LengthHistogram buckets value lengths.
	LengthHistogram []Bucket
	// ClassMix is the aggregate character-class composition in percent:
	// letters, digits, symbols.
	LetterPct, DigitPct, SymbolPct float64
	// NumericShare is the fraction of non-empty cells that parse as
	// numbers (after comma removal).
	NumericShare float64
	// MinLen and MaxLen bound the value lengths.
	MinLen, MaxLen int
}

// stripRunLengths removes "[n]" annotations so shapes group by structure.
func stripRunLengths(p string) string {
	var b strings.Builder
	for i := 0; i < len(p); i++ {
		if p[i] == '[' {
			for i < len(p) && p[i] != ']' {
				i++
			}
			continue
		}
		b.WriteByte(p[i])
	}
	return b.String()
}

// Column profiles the values of one column.
func Column(values []string) Profile {
	p := Profile{Rows: len(values), MinLen: -1}
	g := pattern.Crude()
	shapes := map[string]*ShapeCount{}
	lengths := map[int]int{}
	distinct := map[string]struct{}{}
	var letters, digits, symbols, totalRunes int
	numeric := 0
	nonEmpty := 0
	for _, v := range values {
		if strings.TrimSpace(v) == "" {
			p.Empty++
			continue
		}
		nonEmpty++
		distinct[v] = struct{}{}
		s := stripRunLengths(g.Generalize(v))
		if sc, ok := shapes[s]; ok {
			sc.Count++
		} else {
			shapes[s] = &ShapeCount{Shape: s, Example: v, Count: 1}
		}
		n := len([]rune(v))
		lengths[n]++
		if p.MinLen < 0 || n < p.MinLen {
			p.MinLen = n
		}
		if n > p.MaxLen {
			p.MaxLen = n
		}
		for _, r := range v {
			totalRunes++
			switch pattern.Categorize(r) {
			case pattern.CatUpper, pattern.CatLower:
				letters++
			case pattern.CatDigit:
				digits++
			default:
				symbols++
			}
		}
		if _, err := strconv.ParseFloat(strings.ReplaceAll(v, ",", ""), 64); err == nil {
			numeric++
		}
	}
	p.Distinct = len(distinct)
	for _, sc := range shapes {
		p.Shapes = append(p.Shapes, *sc)
	}
	sort.Slice(p.Shapes, func(i, j int) bool {
		if p.Shapes[i].Count != p.Shapes[j].Count {
			return p.Shapes[i].Count > p.Shapes[j].Count
		}
		return p.Shapes[i].Shape < p.Shapes[j].Shape
	})
	// Length histogram: up to 8 buckets spanning [MinLen, MaxLen].
	if nonEmpty > 0 {
		span := p.MaxLen - p.MinLen + 1
		width := (span + 7) / 8
		if width < 1 {
			width = 1
		}
		counts := map[int]int{}
		for l, c := range lengths {
			counts[(l-p.MinLen)/width] += c
		}
		var idxs []int
		for b := range counts {
			idxs = append(idxs, b)
		}
		sort.Ints(idxs)
		for _, b := range idxs {
			lo := p.MinLen + b*width
			hi := lo + width - 1
			label := strconv.Itoa(lo)
			if hi > lo {
				label = fmt.Sprintf("%d-%d", lo, hi)
			}
			p.LengthHistogram = append(p.LengthHistogram, Bucket{Label: label, Count: counts[b]})
		}
		if totalRunes > 0 {
			p.LetterPct = 100 * float64(letters) / float64(totalRunes)
			p.DigitPct = 100 * float64(digits) / float64(totalRunes)
			p.SymbolPct = 100 * float64(symbols) / float64(totalRunes)
		}
		p.NumericShare = float64(numeric) / float64(nonEmpty)
	}
	return p
}

// String renders the profile as fixed-width text.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rows %d (empty %d), distinct %d, lengths %d-%d\n",
		p.Rows, p.Empty, p.Distinct, p.MinLen, p.MaxLen)
	fmt.Fprintf(&b, "chars: %.0f%% letters, %.0f%% digits, %.0f%% symbols; %.0f%% numeric cells\n",
		p.LetterPct, p.DigitPct, p.SymbolPct, p.NumericShare*100)
	b.WriteString("shapes:\n")
	for i, s := range p.Shapes {
		if i == 6 {
			fmt.Fprintf(&b, "  ... %d more\n", len(p.Shapes)-i)
			break
		}
		fmt.Fprintf(&b, "  %-24s %5d  e.g. %q\n", s.Shape, s.Count, s.Example)
	}
	b.WriteString("lengths:\n")
	maxCount := 0
	for _, bk := range p.LengthHistogram {
		if bk.Count > maxCount {
			maxCount = bk.Count
		}
	}
	for _, bk := range p.LengthHistogram {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", 1+bk.Count*30/maxCount)
		}
		fmt.Fprintf(&b, "  %-8s %5d %s\n", bk.Label, bk.Count, bar)
	}
	return b.String()
}
