package sketch

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergeExactEquivalence is the sharding property test: splitting an
// update stream across K sketches and merging must estimate exactly like one
// sketch that saw the whole stream, for plain (non-conservative) updates.
func TestMergeExactEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		width := 64 + r.Intn(256)
		depth := 1 + r.Intn(5)
		shards := 2 + r.Intn(6)

		single, err := New(width, depth, false)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]*CountMin, shards)
		for i := range parts {
			if parts[i], err = New(width, depth, false); err != nil {
				t.Fatal(err)
			}
		}

		// Power-law-ish key stream, randomly partitioned across shards.
		nUpdates := 500 + r.Intn(2000)
		keys := make(map[uint64]struct{})
		for u := 0; u < nUpdates; u++ {
			key := uint64(r.Intn(200)) // heavy collisions on purpose
			n := uint32(1 + r.Intn(9))
			keys[key] = struct{}{}
			single.Add(key, n)
			parts[r.Intn(shards)].Add(key, n)
		}

		merged := parts[0]
		for _, p := range parts[1:] {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Total() != single.Total() {
			t.Fatalf("trial %d: total %d != %d", trial, merged.Total(), single.Total())
		}
		for key := range keys {
			if got, want := merged.Estimate(key), single.Estimate(key); got != want {
				t.Fatalf("trial %d: key %d: merged estimate %d != sequential %d", trial, key, got, want)
			}
			if got, want := merged.EstimateCorrected(key), single.EstimateCorrected(key); got != want {
				t.Fatalf("trial %d: key %d: merged corrected %d != sequential %d", trial, key, got, want)
			}
		}
		// Keys never inserted must estimate identically too.
		for probe := uint64(1 << 40); probe < 1<<40+50; probe++ {
			if got, want := merged.Estimate(probe), single.Estimate(probe); got != want {
				t.Fatalf("trial %d: absent key %d: merged %d != sequential %d", trial, probe, got, want)
			}
		}
	}
}

// TestMergeConservativeNeverUnderCounts: conservative sketches lose
// exactness under merge but must keep the one-sided guarantee.
func TestMergeConservativeNeverUnderCounts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a, _ := New(128, 3, true)
	b, _ := New(128, 3, true)
	truth := map[uint64]uint64{}
	for u := 0; u < 3000; u++ {
		key := uint64(r.Intn(300))
		truth[key]++
		if r.Intn(2) == 0 {
			a.Add(key, 1)
		} else {
			b.Add(key, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for key, want := range truth {
		if got := a.Estimate(key); got < want {
			t.Fatalf("key %d: merged conservative estimate %d under-counts truth %d", key, got, want)
		}
	}
}

func TestMergeRejectsIncompatible(t *testing.T) {
	base, _ := New(64, 3, false)
	for _, bad := range []*CountMin{
		mustNew(t, 32, 3, false), // width
		mustNew(t, 64, 2, false), // depth
		mustNew(t, 64, 3, true),  // mode
		nil,
	} {
		if err := base.Merge(bad); err == nil {
			t.Fatalf("expected merge rejection for %+v", bad)
		}
	}
}

func TestMergeSaturates(t *testing.T) {
	a, _ := New(4, 1, false)
	b, _ := New(4, 1, false)
	a.Add(1, math.MaxUint32)
	b.Add(1, math.MaxUint32)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(1); got != math.MaxUint32 {
		t.Fatalf("expected saturation at MaxUint32, got %d", got)
	}
}

func mustNew(t *testing.T, w, d int, cons bool) *CountMin {
	t.Helper()
	cm, err := New(w, d, cons)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}
