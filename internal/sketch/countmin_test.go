package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, false); err == nil {
		t.Error("width 0 should error")
	}
	if _, err := New(10, 0, false); err == nil {
		t.Error("depth 0 should error")
	}
	if _, err := NewWithErrorBound(0, 0.1, false); err == nil {
		t.Error("epsilon 0 should error")
	}
	if _, err := NewWithErrorBound(0.1, 1, false); err == nil {
		t.Error("delta 1 should error")
	}
}

func TestErrorBoundDimensions(t *testing.T) {
	cm, err := NewWithErrorBound(0.01, 0.01, false)
	if err != nil {
		t.Fatal(err)
	}
	if w := cm.Width(); w != int(math.Ceil(math.E/0.01)) {
		t.Errorf("width = %d", w)
	}
	if d := cm.Depth(); d != 5 {
		t.Errorf("depth = %d, want ceil(ln 100) = 5", d)
	}
}

func TestExactWhenSparse(t *testing.T) {
	cm, _ := New(1<<14, 4, false)
	for k := uint64(0); k < 100; k++ {
		cm.Add(k, uint32(k+1))
	}
	for k := uint64(0); k < 100; k++ {
		if got := cm.Estimate(k); got != uint64(k+1) {
			t.Errorf("Estimate(%d) = %d, want %d", k, got, k+1)
		}
	}
	if cm.Total() != 100*101/2 {
		t.Errorf("Total = %d", cm.Total())
	}
}

// Property: the estimate never under-counts.
func TestNeverUnderCounts(t *testing.T) {
	for _, conservative := range []bool{false, true} {
		cm, _ := New(64, 3, conservative) // deliberately tiny: force collisions
		truth := map[uint64]uint64{}
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			k := uint64(r.Intn(300))
			cm.Add(k, 1)
			truth[k]++
		}
		for k, v := range truth {
			if got := cm.Estimate(k); got < v {
				t.Fatalf("conservative=%v: Estimate(%d) = %d < truth %d",
					conservative, k, got, v)
			}
		}
	}
}

func TestEpsilonBoundOnPowerLaw(t *testing.T) {
	// Pattern co-occurrence counts follow a power law (Section 3.4); check
	// the εN bound holds for the heavy keys with very high empirical
	// probability.
	cm, err := NewWithErrorBound(0.001, 0.01, false)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]uint64{}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		// Zipf-ish key draw.
		k := uint64(math.Floor(math.Pow(r.Float64(), 3) * 10000))
		cm.Add(k, 1)
		truth[k]++
	}
	n := float64(cm.Total())
	bad := 0
	for k, v := range truth {
		if float64(cm.Estimate(k)) > float64(v)+0.001*n {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(truth)); frac > 0.01 {
		t.Errorf("%.3f%% of keys exceed the εN bound", frac*100)
	}
}

func TestConservativeAtLeastAsAccurate(t *testing.T) {
	plain, _ := New(128, 3, false)
	cons, _ := New(128, 3, true)
	truth := map[uint64]uint64{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		k := uint64(r.Intn(1000))
		plain.Add(k, 1)
		cons.Add(k, 1)
		truth[k]++
	}
	var errPlain, errCons uint64
	for k, v := range truth {
		errPlain += plain.Estimate(k) - v
		errCons += cons.Estimate(k) - v
	}
	if errCons > errPlain {
		t.Errorf("conservative error %d > plain error %d", errCons, errPlain)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	cm, _ := New(512, 4, true)
	r := rand.New(rand.NewSource(1))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = r.Uint64()
		cm.Add(keys[i], uint32(r.Intn(50)+1))
	}
	data, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back CountMin
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Total() != cm.Total() || back.Width() != cm.Width() || back.Depth() != cm.Depth() {
		t.Fatal("header mismatch after round trip")
	}
	for _, k := range keys {
		if back.Estimate(k) != cm.Estimate(k) {
			t.Fatalf("estimate mismatch for key %d", k)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var cm CountMin
	if err := cm.UnmarshalBinary(nil); err == nil {
		t.Error("nil payload should error")
	}
	if err := cm.UnmarshalBinary(make([]byte, 25)); err == nil {
		t.Error("zero dimensions should error")
	}
	good, _ := New(8, 2, false)
	data, _ := good.MarshalBinary()
	if err := cm.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("truncated payload should error")
	}
}

func TestBytes(t *testing.T) {
	cm, _ := New(1000, 5, false)
	if cm.Bytes() != 1000*5*4 {
		t.Errorf("Bytes = %d", cm.Bytes())
	}
}

// Property: adding in any order yields the same estimates (plain update is
// commutative).
func TestAddCommutative(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		a, _ := New(256, 3, false)
		b, _ := New(256, 3, false)
		for _, k := range keys {
			a.Add(k, 1)
		}
		for i := len(keys) - 1; i >= 0; i-- {
			b.Add(keys[i], 1)
		}
		for _, k := range keys {
			if a.Estimate(k) != b.Estimate(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	cm, _ := New(1<<16, 4, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.Add(uint64(i), 1)
	}
}

func BenchmarkEstimate(b *testing.B) {
	cm, _ := New(1<<16, 4, false)
	for i := 0; i < 100000; i++ {
		cm.Add(uint64(i), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cm.Estimate(uint64(i))
	}
}
