package sketch

import (
	"math/rand"
	"testing"
)

// TestEstimateCorrectedDebiasesZeros: in a heavily loaded sketch the raw
// min-estimate of never-inserted keys drifts upward with collisions, while
// the count-mean-min corrected estimate stays near zero.
func TestEstimateCorrectedDebiasesZeros(t *testing.T) {
	cm, _ := New(512, 5, false)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		cm.Add(uint64(r.Intn(2000)), uint32(1+r.Intn(5)))
	}
	var rawSum, corrSum uint64
	probes := 0
	for k := uint64(1 << 40); k < 1<<40+500; k++ { // keys never inserted
		rawSum += cm.Estimate(k)
		corrSum += cm.EstimateCorrected(k)
		probes++
	}
	if rawSum == 0 {
		t.Fatal("expected collision noise in a loaded sketch")
	}
	if corrSum*4 > rawSum {
		t.Errorf("corrected zero-key mass %d not well below raw %d", corrSum, rawSum)
	}
}

// TestEstimateCorrectedBounded: the corrected estimate never exceeds the
// raw estimate and never goes negative.
func TestEstimateCorrectedBounded(t *testing.T) {
	cm, _ := New(128, 4, false)
	r := rand.New(rand.NewSource(5))
	truth := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := uint64(r.Intn(400))
		cm.Add(k, 1)
		truth[k]++
	}
	for k := range truth {
		raw := cm.Estimate(k)
		corr := cm.EstimateCorrected(k)
		if corr > raw {
			t.Fatalf("corrected %d > raw %d", corr, raw)
		}
	}
	// Mean absolute error of corrected should beat raw on a loaded sketch.
	var rawErr, corrErr int64
	for k, v := range truth {
		rawErr += abs64(int64(cm.Estimate(k)) - int64(v))
		corrErr += abs64(int64(cm.EstimateCorrected(k)) - int64(v))
	}
	if corrErr > rawErr {
		t.Errorf("corrected error %d > raw error %d", corrErr, rawErr)
	}
}

func TestEstimateCorrectedSparseExact(t *testing.T) {
	cm, _ := New(1<<12, 4, false)
	for k := uint64(0); k < 20; k++ {
		cm.Add(k, uint32(k+1))
	}
	for k := uint64(0); k < 20; k++ {
		if got := cm.EstimateCorrected(k); got != k+1 {
			t.Errorf("sparse corrected estimate(%d) = %d, want %d", k, got, k+1)
		}
	}
	if got := cm.EstimateCorrected(12345); got != 0 {
		t.Errorf("absent key corrected estimate = %d", got)
	}
}

func TestEstimateCorrectedEvenDepthMedian(t *testing.T) {
	cm, _ := New(64, 4, false) // even depth exercises the two-middle median
	for i := uint64(0); i < 1000; i++ {
		cm.Add(i%50, 1)
	}
	for k := uint64(0); k < 50; k++ {
		if cm.EstimateCorrected(k) > cm.Estimate(k) {
			t.Fatal("bound violated at even depth")
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
