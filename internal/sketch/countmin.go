// Package sketch implements the count-min (CM) sketch of Cormode and
// Muthukrishnan, used by Auto-Detect (Section 3.4) to compress per-language
// pattern co-occurrence dictionaries by orders of magnitude while
// guaranteeing that estimates never under-count and over-count by at most
// εN with probability 1−δ.
package sketch

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
)

// CountMin is a count-min sketch over uint64 keys. The zero value is not
// usable; construct with New or NewWithErrorBound.
//
// Estimates satisfy v̂(k) ≥ v(k), and v̂(k) ≤ v(k) + εN with probability at
// least 1−δ when built via NewWithErrorBound, where N is the sum of all
// inserted values.
type CountMin struct {
	width        int
	depth        int
	rows         [][]uint32
	total        uint64
	conservative bool
	seeds        []uint64
}

// New returns a sketch with the given width (columns) and depth (hash
// rows). conservative enables conservative update, which only increments
// the minimal counters and sharply reduces over-estimation on skewed
// (power-law) key distributions such as pattern co-occurrence counts.
func New(width, depth int, conservative bool) (*CountMin, error) {
	if width < 1 || depth < 1 {
		return nil, errors.New("sketch: width and depth must be positive")
	}
	cm := &CountMin{
		width:        width,
		depth:        depth,
		rows:         make([][]uint32, depth),
		conservative: conservative,
		seeds:        make([]uint64, depth),
	}
	// Deterministic, pairwise-distinct odd seeds for the Kirsch–Mitzenmacher
	// double-hashing scheme.
	s := uint64(0x9e3779b97f4a7c15)
	for i := range cm.seeds {
		s = splitmix64(s)
		cm.seeds[i] = s | 1
		cm.rows[i] = make([]uint32, width)
	}
	return cm, nil
}

// NewWithErrorBound returns a sketch dimensioned so that estimates are
// within εN of the truth with probability at least 1−δ:
// width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉.
func NewWithErrorBound(epsilon, delta float64, conservative bool) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, errors.New("sketch: epsilon and delta must be in (0,1)")
	}
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	return New(w, d, conservative)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// index returns the bucket for key in hash row i.
func (cm *CountMin) index(key uint64, i int) int {
	h := splitmix64(key ^ cm.seeds[i])
	return int(h % uint64(cm.width))
}

// Add increments key's count by n.
func (cm *CountMin) Add(key uint64, n uint32) {
	cm.total += uint64(n)
	if !cm.conservative {
		for i := 0; i < cm.depth; i++ {
			cm.rows[i][cm.index(key, i)] += n
		}
		return
	}
	// Conservative update: raise every counter to at most estimate+n.
	est := cm.Estimate(key)
	target := est + uint64(n)
	if target > math.MaxUint32 {
		target = math.MaxUint32
	}
	for i := 0; i < cm.depth; i++ {
		c := &cm.rows[i][cm.index(key, i)]
		if uint64(*c) < target {
			*c = uint32(target)
		}
	}
}

// Estimate returns the estimated count for key: the minimum over hash rows.
// The estimate never under-counts.
//
// Estimates feed the package probe counters (see HotPath): total
// estimates, plus a collision tick when the rows disagree — the cheap
// in-band signal that the sketch is carrying collision noise for this
// key. A bare Estimate costs only tens of nanoseconds, so even one
// uncontended atomic add per call is measurable; instead calls are
// sampled 1-in-hotSample on the key's low bits (keys are hashes, so the
// bits are uniform) and each sampled call adds hotSample, keeping the
// counters unbiased while the amortized cost rounds to zero.
func (cm *CountMin) Estimate(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	max := uint64(0)
	for i := 0; i < cm.depth; i++ {
		c := uint64(cm.rows[i][cm.index(key, i)])
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if key&(hotSample-1) == 0 {
		hotEstimates.Add(uintptr(key>>hotSampleBits), hotSample)
		if max != min {
			hotCollisions.Add(uintptr(key>>hotSampleBits), hotSample)
		}
	}
	return min
}

// EstimateCorrected returns a collision-debiased estimate (count-mean-min,
// Deng & Rafiei): each row's counter is reduced by the expected collision
// noise (total − counter)/(width − 1) and the median of the corrected rows
// is taken, clamped into [0, Estimate(key)]. Unlike Estimate it can
// under-count, but keys that were never inserted estimate near zero even
// in heavily loaded sketches — which is what NPMI computations over sparse
// co-occurrence counts need.
func (cm *CountMin) EstimateCorrected(key uint64) uint64 {
	upper := cm.Estimate(key)
	if upper == 0 || cm.width <= 1 {
		return upper
	}
	corrected := make([]float64, cm.depth)
	for i := 0; i < cm.depth; i++ {
		c := float64(cm.rows[i][cm.index(key, i)])
		noise := (float64(cm.total) - c) / float64(cm.width-1)
		corrected[i] = c - noise
	}
	sort.Float64s(corrected)
	var med float64
	if cm.depth%2 == 1 {
		med = corrected[cm.depth/2]
	} else {
		med = (corrected[cm.depth/2-1] + corrected[cm.depth/2]) / 2
	}
	if med < 0 {
		return 0
	}
	if v := uint64(med + 0.5); v < upper {
		return v
	}
	return upper
}

// Compatible reports whether two sketches can be merged: same width, depth,
// update mode and hash seeds. Sketches constructed with the same dimensions
// always share seeds (the seed schedule is deterministic).
func (cm *CountMin) Compatible(o *CountMin) bool {
	if cm.width != o.width || cm.depth != o.depth || cm.conservative != o.conservative {
		return false
	}
	for i, s := range cm.seeds {
		if o.seeds[i] != s {
			return false
		}
	}
	return true
}

// Merge folds another sketch into the receiver by element-wise counter
// addition (saturating at the uint32 counter cap). For plain (non-
// conservative) sketches this is exact: estimates from the merged sketch
// equal those of a single sketch that saw both update streams, so sharded
// counting followed by Merge is equivalent to sequential counting.
// Conservative sketches merge to a valid over-approximation (estimates
// still never under-count) but lose the conservative-update tightness of a
// single-stream build. The other sketch is not modified.
func (cm *CountMin) Merge(o *CountMin) error {
	if o == nil {
		return errors.New("sketch: cannot merge nil sketch")
	}
	if !cm.Compatible(o) {
		return errors.New("sketch: merge requires identical dimensions, mode and seeds")
	}
	for i := range cm.rows {
		dst, src := cm.rows[i], o.rows[i]
		for j := range dst {
			s := uint64(dst[j]) + uint64(src[j])
			if s > math.MaxUint32 {
				s = math.MaxUint32
			}
			dst[j] = uint32(s)
		}
	}
	cm.total += o.total
	return nil
}

// Total returns the sum of all added values (N in the ε-bound).
func (cm *CountMin) Total() uint64 { return cm.total }

// Width and Depth return the sketch dimensions.
func (cm *CountMin) Width() int { return cm.width }

// Depth returns the number of hash rows.
func (cm *CountMin) Depth() int { return cm.depth }

// Bytes returns the in-memory footprint of the counter array in bytes.
func (cm *CountMin) Bytes() int { return cm.width * cm.depth * 4 }

// MarshalBinary serializes the sketch.
func (cm *CountMin) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 32+cm.depth*8+cm.width*cm.depth*4)
	var hdr [33]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(cm.width))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(cm.depth))
	binary.LittleEndian.PutUint64(hdr[16:], cm.total)
	if cm.conservative {
		hdr[24] = 1
	}
	buf = append(buf, hdr[:25]...)
	var tmp [8]byte
	for _, s := range cm.seeds {
		binary.LittleEndian.PutUint64(tmp[:], s)
		buf = append(buf, tmp[:]...)
	}
	var c4 [4]byte
	for _, row := range cm.rows {
		for _, c := range row {
			binary.LittleEndian.PutUint32(c4[:], c)
			buf = append(buf, c4[:]...)
		}
	}
	return buf, nil
}

// UnmarshalBinary deserializes a sketch produced by MarshalBinary.
func (cm *CountMin) UnmarshalBinary(data []byte) error {
	if len(data) < 25 {
		return errors.New("sketch: truncated header")
	}
	w := int(binary.LittleEndian.Uint64(data[0:]))
	d := int(binary.LittleEndian.Uint64(data[8:]))
	if w < 1 || d < 1 || d > 64 {
		return errors.New("sketch: corrupt dimensions")
	}
	need := 25 + d*8 + w*d*4
	if len(data) != need {
		return errors.New("sketch: wrong payload size")
	}
	cm.width, cm.depth = w, d
	cm.total = binary.LittleEndian.Uint64(data[16:])
	cm.conservative = data[24] == 1
	off := 25
	cm.seeds = make([]uint64, d)
	for i := range cm.seeds {
		cm.seeds[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	cm.rows = make([][]uint32, d)
	for i := range cm.rows {
		row := make([]uint32, w)
		for j := range row {
			row[j] = binary.LittleEndian.Uint32(data[off:])
			off += 4
		}
		cm.rows[i] = row
	}
	return nil
}
