package sketch

import "repro/internal/observe"

// Sketch probe counters, striped by the probed key so concurrent readers
// of a served model's sketches do not contend on one cache line. A
// "collision" is an estimate whose hash rows disagreed: at least one row
// is carrying extra mass from other keys, i.e. the εN error term of
// Section 3.4 is live for that key. The collision rate is the practical
// fill-rate signal — it climbs as the sketch saturates — and the service
// layer exposes both counters on /metrics.
//
// Estimate is too cheap to afford an atomic per call, so the counters
// are sampled: 1 in hotSample calls records, weighted by hotSample, so
// the totals stay unbiased estimators of the true call counts.
var (
	hotEstimates  observe.HotCounter
	hotCollisions observe.HotCounter
)

const (
	hotSampleBits = 6
	hotSample     = 1 << hotSampleBits
)

// HotPathStats is a snapshot of the sketch probe counters since process
// start. Both values are sampled approximations (±hotSample per stripe).
type HotPathStats struct {
	// Estimates counts Estimate calls (EstimateCorrected probes count
	// once through their inner Estimate).
	Estimates uint64
	// Collisions counts estimates whose rows disagreed.
	Collisions uint64
}

// HotPath returns the current sketch probe counters.
func HotPath() HotPathStats {
	return HotPathStats{Estimates: hotEstimates.Load(), Collisions: hotCollisions.Load()}
}
