package sketch

import "testing"

// TestHotPathCounters checks that Estimate feeds the probe counters and
// that forcing a collision (tiny sketch, many keys) ticks the collision
// counter.
func TestHotPathCounters(t *testing.T) {
	before := HotPath()

	cm, err := New(4, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 64; k++ {
		cm.Add(k, 1)
	}
	// Probe on multiples of hotSample so every call lands in the sample
	// and the (weighted) counter delta is exact.
	const probes = 128
	for k := uint64(0); k < probes; k++ {
		cm.Estimate(k * hotSample)
	}

	after := HotPath()
	// Add with non-conservative mode doesn't probe, so the delta is at
	// least the explicit Estimate calls (other tests may run in parallel,
	// hence >=).
	if got := after.Estimates - before.Estimates; got < probes*hotSample {
		t.Errorf("estimate counter grew by %d, want >= %d", got, probes*hotSample)
	}
	// 64 keys into a width-4 sketch guarantees skewed rows for most keys.
	if after.Collisions == before.Collisions {
		t.Error("collision counter did not move on a saturated sketch")
	}
}
