package resilience

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/observe"
)

// ErrBreakerOpen is returned by Allow and Do while the breaker is open (or
// half-open with its probe already in flight). It is deliberately NOT
// transient: a retry.Policy's default classifier fails fast on it, so an
// open breaker collapses a whole retry loop into one cheap rejection
// instead of a storm of doomed attempts.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState enumerates the circuit breaker's three states.
type BreakerState int32

const (
	// BreakerClosed admits every call and tallies outcomes.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one probe call; its outcome decides
	// between reset (closed) and re-trip (open).
	BreakerHalfOpen
	// BreakerOpen rejects every call until the open timeout elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half_open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig parameterizes NewBreaker. The zero value of every field is
// replaced with a sensible default.
type BreakerConfig struct {
	// Name labels the breaker's metrics and log lines ("registry_pull",
	// "distbuild_worker", ...). Default "default".
	Name string
	// ConsecutiveFailures trips the breaker after this many back-to-back
	// failures (default 5).
	ConsecutiveFailures int
	// ErrorRate trips the breaker when the failure fraction over the
	// rolling outcome window reaches this value with at least MinSamples
	// outcomes recorded (default 0.5).
	ErrorRate float64
	// MinSamples is the minimum window occupancy before ErrorRate can trip
	// (default 10).
	MinSamples int
	// WindowSize is the rolling outcome window length (default 32).
	WindowSize int
	// OpenTimeout is how long the breaker stays open before admitting a
	// half-open probe (default 10s).
	OpenTimeout time.Duration
	// Clock is the time source; tests inject a fake (default time.Now).
	Clock func() time.Time
	// Metrics, when set, receives the autodetect_resilience_breaker_*
	// families labelled by Name.
	Metrics *observe.Registry
	// Logf, when set, receives one line per state transition.
	Logf func(format string, args ...any)
	// OnStateChange, when set, observes transitions (called outside the
	// breaker lock).
	OnStateChange func(from, to BreakerState)
}

// Breaker is a closed/open/half-open circuit breaker guarding one
// downstream dependency. Calls feed outcomes in via Record (or the Do
// wrapper); once consecutive failures or the windowed error rate cross
// their thresholds the breaker opens, rejecting calls instantly until
// OpenTimeout elapses. The first call after that is admitted as a probe:
// success closes the breaker (full reset), failure re-opens it for another
// window. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecutive int       // consecutive failures while closed
	window      []bool    // rolling outcomes, true = failure
	windowAt    int       // next write position
	windowLen   int       // occupancy (≤ len(window))
	openedAt    time.Time // when the breaker last opened
	probing     bool      // half-open probe in flight

	stateGauge  *observe.Gauge
	transitions *observe.CounterVec
	rejections  *observe.Counter
}

// NewBreaker validates cfg, applies defaults, and registers the breaker's
// metric families when a registry is configured.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Name == "" {
		cfg.Name = "default"
	}
	if cfg.ConsecutiveFailures <= 0 {
		cfg.ConsecutiveFailures = 5
	}
	if cfg.ErrorRate <= 0 || cfg.ErrorRate > 1 {
		cfg.ErrorRate = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 10
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 32
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	b := &Breaker{cfg: cfg, window: make([]bool, cfg.WindowSize)}
	if reg := cfg.Metrics; reg != nil {
		b.stateGauge = reg.GaugeVec("autodetect_resilience_breaker_state",
			"Circuit breaker state: 0 closed, 1 half-open, 2 open.", "name").With(cfg.Name)
		b.transitions = reg.CounterVec("autodetect_resilience_breaker_transitions_total",
			"Circuit breaker state transitions, by breaker and destination state.", "name", "to")
		b.rejections = reg.CounterVec("autodetect_resilience_breaker_rejections_total",
			"Calls rejected fast because the breaker was open.", "name").With(cfg.Name)
	}
	return b
}

// Name returns the breaker's configured name.
func (b *Breaker) Name() string { return b.cfg.Name }

// State reports the current state, applying the open→half-open timer.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// Allow reports whether a call may proceed right now: nil to proceed
// (the caller must Record the outcome), ErrBreakerOpen to reject. In the
// half-open state exactly one caller is admitted as the probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerHalfOpen:
		if b.probing {
			if b.rejections != nil {
				b.rejections.Inc()
			}
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	default: // open
		if b.rejections != nil {
			b.rejections.Inc()
		}
		return ErrBreakerOpen
	}
}

// Record feeds the outcome of an Allow-admitted call back into the
// breaker. context.Canceled is neutral — the caller gave up, the
// dependency is not implicated — and recorded as neither success nor
// failure (a half-open probe that was cancelled re-arms the probe slot).
func (b *Breaker) Record(err error) {
	failure := err != nil
	if errors.Is(err, context.Canceled) {
		failure = false
		err = nil
		b.mu.Lock()
		if b.state == BreakerHalfOpen {
			b.probing = false // probe never really ran; let another try
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	from := b.state
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if failure {
			b.openLocked()
		} else {
			b.resetLocked()
		}
	case BreakerClosed:
		b.observeLocked(failure)
		if b.tripLocked() {
			b.openLocked()
		}
	default:
		// A straggler finishing after the breaker opened: its outcome is
		// stale, ignore it.
	}
	to := b.state
	b.mu.Unlock()
	b.announce(from, to)
}

// Do runs op under breaker admission: rejected fast with ErrBreakerOpen
// when open, outcome recorded otherwise.
func (b *Breaker) Do(ctx context.Context, op func(ctx context.Context) error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op(ctx)
	b.Record(err)
	return err
}

// maybeHalfOpenLocked transitions open→half-open once the timeout elapses.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == BreakerOpen && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		b.setStateLocked(BreakerHalfOpen)
		b.probing = false
	}
}

// observeLocked records one closed-state outcome into the counters.
func (b *Breaker) observeLocked(failure bool) {
	if failure {
		b.consecutive++
	} else {
		b.consecutive = 0
	}
	b.window[b.windowAt] = failure
	b.windowAt = (b.windowAt + 1) % len(b.window)
	if b.windowLen < len(b.window) {
		b.windowLen++
	}
}

// tripLocked reports whether either trip condition is met.
func (b *Breaker) tripLocked() bool {
	if b.consecutive >= b.cfg.ConsecutiveFailures {
		return true
	}
	if b.windowLen < b.cfg.MinSamples {
		return false
	}
	failures := 0
	for i := 0; i < b.windowLen; i++ {
		if b.window[i] {
			failures++
		}
	}
	return float64(failures)/float64(b.windowLen) >= b.cfg.ErrorRate
}

// openLocked trips the breaker.
func (b *Breaker) openLocked() {
	b.setStateLocked(BreakerOpen)
	b.openedAt = b.cfg.Clock()
	b.probing = false
}

// resetLocked returns to closed with clean counters.
func (b *Breaker) resetLocked() {
	b.setStateLocked(BreakerClosed)
	b.consecutive = 0
	b.windowAt = 0
	b.windowLen = 0
}

func (b *Breaker) setStateLocked(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	if b.stateGauge != nil {
		b.stateGauge.Set(float64(s))
	}
	if b.transitions != nil {
		b.transitions.With(b.cfg.Name, s.String()).Inc()
	}
}

// announce fires the transition hooks outside the lock.
func (b *Breaker) announce(from, to BreakerState) {
	if from == to {
		return
	}
	if b.cfg.Logf != nil {
		b.cfg.Logf("resilience: breaker %s: %s -> %s", b.cfg.Name, from, to)
	}
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}
