package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/observe"
)

// fakeClock is a hand-advanced time source for breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

var errBoom = errors.New("boom")

// failN drives n failures through an admitted breaker.
func failN(t *testing.T, b *Breaker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow() rejected during failure %d: %v", i, err)
		}
		b.Record(errBoom)
	}
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 3, Clock: clk.Now})
	failN(t, b, 2)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	failN(t, b, 1)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() while open = %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerTripsOnErrorRate(t *testing.T) {
	clk := newFakeClock()
	// Alternate success/failure so the consecutive counter never fires;
	// only the windowed rate can trip.
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 100,
		ErrorRate:           0.5,
		MinSamples:          10,
		WindowSize:          16,
		Clock:               clk.Now,
	})
	for i := 0; i < 9; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow() rejected at outcome %d: %v", i, err)
		}
		if i%2 == 0 {
			b.Record(errBoom)
		} else {
			b.Record(nil)
		}
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("state tripped at %d outcomes (<MinSamples): %v", i+1, got)
		}
	}
	// The 10th outcome reaches MinSamples with 5/10 failures >= 0.5.
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow() rejected at outcome 10: %v", err)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 5/10 failure window = %v, want open", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 2, OpenTimeout: 10 * time.Second, Clock: clk.Now})
	failN(t, b, 2)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	// Before the timeout: still rejecting.
	clk.Advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() before OpenTimeout = %v, want ErrBreakerOpen", err)
	}
	// After the timeout: exactly one probe admitted, concurrent calls
	// rejected while it is in flight.
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow() after OpenTimeout = %v, want nil", err)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half_open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second Allow() during probe = %v, want ErrBreakerOpen", err)
	}
	// Probe succeeds: full reset to closed.
	b.Record(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	// A fresh single failure must not re-trip a reset breaker.
	failN(t, b, 1)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 1 failure post-reset = %v, want closed", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 2, OpenTimeout: 5 * time.Second, Clock: clk.Now})
	failN(t, b, 2)
	clk.Advance(6 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow() = %v, want nil", err)
	}
	b.Record(errBoom)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The re-opened window restarts from the probe's failure time.
	clk.Advance(4 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow() inside re-opened window = %v, want ErrBreakerOpen", err)
	}
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe Allow() = %v, want nil", err)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", got)
	}
}

func TestBreakerCancelledProbeRearms(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 1, OpenTimeout: time.Second, Clock: clk.Now})
	failN(t, b, 1)
	clk.Advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow() = %v, want nil", err)
	}
	// The probe's caller gave up: neither success nor failure, and the
	// probe slot re-arms for the next caller.
	b.Record(fmt.Errorf("wrapped: %w", context.Canceled))
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cancelled probe = %v, want half_open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("re-armed probe Allow() = %v, want nil", err)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after re-armed probe success = %v, want closed", got)
	}
}

func TestBreakerDoAndMetrics(t *testing.T) {
	clk := newFakeClock()
	reg := observe.NewRegistry()
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Name:                "dep",
		ConsecutiveFailures: 2,
		OpenTimeout:         time.Second,
		Clock:               clk.Now,
		Metrics:             reg,
		OnStateChange: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})
	ctx := context.Background()
	op := func(err error) func(context.Context) error {
		return func(context.Context) error { return err }
	}
	if err := b.Do(ctx, op(nil)); err != nil {
		t.Fatalf("Do(success) = %v", err)
	}
	_ = b.Do(ctx, op(errBoom))
	_ = b.Do(ctx, op(errBoom))
	if err := b.Do(ctx, op(nil)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Do while open = %v, want ErrBreakerOpen", err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	page := sb.String()
	for _, want := range []string{
		`autodetect_resilience_breaker_state{name="dep"} 2`,
		`autodetect_resilience_breaker_transitions_total{name="dep",to="open"} 1`,
		`autodetect_resilience_breaker_rejections_total{name="dep"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	if len(transitions) != 1 || transitions[0] != "closed>open" {
		t.Errorf("transitions = %v, want [closed>open]", transitions)
	}
}
