package resilience

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/observe"
)

// HTTPMetrics holds the serving-path metric families recorded by the
// Metrics middleware. Construct with NewHTTPMetrics once per registry and
// share the value across the middleware chain.
type HTTPMetrics struct {
	reg      *observe.Registry
	requests *observe.CounterVec   // autodetect_http_requests_total{route,code}
	latency  *observe.HistogramVec // autodetect_http_request_seconds{route}
	shed     *observe.Counter      // autodetect_http_shed_total
	inflight *observe.Gauge        // autodetect_http_inflight

	// Route maps a request to a bounded-cardinality route label. The
	// default uses the raw URL path, which is only safe behind a fixed
	// mux; servers exposed to arbitrary paths must normalize (the service
	// layer maps unknown paths to "other").
	Route func(*http.Request) string
}

// NewHTTPMetrics registers the HTTP serving metric families on reg.
func NewHTTPMetrics(reg *observe.Registry) *HTTPMetrics {
	return &HTTPMetrics{
		reg: reg,
		requests: reg.CounterVec("autodetect_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		latency: reg.HistogramVec("autodetect_http_request_seconds",
			"HTTP request latency in seconds, by route.", observe.DefBuckets, "route"),
		shed: reg.Counter("autodetect_http_shed_total",
			"Requests shed with 429 by the load-shedding limiter."),
		inflight: reg.Gauge("autodetect_http_inflight",
			"Requests currently being served."),
		Route: func(r *http.Request) string { return r.URL.Path },
	}
}

// Metrics records per-route request counts, latency histograms, in-flight
// gauge and shed-429 totals for every request that flows through it, and
// binds the metrics registry into the request context so downstream
// observe.Span calls land in the same registry. Mount it outside the
// limiter and timeout so 429s and 504s are counted like any other
// response.
func Metrics(m *HTTPMetrics) Middleware {
	return func(next http.Handler) http.Handler {
		if m == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			route := m.Route(r)
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w}
			m.inflight.Add(1)
			defer func() {
				m.inflight.Add(-1)
				code := sw.Status()
				m.requests.With(route, strconv.Itoa(code)).Inc()
				// When the Tracing middleware opened a span upstream, attach
				// its trace ID as the latency bucket's exemplar so slow
				// requests can be followed into /debug/traces.
				m.latency.With(route).ObserveExemplar(
					time.Since(start).Seconds(), observe.TraceIDFrom(r.Context()))
				if code == http.StatusTooManyRequests {
					m.shed.Inc()
				}
			}()
			r = r.WithContext(observe.ContextWithRegistry(r.Context(), m.reg))
			next.ServeHTTP(sw, r)
		})
	}
}

// AccessLog emits one structured log line per request through logger's
// ctx-aware path, so every line carries the request_id injected by the
// RequestID middleware alongside method, route, status, size and latency.
// A nil logger disables the middleware.
func AccessLog(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w}
			next.ServeHTTP(sw, r)
			logger.InfoContext(r.Context(), "request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.Status(),
				"bytes", sw.bytes,
				"duration_ms", float64(time.Since(start).Microseconds())/1000,
			)
		})
	}
}

// statusWriter captures the response status and size while delegating to
// the wrapped writer. Unwrap keeps http.ResponseController features
// (read/write deadlines, flush) reachable through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (s *statusWriter) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusWriter) Write(p []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	n, err := s.ResponseWriter.Write(p)
	s.bytes += int64(n)
	return n, err
}

// Status returns the written status, defaulting to 200 when the handler
// finished without an explicit WriteHeader.
func (s *statusWriter) Status() int {
	if s.status == 0 {
		return http.StatusOK
	}
	return s.status
}

func (s *statusWriter) Unwrap() http.ResponseWriter { return s.ResponseWriter }
