package resilience

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/observe"
)

func newTracingTracer() *observe.Tracer {
	return observe.NewTracer(
		observe.NewFlightRecorder(observe.RecorderConfig{SampleEvery: 1}),
		observe.NewIDSource(1))
}

func TestTracingCreatesServerSpanAndEchoesTraceID(t *testing.T) {
	tr := newTracingTracer()
	h := Chain(RequestID(), Tracing(tr, nil))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if observe.TraceIDFrom(r.Context()) == "" {
			t.Error("handler context has no trace ID")
		}
		io.WriteString(w, "ok")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/check-column", nil))

	tid := rec.Header().Get(HeaderTraceID)
	if len(tid) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", tid)
	}
	tc, ok := tr.Recorder().Trace(tid)
	if !ok {
		t.Fatalf("trace %s not in the recorder", tid)
	}
	if tc.Root != "POST /v1/check-column" {
		t.Fatalf("server span name %q", tc.Root)
	}
	root := tc.Spans[len(tc.Spans)-1]
	if root.Attrs["status"] != "200" || root.Attrs["request_id"] == "" {
		t.Fatalf("server span attrs %v, want status + request_id", root.Attrs)
	}
}

func TestTracingJoinsInboundTraceparent(t *testing.T) {
	tr := newTracingTracer()
	upstream := observe.SpanContext{
		TraceID: observe.NewIDSource(9).TraceID(),
		SpanID:  observe.NewIDSource(9).SpanID(),
	}
	h := Tracing(tr, nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("GET", "/v1/health", nil)
	req.Header.Set(observe.HeaderTraceparent, upstream.Traceparent())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if got := rec.Header().Get(HeaderTraceID); got != upstream.TraceID.String() {
		t.Fatalf("trace ID %s, want upstream %s", got, upstream.TraceID)
	}
	tc, ok := tr.Recorder().Trace(upstream.TraceID.String())
	if !ok {
		t.Fatal("joined trace not recorded")
	}
	if tc.RemoteParent != upstream.SpanID.String() {
		t.Fatalf("remote parent %q, want %s", tc.RemoteParent, upstream.SpanID)
	}
}

func TestTracingMarks5xxAsErrorTrace(t *testing.T) {
	tr := newTracingTracer()
	h := Tracing(tr, nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	tc, ok := tr.Recorder().Trace(rec.Header().Get(HeaderTraceID))
	if !ok || !tc.Error || tc.Reason != "error" {
		t.Fatalf("5xx trace: ok=%t %+v", ok, tc)
	}
}

func TestTracingNilTracerIsPassthrough(t *testing.T) {
	h := Tracing(nil, nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Header().Get(HeaderTraceID) != "" {
		t.Fatal("nil tracer still set X-Trace-Id")
	}
}

// Satellite regression: hostile inbound correlation headers must never
// propagate. X-Request-Id values outside 1–128 bytes of [A-Za-z0-9._:-]
// are replaced; malformed traceparent values start a fresh trace instead
// of joining garbage.
func TestHostileCorrelationHeadersRejected(t *testing.T) {
	tr := newTracingTracer()
	var seenID string
	h := Chain(RequestID(), Tracing(tr, nil))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenID = RequestIDFrom(r.Context())
	}))

	hostileIDs := []string{
		strings.Repeat("a", 129),              // oversized
		"id with spaces",                      // whitespace
		"id\"with\"quotes",                    // quote injection into logfmt
		"id\nwith=newline",                    // log line injection
		"id\x00nul",                           // control bytes
		"café",                                // non-ASCII
	}
	for _, hostile := range hostileIDs {
		req := httptest.NewRequest("GET", "/v1/health", nil)
		req.Header.Set(HeaderRequestID, hostile)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if seenID == hostile || rec.Header().Get(HeaderRequestID) == hostile {
			t.Errorf("hostile request ID %q propagated", hostile)
		}
		if len(seenID) != 16 {
			t.Errorf("replacement ID %q, want 16 hex chars", seenID)
		}
	}

	// A well-formed inbound ID still passes through untouched.
	req := httptest.NewRequest("GET", "/v1/health", nil)
	req.Header.Set(HeaderRequestID, "client-id_1.2:3")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seenID != "client-id_1.2:3" {
		t.Fatalf("valid request ID rewritten to %q", seenID)
	}

	hostileTraceparents := []string{
		strings.Repeat("0", 4096), // oversized
		"00-" + strings.Repeat("A", 32) + "-" + strings.Repeat("b", 16) + "-01", // uppercase
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("b", 16) + "-01", // zero trace
		"evil\nheader",
	}
	for _, hostile := range hostileTraceparents {
		req := httptest.NewRequest("GET", "/v1/health", nil)
		req.Header.Set(observe.HeaderTraceparent, hostile)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		tid := rec.Header().Get(HeaderTraceID)
		if len(tid) != 32 || strings.Contains(hostile, tid) {
			t.Errorf("hostile traceparent %.40q: trace ID %q should be fresh", hostile, tid)
		}
		if tc, ok := tr.Recorder().Trace(tid); !ok || tc.RemoteParent != "" {
			t.Errorf("hostile traceparent %.40q joined a remote parent: %+v", hostile, tc)
		}
	}
}

func TestMetricsExemplarLinksLatencyToTrace(t *testing.T) {
	tr := newTracingTracer()
	reg := observe.NewRegistry()
	m := NewHTTPMetrics(reg)
	h := Chain(RequestID(), Tracing(tr, nil), Metrics(m))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/health", nil))
	tid := rec.Header().Get(HeaderTraceID)

	var om strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(om.String(), `# {trace_id="`+tid+`"}`) {
		t.Fatalf("latency histogram has no exemplar for trace %s:\n%s", tid, om.String())
	}
}
