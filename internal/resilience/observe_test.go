package resilience

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/observe"
)

func statusHandler(status int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
		_, _ = w.Write([]byte("body"))
	})
}

func TestMetricsMiddlewareRecordsRouteAndCode(t *testing.T) {
	reg := observe.NewRegistry()
	m := NewHTTPMetrics(reg)
	h := Metrics(m)(statusHandler(http.StatusOK))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/health", nil))
	}
	rec := httptest.NewRecorder()
	Metrics(m)(statusHandler(http.StatusBadRequest)).ServeHTTP(rec, httptest.NewRequest("POST", "/v1/check-column", nil))

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`autodetect_http_requests_total{route="/v1/health",code="200"} 3`,
		`autodetect_http_requests_total{route="/v1/check-column",code="400"} 1`,
		`autodetect_http_request_seconds_count{route="/v1/health"} 3`,
		`autodetect_http_inflight 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsCountsShedRequests wires the metrics middleware outside the
// limiter, saturates it, and expects the shed 429 to show up both in the
// per-code counter and the dedicated shed counter.
func TestMetricsCountsShedRequests(t *testing.T) {
	reg := observe.NewRegistry()
	m := NewHTTPMetrics(reg)
	entered := make(chan struct{})
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h := Chain(Metrics(m), Limit(1, time.Second))(slow)

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/v1/check-pair", nil))
	}()
	<-entered // first request holds the only slot

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/check-pair", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", rec.Code)
	}
	close(release)
	<-done

	if got := m.shed.Value(); got != 1 {
		t.Errorf("shed counter = %v, want 1", got)
	}
	var b strings.Builder
	_ = reg.WriteText(&b)
	if !strings.Contains(b.String(), `autodetect_http_requests_total{route="/v1/check-pair",code="429"} 1`) {
		t.Errorf("429 not counted by route:\n%s", b.String())
	}
}

// TestRequestIDPropagation is the regression test for the request-ID
// contract: the ID arrives in the X-Request-Id response header, an
// incoming ID is echoed back unchanged, and every per-request log line
// carries the same ID under the request_id key.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf bytes.Buffer
	logger := observe.NewLogger(&logBuf, observe.LogOptions{Component: "testd"})
	h := Chain(RequestID(), AccessLog(logger))(statusHandler(http.StatusOK))

	// Generated ID: header set, log line correlates.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/readyz", nil))
	id := rec.Header().Get(HeaderRequestID)
	if id == "" {
		t.Fatal("X-Request-Id response header missing")
	}
	if !strings.Contains(logBuf.String(), "request_id="+id) {
		t.Errorf("access log line missing request_id=%s: %s", id, logBuf.String())
	}
	for _, want := range []string{"method=GET", "path=/v1/readyz", "status=200", "component=testd"} {
		if !strings.Contains(logBuf.String(), want) {
			t.Errorf("access log missing %q: %s", want, logBuf.String())
		}
	}

	// Client-supplied ID: echoed verbatim and logged.
	logBuf.Reset()
	req := httptest.NewRequest("GET", "/v1/livez", nil)
	req.Header.Set(HeaderRequestID, "client-id-42")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(HeaderRequestID); got != "client-id-42" {
		t.Errorf("echoed ID = %q, want client-id-42", got)
	}
	if !strings.Contains(logBuf.String(), "request_id=client-id-42") {
		t.Errorf("log line missing client request_id: %s", logBuf.String())
	}
}

// TestRequestIDReachesHandlerLogs checks that a handler logging through
// the ctx-aware slog path inherits the request ID without any explicit
// plumbing.
func TestRequestIDReachesHandlerLogs(t *testing.T) {
	var logBuf bytes.Buffer
	logger := observe.NewLogger(&logBuf, observe.LogOptions{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		logger.InfoContext(r.Context(), "scoring", "values", 3)
		w.WriteHeader(http.StatusOK)
	})
	rec := httptest.NewRecorder()
	RequestID()(inner).ServeHTTP(rec, httptest.NewRequest("POST", "/v1/check-column", nil))
	id := rec.Header().Get(HeaderRequestID)
	if id == "" || !strings.Contains(logBuf.String(), "request_id="+id) {
		t.Errorf("handler log line not correlated (id=%q): %s", id, logBuf.String())
	}
}

func TestAccessLogNilLoggerIsNoop(t *testing.T) {
	h := AccessLog(nil)(statusHandler(http.StatusOK))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}
