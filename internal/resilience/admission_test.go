package resilience

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/observe"
)

// pathTier classifies by prefix for the tests.
func pathTier(r *http.Request) Tier {
	switch {
	case strings.HasPrefix(r.URL.Path, "/admin"):
		return TierCritical
	case strings.HasPrefix(r.URL.Path, "/jobs"):
		return TierBackground
	default:
		return TierInteractive
	}
}

// blockingHarness serves requests that park until released, so tests can
// pin the inflight count at an exact value.
type blockingHarness struct {
	h       http.Handler
	release chan struct{}
	entered chan struct{}
}

func newBlockingHarness(a *Admission) *blockingHarness {
	bh := &blockingHarness{
		release: make(chan struct{}),
		entered: make(chan struct{}, 64),
	}
	bh.h = a.Middleware()(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bh.entered <- struct{}{}
		<-bh.release
		w.WriteHeader(http.StatusOK)
	}))
	return bh
}

// occupy starts n parked requests and waits until all are inside.
func (bh *blockingHarness) occupy(t *testing.T, n int, path string) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			bh.h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case <-bh.entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never admitted", i)
		}
	}
	return &wg
}

func (bh *blockingHarness) status(path string) int {
	rec := httptest.NewRecorder()
	bh.h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code
}

func TestAdmissionShedsBackgroundFirst(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 4, BackgroundFrac: 0.5, Tier: pathTier})
	bh := newBlockingHarness(a)

	// 2 inflight = background bound (4*0.5): background sheds, interactive
	// still admitted.
	wg := bh.occupy(t, 2, "/check")
	if got := bh.status("/jobs/submit"); got != http.StatusTooManyRequests {
		t.Fatalf("background at bound: status = %d, want 429", got)
	}
	wg2 := bh.occupy(t, 2, "/check")
	// 4 inflight = full limit: interactive sheds too, critical never.
	if got := bh.status("/check"); got != http.StatusTooManyRequests {
		t.Fatalf("interactive at limit: status = %d, want 429", got)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/jobs/x", nil)
	bh.h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("background at limit: status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	done := make(chan struct{})
	go func() {
		if got := bh.status("/admin/reload"); got != http.StatusOK {
			t.Errorf("critical at limit: status = %d, want 200", got)
		}
		close(done)
	}()
	select {
	case <-bh.entered: // the critical request got in past the full limit
	case <-time.After(5 * time.Second):
		t.Fatal("critical request never admitted")
	}
	close(bh.release)
	wg.Wait()
	wg2.Wait()
	<-done
}

func TestAdmissionAIMDAdaptsLimit(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{
		MaxConcurrency: 100,
		Target:         100 * time.Millisecond,
		DecreaseFactor: 0.5,
		Clock:          clk.Now,
	})
	if got := a.Limit(); got != 100 {
		t.Fatalf("initial limit = %v, want 100", got)
	}
	// One over-target completion halves the limit...
	if !a.acquire(TierInteractive) {
		t.Fatal("acquire failed")
	}
	clk.Advance(200 * time.Millisecond)
	a.release(200 * time.Millisecond)
	if got := a.Limit(); got != 50 {
		t.Fatalf("limit after slow completion = %v, want 50", got)
	}
	// ...but a burst of slow completions inside one Target window counts
	// once.
	for i := 0; i < 5; i++ {
		if !a.acquire(TierInteractive) {
			t.Fatal("acquire failed")
		}
		a.release(200 * time.Millisecond)
	}
	if got := a.Limit(); got != 50 {
		t.Fatalf("limit after same-window slow burst = %v, want still 50", got)
	}
	// Fast completions grow it back additively (+1/limit each).
	for i := 0; i < 100; i++ {
		if !a.acquire(TierInteractive) {
			t.Fatal("acquire failed")
		}
		a.release(10 * time.Millisecond)
	}
	if got := a.Limit(); got <= 50 || got > 100 {
		t.Fatalf("limit after fast completions = %v, want (50, 100]", got)
	}
}

func TestAdmissionAIMDRespectsMin(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionConfig{
		MaxConcurrency: 8,
		MinConcurrency: 2,
		Target:         10 * time.Millisecond,
		Clock:          clk.Now,
	})
	for i := 0; i < 50; i++ {
		if !a.acquire(TierCritical) {
			t.Fatal("critical acquire failed")
		}
		clk.Advance(20 * time.Millisecond)
		a.release(20 * time.Millisecond)
	}
	if got := a.Limit(); got != 2 {
		t.Fatalf("limit floor = %v, want MinConcurrency 2", got)
	}
	// Even in the deepest brownout interactive work is admitted.
	if !a.acquire(TierInteractive) {
		t.Fatal("interactive rejected below MinConcurrency occupancy")
	}
	a.release(time.Millisecond)
}

func TestAdmissionMetricsAndPassThrough(t *testing.T) {
	reg := observe.NewRegistry()
	a := NewAdmission(AdmissionConfig{MaxConcurrency: 1, Tier: pathTier, Metrics: reg})
	h := a.Middleware()(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/check", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	page := sb.String()
	for _, want := range []string{
		`autodetect_resilience_sheds_total{tier="critical"} 0`,
		`autodetect_resilience_sheds_total{tier="background"} 0`,
		`autodetect_resilience_admitted_total{tier="interactive"} 1`,
		"autodetect_resilience_admit_limit 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}

	// MaxConcurrency <= 0 disables admission entirely.
	off := NewAdmission(AdmissionConfig{MaxConcurrency: 0})
	h = off.Middleware()(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/anything", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("disabled admission: status = %d, want 200", rec.Code)
	}
}
