package resilience

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/observe"
)

// Tier is a request's admission priority. Under overload the controller
// sheds background first, then interactive; critical is never shed — the
// probes, admin surfaces and scrapes that explain an overload must keep
// answering through it.
type Tier uint8

const (
	// TierCritical is never shed: health/readiness probes, admin
	// endpoints, metrics scrapes.
	TierCritical Tier = iota
	// TierInteractive is user-facing request/response traffic
	// (/v1/check-*): shed only after background is fully shed.
	TierInteractive
	// TierBackground is batch and fleet-internal traffic (jobs, registry
	// pulls, distbuild): first to go under pressure.
	TierBackground
)

func (t Tier) String() string {
	switch t {
	case TierCritical:
		return "critical"
	case TierInteractive:
		return "interactive"
	case TierBackground:
		return "background"
	}
	return "unknown"
}

// AdmissionConfig parameterizes NewAdmission.
type AdmissionConfig struct {
	// MaxConcurrency is the AIMD limit's upper bound and starting value —
	// the same knob the flat -max-inflight gate used to be. <= 0 disables
	// admission control entirely (Middleware passes through).
	MaxConcurrency int
	// MinConcurrency is the AIMD limit's lower bound (default 1): even in
	// the deepest brownout some interactive work is admitted.
	MinConcurrency int
	// Target is the latency the limit adapts toward (default 250ms):
	// completions slower than Target shrink the limit multiplicatively,
	// completions under it grow the limit additively.
	Target time.Duration
	// BackgroundFrac is the fraction of the current limit available to
	// background requests (default 0.5), so background saturates — and
	// sheds — well before interactive does.
	BackgroundFrac float64
	// DecreaseFactor is the multiplicative backoff applied to the limit on
	// an over-target completion (default 0.9), at most once per Target
	// interval so one slow burst doesn't collapse the limit to the floor.
	DecreaseFactor float64
	// RetryAfter is the hint attached to shed responses (default
	// DefaultRetryAfter).
	RetryAfter time.Duration
	// Tier classifies requests (default: everything TierInteractive).
	Tier func(*http.Request) Tier
	// Clock is the time source; tests inject a fake (default time.Now).
	Clock func() time.Time
	// Metrics, when set, receives the admission metric families.
	Metrics *observe.Registry
}

// Admission is the priority-tiered, latency-adaptive concurrency gate that
// replaces the flat inflight semaphore. One AIMD-controlled limit L floats
// between MinConcurrency and MaxConcurrency, tracking observed latency
// against Target; admission is then tiered against L:
//
//	critical:    always admitted (and still counted inflight)
//	interactive: admitted while inflight < L
//	background:  admitted while inflight < max(1, BackgroundFrac·L)
//
// so overload sheds background first, then interactive, never critical.
// Shed requests get 429 + Retry-After immediately — fast rejection keeps
// tail latency sane for the admitted. Safe for concurrent use.
type Admission struct {
	cfg AdmissionConfig

	mu           sync.Mutex
	limit        float64
	inflight     int
	lastDecrease time.Time

	limitGauge    *observe.Gauge
	inflightGauge *observe.Gauge
	sheds         *observe.CounterVec
	admitted      *observe.CounterVec
}

// NewAdmission applies defaults and registers the admission metric
// families when a registry is configured.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MinConcurrency <= 0 {
		cfg.MinConcurrency = 1
	}
	if cfg.Target <= 0 {
		cfg.Target = 250 * time.Millisecond
	}
	if cfg.BackgroundFrac <= 0 || cfg.BackgroundFrac > 1 {
		cfg.BackgroundFrac = 0.5
	}
	if cfg.DecreaseFactor <= 0 || cfg.DecreaseFactor >= 1 {
		cfg.DecreaseFactor = 0.9
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Tier == nil {
		cfg.Tier = func(*http.Request) Tier { return TierInteractive }
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	a := &Admission{cfg: cfg, limit: float64(cfg.MaxConcurrency)}
	if reg := cfg.Metrics; reg != nil && cfg.MaxConcurrency > 0 {
		a.limitGauge = reg.Gauge("autodetect_resilience_admit_limit",
			"Current AIMD concurrency limit the admission controller adapts toward its latency target.")
		a.limitGauge.Set(a.limit)
		a.inflightGauge = reg.Gauge("autodetect_resilience_admit_inflight",
			"Requests currently admitted across all tiers.")
		a.sheds = reg.CounterVec("autodetect_resilience_sheds_total",
			"Requests shed with 429 by the tiered admission controller, by tier.", "tier")
		a.admitted = reg.CounterVec("autodetect_resilience_admitted_total",
			"Requests admitted by the tiered admission controller, by tier.", "tier")
		// Pre-create the per-tier children so every tier is visible on
		// /metrics from the first scrape — "zero critical sheds" should be
		// an asserted 0, not a missing series.
		for _, t := range []Tier{TierCritical, TierInteractive, TierBackground} {
			a.sheds.With(t.String())
			a.admitted.With(t.String())
		}
	}
	return a
}

// Limit returns the current AIMD concurrency limit.
func (a *Admission) Limit() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

// Inflight returns the currently admitted request count.
func (a *Admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// acquire admits or sheds one request of the given tier.
func (a *Admission) acquire(t Tier) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	bound := a.limit
	if t == TierBackground {
		bound = a.limit * a.cfg.BackgroundFrac
		if bound < 1 {
			bound = 1
		}
	}
	if t != TierCritical && float64(a.inflight) >= bound {
		return false
	}
	a.inflight++
	if a.inflightGauge != nil {
		a.inflightGauge.Set(float64(a.inflight))
	}
	return true
}

// release returns a slot and applies the AIMD update for the completion's
// observed latency.
func (a *Admission) release(latency time.Duration) {
	now := a.cfg.Clock()
	a.mu.Lock()
	a.inflight--
	if a.inflightGauge != nil {
		a.inflightGauge.Set(float64(a.inflight))
	}
	if latency > a.cfg.Target {
		// Multiplicative decrease, at most once per Target window: a batch
		// of slow completions is one overload signal, not N.
		if now.Sub(a.lastDecrease) >= a.cfg.Target {
			a.limit *= a.cfg.DecreaseFactor
			if min := float64(a.cfg.MinConcurrency); a.limit < min {
				a.limit = min
			}
			a.lastDecrease = now
		}
	} else {
		// Additive increase, ~1 slot per limit's worth of fast
		// completions.
		a.limit += 1 / a.limit
		if max := float64(a.cfg.MaxConcurrency); a.limit > max {
			a.limit = max
		}
	}
	if a.limitGauge != nil {
		a.limitGauge.Set(a.limit)
	}
	a.mu.Unlock()
}

// Middleware returns the admission gate as a middleware. A nil Admission
// or MaxConcurrency <= 0 passes through.
func (a *Admission) Middleware() Middleware {
	return func(next http.Handler) http.Handler {
		if a == nil || a.cfg.MaxConcurrency <= 0 {
			return next
		}
		secs := int(a.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tier := a.cfg.Tier(r)
			if !a.acquire(tier) {
				if a.sheds != nil {
					a.sheds.With(tier.String()).Inc()
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeError(w, r, http.StatusTooManyRequests,
					"server overloaded ("+tier.String()+" tier shed), retry later")
				return
			}
			if a.admitted != nil {
				a.admitted.With(tier.String()).Inc()
			}
			start := a.cfg.Clock()
			defer func() { a.release(a.cfg.Clock().Sub(start)) }()
			next.ServeHTTP(w, r)
		})
	}
}
