package resilience

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/observe"
	"repro/internal/retry"
)

func TestRetryBudgetWithdrawDeposit(t *testing.T) {
	b := NewRetryBudget(BudgetConfig{Burst: 2, Ratio: 0.5})
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("fresh budget must cover Burst withdrawals")
	}
	if b.Withdraw() {
		t.Fatal("drained budget must reject the next withdrawal")
	}
	b.Deposit() // +0.5: still below one token
	if b.Withdraw() {
		t.Fatal("half a token must not fund a retry")
	}
	b.Deposit() // balance 1.0
	if !b.Withdraw() {
		t.Fatal("a full deposited token must fund a retry")
	}
	for i := 0; i < 10; i++ {
		b.Deposit()
	}
	if got := b.Balance(); got != 2 {
		t.Fatalf("balance saturates at Burst: got %v, want 2", got)
	}
}

// TestRetryBudgetBoundsAttempts is the amplification property the tentpole
// promises: under 100% failure, total attempts across N calls stay within
// N (the first attempt of each call is free) plus the budget's initial
// balance — no matter how many attempts the policy itself would allow.
func TestRetryBudgetBoundsAttempts(t *testing.T) {
	const calls = 50
	const burst = 7
	b := NewRetryBudget(BudgetConfig{Burst: burst})
	pol := retry.Policy{
		MaxAttempts: 10,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Budget:      b,
	}
	attempts := 0
	exhausted := 0
	for i := 0; i < calls; i++ {
		err := pol.DoCtx(context.Background(), func(context.Context) error {
			attempts++
			return retry.Transient(errors.New("down"))
		})
		if err == nil {
			t.Fatal("op always fails; DoCtx must not succeed")
		}
		if errors.Is(err, retry.ErrBudgetExhausted) {
			exhausted++
		}
	}
	if bound := calls + burst; attempts > bound {
		t.Fatalf("attempts = %d, want <= %d (calls %d + burst %d)", attempts, bound, calls, burst)
	}
	// The budget must actually have bitten: without it, 50 calls × 10
	// attempts = 500.
	if attempts >= calls*pol.MaxAttempts {
		t.Fatalf("attempts = %d: the budget never limited anything", attempts)
	}
	if exhausted == 0 {
		t.Fatal("expected at least one ErrBudgetExhausted result")
	}
	if got := b.Balance(); got >= 1 {
		t.Fatalf("balance after total failure = %v, want < 1", got)
	}
}

// TestRetryBudgetRecoversOnSuccess checks deposits refill retry capacity.
func TestRetryBudgetRecoversOnSuccess(t *testing.T) {
	b := NewRetryBudget(BudgetConfig{Burst: 2, Ratio: 0.1})
	pol := retry.Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Budget:      b,
	}
	// Drain under failure.
	for i := 0; i < 4; i++ {
		_ = pol.DoCtx(context.Background(), func(context.Context) error {
			return retry.Transient(errors.New("down"))
		})
	}
	if b.Balance() >= 1 {
		t.Fatalf("balance = %v, want drained", b.Balance())
	}
	// 10 successes at Ratio 0.1 earn one retry back.
	for i := 0; i < 10; i++ {
		if err := pol.DoCtx(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatalf("success path errored: %v", err)
		}
	}
	if got := b.Balance(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("balance after 10 successes = %v, want 1", got)
	}
	if !b.Withdraw() {
		t.Fatal("earned token must fund a retry")
	}
}

func TestRetryBudgetMetrics(t *testing.T) {
	reg := observe.NewRegistry()
	b := NewRetryBudget(BudgetConfig{Name: "pull", Burst: 1, Metrics: reg})
	b.Withdraw()
	b.Withdraw() // exhausted
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	page := sb.String()
	for _, want := range []string{
		`autodetect_resilience_retry_budget_balance{client="pull"} 0`,
		`autodetect_resilience_retry_budget_withdrawals_total{client="pull"} 1`,
		`autodetect_resilience_retry_budget_exhausted_total{client="pull"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}
