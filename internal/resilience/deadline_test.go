package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func TestAttachParseDeadlineRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	h := make(http.Header)
	fwd, ok := AttachDeadline(ctx, h, 100*time.Millisecond)
	if !ok {
		t.Fatal("AttachDeadline found no deadline")
	}
	if fwd <= 0 || fwd > 400*time.Millisecond {
		t.Fatalf("forwarded budget = %v, want (0, 400ms]", fwd)
	}
	got, ok := ParseDeadline(h)
	if !ok {
		t.Fatal("ParseDeadline missed the stamped header")
	}
	if diff := got - fwd; diff > time.Millisecond || diff < -time.Millisecond {
		t.Fatalf("parsed %v, stamped %v", got, fwd)
	}
}

func TestAttachDeadlineNoDeadline(t *testing.T) {
	h := make(http.Header)
	if _, ok := AttachDeadline(context.Background(), h, 0); ok {
		t.Fatal("no-deadline context must stamp nothing")
	}
	if h.Get(HeaderDeadline) != "" {
		t.Fatal("header stamped without a deadline")
	}
}

func TestAttachDeadlineExpiredStampsZero(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	h := make(http.Header)
	fwd, ok := AttachDeadline(ctx, h, 50*time.Millisecond)
	if !ok || fwd != 0 {
		t.Fatalf("expired context: fwd=%v ok=%v, want 0 true", fwd, ok)
	}
	if h.Get(HeaderDeadline) != "0" {
		t.Fatalf("header = %q, want \"0\"", h.Get(HeaderDeadline))
	}
}

func TestParseDeadlineMalformed(t *testing.T) {
	for _, v := range []string{"abc", "-5", "1.5", ""} {
		h := make(http.Header)
		if v != "" {
			h.Set(HeaderDeadline, v)
		}
		if _, ok := ParseDeadline(h); ok {
			t.Errorf("ParseDeadline(%q) accepted, want rejected", v)
		}
	}
}

func TestDeadlineBudgetFastFail(t *testing.T) {
	var served bool
	h := DeadlineBudget(time.Second, func(*http.Request) time.Duration { return 100 * time.Millisecond }, nil)(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			served = true
			w.WriteHeader(http.StatusOK)
		}))

	// Budget below the floor: 504 before any work.
	req := httptest.NewRequest(http.MethodGet, "/v1/check-column", nil)
	req.Header.Set(HeaderDeadline, "50")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
	if served {
		t.Fatal("handler ran despite a doomed budget")
	}

	// Budget above the floor: served, and the handler's context deadline
	// reflects the inbound budget, not the server default.
	var remaining time.Duration
	h = DeadlineBudget(time.Minute, nil, nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dl, ok := r.Context().Deadline(); ok {
			remaining = time.Until(dl)
		}
		w.WriteHeader(http.StatusOK)
	}))
	req = httptest.NewRequest(http.MethodGet, "/v1/check-column", nil)
	req.Header.Set(HeaderDeadline, strconv.Itoa(200))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if remaining <= 0 || remaining > 200*time.Millisecond {
		t.Fatalf("handler deadline remaining = %v, want (0, 200ms] (inherited from header)", remaining)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := ParseRetryAfter("7"); !ok || d != 7*time.Second {
		t.Fatalf("ParseRetryAfter(7) = %v %v", d, ok)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := ParseRetryAfter(future); !ok || d <= 0 || d > 30*time.Second {
		t.Fatalf("ParseRetryAfter(date) = %v %v", d, ok)
	}
	for _, v := range []string{"", "-3", "soon", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)} {
		if _, ok := ParseRetryAfter(v); ok {
			t.Errorf("ParseRetryAfter(%q) accepted, want rejected", v)
		}
	}
}
