package resilience

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience/faultinject"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(mw("outer"), mw("inner"))(okHandler())
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

func TestRequestIDGeneratedAndPropagated(t *testing.T) {
	var seen string
	h := RequestID()(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if seen == "" {
		t.Fatal("no request ID generated")
	}
	if got := rec.Header().Get(HeaderRequestID); got != seen {
		t.Fatalf("response header %q, context %q", got, seen)
	}

	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(HeaderRequestID, "client-chosen-42")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-chosen-42" || rec.Header().Get(HeaderRequestID) != "client-chosen-42" {
		t.Fatalf("client ID not propagated: context %q header %q", seen, rec.Header().Get(HeaderRequestID))
	}

	// Oversized client IDs are replaced, not trusted.
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set(HeaderRequestID, strings.Repeat("x", 300))
	h.ServeHTTP(httptest.NewRecorder(), req)
	if len(seen) > 128 {
		t.Fatalf("oversized client ID accepted: %d bytes", len(seen))
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	var logged bool
	h := Chain(
		RequestID(),
		Recover(func(string, ...any) { logged = true }),
	)(faultinject.PanicHandler("detector exploded"))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/check-column", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.RequestID == "" {
		t.Error("500 body missing request_id")
	}
	if !logged {
		t.Error("panic not logged")
	}
}

func TestRecoverSurvivesRepeatedPanics(t *testing.T) {
	// The real server must keep serving after a panic; exercise through a
	// live httptest server rather than a recorder.
	s := httptest.NewServer(Chain(RequestID(), Recover(nil))(faultinject.PanicHandler("boom")))
	defer s.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(s.URL)
		if err != nil {
			t.Fatalf("request %d: server died: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
}

func TestMaxBytesCapsBody(t *testing.T) {
	h := MaxBytes(16)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.ReadAll(r.Body); err != nil {
			var mbe *http.MaxBytesError
			if !errors.As(err, &mbe) {
				t.Errorf("unexpected error type: %v", err)
			}
			w.WriteHeader(http.StatusRequestEntityTooLarge)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", strings.NewReader(strings.Repeat("x", 64))))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/", strings.NewReader("small")))
	if rec.Code != http.StatusOK {
		t.Fatalf("small body status %d", rec.Code)
	}
}

func TestLimitSheds429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	blocked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	s := httptest.NewServer(Chain(RequestID(), Limit(1, 2*time.Second))(blocked))
	defer s.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(s.URL)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the single slot is now held

	resp, err := http.Get(s.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if id := resp.Header.Get(HeaderRequestID); id == "" {
		t.Error("429 missing request ID")
	}
	close(release)
	wg.Wait()

	// Slot released: the next request is admitted (release is closed, so
	// the handler no longer blocks after announcing entry).
	go func() { <-entered }()
	resp2, err := http.Get(s.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d", resp2.StatusCode)
	}
}

func TestTimeoutReturns504(t *testing.T) {
	h := Chain(
		RequestID(),
		Recover(nil),
		Timeout(30*time.Millisecond),
	)(faultinject.SlowHandler(5*time.Second, okHandler()))
	s := httptest.NewServer(h)
	defer s.Close()

	start := time.Now()
	resp, err := http.Get(s.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %s", elapsed)
	}
}

// A slow-loris client that never finishes sending its body must still
// receive the 504 at the deadline. The abandoned handler goroutine stays
// blocked in Body.Read holding the server's request-body mutex, which
// would stall the response flush forever if Timeout did not also bound
// the connection read.
func TestTimeoutRespondsDespiteSlowLorisBody(t *testing.T) {
	h := Chain(
		RequestID(),
		Recover(nil),
		Timeout(200*time.Millisecond),
	)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		io.WriteString(w, "done")
	}))
	s := httptest.NewServer(h)
	defer s.Close()

	conn, err := net.Dial("tcp", s.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = io.WriteString(conn,
		"POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\npartial")
	if err != nil {
		t.Fatal(err)
	}
	// Send nothing more: the body stays 993 bytes short forever.
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no response within 5s of a held-open body: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("504 took %s to arrive", elapsed)
	}
	if !strings.HasPrefix(string(buf[:n]), "HTTP/1.1 504") {
		t.Fatalf("got %q, want a 504 status line", buf[:n])
	}
}

func TestTimeoutPassesFastResponses(t *testing.T) {
	h := Timeout(time.Second)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "fast")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot || rec.Body.String() != "fast" || rec.Header().Get("X-Custom") != "yes" {
		t.Fatalf("response mangled: %d %q", rec.Code, rec.Body.String())
	}
}

func TestTimeoutPropagatesPanicToRecover(t *testing.T) {
	h := Chain(
		RequestID(),
		Recover(nil),
		Timeout(time.Second),
	)(faultinject.PanicHandler("inside timeout"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
}

func TestDisabledMiddlewareAreNoOps(t *testing.T) {
	h := Chain(MaxBytes(0), Limit(0, time.Second), Timeout(0))(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("disabled chain broke the handler: %d %q", rec.Code, rec.Body.String())
	}
}
