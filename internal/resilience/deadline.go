package resilience

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/observe"
	"repro/internal/retry"
)

// HeaderDeadline carries a request's remaining deadline budget in
// milliseconds across process hops. Relative-not-absolute is deliberate:
// a remaining-budget header survives clock skew between hosts, an
// absolute timestamp does not. The contract:
//
//   - A client with a context deadline stamps the header with its
//     remaining budget minus a hop allowance (AttachDeadline).
//   - A serving middleware (DeadlineBudget) reads the header, caps the
//     handler's deadline at min(inbound budget, server default), and
//     fast-fails with 504 — before any work — when the budget is already
//     below the route's floor: doomed work helps nobody under overload.
const HeaderDeadline = "X-Deadline-Ms"

// DefaultHopAllowance is subtracted from the remaining budget before it
// is forwarded, reserving time for the network hop and the response to
// travel back.
const DefaultHopAllowance = 50 * time.Millisecond

// AttachDeadline stamps ctx's remaining deadline budget minus hop onto h
// as HeaderDeadline. Returns the forwarded budget and true, or (0, false)
// when ctx has no deadline (nothing is stamped: an unbounded caller
// imposes no bound downstream). A non-positive remaining budget stamps a
// zero header so the callee can fast-fail instead of working for a caller
// that is already gone. hop <= 0 uses DefaultHopAllowance.
func AttachDeadline(ctx context.Context, h http.Header, hop time.Duration) (time.Duration, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	if hop <= 0 {
		hop = DefaultHopAllowance
	}
	remaining := time.Until(dl) - hop
	if remaining < 0 {
		remaining = 0
	}
	h.Set(HeaderDeadline, strconv.FormatInt(remaining.Milliseconds(), 10))
	return remaining, true
}

// ParseDeadline reads a HeaderDeadline value, reporting the budget and
// whether the header was present and well-formed. Malformed or negative
// values are ignored (false) — a garbled hint must not grant or deny
// service.
func ParseDeadline(h http.Header) (time.Duration, bool) {
	v := h.Get(HeaderDeadline)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// DeadlineBudget is deadline-propagating Timeout: each request runs under
// min(def, inbound HeaderDeadline budget), and a request whose budget is
// already below floor(r) is fast-failed with 504 before any work happens.
// floor may be nil (no fast-fail); def <= 0 disables the middleware
// entirely. reg, when set, receives the deadline metric families.
func DeadlineBudget(def time.Duration, floor func(*http.Request) time.Duration, reg *observe.Registry) Middleware {
	var fastFails *observe.Counter
	var inherited *observe.Counter
	if reg != nil {
		fastFails = reg.Counter("autodetect_resilience_deadline_fastfail_total",
			"Requests 504ed before any work because their propagated deadline budget was below the route floor.")
		inherited = reg.Counter("autodetect_resilience_deadline_inherited_total",
			"Requests whose deadline came from the inbound "+HeaderDeadline+" header rather than the server default.")
	}
	return func(next http.Handler) http.Handler {
		if def <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			d := def
			if budget, ok := ParseDeadline(r.Header); ok && budget < d {
				d = budget
				if inherited != nil {
					inherited.Inc()
				}
			}
			if floor != nil {
				if f := floor(r); f > 0 && d < f {
					if fastFails != nil {
						fastFails.Inc()
					}
					writeError(w, r, http.StatusGatewayTimeout, fmt.Sprintf(
						"deadline budget %s below the %s floor for this route; not starting doomed work", d, f))
					return
				}
			}
			serveWithDeadline(w, r, d, next)
		})
	}
}

// RetryAfterFloor wraps err with the response's Retry-After hint as a
// backoff floor (retry.After), so a retrying client never comes back
// sooner than the overloaded server asked it to. Absent or malformed
// hints return err unchanged. Shared by the registry puller, the publish
// client, and the distbuild worker client.
func RetryAfterFloor(err error, h http.Header) error {
	if floor, ok := ParseRetryAfter(h.Get("Retry-After")); ok {
		return retry.After(err, floor)
	}
	return err
}

// ParseRetryAfter parses an HTTP Retry-After header value — either
// delay-seconds or an HTTP-date — into a wait duration. Used by internal
// clients to honor a 503/429's pacing hint as a backoff floor (wrap the
// error with retry.After). Returns false for absent or malformed values
// and for dates already in the past.
func ParseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
	}
	return 0, false
}
