package resilience

import (
	"net/http"
	"strconv"

	"repro/internal/observe"
)

// HeaderTraceID is the response header echoing the hex trace ID of the
// server span created by the Tracing middleware, so clients (and the CI
// smoke) can look a request up in /debug/traces without parsing
// traceparent.
const HeaderTraceID = "X-Trace-Id"

// Tracing binds tr into the request context and opens the per-request
// server span in tr's flight recorder. An inbound W3C traceparent header
// joins the request to its upstream trace (malformed or oversized values
// are rejected by the strict parser, mirroring RequestID's hardening);
// otherwise a fresh trace starts here. The span records method+route,
// final status, and is marked as an error on 5xx responses so the tail
// sampler always retains failing requests.
//
// Mount it directly inside RequestID and outside Metrics: downstream
// log lines then carry trace_id next to request_id, and the latency
// histogram can attach the trace ID as an exemplar.
//
// route maps a request to a bounded span name (nil falls back to the
// URL path truncated to 64 bytes — fine for the recorder, which has no
// cardinality limits to protect). A nil tracer disables the middleware.
func Tracing(tr *observe.Tracer, route func(*http.Request) string) Middleware {
	return func(next http.Handler) http.Handler {
		if tr == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx := observe.ContextWithTracer(r.Context(), tr)
			if sc, ok := observe.ParseTraceparent(r.Header.Get(observe.HeaderTraceparent)); ok {
				ctx = observe.ContextWithRemoteParent(ctx, sc)
			}
			name := r.URL.Path
			if route != nil {
				name = route(r)
			} else if len(name) > 64 {
				name = name[:64]
			}
			ctx, end := observe.RecorderSpan(ctx, r.Method+" "+name)
			w.Header().Set(HeaderTraceID, observe.TraceIDFrom(ctx))
			sw := &statusWriter{ResponseWriter: w}
			defer func() {
				code := sw.Status()
				observe.SetSpanAttr(ctx, "status", strconv.Itoa(code))
				if id := RequestIDFrom(ctx); id != "" {
					observe.SetSpanAttr(ctx, "request_id", id)
				}
				if code >= 500 {
					observe.SetSpanError(ctx, http.StatusText(code))
				}
				end()
			}()
			next.ServeHTTP(sw, r.WithContext(ctx))
		})
	}
}
