// Package resilience provides the composable HTTP middleware that hardens
// the Auto-Detect serving stack: panic recovery, per-request timeouts,
// body-size caps, request-ID propagation, and semaphore-based load
// shedding. The paper frames Auto-Detect as an always-on "spell-checker
// for data" background service (Appendix G); this package is what keeps
// that service alive under panicking detectors, slow-loris clients,
// oversized bodies, and overload.
//
// Middleware compose outermost-first:
//
//	h := resilience.Chain(
//	    resilience.RequestID(),
//	    resilience.Recover(log.Printf),
//	    resilience.Limit(256, time.Second),
//	    resilience.Timeout(30*time.Second),
//	    resilience.MaxBytes(8<<20),
//	)(mux)
package resilience

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/observe"
)

// DefaultRetryAfterSeconds is the shared Retry-After hint, in seconds, for
// every back-off response the stack emits — load-shedding 429s here, the
// jobs queue-full 429, and the distributed build coordinator's 503s — so
// retry pacing is tuned in exactly one place.
const DefaultRetryAfterSeconds = 5

// DefaultRetryAfter is DefaultRetryAfterSeconds as a duration, for APIs
// that take one (e.g. Limit).
const DefaultRetryAfter = DefaultRetryAfterSeconds * time.Second

// Middleware wraps an http.Handler with one hardening concern.
type Middleware func(http.Handler) http.Handler

// Chain composes middleware outermost-first: Chain(a, b)(h) serves
// requests through a, then b, then h.
func Chain(mws ...Middleware) Middleware {
	return func(h http.Handler) http.Handler {
		for i := len(mws) - 1; i >= 0; i-- {
			h = mws[i](h)
		}
		return h
	}
}

// HeaderRequestID is the request-ID header read from clients and set on
// every response.
const HeaderRequestID = "X-Request-Id"

type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDFrom returns the request ID injected by the RequestID
// middleware, or "" outside of it.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// RequestID propagates a well-formed incoming X-Request-Id or generates a
// fresh one, stores it in the request context, and echoes it on the
// response so every reply — including 429s and recovered panics — is
// attributable in client and server logs. The ID is also mirrored into
// the observe context, so slog records emitted through the ctx-aware
// methods (see observe.NewLogger and the AccessLog middleware) carry the
// same request_id as the response header.
//
// Inbound IDs are accepted only when they are 1–128 bytes drawn from
// [A-Za-z0-9._:-]; anything else — oversized values, control bytes,
// quote/newline injection — is replaced with a generated ID so hostile
// clients cannot pollute structured logs or downstream systems keyed by
// the header.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(HeaderRequestID)
			if !validRequestID(id) {
				var b [8]byte
				_, _ = rand.Read(b[:])
				id = hex.EncodeToString(b[:])
			}
			w.Header().Set(HeaderRequestID, id)
			ctx := context.WithValue(r.Context(), requestIDKey, id)
			ctx = observe.ContextWithRequestID(ctx, id)
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// validRequestID reports whether an inbound request ID is safe to
// propagate: bounded length, charset restricted to token-ish bytes.
func validRequestID(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// errorBody is the JSON error envelope shared by all middleware replies.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, RequestID: RequestIDFrom(r.Context())})
}

// Recover converts a handler panic into a 500 response carrying the
// request ID, logging the panic value and stack through logf (nil
// discards). The process never dies from a request-scoped panic. If the
// handler had already started writing a response, the write error is
// logged and the connection is left to the server to tear down.
func Recover(logf func(format string, args ...any)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				p := recover()
				if p == nil || p == http.ErrAbortHandler {
					if p != nil {
						panic(p) // let the server handle deliberate aborts
					}
					return
				}
				if logf != nil {
					logf("panic serving %s %s (request %s): %v\n%s",
						r.Method, r.URL.Path, RequestIDFrom(r.Context()), p, debug.Stack())
				}
				writeError(w, r, http.StatusInternalServerError, "internal server error")
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// MaxBytes caps the request body at n bytes via http.MaxBytesReader, so a
// client streaming an unbounded body is cut off at the cap instead of
// exhausting memory. n <= 0 disables the cap.
func MaxBytes(n int64) Middleware {
	return func(next http.Handler) http.Handler {
		if n <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// Limit admits at most n requests concurrently. Requests beyond the limit
// are shed immediately with 429 and a Retry-After hint rather than queued
// unboundedly — under overload, fast rejection keeps tail latency sane for
// the requests that are admitted. n <= 0 disables the limiter.
func Limit(n int, retryAfter time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if n <= 0 {
			return next
		}
		sem := make(chan struct{}, n)
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				next.ServeHTTP(w, r)
			default:
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeError(w, r, http.StatusTooManyRequests, "server overloaded, retry later")
			}
		})
	}
}

// readDeadlineSlack is how far past the request deadline the connection
// read deadline is set, so the 504 is always written before a body read
// fails and wakes the handler.
const readDeadlineSlack = 100 * time.Millisecond

// Timeout bounds each request to d: the handler runs with a deadline on
// its context, and if it has not finished when the deadline fires the
// client receives 504 while the handler's late writes are discarded. A
// panic in the handler is re-raised on the serving goroutine so an outer
// Recover middleware observes it. d <= 0 disables the timeout.
func Timeout(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if d <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			serveWithDeadline(w, r, d, next)
		})
	}
}

// serveWithDeadline runs next under a per-request deadline d: the handler
// gets a context with the deadline, and if it has not finished when the
// deadline fires the client receives 504 while the handler's late writes
// are discarded. Shared by Timeout (fixed d) and DeadlineBudget (d derived
// from the inbound deadline header).
func serveWithDeadline(w http.ResponseWriter, r *http.Request, d time.Duration, next http.Handler) {
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	// A handler blocked reading a slow-loris body holds the
	// server's request-body mutex, which the server needs before it
	// can flush our 504 — the timeout response would stall until
	// the client finished sending. Bounding the connection read
	// makes that blocked read fail shortly after the deadline
	// instead. The slack past d guarantees the deadline branch
	// below has already abandoned the handler's buffer, so the
	// client always sees the 504, not the handler's reaction to
	// its dying body read. Best-effort: not every ResponseWriter
	// supports read deadlines.
	_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(d + readDeadlineSlack))
	tw := &deadlineWriter{header: make(http.Header)}
	done := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				panicked <- p
				return
			}
			close(done)
		}()
		next.ServeHTTP(tw, r.WithContext(ctx))
	}()
	select {
	case <-done:
		tw.flushTo(w)
	case p := <-panicked:
		panic(p)
	case <-ctx.Done():
		// Once the deadline fires the 504 is authoritative, even if
		// the handler reacted to the cancellation and finished a
		// response in the same instant — preferring a completed
		// buffer here would make the status a coin flip between the
		// 504 and whatever a ctx-aware handler writes on its way
		// out.
		tw.abandon()
		writeError(w, r, http.StatusGatewayTimeout,
			fmt.Sprintf("request exceeded %s deadline", d))
	}
}

// deadlineWriter buffers a response so that a timed-out handler's late
// writes can be discarded atomically.
type deadlineWriter struct {
	mu        sync.Mutex
	header    http.Header
	status    int
	body      []byte
	abandoned bool
}

func (d *deadlineWriter) Header() http.Header { return d.header }

func (d *deadlineWriter) WriteHeader(status int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.status == 0 {
		d.status = status
	}
}

func (d *deadlineWriter) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.abandoned {
		return 0, http.ErrHandlerTimeout
	}
	if d.status == 0 {
		d.status = http.StatusOK
	}
	d.body = append(d.body, p...)
	return len(p), nil
}

// abandon marks the response as timed out: the buffered writes so far are
// discarded and any later write from the still-running handler fails with
// http.ErrHandlerTimeout.
func (d *deadlineWriter) abandon() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.abandoned = true
}

func (d *deadlineWriter) flushTo(w http.ResponseWriter) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.abandoned {
		return
	}
	h := w.Header()
	for k, vs := range d.header {
		h[k] = vs
	}
	if d.status == 0 {
		d.status = http.StatusOK
	}
	w.WriteHeader(d.status)
	_, _ = w.Write(d.body)
}
