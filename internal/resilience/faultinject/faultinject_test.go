package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSlowReaderDeliversEverythingSlowly(t *testing.T) {
	src := "hello, slow world"
	sr := &SlowReader{R: strings.NewReader(src), Delay: time.Millisecond, Chunk: 3}
	start := time.Now()
	got, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != src {
		t.Fatalf("got %q", got)
	}
	// ceil(17/3) = 6 chunks, so at least 6ms of injected delay.
	if elapsed := time.Since(start); elapsed < 6*time.Millisecond {
		t.Errorf("read finished in %s, delay not injected", elapsed)
	}
}

func TestFlakyReaderFailsAfterN(t *testing.T) {
	fr := &FlakyReader{R: strings.NewReader("0123456789"), After: 4}
	got, err := io.ReadAll(fr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "0123" {
		t.Fatalf("delivered %q before failing", got)
	}

	custom := errors.New("connection reset")
	fr = &FlakyReader{R: strings.NewReader("abc"), After: 0, Err: custom}
	if _, err := io.ReadAll(fr); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom error", err)
	}
}

func TestTruncated(t *testing.T) {
	got, err := io.ReadAll(Truncated(strings.NewReader("0123456789"), 7))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123456" {
		t.Fatalf("got %q", got)
	}
}

func TestFlipReaderFlipsExactlyOneByte(t *testing.T) {
	src := bytes.Repeat([]byte{0x00}, 64)
	fr := &FlipReader{R: bytes.NewReader(src), Offset: 41, Mask: 0x80}
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0x00)
		if i == 41 {
			want = 0x80
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestFlipReaderAcrossSmallReads(t *testing.T) {
	// The flip must land correctly even when Reads straddle the offset.
	src := bytes.Repeat([]byte{0xFF}, 16)
	fr := &FlipReader{R: iotest{r: bytes.NewReader(src), chunk: 3}, Offset: 10, Mask: 0x01}
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if got[10] != 0xFE {
		t.Fatalf("byte 10 = %#x, want 0xFE", got[10])
	}
}

// iotest caps each Read at chunk bytes.
type iotest struct {
	r     io.Reader
	chunk int
}

func (i iotest) Read(p []byte) (int, error) {
	if len(p) > i.chunk {
		p = p[:i.chunk]
	}
	return i.r.Read(p)
}

func TestPanicHandlerPanics(t *testing.T) {
	defer func() {
		if p := recover(); p != "kaboom" {
			t.Fatalf("recovered %v", p)
		}
	}()
	PanicHandler("kaboom").ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	t.Fatal("handler did not panic")
}

func TestSlowHandlerHonorsCancellation(t *testing.T) {
	h := SlowHandler(time.Hour, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("inner handler ran despite cancellation")
	}))
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SlowHandler ignored context cancellation")
	}
}
