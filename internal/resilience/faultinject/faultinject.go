// Package faultinject provides the fault-injection primitives used to
// prove the serving stack survives hostile conditions: slow-loris and
// flaky request bodies, truncated or bit-flipped model streams, and
// panicking or stalling handlers. It is a test harness, not production
// code — production packages must not import it outside of tests.
package faultinject

import (
	"errors"
	"io"
	"net/http"
	"time"
)

// ErrInjected is the default failure returned by injected faults.
var ErrInjected = errors.New("faultinject: injected failure")

// SlowReader delivers the underlying stream at most Chunk bytes per Read,
// sleeping Delay before each chunk — a cooperative slow-loris client.
type SlowReader struct {
	R     io.Reader
	Delay time.Duration
	Chunk int // bytes per read; 1 if unset
}

func (s *SlowReader) Read(p []byte) (int, error) {
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	chunk := s.Chunk
	if chunk <= 0 {
		chunk = 1
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	return s.R.Read(p)
}

// FlakyReader returns Err (ErrInjected if nil) once After bytes have been
// delivered — a connection dying mid-body or mid-model.
type FlakyReader struct {
	R     io.Reader
	After int64
	Err   error

	read int64
}

func (f *FlakyReader) Read(p []byte) (int, error) {
	if f.read >= f.After {
		if f.Err != nil {
			return 0, f.Err
		}
		return 0, ErrInjected
	}
	if rem := f.After - f.read; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := f.R.Read(p)
	f.read += int64(n)
	return n, err
}

// Truncated yields only the first n bytes of r and then a clean EOF — a
// file cut short by a partial write or copy.
func Truncated(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// FlipReader XORs Mask into the byte at Offset — a single corrupted byte
// in an otherwise intact stream.
type FlipReader struct {
	R      io.Reader
	Offset int64
	Mask   byte

	pos int64
}

func (f *FlipReader) Read(p []byte) (int, error) {
	n, err := f.R.Read(p)
	if idx := f.Offset - f.pos; idx >= 0 && idx < int64(n) {
		p[idx] ^= f.Mask
	}
	f.pos += int64(n)
	return n, err
}

// PanicHandler panics with v on every request — a detector (or any
// downstream dependency) blowing up mid-request.
func PanicHandler(v any) http.Handler {
	return http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(v)
	})
}

// SlowHandler sleeps d before delegating to next, honoring request-context
// cancellation so a timed-out request does not pin the goroutine for the
// full delay.
func SlowHandler(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
		next.ServeHTTP(w, r)
	})
}
