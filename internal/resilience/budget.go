package resilience

import (
	"sync"

	"repro/internal/observe"
)

// BudgetConfig parameterizes NewRetryBudget.
type BudgetConfig struct {
	// Name labels the budget's metrics ("registry_pull", "publish", ...).
	// Default "default".
	Name string
	// Ratio is the fraction of a token deposited per successful attempt
	// (default 0.1: one retry earned per ten successes).
	Ratio float64
	// Burst caps the token balance (default 10).
	Burst float64
	// Initial is the starting balance (default Burst), so a cold client
	// can still ride out a brief fault before earning credit.
	Initial float64
	// Metrics, when set, receives the autodetect_resilience_retry_budget_*
	// families labelled by Name.
	Metrics *observe.Registry
}

// RetryBudget is a token bucket bounding retry amplification: every retry
// spends one token, every success deposits Ratio of a token, and the
// balance never exceeds Burst. Under total failure the bucket drains and
// stays empty — total retries across all callers sharing the budget are
// bounded by the initial balance plus deposits, no matter how many hops
// keep failing. Implements retry.Budget; plug it into a retry.Policy's
// Budget field. Safe for concurrent use.
type RetryBudget struct {
	cfg BudgetConfig

	mu      sync.Mutex
	balance float64

	balanceGauge *observe.Gauge
	exhausted    *observe.Counter
	withdrawals  *observe.Counter
}

// NewRetryBudget applies defaults and registers the budget's metric
// families when a registry is configured.
func NewRetryBudget(cfg BudgetConfig) *RetryBudget {
	if cfg.Name == "" {
		cfg.Name = "default"
	}
	if cfg.Ratio <= 0 {
		cfg.Ratio = 0.1
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 10
	}
	if cfg.Initial <= 0 || cfg.Initial > cfg.Burst {
		cfg.Initial = cfg.Burst
	}
	b := &RetryBudget{cfg: cfg, balance: cfg.Initial}
	if reg := cfg.Metrics; reg != nil {
		b.balanceGauge = reg.GaugeVec("autodetect_resilience_retry_budget_balance",
			"Retry-budget token balance, by client.", "client").With(cfg.Name)
		b.balanceGauge.Set(b.balance)
		b.exhausted = reg.CounterVec("autodetect_resilience_retry_budget_exhausted_total",
			"Retries abandoned because the budget ran dry, by client.", "client").With(cfg.Name)
		b.withdrawals = reg.CounterVec("autodetect_resilience_retry_budget_withdrawals_total",
			"Retry tokens spent, by client.", "client").With(cfg.Name)
	}
	return b
}

// Withdraw spends one retry token; false means the budget is exhausted and
// the retry must not happen.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	// The epsilon forgives accumulated float error: ten 0.1-deposits sum
	// to 0.9999999999999999 and must still fund one retry.
	if b.balance < 1-1e-9 {
		if b.exhausted != nil {
			b.exhausted.Inc()
		}
		return false
	}
	b.balance--
	if b.withdrawals != nil {
		b.withdrawals.Inc()
	}
	if b.balanceGauge != nil {
		b.balanceGauge.Set(b.balance)
	}
	return true
}

// Deposit credits Ratio of a token, saturating at Burst.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.balance += b.cfg.Ratio
	if b.balance > b.cfg.Burst {
		b.balance = b.cfg.Burst
	}
	if b.balanceGauge != nil {
		b.balanceGauge.Set(b.balance)
	}
}

// Balance returns the current token balance.
func (b *RetryBudget) Balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balance
}
