package corpus

import (
	"errors"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzReadTable hammers the table loader with the artifacts that show up in
// scraped web-table corpora — invalid UTF-8, NUL bytes, mega-rows,
// mismatched quotes, BOMs, ragged rows — and asserts the ingestion
// contract: never panic, and always return either columns or a typed
// *ParseError whose offset lies inside the input.
func FuzzReadTable(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n"), true)
	f.Add([]byte("\xef\xbb\xbfa,b\n1,2\n"), true)                                // BOM
	f.Add([]byte("a,b\n1\n1,2,3\n"), false)                                      // ragged
	f.Add([]byte("\"unterminated,b\n1,2\n"), true)                               // mismatched quote
	f.Add([]byte("a,\"b\"x\n"), true)                                            // quote followed by junk
	f.Add([]byte("\xff\xfe\x00garbage\x00,b\n"), false)                          // invalid UTF-8 + NUL
	f.Add([]byte("a\x00b,c\n\x00,\x00\n"), true)                                 // NUL cells
	f.Add([]byte(strings.Repeat("x,", 2000)+"y\n"), false)                       // mega-row (wide)
	f.Add([]byte("v\n"+strings.Repeat(strings.Repeat("q", 500)+"\n", 50)), true) // mega cells
	f.Add([]byte("\r\n\r\n,\r\n"), false)
	f.Add([]byte{}, true)

	f.Fuzz(func(t *testing.T, data []byte, hasHeader bool) {
		for _, comma := range []rune{',', '\t'} {
			cols, err := ReadTable(strings.NewReader(string(data)), comma, hasHeader)
			if err != nil {
				if cols != nil {
					t.Fatalf("ReadTable returned both columns and error %v", err)
				}
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Fatalf("ReadTable error %T is not a *ParseError: %v", err, err)
				}
				if pe.Offset < 0 || pe.Offset > int64(len(data)) {
					t.Fatalf("ParseError offset %d outside input of %d bytes", pe.Offset, len(data))
				}
				if pe.Unwrap() == nil {
					t.Fatal("ParseError wraps no cause")
				}
				continue
			}
			// Success contract: rectangular columns, every cell present.
			rows := -1
			for _, c := range cols {
				if c == nil {
					t.Fatal("nil column in result")
				}
				if rows == -1 {
					rows = len(c.Values)
				} else if len(c.Values) != rows {
					t.Fatalf("ragged result: column has %d values, first had %d", len(c.Values), rows)
				}
			}
			_ = utf8.Valid(data) // loader accepts non-UTF-8 data; it is data, not structure
		}
	})
}
