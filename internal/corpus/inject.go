package corpus

import (
	"math/rand"
	"strings"

	"repro/internal/pattern"
)

// placeholders are junk values commonly left in real tables (the "score
// placeholder" of Figure 1(d) and friends).
var placeholders = []string{"-", "--", "N/A", "n/a", "?", "TBD", "NULL"}

// InjectError corrupts one value of the column with a realistic
// single-column error of the kinds surfaced by the paper (Figures 1 and 2):
// a format swapped with a sibling of the domain's incompatibility family
// (mixed dates, mixed phones, mixed units...), an extra dot or space,
// doubled separators, placeholders, or merged cells. The corrupted index is
// appended to Dirty. It returns the name of the corruption applied, or ""
// if the column was too small to corrupt.
func InjectError(r *rand.Rand, col *Column) string {
	if len(col.Values) < 3 {
		return ""
	}
	i := r.Intn(len(col.Values))
	orig := col.Values[i]
	crude := pattern.Crude()
	origPat := crude.Generalize(orig)

	// Prefer a format swap when the domain has incompatible siblings.
	if sibs := Siblings(col.Domain); len(sibs) > 0 && r.Intn(10) < 6 {
		for attempt := 0; attempt < 4; attempt++ {
			sib := sibs[r.Intn(len(sibs))]
			alt, err := GenerateColumn(r, sib, 1)
			if err == nil && crude.Generalize(alt.Values[0]) != origPat {
				col.Values[i] = alt.Values[0]
				col.Dirty = append(col.Dirty, i)
				return "format-swap:" + sib
			}
		}
	}

	type corruption struct {
		name  string
		apply func(v string) (string, bool)
	}
	other := col.Values[(i+1)%len(col.Values)]
	cands := []corruption{
		{"extra-dot", func(v string) (string, bool) { return v + ".", true }},
		{"leading-space", func(v string) (string, bool) { return " " + v, true }},
		{"trailing-space", func(v string) (string, bool) { return v + " ", true }},
		{"double-symbol", func(v string) (string, bool) {
			for j, c := range v {
				if pattern.Categorize(c) == pattern.CatSymbol {
					return v[:j+len(string(c))] + string(c) + v[j+len(string(c)):], true
				}
			}
			return "", false
		}},
		{"placeholder", func(v string) (string, bool) {
			return placeholders[r.Intn(len(placeholders))], true
		}},
		{"merged-cells", func(v string) (string, bool) { return v + " " + other, true }},
		{"truncated", func(v string) (string, bool) {
			rs := []rune(v)
			if len(rs) < 3 {
				return "", false
			}
			return string(rs[:len(rs)/2]) + ".", true
		}},
		{"internal-double-space", func(v string) (string, bool) {
			j := strings.Index(v, " ")
			if j < 0 {
				return "", false
			}
			return v[:j] + "  " + v[j+1:], true
		}},
	}
	// Try corruptions in random order until one changes the crude pattern
	// (a corruption invisible at the crude level is not a usable label).
	r.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
	for _, c := range cands {
		nv, ok := c.apply(orig)
		if !ok || nv == orig {
			continue
		}
		if crude.Generalize(nv) == origPat {
			continue
		}
		col.Values[i] = nv
		col.Dirty = append(col.Dirty, i)
		return c.name
	}
	return ""
}
