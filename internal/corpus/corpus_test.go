package corpus

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
)

func TestCommaInt(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{0, "0"}, {7, "7"}, {999, "999"}, {1000, "1,000"},
		{1234567, "1,234,567"}, {-4200, "-4,200"}, {100000, "100,000"},
	}
	for _, c := range cases {
		if got := commaInt(c.in); got != c.want {
			t.Errorf("commaInt(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestOrdinal(t *testing.T) {
	cases := map[int]string{1: "1st", 2: "2nd", 3: "3rd", 4: "4th", 11: "11th", 12: "12th", 13: "13th", 21: "21st", 22: "22nd", 33: "33rd", 99: "99th"}
	for in, want := range cases {
		if got := ordinal(in); got != want {
			t.Errorf("ordinal(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestEveryDomainGenerates(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range Domains() {
		col, err := GenerateColumn(r, d, 20)
		if err != nil {
			t.Fatalf("domain %s: %v", d, err)
		}
		if len(col.Values) != 20 {
			t.Fatalf("domain %s: %d values", d, len(col.Values))
		}
		for _, v := range col.Values {
			if v == "" {
				t.Errorf("domain %s produced an empty value", d)
			}
			if strings.TrimSpace(v) != v {
				t.Errorf("domain %s produced untrimmed value %q", d, v)
			}
		}
	}
	if _, err := GenerateColumn(r, "no_such_domain", 5); err == nil {
		t.Error("unknown domain should error")
	}
}

// Clean single-format family columns must be internally pattern-consistent
// under the crude generalization: that is the invariant the corpus
// generator exists to provide.
func TestFamilyDomainsAreFormatConsistent(t *testing.T) {
	crude := pattern.Crude()
	r := rand.New(rand.NewSource(2))
	for _, d := range Domains() {
		if Family(d) == "" {
			continue
		}
		for trial := 0; trial < 5; trial++ {
			col, err := GenerateColumn(r, d, 30)
			if err != nil {
				t.Fatal(err)
			}
			pats := map[string]bool{}
			for _, v := range col.Values {
				pats[crude.Generalize(v)] = true
			}
			// Allow per-column variation from varying run lengths (1- vs
			// 2-digit days, month-name lengths, path depths/word lengths)
			// but never an unbounded format explosion.
			if len(pats) > 40 {
				t.Errorf("domain %s: %d distinct crude patterns in one clean column", d, len(pats))
			}
		}
	}
}

func TestSiblingsAndFamilies(t *testing.T) {
	if Family("date_iso") != "date" {
		t.Errorf("Family(date_iso) = %q", Family("date_iso"))
	}
	if Family("word") != "" {
		t.Error("word should have no family")
	}
	sibs := Siblings("date_iso")
	if len(sibs) < 5 {
		t.Errorf("date_iso siblings = %v", sibs)
	}
	for _, s := range sibs {
		if s == "date_iso" {
			t.Error("Siblings must exclude the domain itself")
		}
		if Family(s) != "date" {
			t.Errorf("sibling %s not in date family", s)
		}
	}
	if Siblings("word") != nil {
		t.Error("word should have no siblings")
	}
	if Family("nope") != "" || Siblings("nope") != nil {
		t.Error("unknown domain should have no family")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(WikiProfile(), 50, 99)
	b := Generate(WikiProfile(), 50, 99)
	if len(a.Columns) != len(b.Columns) {
		t.Fatal("length mismatch")
	}
	for i := range a.Columns {
		if a.Columns[i].Domain != b.Columns[i].Domain {
			t.Fatal("domain sequence differs between identical seeds")
		}
		if strings.Join(a.Columns[i].Values, "\x00") != strings.Join(b.Columns[i].Values, "\x00") {
			t.Fatal("values differ between identical seeds")
		}
	}
	c := Generate(WikiProfile(), 50, 100)
	same := true
	for i := range a.Columns {
		if strings.Join(a.Columns[i].Values, "\x00") != strings.Join(c.Columns[i].Values, "\x00") {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different corpora")
	}
}

func TestGenerateRespectsProfile(t *testing.T) {
	p := WikiProfile()
	c := Generate(p, 2000, 7)
	if c.NumColumns() != 2000 {
		t.Fatalf("NumColumns = %d", c.NumColumns())
	}
	dirtyRate := float64(c.DirtyColumns()) / float64(c.NumColumns())
	if dirtyRate < 0.005 || dirtyRate > 0.06 {
		t.Errorf("dirty rate %.3f outside the configured ~2.2%%", dirtyRate)
	}
	for _, col := range c.Columns {
		if col.Dirty == nil {
			t.Fatal("labeled profile must mark every column")
		}
		if len(col.Values) < p.MinRows || len(col.Values) > p.MaxRows {
			t.Fatalf("column length %d outside [%d,%d]", len(col.Values), p.MinRows, p.MaxRows)
		}
	}
	clean := Generate(WebProfile(), 500, 8)
	for _, col := range clean.Columns {
		if col.Dirty != nil {
			t.Fatal("unlabeled profile must not mark columns")
		}
	}
}

func TestProfileWeightsShiftDomainMix(t *testing.T) {
	wiki := Generate(WikiProfile(), 3000, 5)
	ent := Generate(EntXLSProfile(), 3000, 5)
	count := func(c *Corpus, domain string) int {
		n := 0
		for _, col := range c.Columns {
			if col.Domain == domain {
				n++
			}
		}
		return n
	}
	if count(wiki, "year") <= count(ent, "year") {
		t.Error("WIKI should generate more year columns than Ent-XLS")
	}
	if count(ent, "currency_usd") <= count(wiki, "currency_usd") {
		t.Error("Ent-XLS should generate more currency columns than WIKI")
	}
}

func TestInjectErrorProducesDetectableLabel(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	crude := pattern.Crude()
	injected := 0
	for trial := 0; trial < 300; trial++ {
		d := Domains()[r.Intn(len(Domains()))]
		col, err := GenerateColumn(r, d, 10)
		if err != nil {
			t.Fatal(err)
		}
		col.Dirty = []int{}
		kind := InjectError(r, col)
		if kind == "" {
			continue
		}
		injected++
		if len(col.Dirty) != 1 {
			t.Fatalf("Dirty = %v after injection", col.Dirty)
		}
		i := col.Dirty[0]
		if !col.IsDirty(i) || col.IsDirty((i+1)%len(col.Values)) {
			t.Fatal("IsDirty disagrees with Dirty")
		}
		// The injected value must differ in crude pattern from at least one
		// clean value (otherwise it is unlabeled noise).
		dirtyPat := crude.Generalize(col.Values[i])
		differs := false
		for j, v := range col.Values {
			if j != i && crude.Generalize(v) != dirtyPat {
				differs = true
				break
			}
		}
		if !differs {
			t.Errorf("domain %s corruption %s: injected value %q pattern-identical to whole column",
				d, kind, col.Values[i])
		}
	}
	if injected < 250 {
		t.Errorf("only %d/300 injections succeeded", injected)
	}
}

func TestCSVSuite(t *testing.T) {
	s := CSVSuite()
	if s.NumColumns() != 441 {
		t.Fatalf("CSV suite has %d columns, want 441", s.NumColumns())
	}
	dirty := s.DirtyColumns()
	if dirty < 100 {
		t.Errorf("CSV suite only has %d dirty columns", dirty)
	}
	for _, col := range s.Columns {
		if col.Dirty == nil {
			t.Fatalf("column %s is unlabeled", col.Name)
		}
	}
	// Hand-authored archetypes are present and labeled.
	if s.Columns[0].Name != "fig1a-extra-dot" || len(s.Columns[0].Dirty) != 1 {
		t.Error("hand-authored archetypes missing")
	}
}

func TestReadWriteCSVRoundTrip(t *testing.T) {
	cols := []*Column{
		{Name: "a", Values: []string{"1", "2", "3"}},
		{Name: "b", Values: []string{"x", "y"}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, cols); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "a" || back[1].Name != "b" {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if len(back[0].Values) != 3 || back[0].Values[2] != "3" {
		t.Errorf("column a = %v", back[0].Values)
	}
	// Padding cells come back as empty strings.
	if len(back[1].Values) != 3 || back[1].Values[2] != "" {
		t.Errorf("column b = %v", back[1].Values)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	cols, err := ReadCSV(strings.NewReader("1,2\n3,4\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0].Name != "col0" || len(cols[0].Values) != 2 {
		t.Fatalf("cols = %+v", cols)
	}
	empty, err := ReadCSV(strings.NewReader(""), true)
	if err != nil || empty != nil {
		t.Errorf("empty input: %v %v", empty, err)
	}
}

func TestDistinctValues(t *testing.T) {
	c := &Column{Values: []string{"a", "b", "a", "c", "b"}}
	got := c.DistinctValues()
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("DistinctValues = %v", got)
	}
}

func TestDomainHistogram(t *testing.T) {
	c := Generate(WebProfile(), 300, 3)
	h := c.DomainHistogram()
	if len(h) == 0 {
		t.Fatal("empty histogram")
	}
	total := 0
	for i, e := range h {
		total += e.Count
		if i > 0 && e.Count > h[i-1].Count {
			t.Fatal("histogram not sorted")
		}
	}
	if total != 300 {
		t.Errorf("histogram total = %d", total)
	}
}

// Property: sampleCumulative always returns a valid index and respects zero
// ranges.
func TestSampleCumulative(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		k := int(n%20) + 1
		cum := make([]float64, k)
		total := 0.0
		r := rand.New(rand.NewSource(seed))
		for i := range cum {
			total += r.Float64() + 0.01
			cum[i] = total
		}
		idx := sampleCumulative(r, cum)
		return idx >= 0 && idx < k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateWikiColumn(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateColumn(r, "date_iso", 20); err != nil {
			b.Fatal(err)
		}
	}
}
