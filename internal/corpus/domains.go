package corpus

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Generator produces the n cell values of one column. A generator commits
// to any per-column format choice (e.g. which date format) once, at the top
// of the call, so a clean column never mixes incompatible formats.
type Generator func(r *rand.Rand, n int) []string

// domainSpec describes one value domain of the synthetic corpus.
type domainSpec struct {
	name string
	// family groups mutually-incompatible format variants (different date
	// formats, phone formats, units, ...). Mixing values across sibling
	// domains of a family is a genuine data error; empty means no family.
	family string
	gen    Generator
}

var (
	monthsLong  = []string{"January", "February", "March", "April", "May", "June", "July", "August", "September", "October", "November", "December"}
	monthsShort = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	firstNames  = []string{"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah", "Wei", "Yuki", "Priya", "Omar", "Elena", "Lucas", "Ana", "Noah", "Zoe", "Liam", "Emma", "Mateo"}
	lastNames   = []string{"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Chen", "Wang", "Kim", "Singh", "Patel", "Nguyen", "Kumar", "Ali", "Silva", "Santos", "Mueller", "Rossi"}
	cityNames   = []string{"Seattle", "Houston", "Chicago", "Boston", "Denver", "Austin", "Portland", "Atlanta", "Phoenix", "Dallas", "Miami", "Detroit", "Memphis", "Nashville", "Baltimore", "Oakland", "Tucson", "Fresno", "Omaha", "Raleigh", "London", "Paris", "Berlin", "Madrid", "Tokyo", "Sydney", "Toronto", "Dublin", "Oslo", "Vienna"}
	wordPool    = []string{"alpha", "bravo", "cargo", "delta", "ember", "falcon", "garden", "harbor", "indigo", "jasper", "kernel", "lumen", "meadow", "nectar", "onyx", "prairie", "quartz", "raven", "sierra", "tundra", "umber", "velvet", "willow", "xenon", "yonder", "zephyr", "anchor", "breeze", "canyon", "drift", "echo", "flint", "grove", "haven", "isle", "juniper", "knoll", "ledge", "marsh", "north"}
	tlds        = []string{"com", "org", "net", "io", "edu", "gov", "co"}
	teamNames   = []string{"Hawks", "Lions", "Bears", "Eagles", "Sharks", "Wolves", "Tigers", "Bulls", "Kings", "Giants", "Royals", "Pirates", "Rangers", "Saints", "Chiefs", "Jets"}
	stateNames  = []string{"Washington", "Oregon", "California", "Nevada", "Arizona", "Texas", "Florida", "Georgia", "Virginia", "Ohio", "Michigan", "Illinois", "Indiana", "Colorado", "Utah", "Montana", "Idaho", "Kansas", "Iowa", "Missouri", "Kentucky", "Tennessee", "Alabama", "Maine", "Vermont", "Delaware", "Maryland", "Wyoming", "Nebraska", "Alaska"}
)

func ri(r *rand.Rand, lo, hi int) int { return lo + r.Intn(hi-lo+1) }

// logUniform draws an integer with a log-uniform magnitude: digit count
// uniform in [loDigits, hiDigits], then uniform within that decade. Real
// table numbers are magnitude-diverse, not uniform — a uniform draw over
// [0, 5e6] would make 4-digit values vanishingly rare and starve the
// co-occurrence statistics of small comma-separated numbers.
func logUniform(r *rand.Rand, loDigits, hiDigits int) int {
	d := ri(r, loDigits, hiDigits)
	lo := 1
	for i := 1; i < d; i++ {
		lo *= 10
	}
	hi := lo*10 - 1
	if lo == 1 {
		lo = 0
	}
	return ri(r, lo, hi)
}

func pick(r *rand.Rand, xs []string) string { return xs[r.Intn(len(xs))] }

// commaInt renders v with thousands separators ("1,234,567").
func commaInt(v int) string {
	s := strconv.Itoa(v)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead == 0 {
		lead = 3
	}
	b.WriteString(s[:lead])
	for i := lead; i < len(s); i += 3 {
		b.WriteByte(',')
		b.WriteString(s[i : i+3])
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// fill builds n values by calling f per row.
func fill(n int, f func(i int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func genDate(layout func(y, m, d int) string) Generator {
	return func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return layout(ri(r, 1950, 2025), ri(r, 1, 12), ri(r, 1, 28))
		})
	}
}

// domainTable lists every value domain of the synthetic corpus. The mixed
// numeric domains deliberately combine formats that the paper observes to
// be globally compatible (plain integers, comma-separated integers,
// floating-point numbers: the Col-1/Col-2 discussion in the introduction),
// while format families capture globally incompatible variants.
var domainTable = []domainSpec{
	{"int_small", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return strconv.Itoa(logUniform(r, 1, 3)) })
	}},
	{"int_plain", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return strconv.Itoa(logUniform(r, 1, 5)) })
	}},
	{"int_comma_mixed", "", func(r *rand.Rand, n int) []string {
		// Col-1 of the paper: {0 .. 999, 1,000}: separators appear only
		// for magnitudes ≥ 1000 and freely co-occur with plain integers.
		return fill(n, func(int) string {
			if r.Intn(2) == 0 {
				return strconv.Itoa(logUniform(r, 1, 3))
			}
			return commaInt(logUniform(r, 4, 7))
		})
	}},
	{"float2", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%d.%02d", logUniform(r, 1, 4), r.Intn(100))
		})
	}},
	{"num_mixed", "", func(r *rand.Rand, n int) []string {
		// Col-2 of the paper: mostly integers with occasional floats.
		return fill(n, func(int) string {
			if r.Intn(5) == 0 {
				return fmt.Sprintf("%.2f", r.Float64()*100)
			}
			return strconv.Itoa(r.Intn(100))
		})
	}},
	{"currency_usd", "currency", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return "$" + commaInt(logUniform(r, 1, 7)) + fmt.Sprintf(".%02d", r.Intn(100))
		})
	}},
	{"currency_code", "currency", func(r *rand.Rand, n int) []string {
		code := pick(r, []string{"USD", "EUR", "GBP"})
		return fill(n, func(int) string {
			return commaInt(logUniform(r, 1, 7)) + fmt.Sprintf(".%02d ", r.Intn(100)) + code
		})
	}},
	{"percent", "", func(r *rand.Rand, n int) []string {
		// Whole and one-decimal percentages mix freely in real columns,
		// like integers and floats do (the Col-2 discussion).
		return fill(n, func(int) string {
			if r.Intn(3) == 0 {
				return fmt.Sprintf("%.1f%%", r.Float64()*100)
			}
			return strconv.Itoa(r.Intn(101)) + "%"
		})
	}},
	{"year", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return strconv.Itoa(ri(r, 1900, 2026)) })
	}},
	{"year_range", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			y := ri(r, 1950, 2020)
			return fmt.Sprintf("%d-%d", y, y+ri(r, 1, 6))
		})
	}},

	{"date_iso", "date", genDate(func(y, m, d int) string { return fmt.Sprintf("%04d-%02d-%02d", y, m, d) })},
	{"date_slash", "date", genDate(func(y, m, d int) string { return fmt.Sprintf("%04d/%02d/%02d", y, m, d) })},
	{"date_dot", "date", genDate(func(y, m, d int) string { return fmt.Sprintf("%04d.%02d.%02d", y, m, d) })},
	{"date_us", "date", genDate(func(y, m, d int) string { return fmt.Sprintf("%02d/%02d/%04d", m, d, y) })},
	{"date_eu", "date", genDate(func(y, m, d int) string { return fmt.Sprintf("%02d-%02d-%04d", d, m, y) })},
	{"date_long", "date", genDate(func(y, m, d int) string { return fmt.Sprintf("%s %d, %d", monthsLong[m-1], d, y) })},
	{"date_med", "date", genDate(func(y, m, d int) string { return fmt.Sprintf("%d %s %d", d, monthsShort[m-1], y) })},
	{"month_year", "date", func(r *rand.Rand, n int) []string {
		long := r.Intn(2) == 0
		return fill(n, func(int) string {
			m := r.Intn(12)
			if long {
				return fmt.Sprintf("%s %d", monthsLong[m], ri(r, 1950, 2025))
			}
			return fmt.Sprintf("%s %d", monthsShort[m], ri(r, 1950, 2025))
		})
	}},

	{"time_hm", "clock", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%d:%02d", r.Intn(24), r.Intn(60)) })
	}},
	{"time_hms", "clock", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%d:%02d:%02d", r.Intn(24), r.Intn(60), r.Intn(60))
		})
	}},
	{"song_length", "clock", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%d:%02d", ri(r, 1, 9), r.Intn(60)) })
	}},
	{"duration", "", func(r *rand.Rand, n int) []string {
		minutes := r.Intn(2) == 0
		return fill(n, func(int) string {
			if minutes {
				return fmt.Sprintf("%d min", ri(r, 1, 300))
			}
			return fmt.Sprintf("%dh %dm", ri(r, 0, 12), r.Intn(60))
		})
	}},

	{"phone_paren", "phone", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("(%03d) %03d-%04d", ri(r, 200, 989), ri(r, 200, 999), r.Intn(10000))
		})
	}},
	{"phone_dash", "phone", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%03d-%03d-%04d", ri(r, 200, 989), ri(r, 200, 999), r.Intn(10000))
		})
	}},
	{"phone_dot", "phone", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%03d.%03d.%04d", ri(r, 200, 989), ri(r, 200, 999), r.Intn(10000))
		})
	}},
	{"phone_intl", "phone", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("+1 %03d %03d %04d", ri(r, 200, 989), ri(r, 200, 999), r.Intn(10000))
		})
	}},

	{"email", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%s%d@%s.%s", pick(r, wordPool), r.Intn(100), pick(r, wordPool), pick(r, tlds))
		})
	}},
	{"url", "", func(r *rand.Rand, n int) []string {
		scheme := pick(r, []string{"http", "https"})
		return fill(n, func(int) string {
			return fmt.Sprintf("%s://www.%s.%s/%s", scheme, pick(r, wordPool), pick(r, tlds), pick(r, wordPool))
		})
	}},
	{"ipv4", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%d.%d.%d.%d", ri(r, 1, 255), r.Intn(256), r.Intn(256), ri(r, 1, 255))
		})
	}},

	{"zip5", "zip", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%05d", r.Intn(100000)) })
	}},
	{"zip9", "zip", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%05d-%04d", r.Intn(100000), r.Intn(10000))
		})
	}},

	{"code", "", func(r *rand.Rand, n int) []string {
		letters := ri(r, 2, 3)
		digits := ri(r, 3, 4)
		return fill(n, func(int) string {
			var b strings.Builder
			for i := 0; i < letters; i++ {
				b.WriteByte(byte('A' + r.Intn(26)))
			}
			b.WriteByte('-')
			for i := 0; i < digits; i++ {
				b.WriteByte(byte('0' + r.Intn(10)))
			}
			return b.String()
		})
	}},
	{"sku", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			var b strings.Builder
			for i := 0; i < 3; i++ {
				b.WriteByte(byte('A' + r.Intn(26)))
			}
			for i := 0; i < 4; i++ {
				b.WriteByte(byte('0' + r.Intn(10)))
			}
			return b.String()
		})
	}},
	{"isbn", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("978-%d-%02d-%06d-%d", r.Intn(10), r.Intn(100), r.Intn(1000000), r.Intn(10))
		})
	}},
	{"id_prefixed", "", func(r *rand.Rand, n int) []string {
		prefix := pick(r, []string{"ID", "REQ", "INV", "PO"})
		return fill(n, func(int) string { return fmt.Sprintf("%s-%05d", prefix, r.Intn(100000)) })
	}},
	{"uuid8", "", func(r *rand.Rand, n int) []string {
		const hex = "0123456789abcdef"
		return fill(n, func(int) string {
			var b [8]byte
			for i := range b {
				b[i] = hex[r.Intn(16)]
			}
			return string(b[:])
		})
	}},
	{"hex_color", "", func(r *rand.Rand, n int) []string {
		const hex = "0123456789ABCDEF"
		return fill(n, func(int) string {
			var b [7]byte
			b[0] = '#'
			for i := 1; i < 7; i++ {
				b[i] = hex[r.Intn(16)]
			}
			return string(b[:])
		})
	}},

	{"score", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%d-%d", r.Intn(15), r.Intn(15)) })
	}},
	{"record", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%d-%d-%d", r.Intn(90), r.Intn(90), r.Intn(10)) })
	}},
	{"rank", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return ordinal(ri(r, 1, 99)) })
	}},
	{"ordinal_hash", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return "#" + strconv.Itoa(ri(r, 1, 99)) })
	}},

	{"person_name", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return pick(r, firstNames) + " " + pick(r, lastNames) })
	}},
	{"city", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return pick(r, cityNames) })
	}},
	{"us_state", "", func(r *rand.Rand, n int) []string {
		// Full US state names. Pattern-wise indistinguishable from city
		// names: mixing the two is a *semantic* error that only value-level
		// co-occurrence (package semantic) can catch.
		return fill(n, func(int) string { return pick(r, stateNames) })
	}},
	{"team", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return pick(r, cityNames) + " " + pick(r, teamNames) })
	}},
	{"word", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return pick(r, wordPool) })
	}},
	{"address", "", func(r *rand.Rand, n int) []string {
		// Street addresses: digits and words mixed, highly length-diverse —
		// a staple of real tables that couples numeric and textual runs.
		suffixes := []string{"St", "Ave", "Rd", "Blvd", "Lane", "Way", "Drive"}
		return fill(n, func(int) string {
			w := pick(r, wordPool)
			name := strings.ToUpper(w[:1]) + w[1:]
			if r.Intn(3) == 0 {
				w2 := pick(r, wordPool)
				name += " " + strings.ToUpper(w2[:1]) + w2[1:]
			}
			return fmt.Sprintf("%d %s %s", logUniform(r, 1, 4), name, pick(r, suffixes))
		})
	}},
	{"product", "", func(r *rand.Rand, n int) []string {
		// Product/model names: capitalized word plus a number ("Falcon 9").
		return fill(n, func(int) string {
			w := pick(r, wordPool)
			name := strings.ToUpper(w[:1]) + w[1:]
			switch r.Intn(3) {
			case 0:
				return fmt.Sprintf("%s %d", name, logUniform(r, 1, 3))
			case 1:
				return fmt.Sprintf("%s %s %d", name, pick(r, []string{"Pro", "Max", "Mini", "Plus"}), logUniform(r, 1, 2))
			default:
				return name
			}
		})
	}},
	{"freetext", "", func(r *rand.Rand, n int) []string {
		// Free-text cells (descriptions, comments): highly length-diverse
		// within one column, like the text columns that dominate real web
		// tables. This teaches heavily-generalizing languages that values
		// of very different lengths routinely co-occur.
		return fill(n, func(int) string {
			k := ri(r, 1, 7)
			parts := make([]string, k)
			for i := range parts {
				parts[i] = pick(r, wordPool)
			}
			s := strings.Join(parts, " ")
			if r.Intn(2) == 0 {
				s = strings.ToUpper(s[:1]) + s[1:]
			}
			return s
		})
	}},
	{"title", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			k := ri(r, 2, 4)
			parts := make([]string, k)
			for i := range parts {
				w := pick(r, wordPool)
				parts[i] = strings.ToUpper(w[:1]) + w[1:]
			}
			return strings.Join(parts, " ")
		})
	}},

	{"bool_yn", "bool", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return pick(r, []string{"Yes", "No"}) })
	}},
	{"bool_tf", "bool", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return pick(r, []string{"TRUE", "FALSE"}) })
	}},

	{"measure_kg", "measure", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%d kg", ri(r, 40, 140)) })
	}},
	{"measure_lb", "measure", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%d lbs", ri(r, 90, 310)) })
	}},
	{"temp_c", "temp", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%.1f C", r.Float64()*40-5) }) // -5.0 .. 35.0
	}},
	{"temp_f", "temp", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%.1f F", r.Float64()*80+20) })
	}},

	{"filesize", "", func(r *rand.Rand, n int) []string {
		// Mixed units within a column are the norm for file sizes.
		units := []string{"KB", "MB", "GB"}
		return fill(n, func(int) string {
			return fmt.Sprintf("%.1f %s", r.Float64()*900+1, pick(r, units))
		})
	}},
	{"version_v", "version", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("v%d.%d.%d", r.Intn(10), r.Intn(20), r.Intn(30))
		})
	}},
	{"version_plain", "version", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%d.%d.%d", r.Intn(10), r.Intn(20), r.Intn(30))
		})
	}},
	{"fraction", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string { return fmt.Sprintf("%d/%d", ri(r, 1, 15), ri(r, 2, 16)) })
	}},
	{"roman", "", func(r *rand.Rand, n int) []string {
		numerals := []string{"I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI", "XII", "XIV", "XVI", "XX"}
		return fill(n, func(int) string { return pick(r, numerals) })
	}},
	{"country_iso2", "country", func(r *rand.Rand, n int) []string {
		codes := []string{"US", "DE", "FR", "GB", "JP", "CN", "IN", "BR", "CA", "AU", "IT", "ES", "NL", "SE", "NO", "MX", "KR", "PL", "CH", "AT"}
		return fill(n, func(int) string { return pick(r, codes) })
	}},
	{"country_iso3", "country", func(r *rand.Rand, n int) []string {
		codes := []string{"USA", "DEU", "FRA", "GBR", "JPN", "CHN", "IND", "BRA", "CAN", "AUS", "ITA", "ESP", "NLD", "SWE", "NOR", "MEX", "KOR", "POL", "CHE", "AUT"}
		return fill(n, func(int) string { return pick(r, codes) })
	}},
	{"grade", "", func(r *rand.Rand, n int) []string {
		letters := []string{"A", "B", "C", "D"}
		return fill(n, func(int) string {
			g := pick(r, letters)
			switch r.Intn(3) {
			case 0:
				return g + "+"
			case 1:
				return g + "-"
			default:
				return g
			}
		})
	}},
	{"path_unix", "path", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			k := ri(r, 2, 4)
			s := ""
			for i := 0; i < k; i++ {
				s += "/" + pick(r, wordPool)
			}
			return s
		})
	}},
	{"path_windows", "path", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			k := ri(r, 2, 4)
			s := "C:"
			for i := 0; i < k; i++ {
				s += `\` + pick(r, wordPool)
			}
			return s
		})
	}},
	{"datetime_space", "datetime", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%04d-%02d-%02d %02d:%02d", ri(r, 1990, 2025), ri(r, 1, 12), ri(r, 1, 28), r.Intn(24), r.Intn(60))
		})
	}},
	{"datetime_t", "datetime", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%04d-%02d-%02dT%02d:%02d", ri(r, 1990, 2025), ri(r, 1, 12), ri(r, 1, 28), r.Intn(24), r.Intn(60))
		})
	}},
	{"money_compact", "", func(r *rand.Rand, n int) []string {
		// "$1.2M" / "$340K" mix freely in real financial tables.
		return fill(n, func(int) string {
			if r.Intn(2) == 0 {
				return fmt.Sprintf("$%dK", ri(r, 10, 999))
			}
			return fmt.Sprintf("$%.1fM", r.Float64()*99+0.1)
		})
	}},
	{"age_range", "", func(r *rand.Rand, n int) []string {
		lo := []int{18, 25, 35, 45, 55, 65}
		return fill(n, func(int) string {
			a := lo[r.Intn(len(lo))]
			return fmt.Sprintf("%d-%d", a, a+9)
		})
	}},
	{"paren_num", "", func(r *rand.Rand, n int) []string {
		// Accounting convention: negatives in parentheses, mixed with plain.
		return fill(n, func(int) string {
			v := commaInt(logUniform(r, 1, 6))
			if r.Intn(5) == 0 {
				return "(" + v + ")"
			}
			return v
		})
	}},
	{"coord", "", func(r *rand.Rand, n int) []string {
		return fill(n, func(int) string {
			return fmt.Sprintf("%.2f, %.2f", r.Float64()*180-90, r.Float64()*360-180)
		})
	}},
}

func ordinal(v int) string {
	suffix := "th"
	switch {
	case v%100 >= 11 && v%100 <= 13:
	case v%10 == 1:
		suffix = "st"
	case v%10 == 2:
		suffix = "nd"
	case v%10 == 3:
		suffix = "rd"
	}
	return strconv.Itoa(v) + suffix
}

var (
	domainIndex = func() map[string]int {
		m := make(map[string]int, len(domainTable))
		for i, d := range domainTable {
			m[d.name] = i
		}
		return m
	}()
	familyMembers = func() map[string][]string {
		m := map[string][]string{}
		for _, d := range domainTable {
			if d.family != "" {
				m[d.family] = append(m[d.family], d.name)
			}
		}
		return m
	}()
)

// Domains returns the names of every value domain.
func Domains() []string {
	out := make([]string, len(domainTable))
	for i, d := range domainTable {
		out[i] = d.name
	}
	return out
}

// Family returns the incompatibility family of a domain ("" if none).
func Family(domain string) string {
	if i, ok := domainIndex[domain]; ok {
		return domainTable[i].family
	}
	return ""
}

// Siblings returns the other domains in the domain's incompatibility
// family, or nil if the domain has no family.
func Siblings(domain string) []string {
	fam := Family(domain)
	if fam == "" {
		return nil
	}
	var out []string
	for _, m := range familyMembers[fam] {
		if m != domain {
			out = append(out, m)
		}
	}
	return out
}

// GenerateColumn generates one clean column of n values from the named
// domain. It returns an error for unknown domains.
func GenerateColumn(r *rand.Rand, domain string, n int) (*Column, error) {
	i, ok := domainIndex[domain]
	if !ok {
		return nil, fmt.Errorf("corpus: unknown domain %q", domain)
	}
	return &Column{
		Name:   domain,
		Domain: domain,
		Values: domainTable[i].gen(r, n),
	}, nil
}
