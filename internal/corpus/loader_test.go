package corpus

import (
	"strings"
	"testing"
)

func TestReadCSVStripsBOM(t *testing.T) {
	in := "\xEF\xBB\xBFyear,name\n1999,alice\n2001,bob\n"
	cols, err := ReadCSV(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("got %d columns", len(cols))
	}
	if cols[0].Name != "year" {
		t.Fatalf("BOM leaked into header: %q", cols[0].Name)
	}
	if cols[0].Values[0] != "1999" {
		t.Fatalf("values skewed: %v", cols[0].Values)
	}
}

func TestReadCSVBOMWithoutHeader(t *testing.T) {
	cols, err := ReadCSV(strings.NewReader("\xEF\xBB\xBF1,2\n3,4\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].Values[0] != "1" {
		t.Fatalf("BOM leaked into first value: %q", cols[0].Values[0])
	}
}

func TestReadCSVPadsRaggedRows(t *testing.T) {
	// Row 2 is short: without padding, column c's values would shift up and
	// its per-row alignment (and value count) would silently skew.
	in := "a,b,c\n1,x,p\n2,y\n3,z,q\n"
	cols, err := ReadCSV(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("got %d columns", len(cols))
	}
	for i, col := range cols {
		if len(col.Values) != 3 {
			t.Fatalf("column %d has %d values, want 3 (row alignment lost)", i, len(col.Values))
		}
	}
	if cols[2].Values[1] != "" || cols[2].Values[2] != "q" {
		t.Fatalf("column c misaligned: %v", cols[2].Values)
	}
}

func TestReadCSVDropsTrailingEmptyColumns(t *testing.T) {
	// A trailing comma on every row mints a phantom empty last column.
	in := "a,b,\n1,x,\n2,y,\n"
	cols, err := ReadCSV(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("phantom trailing column survived: %d columns", len(cols))
	}

	// Without a header the phantom column is dropped too.
	cols, err = ReadCSV(strings.NewReader("1,x,\n2,y,\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("no-header phantom column survived: %d columns", len(cols))
	}

	// A named trailing column with empty cells is real data and must stay.
	cols, err = ReadCSV(strings.NewReader("a,b,notes\n1,x,\n2,y,\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 || cols[2].Name != "notes" {
		t.Fatalf("named empty column dropped: %+v", cols)
	}
}

func TestStreamMatchesGenerate(t *testing.T) {
	p := WikiProfile()
	const n = 200
	want := Generate(p, n, 77)
	s := NewStream(p, 77)
	for i := 0; i < n; i++ {
		got := s.Next()
		w := want.Columns[i]
		if got.Name != w.Name || got.Domain != w.Domain {
			t.Fatalf("column %d: stream (%s,%s) != generate (%s,%s)", i, got.Name, got.Domain, w.Name, w.Domain)
		}
		if strings.Join(got.Values, "\x00") != strings.Join(w.Values, "\x00") {
			t.Fatalf("column %d values diverge", i)
		}
		if len(got.Dirty) != len(w.Dirty) {
			t.Fatalf("column %d labels diverge", i)
		}
	}
	if s.Generated() != n {
		t.Fatalf("Generated() = %d", s.Generated())
	}
}
