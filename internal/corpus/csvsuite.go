package corpus

// handAuthored reproduces the error archetypes of Figures 1 and 2 of the
// paper as explicitly labeled columns: an extra dot after a number, mixed
// date formats, inconsistent weight units, a placeholder among scores, song
// lengths with an outlier format, stray parentheses, an extra internal
// space, and mixed phone formats.
func handAuthored() []*Column {
	return []*Column{
		{Name: "fig1a-extra-dot", Domain: "num_mixed",
			Values: []string{"1963", "1983.", "2008", "1976", "1865", "1999", "2013"},
			Dirty:  []int{1}},
		{Name: "fig1b-mixed-dates", Domain: "date_dot",
			Values: []string{"2011.01.02", "2011.02.14", "2011.03.08", "2011/04/01", "2011.05.30", "2011.06.11"},
			Dirty:  []int{3}},
		{Name: "fig1c-weights", Domain: "measure_kg",
			Values: []string{"72 kg", "81 kg", "64 kg", "154 lbs", "90 kg", "77 kg"},
			Dirty:  []int{3}},
		{Name: "fig1d-score-placeholder", Domain: "score",
			Values: []string{"3-2", "1-0", "4-4", "-", "2-1", "0-0", "5-3"},
			Dirty:  []int{3}},
		{Name: "fig1e-song-lengths", Domain: "song_length",
			Values: []string{"3:45", "4:02", "2:59", "3:11", "245", "4:40"},
			Dirty:  []int{4}},
		{Name: "fig1f-parenthesis", Domain: "int_small",
			Values: []string{"12", "7", "(9)", "15", "3", "22", "8"},
			Dirty:  []int{2}},
		{Name: "fig1g-scores", Domain: "score",
			Values: []string{"6-3", "7-5", "6-4", "6-7(4-7)", "6-2", "6-1"},
			Dirty:  []int{3}},
		{Name: "fig1h-mixed-dates-2", Domain: "date_iso",
			Values: []string{"2014-05-01", "2014-06-12", "12/07/2014", "2014-08-23", "2014-09-30"},
			Dirty:  []int{2}},
		{Name: "fig2a-extra-space", Domain: "title",
			Values: []string{"Quarterly Report", "Annual  Summary", "Budget Overview", "Sales Forecast"},
			Dirty:  []int{1}},
		{Name: "fig2b-mixed-phones", Domain: "phone_dash",
			Values: []string{"425-555-0143", "206-555-0177", "(360) 555-0102", "509-555-0156"},
			Dirty:  []int{2}},
		{Name: "tbl4-triple-year", Domain: "year",
			Values: []string{"2000", "1998", "1935/1982/2011", "2004", "2016"},
			Dirty:  []int{2}},
		{Name: "tbl4-date-vs-year", Domain: "year",
			Values: []string{"2009", "2011", "27-11-2009", "2014", "2001"},
			Dirty:  []int{2}},
		{Name: "tbl4-thousands-typo", Domain: "int_comma_mixed",
			Values: []string{"1,870", "587", "5875 CR", "912", "2,144"},
			Dirty:  []int{2}},
		{Name: "tbl4-trailing-dot-year", Domain: "year",
			Values: []string{"1999", "2013.", "1963", "2008", "1976"},
			Dirty:  []int{1}},
	}
}

// CSVSuiteProfile is the generation profile for the remainder of the CSV
// test suite: the small, messy demo spreadsheets used by data cleaning
// tutorials, with a high planted-error rate.
func csvSuiteProfile() Profile {
	return Profile{
		Name: "CSV",
		Weights: map[string]float64{
			"date_us": 2, "date_iso": 2, "int_plain": 2, "float2": 2,
			"currency_usd": 2, "percent": 1.5, "person_name": 2, "city": 2,
			"email": 2, "phone_dash": 1.5, "zip5": 1.5, "bool_yn": 1.5,
		},
		MinRows: 6, MaxRows: 25,
		ErrorRate: 0.45,
		Labeled:   true,
	}
}

// CSVSuite returns the 441-column labeled test suite standing in for the
// paper's 26 hand-labeled public CSV files: a handful of hand-authored
// columns reproducing the exact error archetypes of Figures 1–2 and
// Table 4, padded to 441 columns with generated messy-spreadsheet columns.
func CSVSuite() *Corpus {
	const total = 441
	cols := handAuthored()
	gen := Generate(csvSuiteProfile(), total-len(cols), 20180610) // SIGMOD'18 starts June 10
	cols = append(cols, gen.Columns...)
	return &Corpus{Name: "CSV", Columns: cols}
}
