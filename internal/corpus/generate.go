package corpus

import (
	"fmt"
	"math/rand"
	"sort"
)

// Profile parameterizes corpus generation: which domains appear with what
// relative frequency, how long columns are, and how often a labeled error
// is planted.
type Profile struct {
	// Name identifies the profile (WEB, WIKI, ...).
	Name string
	// Weights gives the relative frequency of each domain. Domains missing
	// from the map get weight 1; a weight of 0 removes the domain.
	Weights map[string]float64
	// MinRows and MaxRows bound the (uniform) column length.
	MinRows, MaxRows int
	// ErrorRate is the per-column probability of planting one error.
	ErrorRate float64
	// Labeled marks generated columns with ground truth (Dirty non-nil).
	Labeled bool
}

// WebProfile models the paper's WEB training corpus: broad domain coverage,
// clean (it is the co-occurrence training set).
func WebProfile() Profile {
	return Profile{
		Name: "WEB",
		Weights: map[string]float64{
			"int_small": 2, "int_plain": 2, "int_comma_mixed": 2, "num_mixed": 2,
			"year": 2, "word": 2, "title": 2.5, "person_name": 2.5,
			"freetext": 3, "city": 1.5, "uuid8": 2, "address": 2, "product": 2,
		},
		MinRows: 5, MaxRows: 40,
	}
}

// PubXLSProfile models the public spreadsheet corpus: like WEB but tilted
// toward numeric and business-flavoured columns.
func PubXLSProfile() Profile {
	return Profile{
		Name: "Pub-XLS",
		Weights: map[string]float64{
			"int_plain": 3, "float2": 3, "currency_usd": 2, "percent": 2,
			"date_us": 2, "num_mixed": 2, "paren_num": 2, "id_prefixed": 1.5,
		},
		MinRows: 5, MaxRows: 40,
	}
}

// WikiProfile models the Wikipedia test corpus: heavy on dates, years,
// scores, names, titles and song lengths (the content of Figure 1), with
// the paper's measured ~2.2% dirty-column rate when errors are enabled.
func WikiProfile() Profile {
	return Profile{
		Name: "WIKI",
		Weights: map[string]float64{
			"date_iso": 2.5, "date_slash": 1.5, "date_us": 1.5, "date_long": 2, "date_med": 1.5,
			"year": 3, "year_range": 1.5, "score": 2, "record": 1.5, "rank": 2,
			"person_name": 2.5, "title": 2.5, "team": 2, "city": 2,
			"song_length": 2, "int_small": 2, "int_comma_mixed": 2, "month_year": 1.5,
		},
		MinRows: 5, MaxRows: 40,
		ErrorRate: 0.022,
		Labeled:   true,
	}
}

// EntXLSProfile models the proprietary enterprise spreadsheet corpus:
// dominated by numeric, currency, percentage, date and identifier columns,
// with a higher error rate (the paper reports professionally produced
// spreadsheets still contain frequent errors).
func EntXLSProfile() Profile {
	return Profile{
		Name: "Ent-XLS",
		Weights: map[string]float64{
			"int_plain": 3, "float2": 3, "num_mixed": 2.5, "currency_usd": 3,
			"currency_code": 1.5, "percent": 2.5, "paren_num": 2.5, "date_us": 2,
			"date_iso": 1.5, "id_prefixed": 3, "code": 2, "sku": 2, "email": 2,
			"phone_paren": 1.5, "phone_dash": 1.5, "zip5": 1.5, "bool_yn": 1.5,
			"money_compact": 2, "filesize": 1.5, "version_v": 1.5, "path_unix": 1.5,
			"datetime_space": 1.5,
		},
		MinRows: 5, MaxRows: 40,
		ErrorRate: 0.03,
		Labeled:   true,
	}
}

// Generate produces a corpus of numColumns columns under the profile,
// deterministically for a given seed.
func Generate(p Profile, numColumns int, seed int64) *Corpus {
	s := NewStream(p, seed)
	c := &Corpus{Name: p.Name, Columns: make([]*Column, 0, numColumns)}
	for i := 0; i < numColumns; i++ {
		c.Columns = append(c.Columns, s.Next())
	}
	return c
}

// Stream generates profile columns one at a time from a single deterministic
// random stream, so arbitrarily large corpora can be produced — and consumed
// by the corpus pipeline or written to sharded CSV files — without ever
// materializing the whole corpus. Taking n columns from a Stream yields
// exactly the columns of Generate(p, n, seed), in order.
type Stream struct {
	p                Profile
	r                *rand.Rand
	names            []string
	cum              []float64
	minRows, maxRows int
	generated        uint64
}

// NewStream returns a column stream for the profile and seed.
func NewStream(p Profile, seed int64) *Stream {
	names, cum := cumulativeWeights(p.Weights)
	minRows, maxRows := p.MinRows, p.MaxRows
	if minRows < 2 {
		minRows = 2
	}
	if maxRows < minRows {
		maxRows = minRows
	}
	return &Stream{
		p: p, r: rand.New(rand.NewSource(seed)),
		names: names, cum: cum,
		minRows: minRows, maxRows: maxRows,
	}
}

// Next generates the next column of the stream.
func (s *Stream) Next() *Column {
	domain := s.names[sampleCumulative(s.r, s.cum)]
	n := ri(s.r, s.minRows, s.maxRows)
	col, err := GenerateColumn(s.r, domain, n)
	if err != nil {
		// Unreachable: names come from the domain table.
		panic(err)
	}
	if s.p.Labeled {
		col.Dirty = []int{}
	}
	if s.p.ErrorRate > 0 && s.r.Float64() < s.p.ErrorRate {
		InjectError(s.r, col)
	}
	s.generated++
	return col
}

// Generated returns how many columns the stream has produced.
func (s *Stream) Generated() uint64 { return s.generated }

// cumulativeWeights resolves profile weights against the domain table and
// returns domain names with their cumulative weight prefix sums.
func cumulativeWeights(weights map[string]float64) ([]string, []float64) {
	names := Domains()
	sort.Strings(names)
	var keep []string
	var cum []float64
	total := 0.0
	for _, name := range names {
		w := 1.0
		if ww, ok := weights[name]; ok {
			w = ww
		}
		if w <= 0 {
			continue
		}
		total += w
		keep = append(keep, name)
		cum = append(cum, total)
	}
	if len(keep) == 0 {
		panic(fmt.Sprintf("corpus: profile removes every domain (weights: %v)", weights))
	}
	return keep, cum
}

// sampleCumulative draws an index proportionally to the prefix-sum weights.
func sampleCumulative(r *rand.Rand, cum []float64) int {
	x := r.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
