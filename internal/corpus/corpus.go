// Package corpus models table-column corpora for Auto-Detect and provides
// the synthetic web-table generator that substitutes for the paper's
// proprietary corpora (350M Bing web-table columns, 1.4M public Excel
// columns, 30M Wikipedia columns, 3.2M enterprise Excel columns — none of
// which are released).
//
// The generator reproduces the property the algorithm exploits: value
// formats that are *globally compatible* in real tables (plain integers,
// comma-separated integers, floats, ...) co-occur freely within generated
// columns, while *incompatible* formats (different date formats, phone
// formats, units, ...) never mix within a clean column — each clean column
// commits to a single format of its family. Test corpora additionally plant
// labeled errors of the kinds shown in Figures 1 and 2 of the paper.
package corpus

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Column is a single table column.
type Column struct {
	// Name is an optional header.
	Name string
	// Domain is the generator domain the column was drawn from (empty for
	// loaded real data).
	Domain string
	// Values are the cell values, in row order.
	Values []string
	// Dirty lists the indices of known-injected errors. nil means the
	// column carries no ground-truth labels; an empty non-nil slice means
	// the column is known clean.
	Dirty []int
	// Source identifies where the column came from — a database driver
	// name, "csv", "gen" — and Table the container within that source.
	// Both are optional provenance that audit findings carry through to
	// results, so a bad cell reports which table it lives in, not just
	// the column name.
	Source string
	Table  string
}

// IsDirty reports whether row i is a labeled error.
func (c *Column) IsDirty(i int) bool {
	for _, d := range c.Dirty {
		if d == i {
			return true
		}
	}
	return false
}

// Labeled reports whether the column carries ground-truth labels.
func (c *Column) Labeled() bool { return c.Dirty != nil }

// DistinctValues returns the distinct values of the column in first-seen
// order.
func (c *Column) DistinctValues() []string {
	seen := make(map[string]struct{}, len(c.Values))
	out := make([]string, 0, len(c.Values))
	for _, v := range c.Values {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Corpus is a collection of columns.
type Corpus struct {
	// Name identifies the corpus (WEB, WIKI, ...).
	Name string
	// Columns are the member columns.
	Columns []*Column
}

// NumColumns returns the number of columns.
func (c *Corpus) NumColumns() int { return len(c.Columns) }

// NumValues returns the total number of cells.
func (c *Corpus) NumValues() int {
	n := 0
	for _, col := range c.Columns {
		n += len(col.Values)
	}
	return n
}

// DirtyColumns returns the number of columns with at least one labeled
// error.
func (c *Corpus) DirtyColumns() int {
	n := 0
	for _, col := range c.Columns {
		if len(col.Dirty) > 0 {
			n++
		}
	}
	return n
}

// DomainHistogram returns (domain, count) pairs sorted by descending count.
func (c *Corpus) DomainHistogram() []struct {
	Domain string
	Count  int
} {
	m := map[string]int{}
	for _, col := range c.Columns {
		m[col.Domain]++
	}
	out := make([]struct {
		Domain string
		Count  int
	}, 0, len(m))
	for d, n := range m {
		out = append(out, struct {
			Domain string
			Count  int
		}{d, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// ReadCSV extracts the columns of a CSV table. If hasHeader is true the
// first record provides column names; otherwise columns are named col0,
// col1, ...
//
// The loader is hardened against the messy-file artifacts that otherwise
// silently skew per-column value counts: a UTF-8 byte-order mark is
// stripped before parsing (a BOM glued to the first header or value would
// mint a spurious distinct pattern), ragged short rows are padded with
// empty cells so every column keeps row-aligned values (without padding, a
// short row shifts every later value of the trailing columns up a row), and
// trailing columns that contain no data at all — the phantom columns minted
// by a trailing comma on every row — are dropped.
func ReadCSV(r io.Reader, hasHeader bool) ([]*Column, error) {
	return ReadTable(r, ',', hasHeader)
}

// ParseError is the typed failure of ReadTable/ReadCSV: parsing stopped at
// byte Offset of the input (after any BOM), wrapping the underlying CSV or
// I/O error. Callers classify it — a quarantine manifest records the offset,
// and a transient read error buried under it is still retryable through
// errors.Is/As on the wrapped cause.
type ParseError struct {
	// Offset is the byte position in the input where parsing failed.
	Offset int64
	// Err is the underlying csv.ParseError or reader error.
	Err error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("corpus: parse error at byte %d: %v", e.Offset, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// ReadTable is ReadCSV with a configurable field delimiter (',' for CSV,
// '\t' for TSV), sharing the same BOM/ragged-row/phantom-column hardening.
// Malformed input never panics: the result is either the parsed columns or
// a *ParseError carrying the byte offset of the failure.
func ReadTable(r io.Reader, comma rune, hasHeader bool) ([]*Column, error) {
	in, bomLen := stripBOM(r)
	cr := csv.NewReader(in)
	cr.Comma = comma
	cr.FieldsPerRecord = -1
	var recs [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, &ParseError{Offset: bomLen + cr.InputOffset(), Err: err}
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil, nil
	}
	width := 0
	for _, rec := range recs {
		if len(rec) > width {
			width = len(rec)
		}
	}
	cols := make([]*Column, width)
	start := 0
	for i := range cols {
		cols[i] = &Column{Name: fmt.Sprintf("col%d", i)}
	}
	if hasHeader {
		for i, h := range recs[0] {
			if h = strings.TrimSpace(h); h != "" {
				cols[i].Name = h
			}
		}
		start = 1
	}
	for _, rec := range recs[start:] {
		for i := 0; i < width; i++ {
			v := ""
			if i < len(rec) {
				v = rec[i]
			}
			cols[i].Values = append(cols[i].Values, v)
		}
	}
	// Drop trailing all-empty columns: no header text and no cell content.
	for len(cols) > 0 {
		last := cols[len(cols)-1]
		if hasHeader && last.Name != fmt.Sprintf("col%d", len(cols)-1) {
			break
		}
		empty := true
		for _, v := range last.Values {
			if v != "" {
				empty = false
				break
			}
		}
		if !empty {
			break
		}
		cols = cols[:len(cols)-1]
	}
	return cols, nil
}

// stripBOM removes a leading UTF-8 byte-order mark, which spreadsheet
// exports routinely prepend, reporting how many bytes it consumed so parse
// offsets stay anchored to the raw input.
func stripBOM(r io.Reader) (io.Reader, int64) {
	br := bufio.NewReader(r)
	if lead, err := br.Peek(3); err == nil && lead[0] == 0xEF && lead[1] == 0xBB && lead[2] == 0xBF {
		br.Discard(3)
		return br, 3
	}
	return br, 0
}

// WriteCSV writes the columns as a CSV table with a header row. Columns of
// unequal length are padded with empty cells.
func WriteCSV(w io.Writer, cols []*Column) error {
	cw := csv.NewWriter(w)
	hdr := make([]string, len(cols))
	rows := 0
	for i, c := range cols {
		hdr[i] = c.Name
		if len(c.Values) > rows {
			rows = len(c.Values)
		}
	}
	if err := cw.Write(hdr); err != nil {
		return err
	}
	rec := make([]string, len(cols))
	for r := 0; r < rows; r++ {
		for i, c := range cols {
			if r < len(c.Values) {
				rec[i] = c.Values[r]
			} else {
				rec[i] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
