package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
)

// buildDateStats feeds a small corpus in which ISO dates and slash dates
// never co-occur, but ISO dates co-occur with years.
func buildDateStats(t *testing.T, f float64) *LanguageStats {
	t.Helper()
	ls := NewLanguageStats(pattern.Crude(), f)
	for i := 0; i < 50; i++ {
		ls.AddColumn([]string{"2011-01-01", "2012-03-04", "1999-12-31"})
		ls.AddColumn([]string{"2011/01/01", "2012/03/04"})
		ls.AddColumn([]string{"2011-01-01", "1999", "2005"})
	}
	return ls
}

func TestPatternAndPairCounts(t *testing.T) {
	ls := buildDateStats(t, 0)
	iso := pattern.Crude().Generalize("2011-01-01")
	year := pattern.Crude().Generalize("1999")
	if got := ls.PatternCount(iso); got != 100 {
		t.Errorf("c(iso) = %d, want 100", got)
	}
	if got := ls.PatternCount(year); got != 50 {
		t.Errorf("c(year) = %d, want 50", got)
	}
	if got := ls.PairCount(iso, year); got != 50 {
		t.Errorf("c(iso,year) = %d, want 50", got)
	}
	if got := ls.PairCount(year, iso); got != 50 {
		t.Error("PairCount must be symmetric")
	}
	if ls.Columns() != 150 {
		t.Errorf("N = %d", ls.Columns())
	}
}

func TestNPMIIdenticalPatternsIsOne(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	if got := ls.NPMIValues("2011-01-01", "2018-12-31"); got != 1 {
		t.Errorf("same-pattern NPMI = %v, want 1", got)
	}
}

func TestNPMISeparatesCompatibleFromIncompatible(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	compat := ls.NPMIValues("2011-01-01", "2005")         // co-occur often
	incompat := ls.NPMIValues("2011-01-01", "2011/01/01") // never co-occur
	if compat <= 0 {
		t.Errorf("compatible pair NPMI = %v, want > 0", compat)
	}
	if incompat >= 0 {
		t.Errorf("incompatible pair NPMI = %v, want < 0", incompat)
	}
	if compat <= incompat {
		t.Error("compatible pair must score above incompatible pair")
	}
}

func TestNPMIUnsmoothedNeverCooccurIsMinusOne(t *testing.T) {
	ls := buildDateStats(t, 0)
	if got := ls.NPMIValues("2011-01-01", "2011/01/01"); got != -1 {
		t.Errorf("unsmoothed never-co-occurring NPMI = %v, want -1", got)
	}
}

func TestSmoothingSoftensZeroCounts(t *testing.T) {
	raw := buildDateStats(t, 0)
	sm := buildDateStats(t, 0.1)
	// Smoothing must strictly raise the score of a never-co-occurring pair
	// of frequent patterns above the hard -1.
	a, b := "2011-01-01", "2011/01/01"
	if raw.NPMIValues(a, b) != -1 {
		t.Fatal("precondition failed")
	}
	if got := sm.NPMIValues(a, b); got <= -1 || got >= 0 {
		t.Errorf("smoothed NPMI = %v, want in (-1, 0)", got)
	}
}

func TestNPMIExampleFromPaper(t *testing.T) {
	// Example 1: |C| = 100M, c(v1)=1M, c(v2)=2M, c(v1,v2)=500K → NPMI 0.60.
	// We reproduce the arithmetic at small scale through the public API by
	// checking the closed form directly.
	n, c1, c2, c12 := 100e6, 1e6, 2e6, 5e5
	pmi := math.Log((c12 / n) / ((c1 / n) * (c2 / n)))
	npmi := pmi / (-math.Log(c12 / n))
	if math.Abs(npmi-0.60) > 0.02 {
		t.Errorf("closed-form NPMI = %.3f, want ≈ 0.60", npmi)
	}
}

func TestNPMIUnknownPatterns(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	// Both unseen and distinct: no evidence of co-occurrence → -1 (the
	// sensitivity/false-positive behaviour the paper ascribes to sparse
	// languages).
	if got := ls.NPMI(`\Znope`, `\Zother`); got != -1 {
		t.Errorf("unseen distinct patterns NPMI = %v, want -1", got)
	}
	// Identical unseen patterns remain compatible.
	if got := ls.NPMI(`\Znope`, `\Znope`); got != 1 {
		t.Errorf("identical unseen patterns NPMI = %v, want 1", got)
	}
}

func TestEmptyStatsNeutral(t *testing.T) {
	ls := NewLanguageStats(pattern.Crude(), 0.1)
	if got := ls.NPMI("a", "b"); got != 0 {
		t.Errorf("empty stats NPMI = %v, want 0", got)
	}
}

// Property: NPMI is symmetric and bounded in [-1, 1].
func TestNPMISymmetricBounded(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	f := func(a, b string) bool {
		x := ls.NPMIValues(a, b)
		y := ls.NPMIValues(b, a)
		return x == y && x >= -1 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMapPairStore(t *testing.T) {
	s := NewMapPairStore()
	s.Add(3, 7, 2)
	s.Add(7, 3, 1)
	if got := s.Get(3, 7); got != 3 {
		t.Errorf("Get(3,7) = %d, want 3 (unordered)", got)
	}
	if s.Entries() != 1 {
		t.Errorf("Entries = %d", s.Entries())
	}
	if s.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
}

func TestPairKeyUnordered(t *testing.T) {
	f := func(a, b uint32) bool { return PairKey(a, b) == PairKey(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if PairKey(1, 2) == PairKey(1, 3) {
		t.Error("distinct pairs must have distinct keys")
	}
}

func TestSketchPairStoreAgreesOnHeavyPairs(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	iso := pattern.Crude().Generalize("2011-01-01")
	year := pattern.Crude().Generalize("1999")
	before := ls.PairCount(iso, year)
	if err := ls.CompressToSketch(0.5, 4); err != nil {
		t.Fatal(err)
	}
	after := ls.PairCount(iso, year)
	if after < before {
		t.Errorf("sketch under-counted: %d < %d", after, before)
	}
	// Clamped by marginals, so it cannot exceed min(c1,c2) either.
	if after > 50 {
		t.Errorf("clamp failed: %d > 50", after)
	}
	if err := ls.CompressToSketch(0.5, 4); err == nil {
		t.Error("double compression should error")
	}
}

func TestCompressPairStoreValidation(t *testing.T) {
	if _, err := CompressPairStore(NewMapPairStore(), 0, 4); err == nil {
		t.Error("ratio 0 should error")
	}
	if _, err := CompressPairStore(NewMapPairStore(), 1.5, 4); err == nil {
		t.Error("ratio > 1 should error")
	}
}

func TestLanguageStatsSerialization(t *testing.T) {
	ls := buildDateStats(t, 0.2)
	data, err := ls.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back LanguageStats
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Columns() != ls.Columns() || back.Smoothing() != ls.Smoothing() {
		t.Fatal("header mismatch")
	}
	if back.Language() != ls.Language() {
		t.Fatal("language mismatch")
	}
	pairs := [][2]string{
		{"2011-01-01", "2005"},
		{"2011-01-01", "2011/01/01"},
		{"2011-01-01", "2018-12-31"},
	}
	for _, p := range pairs {
		if a, b := ls.NPMIValues(p[0], p[1]), back.NPMIValues(p[0], p[1]); a != b {
			t.Errorf("NPMI(%q,%q) changed after round trip: %v vs %v", p[0], p[1], a, b)
		}
	}
}

func TestSerializationRejectsCorrupt(t *testing.T) {
	var ls LanguageStats
	if err := ls.UnmarshalBinary(nil); err == nil {
		t.Error("nil should error")
	}
	good := buildDateStats(t, 0.1)
	data, _ := good.MarshalBinary()
	if err := ls.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Error("truncated should error")
	}
}

func TestBuilderMatchesDirectBuild(t *testing.T) {
	langs := []pattern.Language{pattern.L1(), pattern.Crude(), pattern.Crude()}
	b := NewBuilder(langs, 0.1)
	direct := make([]*LanguageStats, len(langs))
	for i, l := range langs {
		direct[i] = NewLanguageStats(l, 0.1)
	}
	cols := [][]string{
		{"2011-01-01", "2012-03-04", "2012-03-04"}, // dup value: counted once
		{"1,000", "100", "5"},
		{"a@b.com", "c@d.org"},
	}
	for _, c := range cols {
		b.AddColumn(c)
		for _, d := range direct {
			d.AddColumn(dedupe(c))
		}
	}
	for i := range langs {
		got, want := b.Stats()[i], direct[i]
		if got.Columns() != want.Columns() || got.DistinctPatterns() != want.DistinctPatterns() {
			t.Errorf("lang %v: builder diverges from direct build", langs[i])
		}
		if a, c := got.NPMIValues("1,000", "100"), want.NPMIValues("1,000", "100"); a != c {
			t.Errorf("lang %v: NPMI diverges: %v vs %v", langs[i], a, c)
		}
	}
}

func dedupe(vs []string) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, v := range vs {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

func TestPairNPMIDistributionSorted(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	d := ls.PairNPMIDistribution()
	if len(d) == 0 {
		t.Fatal("empty distribution")
	}
	for i := 1; i < len(d); i++ {
		if d[i] < d[i-1] {
			t.Fatal("distribution not sorted")
		}
	}
}

func TestBytesGrowsWithData(t *testing.T) {
	small := NewLanguageStats(pattern.Crude(), 0.1)
	small.AddColumn([]string{"1", "2"})
	big := buildDateStats(t, 0.1)
	if big.Bytes() <= small.Bytes() {
		t.Error("larger stats should report more bytes")
	}
}

func BenchmarkAddColumn(b *testing.B) {
	ls := NewLanguageStats(pattern.Crude(), 0.1)
	col := []string{"2011-01-01", "2012-03-04", "1999-12-31", "1999", "1,000", "ITF $50.000"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ls.AddColumn(col)
	}
}

func BenchmarkNPMI(b *testing.B) {
	ls := NewLanguageStats(pattern.Crude(), 0.1)
	for i := 0; i < 1000; i++ {
		ls.AddColumn([]string{"2011-01-01", "1999", "1,000"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ls.NPMIValues("2011-01-01", "1,000")
	}
}
