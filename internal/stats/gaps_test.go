package stats

import (
	"testing"

	"repro/internal/pattern"
)

func TestSetSmoothingChangesScores(t *testing.T) {
	ls := buildDateStats(t, 0)
	a, b := "2011-01-01", "2011/01/01"
	raw := ls.NPMIValues(a, b)
	ls.SetSmoothing(0.2)
	if ls.Smoothing() != 0.2 {
		t.Fatal("Smoothing not updated")
	}
	smoothed := ls.NPMIValues(a, b)
	if smoothed <= raw {
		t.Errorf("smoothing should lift a zero-co-occurrence pair: %v → %v", raw, smoothed)
	}
}

func TestNPMIRunsLOO(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	iso := pattern.Encode("2011-01-01")
	year := pattern.Encode("2005")
	plain := ls.NPMIRuns(iso, year)

	// Same-column discount removes one co-occurrence and one occurrence of
	// each marginal; with high counts the effect must be marginal (it can
	// shift in either direction since both counts shrink).
	loo := ls.NPMIRunsLOO(iso, year, true)
	if d := loo - plain; d > 0.05 || d < -0.05 {
		t.Errorf("LOO moved a well-supported pair too much: %v vs %v", loo, plain)
	}

	// Identical patterns stay perfectly compatible under LOO.
	if got := ls.NPMIRunsLOO(iso, pattern.Encode("1918-01-01"), true); got != 1 {
		t.Errorf("identical-pattern LOO = %v", got)
	}

	// A value pair seen in exactly one shared column must drop to the
	// no-evidence score when that column is discounted.
	one := NewLanguageStats(pattern.Crude(), 0)
	one.AddColumn([]string{"aa-bb", "11:22"})
	one.AddColumn([]string{"aa-bb", "zz-yy"})
	one.AddColumn([]string{"11:22", "33:44"})
	u, v := pattern.Encode("aa-bb"), pattern.Encode("11:22")
	if got := one.NPMIRuns(u, v); got <= -1 {
		t.Fatalf("precondition: pair should co-occur, got %v", got)
	}
	if got := one.NPMIRunsLOO(u, v, true); got != -1 {
		t.Errorf("discounted single co-occurrence should be -1, got %v", got)
	}

	// Empty statistics are neutral.
	empty := NewLanguageStats(pattern.Crude(), 0.1)
	if got := empty.NPMIRunsLOO(u, v, false); got != 0 {
		t.Errorf("empty stats LOO = %v", got)
	}
}

func TestPairStoreEntriesAndSketchCopy(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	entries := ls.PairStoreEntries()
	if entries <= 0 {
		t.Fatalf("exact store entries = %d", entries)
	}
	cp, err := ls.SketchCopy(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cp.PairStoreEntries() != -1 {
		t.Error("sketch copy should not track entries")
	}
	// Original still exact, still serializable.
	if ls.PairStoreEntries() != entries {
		t.Error("SketchCopy mutated the receiver")
	}
	if _, err := ls.MarshalBinary(); err != nil {
		t.Errorf("original no longer serializable: %v", err)
	}
	if _, err := cp.MarshalBinary(); err == nil {
		t.Error("sketch copies must refuse to serialize")
	}
	if _, err := cp.SketchCopy(0.5, 4); err == nil {
		t.Error("double compression must error")
	}
	// Counts remain plausible on the heavy pair.
	iso := pattern.Crude().Generalize("2011-01-01")
	year := pattern.Crude().Generalize("1999")
	if got := cp.PairCount(iso, year); got > 50 {
		t.Errorf("sketch pair count %d exceeds marginal clamp", got)
	}
}

func TestSketchPairStoreRoundTrip(t *testing.T) {
	s, err := NewSketchPairStore(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(1, 2, 5)
	s.Add(3, 4, 7)
	if s.Bytes() != 256*4*4 {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	if s.Entries() != -1 {
		t.Error("Entries should be unknown")
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back SketchPairStore
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Get(1, 2) != s.Get(1, 2) || back.Get(3, 4) != s.Get(3, 4) {
		t.Error("estimates changed after round trip")
	}
	if _, err := NewSketchPairStore(0, 4); err == nil {
		t.Error("zero width should error")
	}
}

func TestPatternCountUnknown(t *testing.T) {
	ls := buildDateStats(t, 0.1)
	if ls.PatternCount("never-seen-pattern") != 0 {
		t.Error("unknown pattern should count 0")
	}
	if ls.PairCount("never-seen", `\D[4]`) != 0 {
		t.Error("unknown pair should count 0")
	}
}
