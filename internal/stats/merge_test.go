package stats

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

// randomColumns fabricates columns mixing a handful of value formats, so
// many distinct patterns and co-occurrences arise.
func randomColumns(r *rand.Rand, n int) [][]string {
	gen := []func() string{
		func() string { return fmt.Sprintf("%d", r.Intn(10000)) },
		func() string { return fmt.Sprintf("%d,%03d", 1+r.Intn(99), r.Intn(1000)) },
		func() string { return fmt.Sprintf("%04d-%02d-%02d", 1990+r.Intn(40), 1+r.Intn(12), 1+r.Intn(28)) },
		func() string { return fmt.Sprintf("%d.%02d", r.Intn(100), r.Intn(100)) },
		func() string { return fmt.Sprintf("%02d/%02d/%04d", 1+r.Intn(12), 1+r.Intn(28), 1990+r.Intn(40)) },
		func() string { return fmt.Sprintf("item-%c%d", 'A'+rune(r.Intn(26)), r.Intn(100)) },
	}
	cols := make([][]string, n)
	for i := range cols {
		rows := 2 + r.Intn(12)
		col := make([]string, rows)
		// Each column mixes at most two formats, like real tables.
		f1, f2 := gen[r.Intn(len(gen))], gen[r.Intn(len(gen))]
		for j := range col {
			if r.Intn(3) == 0 {
				col[j] = f2()
			} else {
				col[j] = f1()
			}
		}
		cols[i] = col
	}
	return cols
}

func statsEqual(t *testing.T, a, b *LanguageStats) {
	t.Helper()
	if a.Columns() != b.Columns() {
		t.Fatalf("column counts differ: %d != %d", a.Columns(), b.Columns())
	}
	if a.DistinctPatterns() != b.DistinctPatterns() {
		t.Fatalf("distinct patterns differ: %d != %d", a.DistinctPatterns(), b.DistinctPatterns())
	}
	for p, id := range a.byString {
		bid, ok := b.byString[p]
		if !ok {
			t.Fatalf("pattern %q missing from other side", p)
		}
		if a.occ[id] != b.occ[bid] {
			t.Fatalf("pattern %q occurrence %d != %d", p, a.occ[id], b.occ[bid])
		}
	}
	// Pair counts compared through the public query path.
	for p1 := range a.byString {
		for p2 := range a.byString {
			if got, want := a.PairCount(p1, p2), b.PairCount(p1, p2); got != want {
				t.Fatalf("pair (%q,%q): %d != %d", p1, p2, got, want)
			}
		}
	}
}

// TestMergeEquivalentToSequential is the shard-then-merge property test:
// for random splits of a column stream, per-shard counting plus Merge must
// reproduce the sequential single-shard statistics exactly.
func TestMergeEquivalentToSequential(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		r := rand.New(rand.NewSource(int64(100 + trial)))
		cols := randomColumns(r, 120)
		lang := pattern.L2()

		seq := NewLanguageStats(lang, DefaultSmoothing)
		for _, c := range cols {
			seq.AddColumn(c)
		}

		shards := 2 + r.Intn(5)
		parts := make([]*LanguageStats, shards)
		for i := range parts {
			parts[i] = NewLanguageStats(lang, DefaultSmoothing)
		}
		for _, c := range cols {
			parts[r.Intn(shards)].AddColumn(c)
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		statsEqual(t, merged, seq)

		// NPMI must agree on every pattern pair, since it is a pure function
		// of the counts.
		for p1 := range seq.byString {
			for p2 := range seq.byString {
				if got, want := merged.NPMI(p1, p2), seq.NPMI(p1, p2); got != want {
					t.Fatalf("NPMI(%q,%q): %v != %v", p1, p2, got, want)
				}
			}
		}
	}
}

// TestCanonicalizeMakesSerializationDeterministic: two different shardings
// of the same columns serialize identically after Canonicalize.
func TestCanonicalizeMakesSerializationDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cols := randomColumns(r, 100)
	lang := pattern.L1()

	build := func(order []int, shards int) *LanguageStats {
		parts := make([]*LanguageStats, shards)
		for i := range parts {
			parts[i] = NewLanguageStats(lang, DefaultSmoothing)
		}
		for i, idx := range order {
			parts[i%shards].AddColumn(cols[idx])
		}
		m := parts[0]
		for _, p := range parts[1:] {
			if err := m.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Canonicalize(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	fwd := make([]int, len(cols))
	rev := make([]int, len(cols))
	for i := range cols {
		fwd[i] = i
		rev[i] = len(cols) - 1 - i
	}
	a := build(fwd, 3)
	b := build(rev, 7)

	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("canonicalized statistics serialize differently under different shardings")
	}
}

func TestMergeValidation(t *testing.T) {
	a := NewLanguageStats(pattern.L1(), DefaultSmoothing)
	b := NewLanguageStats(pattern.L2(), DefaultSmoothing)
	if err := a.Merge(b); err == nil {
		t.Fatal("expected language mismatch error")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("expected nil merge error")
	}
	c := NewLanguageStats(pattern.L1(), DefaultSmoothing)
	c.AddColumn([]string{"1", "2", "a"})
	if err := c.CompressToSketch(0.5, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Fatal("expected sketch-backed source rejection")
	}
	if err := c.Merge(a); err == nil {
		t.Fatal("expected sketch-backed target rejection")
	}
	if err := c.Canonicalize(); err == nil {
		t.Fatal("expected canonicalize rejection on sketch-backed store")
	}
}

func TestBuilderMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cols := randomColumns(r, 80)
	langs := []pattern.Language{pattern.L1(), pattern.L2(), pattern.Crude()}

	seq := NewBuilder(langs, DefaultSmoothing)
	for _, c := range cols {
		seq.AddColumn(c)
	}
	w1 := NewBuilder(langs, DefaultSmoothing)
	w2 := NewBuilder(langs, DefaultSmoothing)
	for i, c := range cols {
		if i%2 == 0 {
			w1.AddColumn(c)
		} else {
			w2.AddColumn(c)
		}
	}
	if err := w1.Merge(w2); err != nil {
		t.Fatal(err)
	}
	for i := range langs {
		statsEqual(t, w1.Stats()[i], seq.Stats()[i])
	}

	short := NewBuilder(langs[:1], DefaultSmoothing)
	if err := w1.Merge(short); err == nil {
		t.Fatal("expected language-set mismatch error")
	}
}

func TestSketchPairStoreMerge(t *testing.T) {
	a, err := NewSketchPairStore(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSketchPairStore(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSketchPairStore(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		x, y := uint32(r.Intn(40)), uint32(r.Intn(40))
		single.Add(x, y, 1)
		if i%2 == 0 {
			a.Add(x, y, 1)
		} else {
			b.Add(x, y, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for x := uint32(0); x < 40; x++ {
		for y := uint32(0); y < 40; y++ {
			if got, want := a.Get(x, y), single.Get(x, y); got != want {
				t.Fatalf("pair (%d,%d): merged %d != sequential %d", x, y, got, want)
			}
		}
	}
	wrong, err := NewSketchPairStore(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(wrong); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}
