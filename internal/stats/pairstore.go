// Package stats maintains per-language corpus statistics for Auto-Detect:
// pattern occurrence counts c(p), pattern co-occurrence counts c(p1,p2),
// and the (normalized) point-wise mutual information computation of
// Section 2.1 with the Jelinek–Mercer smoothing of Section 3.3. The
// co-occurrence dictionary can be backed either by an exact hash map or by
// a count-min sketch (Section 3.4) to trade memory for bounded
// over-estimation.
package stats

import (
	"encoding/binary"
	"errors"
	"sort"

	"repro/internal/sketch"
)

// PairKey packs an unordered pattern-ID pair into a single uint64 key with
// the smaller ID in the high bits, so (a,b) and (b,a) share a key.
func PairKey(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// PairStore is a dictionary from unordered pattern-ID pairs to
// co-occurrence counts.
type PairStore interface {
	// Add increments the count of the pair by n.
	Add(a, b uint32, n uint32)
	// Get returns the (possibly estimated) count of the pair.
	Get(a, b uint32) uint64
	// Bytes returns the approximate in-memory footprint of the store.
	Bytes() int
	// Entries returns the number of stored entries, or -1 if unknown
	// (sketch-backed stores do not track distinct keys).
	Entries() int
}

// MapPairStore is an exact PairStore backed by a hash map.
type MapPairStore struct {
	m map[uint64]uint32
}

// NewMapPairStore returns an empty exact pair store.
func NewMapPairStore() *MapPairStore {
	return &MapPairStore{m: make(map[uint64]uint32)}
}

// Add implements PairStore.
func (s *MapPairStore) Add(a, b uint32, n uint32) {
	s.m[PairKey(a, b)] += n
}

// Get implements PairStore.
func (s *MapPairStore) Get(a, b uint32) uint64 {
	return uint64(s.m[PairKey(a, b)])
}

// Bytes implements PairStore. Go map entries for (uint64 → uint32) cost
// roughly 20 bytes including bucket overhead.
func (s *MapPairStore) Bytes() int { return len(s.m) * 20 }

// Entries implements PairStore.
func (s *MapPairStore) Entries() int { return len(s.m) }

// Keys returns all stored pair keys with their counts; used when
// compressing an exact store into a sketch.
func (s *MapPairStore) Keys() map[uint64]uint32 { return s.m }

// Merge adds every entry of another exact store into the receiver. Both
// stores must be keyed by the same pattern-ID space (LanguageStats.Merge
// remaps IDs before delegating here when they are not).
func (s *MapPairStore) Merge(other *MapPairStore) {
	for k, v := range other.m {
		s.m[k] += v
	}
}

// MarshalBinary serializes the store with keys in sorted order for
// determinism.
func (s *MapPairStore) MarshalBinary() ([]byte, error) {
	keys := make([]uint64, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf := make([]byte, 8, 8+len(keys)*12)
	binary.LittleEndian.PutUint64(buf, uint64(len(keys)))
	var tmp [12]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(tmp[0:], k)
		binary.LittleEndian.PutUint32(tmp[8:], s.m[k])
		buf = append(buf, tmp[:]...)
	}
	return buf, nil
}

// UnmarshalBinary deserializes a store produced by MarshalBinary.
func (s *MapPairStore) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return errors.New("stats: truncated pair store")
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) != 8+n*12 {
		return errors.New("stats: wrong pair store payload size")
	}
	s.m = make(map[uint64]uint32, n)
	off := 8
	for i := uint64(0); i < n; i++ {
		k := binary.LittleEndian.Uint64(data[off:])
		v := binary.LittleEndian.Uint32(data[off+8:])
		s.m[k] = v
		off += 12
	}
	return nil
}

// SketchPairStore is a PairStore backed by a count-min sketch. Counts are
// never under-estimated, and over-estimation is bounded by the sketch
// dimensions; on the power-law distributed co-occurrence counts observed in
// real table corpora the practical error is small (Section 3.4).
type SketchPairStore struct {
	cm *sketch.CountMin
}

// NewSketchPairStore returns a sketch-backed pair store with the given
// dimensions. Updates are plain (non-conservative): reads go through the
// count-mean-min correction, whose collision-noise model assumes additive
// rows — conservative update would break it and systematically
// under-count, turning compatible pairs into false positives.
func NewSketchPairStore(width, depth int) (*SketchPairStore, error) {
	cm, err := sketch.New(width, depth, false)
	if err != nil {
		return nil, err
	}
	return &SketchPairStore{cm: cm}, nil
}

// CompressPairStore builds a sketch-backed store holding the contents of an
// exact store, dimensioned to use approximately ratio (0 < ratio ≤ 1) of
// the exact store's memory, with the given depth. This mirrors the paper's
// experiment of compressing co-occurrence data to 1%/10% of its original
// size (Figure 8a).
func CompressPairStore(exact *MapPairStore, ratio float64, depth int) (*SketchPairStore, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, errors.New("stats: ratio must be in (0,1]")
	}
	if depth < 1 {
		depth = 4
	}
	width := int(float64(exact.Bytes()) * ratio / float64(depth*4))
	if width < 16 {
		width = 16
	}
	s, err := NewSketchPairStore(width, depth)
	if err != nil {
		return nil, err
	}
	for k, v := range exact.Keys() {
		s.cm.Add(k, v)
	}
	return s, nil
}

// Add implements PairStore.
func (s *SketchPairStore) Add(a, b uint32, n uint32) { s.cm.Add(PairKey(a, b), n) }

// Get implements PairStore.
func (s *SketchPairStore) Get(a, b uint32) uint64 { return s.cm.EstimateCorrected(PairKey(a, b)) }

// Bytes implements PairStore.
func (s *SketchPairStore) Bytes() int { return s.cm.Bytes() }

// Entries implements PairStore.
func (s *SketchPairStore) Entries() int { return -1 }

// Merge folds another sketch-backed store into the receiver by element-wise
// sketch merge — exact for these (non-conservative) sketches, provided both
// stores were built over the same pattern-ID space.
func (s *SketchPairStore) Merge(other *SketchPairStore) error {
	return s.cm.Merge(other.cm)
}

// MarshalBinary serializes the underlying sketch.
func (s *SketchPairStore) MarshalBinary() ([]byte, error) { return s.cm.MarshalBinary() }

// UnmarshalBinary deserializes the underlying sketch.
func (s *SketchPairStore) UnmarshalBinary(data []byte) error {
	s.cm = new(sketch.CountMin)
	return s.cm.UnmarshalBinary(data)
}
