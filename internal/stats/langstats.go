package stats

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"sort"

	"repro/internal/pattern"
)

// LanguageStats holds the corpus statistics of one generalization language:
// how many columns each pattern occurs in, and how many columns each pair
// of patterns co-occurs in. NPMI queries (Section 2.1) are answered from
// these counts with Jelinek–Mercer smoothing (Section 3.3).
type LanguageStats struct {
	lang pattern.Language
	n    uint64 // number of columns observed
	// ids maps pattern.Hash64(pattern) → pattern ID. Interning by hash
	// lets the hot path (Language.HashRuns) avoid building pattern strings
	// per value occurrence.
	ids map[uint64]uint32
	// byString maps the rendered pattern to its ID, for string queries and
	// serialization.
	byString  map[string]uint32
	patterns  []string
	occ       []uint32
	pairs     PairStore
	smoothing float64

	// maxPatternsPerColumn caps the number of distinct patterns of a single
	// column that contribute pairs, bounding the O(k²) pair update for
	// pathologically diverse columns. 0 means no cap.
	maxPatternsPerColumn int
}

// DefaultSmoothing is the paper's default Jelinek–Mercer factor f = 0.1.
const DefaultSmoothing = 0.1

// NewLanguageStats returns empty statistics for lang with an exact pair
// store and the given smoothing factor f ∈ [0,1].
func NewLanguageStats(lang pattern.Language, smoothing float64) *LanguageStats {
	return &LanguageStats{
		lang:                 lang,
		ids:                  make(map[uint64]uint32),
		byString:             make(map[string]uint32),
		pairs:                NewMapPairStore(),
		smoothing:            smoothing,
		maxPatternsPerColumn: 64,
	}
}

// Language returns the generalization language these statistics belong to.
func (ls *LanguageStats) Language() pattern.Language { return ls.lang }

// Columns returns N, the number of columns observed.
func (ls *LanguageStats) Columns() uint64 { return ls.n }

// DistinctPatterns returns the number of distinct patterns observed.
func (ls *LanguageStats) DistinctPatterns() int { return len(ls.patterns) }

// SetSmoothing sets the Jelinek–Mercer factor f used by NPMI queries.
func (ls *LanguageStats) SetSmoothing(f float64) { ls.smoothing = f }

// Smoothing returns the current Jelinek–Mercer factor.
func (ls *LanguageStats) Smoothing() float64 { return ls.smoothing }

// internRuns returns the stable ID of the pattern of rs, allocating one
// (and rendering the pattern string, once per distinct pattern) if new.
func (ls *LanguageStats) internRuns(rs pattern.Runs) uint32 {
	h := ls.lang.HashRuns(rs)
	if id, ok := ls.ids[h]; ok {
		return id
	}
	p := ls.lang.FromRuns(rs)
	id := uint32(len(ls.patterns))
	ls.ids[h] = id
	ls.byString[p] = id
	ls.patterns = append(ls.patterns, p)
	ls.occ = append(ls.occ, 0)
	return id
}

// internPattern is internRuns for an already-rendered pattern string; used
// when merging shards, whose patterns arrive rendered.
func (ls *LanguageStats) internPattern(p string) uint32 {
	if id, ok := ls.byString[p]; ok {
		return id
	}
	id := uint32(len(ls.patterns))
	ls.ids[pattern.Hash64(p)] = id
	ls.byString[p] = id
	ls.patterns = append(ls.patterns, p)
	ls.occ = append(ls.occ, 0)
	return id
}

// satAdd32 adds saturating at the uint32 cap, so merging many shards of a
// web-scale corpus can never wrap a counter.
func satAdd32(a, b uint32) uint32 {
	if s := uint64(a) + uint64(b); s <= math.MaxUint32 {
		return uint32(s)
	}
	return math.MaxUint32
}

// Merge folds another shard's statistics for the same language into the
// receiver: column counts, occurrence counts and pair co-occurrence counts
// are added, with the other shard's pattern IDs remapped onto the
// receiver's interning. Counts after merging equal those of a single-shard
// build over the concatenated column streams, whatever the sharding.
// Both stores must be exact (merge before sketch compression); the other
// shard is not modified.
func (ls *LanguageStats) Merge(other *LanguageStats) error {
	if other == nil {
		return errors.New("stats: cannot merge nil statistics")
	}
	if ls.lang.ID != other.lang.ID {
		return errors.New("stats: cannot merge statistics of different languages")
	}
	if _, ok := ls.pairs.(*MapPairStore); !ok {
		return errors.New("stats: merge target pair store is not exact")
	}
	otherExact, ok := other.pairs.(*MapPairStore)
	if !ok {
		return errors.New("stats: merge source pair store is not exact")
	}
	ls.n += other.n
	idMap := make([]uint32, len(other.patterns))
	for i, p := range other.patterns {
		id := ls.internPattern(p)
		ls.occ[id] = satAdd32(ls.occ[id], other.occ[i])
		idMap[i] = id
	}
	for k, v := range otherExact.m {
		a := idMap[uint32(k>>32)]
		b := idMap[uint32(k&0xffffffff)]
		ls.pairs.Add(a, b, v)
	}
	return nil
}

// Canonicalize renumbers pattern IDs into lexicographic pattern order and
// rewrites the occurrence table and pair store accordingly. After merging
// shards — whose interleaving-dependent interning order is otherwise
// nondeterministic — canonicalizing makes the statistics, and everything
// serialized from them, byte-for-byte reproducible for a given corpus
// regardless of shard count, worker scheduling, or checkpoint/resume
// boundaries. Requires an exact pair store.
func (ls *LanguageStats) Canonicalize() error {
	exact, ok := ls.pairs.(*MapPairStore)
	if !ok {
		return errors.New("stats: canonicalize requires an exact pair store")
	}
	order := make([]uint32, len(ls.patterns))
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool { return ls.patterns[order[i]] < ls.patterns[order[j]] })
	perm := make([]uint32, len(order)) // old ID → new ID
	patterns := make([]string, len(order))
	occ := make([]uint32, len(order))
	for newID, oldID := range order {
		perm[oldID] = uint32(newID)
		patterns[newID] = ls.patterns[oldID]
		occ[newID] = ls.occ[oldID]
	}
	ls.patterns, ls.occ = patterns, occ
	ls.ids = make(map[uint64]uint32, len(patterns))
	ls.byString = make(map[string]uint32, len(patterns))
	for id, p := range patterns {
		ls.ids[pattern.Hash64(p)] = uint32(id)
		ls.byString[p] = uint32(id)
	}
	remapped := NewMapPairStore()
	for k, v := range exact.m {
		remapped.Add(perm[uint32(k>>32)], perm[uint32(k&0xffffffff)], v)
	}
	ls.pairs = remapped
	return nil
}

// AddColumnRuns records one corpus column given the category-run encodings
// of its distinct values. Identical patterns within the column are counted
// once (occurrence and co-occurrence are at column granularity).
func (ls *LanguageStats) AddColumnRuns(values []pattern.Runs) {
	ls.n++
	seen := make(map[uint32]struct{}, 4)
	var idList []uint32
	for _, rs := range values {
		id := ls.internRuns(rs)
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		idList = append(idList, id)
		ls.occ[id]++
	}
	if ls.maxPatternsPerColumn > 0 && len(idList) > ls.maxPatternsPerColumn {
		idList = idList[:ls.maxPatternsPerColumn]
	}
	for i := 0; i < len(idList); i++ {
		for j := i + 1; j < len(idList); j++ {
			ls.pairs.Add(idList[i], idList[j], 1)
		}
	}
}

// AddColumn records one corpus column given its distinct values as strings.
func (ls *LanguageStats) AddColumn(values []string) {
	runs := make([]pattern.Runs, len(values))
	for i, v := range values {
		runs[i] = pattern.Encode(v)
	}
	ls.AddColumnRuns(runs)
}

// PatternCount returns c(p), the number of columns containing pattern p.
func (ls *LanguageStats) PatternCount(p string) uint64 {
	id, ok := ls.byString[p]
	if !ok {
		return 0
	}
	return uint64(ls.occ[id])
}

// pairCountByID returns c(p1,p2) for interned pattern IDs, clamped by the
// marginals (a sketch may over-estimate, but co-occurrence can never exceed
// either pattern's own column count).
func (ls *LanguageStats) pairCountByID(id1, id2 uint32) uint64 {
	if id1 == id2 {
		return 0
	}
	c := ls.pairs.Get(id1, id2)
	if m := uint64(ls.occ[id1]); c > m {
		c = m
	}
	if m := uint64(ls.occ[id2]); c > m {
		c = m
	}
	return c
}

// PairCount returns c(p1,p2), the (possibly sketch-estimated) number of
// columns containing both patterns.
func (ls *LanguageStats) PairCount(p1, p2 string) uint64 {
	id1, ok1 := ls.byString[p1]
	id2, ok2 := ls.byString[p2]
	if !ok1 || !ok2 {
		return 0
	}
	return ls.pairCountByID(id1, id2)
}

// NPMIValues generalizes two raw values under the language and returns
// their pattern-level NPMI.
func (ls *LanguageStats) NPMIValues(v1, v2 string) float64 {
	return ls.NPMIRuns(pattern.Encode(v1), pattern.Encode(v2))
}

// NPMIRuns generalizes two category-run encoded values and returns their
// pattern-level NPMI. This is the hot path used during calibration and
// detection; it never materializes pattern strings.
func (ls *LanguageStats) NPMIRuns(r1, r2 pattern.Runs) float64 {
	h1 := ls.lang.HashRuns(r1)
	h2 := ls.lang.HashRuns(r2)
	if h1 == h2 {
		return 1
	}
	if ls.n == 0 {
		return 0
	}
	var c1, c2, c12 float64
	id1, ok1 := ls.ids[h1]
	id2, ok2 := ls.ids[h2]
	if ok1 {
		c1 = float64(ls.occ[id1])
	}
	if ok2 {
		c2 = float64(ls.occ[id2])
	}
	if ok1 && ok2 {
		c12 = float64(ls.pairCountByID(id1, id2))
	}
	return ls.npmiFromCounts(c1, c2, c12)
}

// NPMIRunsLOO is NPMIRuns with leave-one-out discounting for
// distant-supervision calibration: the training pair's own source columns
// are part of the corpus statistics, so each marginal is reduced by one
// column and — when both values come from the same column (a T+ pair) —
// the co-occurrence count is reduced by one as well. Without this, sparse
// languages separate T+ from T− perfectly via the self-contribution
// (c12 ≥ 1 for every same-column pair) and calibrate to spuriously
// aggressive thresholds.
func (ls *LanguageStats) NPMIRunsLOO(r1, r2 pattern.Runs, sameColumn bool) float64 {
	h1 := ls.lang.HashRuns(r1)
	h2 := ls.lang.HashRuns(r2)
	if h1 == h2 {
		return 1
	}
	if ls.n == 0 {
		return 0
	}
	var c1, c2, c12 float64
	id1, ok1 := ls.ids[h1]
	id2, ok2 := ls.ids[h2]
	if ok1 {
		c1 = float64(ls.occ[id1]) - 1
	}
	if ok2 {
		c2 = float64(ls.occ[id2]) - 1
	}
	if ok1 && ok2 {
		c12 = float64(ls.pairCountByID(id1, id2))
		if sameColumn {
			c12--
		}
	}
	if c1 < 0 {
		c1 = 0
	}
	if c2 < 0 {
		c2 = 0
	}
	if c12 < 0 {
		c12 = 0
	}
	if c12 > c1 {
		c12 = c1
	}
	if c12 > c2 {
		c12 = c2
	}
	return ls.npmiFromCounts(c1, c2, c12)
}

// NPMI returns the normalized point-wise mutual information of two patterns
// (Equation 2), smoothed per Equation 10, clamped to [−1, 1]. Identical
// patterns are perfectly compatible (NPMI = 1, which also follows from the
// formula when the pattern has been observed). A pair whose smoothed
// co-occurrence is zero returns −1.
func (ls *LanguageStats) NPMI(p1, p2 string) float64 {
	if p1 == p2 {
		return 1
	}
	if ls.n == 0 {
		return 0
	}
	var c1, c2, c12 float64
	id1, ok1 := ls.byString[p1]
	id2, ok2 := ls.byString[p2]
	if ok1 {
		c1 = float64(ls.occ[id1])
	}
	if ok2 {
		c2 = float64(ls.occ[id2])
	}
	if ok1 && ok2 {
		c12 = float64(ls.pairCountByID(id1, id2))
	}
	return ls.npmiFromCounts(c1, c2, c12)
}

// npmiFromCounts computes smoothed NPMI from raw counts.
func (ls *LanguageStats) npmiFromCounts(c1, c2, c12 float64) float64 {
	n := float64(ls.n)
	// Jelinek–Mercer smoothing: blend the observed co-occurrence with its
	// expectation under independence, E = c1·c2/N.
	f := ls.smoothing
	c12s := (1-f)*c12 + f*c1*c2/n
	if c12s <= 0 {
		return -1
	}
	p12 := c12s / n
	pp1 := c1 / n
	pp2 := c2 / n
	pmi := math.Log(p12 / (pp1 * pp2))
	denom := -math.Log(p12)
	if denom <= 0 {
		// p12 ≥ 1 can only arise from estimation noise; the pair co-occurs
		// in essentially every column.
		return 1
	}
	npmi := pmi / denom
	if npmi > 1 {
		return 1
	}
	if npmi < -1 {
		return -1
	}
	return npmi
}

// Bytes returns the approximate memory footprint of the statistics: interned
// pattern strings, occurrence counters and the pair store. This is the
// size(L) used by the memory-budgeted language selection (Definition 5).
func (ls *LanguageStats) Bytes() int {
	b := 0
	for _, p := range ls.patterns {
		b += len(p) + 16 // string bytes + header
	}
	b += len(ls.patterns) * 48 // hash + string map entry overhead
	b += len(ls.occ) * 4
	b += ls.pairs.Bytes()
	return b
}

// PairStoreEntries returns the number of co-occurrence entries (−1 when
// sketch-backed).
func (ls *LanguageStats) PairStoreEntries() int { return ls.pairs.Entries() }

// CompressToSketch replaces the exact pair store with a count-min sketch
// using approximately ratio of the exact store's memory (Figure 8a). It is
// an error to compress an already-compressed store.
func (ls *LanguageStats) CompressToSketch(ratio float64, depth int) error {
	exact, ok := ls.pairs.(*MapPairStore)
	if !ok {
		return errors.New("stats: pair store is not exact")
	}
	s, err := CompressPairStore(exact, ratio, depth)
	if err != nil {
		return err
	}
	ls.pairs = s
	return nil
}

// SketchCopy returns a copy of the statistics whose pair store is a
// count-min sketch at approximately ratio of the exact store's memory; the
// receiver keeps its exact store. Pattern/occurrence tables are shared
// (they are read-only after building).
func (ls *LanguageStats) SketchCopy(ratio float64, depth int) (*LanguageStats, error) {
	exact, ok := ls.pairs.(*MapPairStore)
	if !ok {
		return nil, errors.New("stats: pair store is not exact")
	}
	s, err := CompressPairStore(exact, ratio, depth)
	if err != nil {
		return nil, err
	}
	cp := *ls
	cp.pairs = s
	return &cp, nil
}

// PairNPMIDistribution returns the NPMI values of all stored co-occurring
// pattern pairs, sorted ascending. Used to reproduce the CDF analysis of
// Figure 17(b).
func (ls *LanguageStats) PairNPMIDistribution() []float64 {
	exact, ok := ls.pairs.(*MapPairStore)
	if !ok {
		return nil
	}
	out := make([]float64, 0, len(exact.m))
	for k := range exact.m {
		a := uint32(k >> 32)
		b := uint32(k & 0xffffffff)
		out = append(out, ls.NPMI(ls.patterns[a], ls.patterns[b]))
	}
	sort.Float64s(out)
	return out
}

// MarshalBinary serializes the statistics (language, N, patterns with
// counts, smoothing, and the exact pair store). Sketch-backed stats must be
// serialized before compression.
func (ls *LanguageStats) MarshalBinary() ([]byte, error) {
	exact, ok := ls.pairs.(*MapPairStore)
	if !ok {
		return nil, errors.New("stats: only exact stores serialize; compress after loading")
	}
	var buf bytes.Buffer
	var tmp [8]byte
	wu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf.Write(tmp[:])
	}
	wu64(uint64(ls.lang.ID))
	wu64(ls.n)
	wu64(math.Float64bits(ls.smoothing))
	wu64(uint64(ls.maxPatternsPerColumn))
	wu64(uint64(len(ls.patterns)))
	for i, p := range ls.patterns {
		wu64(uint64(len(p)))
		buf.WriteString(p)
		binary.LittleEndian.PutUint32(tmp[:4], ls.occ[i])
		buf.Write(tmp[:4])
	}
	pairData, err := exact.MarshalBinary()
	if err != nil {
		return nil, err
	}
	wu64(uint64(len(pairData)))
	buf.Write(pairData)
	return buf.Bytes(), nil
}

// UnmarshalBinary deserializes statistics produced by MarshalBinary.
func (ls *LanguageStats) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var tmp [8]byte
	ru64 := func() (uint64, error) {
		if _, err := r.Read(tmp[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(tmp[:]), nil
	}
	langID, err := ru64()
	if err != nil {
		return errors.New("stats: truncated header")
	}
	ls.lang = pattern.ByID(int(langID))
	if ls.lang.ID < 0 {
		return errors.New("stats: unknown language id")
	}
	if ls.n, err = ru64(); err != nil {
		return err
	}
	sm, err := ru64()
	if err != nil {
		return err
	}
	ls.smoothing = math.Float64frombits(sm)
	mp, err := ru64()
	if err != nil {
		return err
	}
	ls.maxPatternsPerColumn = int(mp)
	np, err := ru64()
	if err != nil {
		return err
	}
	if np > uint64(len(data)) {
		return errors.New("stats: corrupt pattern count")
	}
	ls.patterns = make([]string, np)
	ls.occ = make([]uint32, np)
	ls.ids = make(map[uint64]uint32, np)
	ls.byString = make(map[string]uint32, np)
	for i := uint64(0); i < np; i++ {
		l, err := ru64()
		if err != nil {
			return err
		}
		if l > uint64(r.Len()) {
			return errors.New("stats: corrupt pattern length")
		}
		pb := make([]byte, l)
		if _, err := r.Read(pb); err != nil {
			return err
		}
		if _, err := r.Read(tmp[:4]); err != nil {
			return err
		}
		ls.patterns[i] = string(pb)
		ls.occ[i] = binary.LittleEndian.Uint32(tmp[:4])
		ls.ids[pattern.Hash64(ls.patterns[i])] = uint32(i)
		ls.byString[ls.patterns[i]] = uint32(i)
	}
	pl, err := ru64()
	if err != nil {
		return err
	}
	if pl != uint64(r.Len()) {
		return errors.New("stats: corrupt pair store length")
	}
	pairData := make([]byte, pl)
	if _, err := r.Read(pairData); err != nil {
		return err
	}
	store := NewMapPairStore()
	if err := store.UnmarshalBinary(pairData); err != nil {
		return err
	}
	ls.pairs = store
	return nil
}
