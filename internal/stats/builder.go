package stats

import "repro/internal/pattern"

// Builder accumulates corpus statistics for many generalization languages
// in a single pass over the columns, encoding each distinct value into
// category runs exactly once.
type Builder struct {
	stats []*LanguageStats
}

// NewBuilder returns a builder for the given languages, all using the same
// smoothing factor.
func NewBuilder(langs []pattern.Language, smoothing float64) *Builder {
	b := &Builder{stats: make([]*LanguageStats, len(langs))}
	for i, l := range langs {
		b.stats[i] = NewLanguageStats(l, smoothing)
	}
	return b
}

// AddColumn records one corpus column under every language.
func (b *Builder) AddColumn(values []string) {
	seen := make(map[string]struct{}, len(values))
	runs := make([]pattern.Runs, 0, len(values))
	for _, v := range values {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		runs = append(runs, pattern.Encode(v))
	}
	for _, ls := range b.stats {
		ls.AddColumnRuns(runs)
	}
}

// Stats returns the per-language statistics, in the order the languages
// were given to NewBuilder.
func (b *Builder) Stats() []*LanguageStats { return b.stats }
