package stats

import (
	"errors"

	"repro/internal/pattern"
)

// Builder accumulates corpus statistics for many generalization languages
// in a single pass over the columns, encoding each distinct value into
// category runs exactly once.
type Builder struct {
	stats []*LanguageStats
}

// NewBuilder returns a builder for the given languages, all using the same
// smoothing factor.
func NewBuilder(langs []pattern.Language, smoothing float64) *Builder {
	b := &Builder{stats: make([]*LanguageStats, len(langs))}
	for i, l := range langs {
		b.stats[i] = NewLanguageStats(l, smoothing)
	}
	return b
}

// AddColumn records one corpus column under every language.
func (b *Builder) AddColumn(values []string) {
	seen := make(map[string]struct{}, len(values))
	runs := make([]pattern.Runs, 0, len(values))
	for _, v := range values {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		runs = append(runs, pattern.Encode(v))
	}
	for _, ls := range b.stats {
		ls.AddColumnRuns(runs)
	}
}

// Stats returns the per-language statistics, in the order the languages
// were given to NewBuilder.
func (b *Builder) Stats() []*LanguageStats { return b.stats }

// Merge folds another builder's partial statistics into the receiver,
// language by language. Both builders must have been constructed over the
// same language list. Used by the sharded corpus pipeline: each worker folds
// its share of columns into a private builder, and the shards are merged
// into the final statistics.
func (b *Builder) Merge(other *Builder) error {
	if other == nil {
		return errors.New("stats: cannot merge nil builder")
	}
	if len(b.stats) != len(other.stats) {
		return errors.New("stats: builders cover different language sets")
	}
	for i, ls := range b.stats {
		if err := ls.Merge(other.stats[i]); err != nil {
			return err
		}
	}
	return nil
}

// Canonicalize renumbers every language's pattern IDs into lexicographic
// order, making merged statistics deterministic regardless of sharding.
func (b *Builder) Canonicalize() error {
	for _, ls := range b.stats {
		if err := ls.Canonicalize(); err != nil {
			return err
		}
	}
	return nil
}
