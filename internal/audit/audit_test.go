package audit

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
	"repro/internal/semantic"
)

var (
	mdlOnce sync.Once
	mdlDet  *core.Detector
	mdlSem  *semantic.Model
	mdlErr  error
)

// trainedModel builds one small model for the whole package, the same
// cheap configuration the service tests use.
func trainedModel(t *testing.T) (*core.Detector, *semantic.Model) {
	t.Helper()
	mdlOnce.Do(func() {
		c := corpus.Generate(corpus.WebProfile(), 2000, 31)
		cfg := core.DefaultTrainConfig()
		cfg.Languages = []pattern.Language{pattern.Crude(), pattern.L1(), pattern.L2()}
		ds := distsup.DefaultConfig()
		ds.PositivePairs, ds.NegativePairs = 2000, 2000
		cfg.DistSup = ds
		mdlDet, _, mdlErr = core.Train(c, cfg)
		if mdlErr != nil {
			return
		}
		mdlSem, mdlErr = semantic.Train(c, semantic.DefaultConfig())
	})
	if mdlErr != nil {
		t.Fatal(mdlErr)
	}
	return mdlDet, mdlSem
}

// auditTable returns a dirty multi-column table as a check-table-shaped
// map, with names disambiguated (generated column names can repeat).
func auditTable(t *testing.T, cols int) map[string][]string {
	t.Helper()
	c := corpus.Generate(corpus.EntXLSProfile(), cols, 99)
	out := make(map[string][]string, len(c.Columns))
	for i, col := range c.Columns {
		out[fmt.Sprintf("%03d-%s", i, col.Name)] = col.Values
	}
	return out
}

// TestCheckTableParallelMatchesSequential pins the satellite contract:
// the bounded-pool table scorer returns exactly the findings of a
// sequential pass, for several worker counts.
func TestCheckTableParallelMatchesSequential(t *testing.T) {
	det, sem := trainedModel(t)
	table := auditTable(t, 48)
	ctx := context.Background()

	seq := CheckTable(ctx, det, sem, table, 0, 1)
	// json.Marshal sorts map keys, so equal maps serialize to equal bytes.
	want, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("sequential pass produced no findings; test table too clean")
	}
	for _, workers := range []int{2, 4, 8, 64} {
		par := CheckTable(ctx, det, sem, table, 0, workers)
		got, err := json.Marshal(par)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d: parallel findings differ from sequential\nseq: %s\npar: %s",
				workers, want, got)
		}
	}
}

func TestCheckColumnDefaultMinConfidence(t *testing.T) {
	det, sem := trainedModel(t)
	table := auditTable(t, 32)
	ctx := context.Background()
	checked := 0
	for _, values := range table {
		for _, f := range CheckColumn(ctx, det, sem, values, 0) {
			checked++
			if f.Confidence < DefaultMinConfidence {
				t.Fatalf("minConf<=0 must default to %v, got finding at %v",
					DefaultMinConfidence, f.Confidence)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no findings to check")
	}
}

// TestCheckColumnDeterministic is the property the batch-job resume
// guarantee rests on: identical (model, column) inputs serialize to
// identical finding bytes.
func TestCheckColumnDeterministic(t *testing.T) {
	det, sem := trainedModel(t)
	table := auditTable(t, 16)
	ctx := context.Background()
	for name, values := range table {
		a, _ := json.Marshal(CheckColumn(ctx, det, sem, values, 0))
		b, _ := json.Marshal(CheckColumn(ctx, det, sem, values, 0))
		if string(a) != string(b) {
			t.Fatalf("column %s: repeated runs differ:\n%s\n%s", name, a, b)
		}
	}
}

func TestCheckTableSkipsEmptyColumns(t *testing.T) {
	det, sem := trainedModel(t)
	table := map[string][]string{
		"clean": {"alpha", "alpha", "alpha", "alpha"},
	}
	out := CheckTable(context.Background(), det, sem, table, 0, 4)
	if fs, ok := out["clean"]; ok && len(fs) == 0 {
		t.Fatal("CheckTable must omit columns without findings")
	}
}
