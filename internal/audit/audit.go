// Package audit is the shared column-scoring layer between the
// synchronous serving handlers (internal/service) and the asynchronous
// batch-job executor (internal/jobs). Both paths must produce identical
// findings for identical inputs — the batch API's crash/resume guarantee
// is "byte-identical to an uninterrupted run", and the parallel
// /v1/check-table path is tested against the sequential one — so the
// single source of truth for "score one column against the snapshotted
// model" lives here rather than being duplicated per caller.
package audit

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/repair"
	"repro/internal/semantic"
)

// DefaultMinConfidence is applied when a caller passes minConf <= 0,
// matching the historical /v1/check-column default.
const DefaultMinConfidence = 0.5

// Finding is one flagged cell, JSON-shaped for the HTTP API. It combines
// the pattern-level detection of the paper's core algorithm with the
// optional value-level semantic check and a conservative repair
// suggestion.
type Finding struct {
	Value      string  `json:"value"`
	Index      int     `json:"index"`
	Partner    string  `json:"partner"`
	Confidence float64 `json:"confidence"`
	// Kind is "pattern", "semantic", or "domain" (a schema-hinted
	// semantic-domain format check).
	Kind string `json:"kind"`
	// Suggestion, when non-empty, proposes a repaired value rendered in
	// the column's dominant format; SuggestionRule names the repair.
	Suggestion     string `json:"suggestion,omitempty"`
	SuggestionRule string `json:"suggestion_rule,omitempty"`
	// Source and Table carry the column's provenance (database driver and
	// table for dbsource columns) so batch results say where a bad cell
	// lives, not just its column name. Empty for sources without one.
	Source string `json:"source,omitempty"`
	Table  string `json:"table,omitempty"`
}

// CheckColumn runs the pattern detector and (when sem is non-nil) the
// semantic detector over one column, filtering findings below minConf
// (<= 0 means DefaultMinConfidence) and attaching repair suggestions to
// pattern findings. The pattern and semantic passes are timed as nested
// spans of ctx. The result is deterministic in (det, sem, values,
// minConf): findings come back in detector order, so two runs over the
// same model and column serialize to identical bytes — the property the
// batch-job resume tests assert.
func CheckColumn(ctx context.Context, det *core.Detector, sem *semantic.Model, values []string, minConf float64) []Finding {
	return CheckColumnHinted(ctx, det, sem, values, minConf, "")
}

// CheckColumnHinted is CheckColumn plus an optional semantic-domain hint.
// A non-empty hint — typically derived from database schema metadata, a
// column named email or a DATE-typed column — runs semantic.CheckDomain
// after the pattern and co-occurrence passes and appends its findings
// with Kind "domain". The hint extends the finding set; it never changes
// the unhinted findings, so CheckColumn remains a strict prefix and the
// determinism contract above carries over hint included.
func CheckColumnHinted(ctx context.Context, det *core.Detector, sem *semantic.Model, values []string, minConf float64, hint string) []Finding {
	if minConf <= 0 {
		minConf = DefaultMinConfidence
	}
	var out []Finding
	_, endPattern := observe.Span(ctx, "detect_pattern")
	for _, f := range det.DetectColumn(values) {
		if f.Confidence < minConf {
			continue
		}
		sf := Finding{
			Value: f.Value, Index: f.Index, Partner: f.Partner,
			Confidence: f.Confidence, Kind: "pattern",
		}
		if sug, ok := repair.Suggest(values, f.Value); ok {
			sf.Suggestion = sug.Proposed
			sf.SuggestionRule = sug.Rule
		}
		out = append(out, sf)
	}
	endPattern()
	if sem != nil {
		_, endSem := observe.Span(ctx, "detect_semantic")
		for _, f := range sem.DetectColumn(values) {
			if f.Confidence < minConf {
				continue
			}
			out = append(out, Finding{
				Value: f.Value, Index: f.Index, Partner: f.Partner,
				Confidence: f.Confidence, Kind: "semantic",
			})
		}
		endSem()
	}
	if hint != "" {
		_, endDomain := observe.Span(ctx, "detect_domain")
		for _, f := range semantic.CheckDomain(hint, values) {
			if f.Confidence < minConf {
				continue
			}
			out = append(out, Finding{
				Value: f.Value, Index: f.Index, Partner: f.Partner,
				Confidence: f.Confidence, Kind: "domain",
			})
		}
		endDomain()
	}
	return out
}

// CheckTable scores every column of a table with a bounded worker pool
// (workers <= 1 runs sequentially) and returns only the columns that
// produced findings. Columns are independent, so the result is identical
// to a sequential pass regardless of worker count or scheduling — there
// is a test pinning parallel == sequential.
func CheckTable(ctx context.Context, det *core.Detector, sem *semantic.Model, columns map[string][]string, minConf float64, workers int) map[string][]Finding {
	out := make(map[string][]Finding)
	if workers > len(columns) {
		workers = len(columns)
	}
	if workers <= 1 {
		for name, vs := range columns {
			if fs := CheckColumn(ctx, det, sem, vs, minConf); len(fs) > 0 {
				out[name] = fs
			}
		}
		return out
	}
	names := make(chan string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range names {
				if fs := CheckColumn(ctx, det, sem, columns[name], minConf); len(fs) > 0 {
					mu.Lock()
					out[name] = fs
					mu.Unlock()
				}
			}
		}()
	}
	for name := range columns {
		names <- name
	}
	close(names)
	wg.Wait()
	return out
}
