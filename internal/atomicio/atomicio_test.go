package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("read %q, want v1", got)
	}
	if err := WriteFile(path, []byte("v2 longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2 longer" {
		t.Fatalf("read %q, want v2 longer", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("perm = %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteToFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "torn part")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteTo = %v, want the injected error", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "precious" {
		t.Fatalf("destination corrupted: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s leaked after failed write", e.Name())
		}
	}
}

func TestWriteToNoTempLeakOnSuccess(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "a" {
		t.Errorf("directory holds %v, want just [a]", ents)
	}
}

func TestWriteToMissingDirectory(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "x"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}

func TestWriterStreamsAndCommits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.tsv")
	w, err := Create(path, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if _, err := io.WriteString(w, "1\t2\tx\n"); err != nil {
		t.Fatal(err)
	}
	// Staged content must be invisible until Commit.
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("destination visible before Commit (stat err = %v)", err)
	}
	if _, err := io.WriteString(w, "3\t4\ty\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1\t2\tx\n3\t4\ty\n" {
		t.Fatalf("read %q, want the streamed lines in order", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Errorf("perm = %v, want 0600", fi.Mode().Perm())
	}
	// The deferred Abort after Commit must not remove the published file.
	w.Abort()
	if _, err := os.Stat(path); err != nil {
		t.Errorf("Abort after Commit removed the published file: %v", err)
	}
}

func TestWriterAbortLeavesDestinationUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Create(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "torn part"); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent
	if got, _ := os.ReadFile(path); string(got) != "precious" {
		t.Fatalf("destination corrupted by aborted writer: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s leaked after Abort", e.Name())
		}
	}
}

func TestWriteToStreamsLargePayload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big")
	chunk := strings.Repeat("0123456789abcdef", 4096) // 64 KiB
	const chunks = 8
	err := WriteTo(path, 0o644, func(w io.Writer) error {
		for i := 0; i < chunks; i++ {
			if _, err := io.WriteString(w, chunk); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(chunk) * chunks); fi.Size() != want {
		t.Errorf("size = %d, want %d", fi.Size(), want)
	}
}
