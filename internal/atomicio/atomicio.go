// Package atomicio provides crash-durable file replacement for every
// artifact the system persists — serialized models, checkpoint shards, and
// generated corpus files. The write protocol is the standard one:
//
//	write to a temp file in the destination directory
//	fsync the temp file
//	rename over the destination
//	fsync the parent directory
//
// A reader therefore observes either the complete old file or the complete
// new file, never a torn intermediate, and the rename itself survives a
// power cut once the directory entry is synced. Combined with the CRC64
// integrity envelope (internal/envelope) this gives end-to-end durability:
// atomicio prevents torn files from ever landing at the final path, and the
// envelope rejects any corruption that slips past the filesystem anyway.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteTo atomically replaces path with whatever write produces. The
// callback receives a buffered writer backed by a temp file in path's
// directory; on any failure the temp file is removed and the destination is
// left untouched.
func WriteTo(path string, perm os.FileMode, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	// The data must be on stable storage before the rename makes it
	// reachable; otherwise a crash can leave a fully-named empty file.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: fsync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	syncDir(dir)
	return nil
}

// WriteFile atomically replaces path with data (the durable counterpart of
// os.WriteFile).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
// Errors are deliberately ignored: some filesystems (and all of Windows)
// reject fsync on directories, and the rename itself already succeeded —
// the worst case of a failed directory sync is the pre-rename state after
// a power cut, which is exactly the atomicity contract.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
