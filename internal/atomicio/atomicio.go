// Package atomicio provides crash-durable file replacement for every
// artifact the system persists — serialized models, checkpoint shards, and
// generated corpus files. The write protocol is the standard one:
//
//	write to a temp file in the destination directory
//	fsync the temp file
//	rename over the destination
//	fsync the parent directory
//
// A reader therefore observes either the complete old file or the complete
// new file, never a torn intermediate, and the rename itself survives a
// power cut once the directory entry is synced. Combined with the CRC64
// integrity envelope (internal/envelope) this gives end-to-end durability:
// atomicio prevents torn files from ever landing at the final path, and the
// envelope rejects any corruption that slips past the filesystem anyway.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// A Writer stages an atomic replacement of its destination: writes stream
// into a temp file in the destination's directory, and only Commit makes
// them visible (fsync + rename + parent-dir fsync). Use it when the payload
// is produced incrementally over a long span — e.g. corpusgen streaming
// ground-truth labels as shards are generated — so nothing needs to be
// buffered in memory while still never exposing a torn file. Abort (safe to
// defer, a no-op after Commit) discards the staged content.
type Writer struct {
	tmp  *os.File
	path string
	perm os.FileMode
	done bool
}

// Create stages an atomic write to path. The caller must finish with Commit
// or Abort; until then the destination is untouched.
func Create(path string, perm os.FileMode) (*Writer, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &Writer{tmp: tmp, path: path, perm: perm}, nil
}

// Write implements io.Writer, appending to the staged temp file.
func (w *Writer) Write(p []byte) (int, error) { return w.tmp.Write(p) }

// Commit durably publishes the staged content at the destination path.
// The data is fsynced before the rename makes it reachable (otherwise a
// crash can leave a fully-named empty file), and the parent directory is
// synced after so the rename itself survives a power cut.
func (w *Writer) Commit() error {
	if w.done {
		return fmt.Errorf("atomicio: Commit after Commit/Abort of %s", w.path)
	}
	w.done = true
	fail := func(err error) error {
		w.tmp.Close()
		os.Remove(w.tmp.Name())
		return err
	}
	if err := w.tmp.Chmod(w.perm); err != nil {
		return fail(fmt.Errorf("atomicio: %w", err))
	}
	if err := w.tmp.Sync(); err != nil {
		return fail(fmt.Errorf("atomicio: fsync %s: %w", w.tmp.Name(), err))
	}
	if err := w.tmp.Close(); err != nil {
		os.Remove(w.tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	if err := os.Rename(w.tmp.Name(), w.path); err != nil {
		os.Remove(w.tmp.Name())
		return fmt.Errorf("atomicio: %w", err)
	}
	syncDir(filepath.Dir(w.path))
	return nil
}

// Abort discards the staged content, leaving the destination untouched. It
// is idempotent and a no-op after Commit, so it is safe to defer.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.tmp.Close()
	os.Remove(w.tmp.Name())
}

// WriteTo atomically replaces path with whatever write produces. The
// callback receives a writer backed by a temp file in path's directory; on
// any failure the temp file is removed and the destination is left
// untouched.
func WriteTo(path string, perm os.FileMode, write func(io.Writer) error) error {
	w, err := Create(path, perm)
	if err != nil {
		return err
	}
	defer w.Abort()
	if err := write(w); err != nil {
		return err
	}
	return w.Commit()
}

// WriteFile atomically replaces path with data (the durable counterpart of
// os.WriteFile).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-completed rename survives a crash.
// Errors are deliberately ignored: some filesystems (and all of Windows)
// reject fsync on directories, and the rename itself already succeeded —
// the worst case of a failed directory sync is the pre-rename state after
// a power cut, which is exactly the atomicity contract.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
