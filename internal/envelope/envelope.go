// Package envelope implements the integrity envelope shared by every
// on-disk artifact of the system — serialized models (format v2) and
// corpus-pipeline checkpoint shards:
//
//	magic | u64 payload length | payload | u64 CRC64-ECMA(payload)
//
// Truncated or bit-flipped files are rejected deterministically instead of
// deserializing into silently broken state.
package envelope

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// ErrIntegrity is wrapped by every Read failure: wrong magic, truncated
// stream, implausible length, or CRC mismatch. Callers can test with
// errors.Is(err, ErrIntegrity).
var ErrIntegrity = errors.New("envelope: corrupt or truncated")

// crcTable is the CRC64 polynomial of the trailer (crc64.ECMA, matching the
// model v2 format).
var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum returns the CRC64-ECMA checksum Write appends as the trailer.
func Checksum(payload []byte) uint64 { return crc64.Checksum(payload, crcTable) }

// NewHash returns a streaming hasher computing the trailer checksum.
func NewHash() io.Writer { return crc64.New(crcTable) }

// Table exposes the CRC64 table for callers that stream-verify payloads
// themselves (e.g. bounded model decoding).
func Table() *crc64.Table { return crcTable }

// Write wraps payload in the envelope and writes it to w.
func Write(w io.Writer, magic []byte, payload []byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(payload)))
	if _, err := bw.Write(tmp[:]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(tmp[:], Checksum(payload))
	if _, err := bw.Write(tmp[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read verifies the magic, bounds the declared payload length by maxPayload,
// and returns the payload after checking the CRC64 trailer.
func Read(r io.Reader, magic []byte, maxPayload uint64) ([]byte, error) {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrIntegrity, err)
	}
	if !bytes.Equal(got, magic) {
		return nil, fmt.Errorf("%w: wrong magic", ErrIntegrity)
	}
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return nil, fmt.Errorf("%w: reading payload length: %v", ErrIntegrity, err)
	}
	plen := binary.LittleEndian.Uint64(tmp[:])
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds cap %d", ErrIntegrity, plen, maxPayload)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrIntegrity, err)
	}
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return nil, fmt.Errorf("%w: reading checksum trailer: %v", ErrIntegrity, err)
	}
	if want, have := binary.LittleEndian.Uint64(tmp[:]), Checksum(payload); want != have {
		return nil, fmt.Errorf("%w: checksum mismatch: file says %016x, payload hashes to %016x",
			ErrIntegrity, want, have)
	}
	return payload, nil
}
