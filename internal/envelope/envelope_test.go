package envelope

import (
	"bytes"
	"errors"
	"testing"
)

var testMagic = []byte("TEST-ENVELOPE/1\n")

func TestRoundTrip(t *testing.T) {
	payload := []byte("hello corpus statistics")
	var buf bytes.Buffer
	if err := Write(&buf, testMagic, payload); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, testMagic, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatalf("payload mismatch: %q != %q", back, payload)
	}
}

func TestEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testMagic, nil); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, testMagic, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("expected empty payload, got %d bytes", len(back))
	}
}

func TestRejectsCorruption(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	var buf bytes.Buffer
	if err := Write(&buf, testMagic, payload); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flipping any byte must be detected.
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := Read(bytes.NewReader(bad), testMagic, 1<<20); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("flip at %d: expected ErrIntegrity, got %v", i, err)
		}
	}
	// Every truncation must be detected.
	for i := 0; i < len(good); i++ {
		if _, err := Read(bytes.NewReader(good[:i]), testMagic, 1<<20); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("truncate at %d: expected ErrIntegrity, got %v", i, err)
		}
	}
}

func TestRejectsOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testMagic, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf, testMagic, 10); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("expected ErrIntegrity for oversized payload, got %v", err)
	}
}

func TestRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testMagic, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf, []byte("OTHER-MAGICXX/9\n"), 1<<20); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("expected ErrIntegrity for wrong magic, got %v", err)
	}
}
