// Package textdist provides the pattern-level distances used by the
// outlier-detection baselines of the Auto-Detect evaluation (SVDD, DBOD,
// LOF): values are generalized into class-token sequences and compared by
// weighted edit distance, where substituting within a character class is
// cheaper than across classes (an alignment-style distance in the spirit of
// the TEGRA pattern distance the paper cites).
package textdist

import "repro/internal/pattern"

// Symbol is one aligned unit: a character class plus its run length.
type Symbol struct {
	// Cat is the character category of the run.
	Cat pattern.Category
	// N is the run length.
	N int
}

// Tokenize converts a value to its class-run sequence.
func Tokenize(v string) []Symbol {
	runs := pattern.Encode(v)
	out := make([]Symbol, len(runs))
	for i, r := range runs {
		out[i] = Symbol{Cat: r.Cat, N: r.N}
	}
	return out
}

// substCost is the cost of aligning two runs: free if identical, small if
// only the run length differs, moderate if the classes are both letters,
// and full otherwise.
func substCost(a, b Symbol) float64 {
	if a == b {
		return 0
	}
	if a.Cat == b.Cat {
		return 0.25 // same class, different length
	}
	letters := func(c pattern.Category) bool {
		return c == pattern.CatUpper || c == pattern.CatLower
	}
	if letters(a.Cat) && letters(b.Cat) {
		return 0.5
	}
	return 1
}

// Distance returns the weighted edit distance between the class-run
// sequences of two values. Insertions and deletions cost 1 per run.
func Distance(a, b string) float64 {
	return SymbolDistance(Tokenize(a), Tokenize(b))
}

// SymbolDistance is Distance on pre-tokenized sequences.
func SymbolDistance(sa, sb []Symbol) float64 {
	if len(sa) == 0 {
		return float64(len(sb))
	}
	if len(sb) == 0 {
		return float64(len(sa))
	}
	prev := make([]float64, len(sb)+1)
	cur := make([]float64, len(sb)+1)
	for j := range prev {
		prev[j] = float64(j)
	}
	for i := 1; i <= len(sa); i++ {
		cur[0] = float64(i)
		for j := 1; j <= len(sb); j++ {
			del := prev[j] + 1
			ins := cur[j-1] + 1
			sub := prev[j-1] + substCost(sa[i-1], sb[j-1])
			m := del
			if ins < m {
				m = ins
			}
			if sub < m {
				m = sub
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(sb)]
}

// NormalizedDistance scales Distance into [0,1] by the longer sequence.
func NormalizedDistance(a, b string) float64 {
	sa, sb := Tokenize(a), Tokenize(b)
	n := len(sa)
	if len(sb) > n {
		n = len(sb)
	}
	if n == 0 {
		return 0
	}
	return SymbolDistance(sa, sb) / float64(n)
}
