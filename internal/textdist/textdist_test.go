package textdist

import (
	"testing"
	"testing/quick"
)

func TestDistanceIdentity(t *testing.T) {
	for _, v := range []string{"", "abc", "2011-01-01", "$1,234.56"} {
		if d := Distance(v, v); d != 0 {
			t.Errorf("Distance(%q,%q) = %v", v, v, d)
		}
	}
}

func TestSameFormatCheap(t *testing.T) {
	// Same-format values are distance 0 (identical run structure).
	if d := Distance("2011-01-01", "1999-12-31"); d != 0 {
		t.Errorf("same-format dates distance = %v", d)
	}
	// Run-length-only difference is cheap.
	short := Distance("100", "1000")
	cross := Distance("100", "abc")
	if short >= cross {
		t.Errorf("length diff %v should be cheaper than class diff %v", short, cross)
	}
}

func TestDifferentFormatsExpensive(t *testing.T) {
	d1 := Distance("2011-01-01", "2011/01/01") // separator class identical (both symbols)
	d2 := Distance("2011-01-01", "January 1, 2011")
	if d2 <= d1 {
		t.Errorf("textual date should be farther: %v vs %v", d1, d2)
	}
}

func TestEmptyEdgeCases(t *testing.T) {
	if d := Distance("", "abc"); d != 1 {
		t.Errorf("Distance(\"\",abc) = %v, want 1 (one run)", d)
	}
	if d := Distance("ab1", ""); d != 2 {
		t.Errorf("Distance(ab1,\"\") = %v, want 2 (two runs)", d)
	}
}

func TestNormalizedRange(t *testing.T) {
	f := func(a, b string) bool {
		d := NormalizedDistance(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if NormalizedDistance("", "") != 0 {
		t.Error("empty-empty should be 0")
	}
}

// Property: symmetry.
func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool { return Distance(a, b) == Distance(b, a) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality (holds for edit distances with these
// costs since substitution costs satisfy it).
func TestTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDistance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Distance("2011-01-01 13:45", "January 1, 2011 1:45pm")
	}
}
