package distsup

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/pattern"
)

func genCorpus(t *testing.T, n int) *corpus.Corpus {
	t.Helper()
	return corpus.Generate(corpus.WebProfile(), n, 42)
}

func TestGenerateBasic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PositivePairs = 2000
	cfg.NegativePairs = 2000
	d, err := Generate(genCorpus(t, 3000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.CompatColumns < 1000 {
		t.Errorf("|C+| = %d, expected most of a clean corpus", d.CompatColumns)
	}
	if p := d.Positives(); p != 2000 {
		t.Errorf("positives = %d", p)
	}
	if n := d.Negatives(); n < 1500 {
		t.Errorf("negatives = %d", n)
	}
	for _, e := range d.Examples {
		if e.U == "" || e.V == "" {
			t.Fatal("empty value in example")
		}
		if pattern.Crude().FromRuns(e.URuns) != pattern.Crude().Generalize(e.U) {
			t.Fatal("URuns does not encode U")
		}
	}
}

func TestPositivesComeFromSameColumnStatistics(t *testing.T) {
	// Positives drawn from verified-compatible columns must (crudely)
	// look compatible far more often than negatives do.
	cfg := DefaultConfig()
	cfg.PositivePairs = 1000
	cfg.NegativePairs = 1000
	d, err := Generate(genCorpus(t, 3000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := pattern.Crude()
	samePatPos, samePatNeg := 0, 0
	for _, e := range d.Examples {
		same := g.Generalize(e.U) == g.Generalize(e.V)
		if e.Incompatible {
			if same {
				samePatNeg++
			}
		} else if same {
			samePatPos++
		}
	}
	if samePatNeg != 0 {
		t.Errorf("%d negatives have identical crude patterns (pruning failed)", samePatNeg)
	}
	if samePatPos < 300 {
		t.Errorf("only %d/1000 positives share a crude pattern; suspicious sampling", samePatPos)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, DefaultConfig()); err == nil {
		t.Error("nil corpus should error")
	}
	tiny := &corpus.Corpus{Columns: []*corpus.Column{{Values: []string{"a"}}}}
	if _, err := Generate(tiny, DefaultConfig()); err == nil {
		t.Error("one-column corpus should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PositivePairs, cfg.NegativePairs = 500, 500
	c := genCorpus(t, 1500)
	a, err := Generate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Examples) != len(b.Examples) {
		t.Fatal("length differs")
	}
	for i := range a.Examples {
		if a.Examples[i].U != b.Examples[i].U || a.Examples[i].Incompatible != b.Examples[i].Incompatible {
			t.Fatal("examples differ across identical seeds")
		}
	}
}

func TestPruneThresholdEffect(t *testing.T) {
	c := genCorpus(t, 2000)
	loose := DefaultConfig()
	loose.PositivePairs, loose.NegativePairs = 200, 2000
	loose.PruneThreshold = -0.9 // prune almost everything not maximally incompatible
	strict, err := Generate(c, loose)
	if err != nil {
		t.Fatal(err)
	}
	loose.PruneThreshold = 0.9 // prune almost nothing
	lax, err := Generate(c, loose)
	if err != nil {
		t.Fatal(err)
	}
	if strict.PrunedNegatives <= lax.PrunedNegatives {
		t.Errorf("stricter prune threshold pruned %d ≤ lax %d",
			strict.PrunedNegatives, lax.PrunedNegatives)
	}
}

func BenchmarkGenerate(b *testing.B) {
	c := corpus.Generate(corpus.WebProfile(), 2000, 42)
	cfg := DefaultConfig()
	cfg.PositivePairs, cfg.NegativePairs = 1000, 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(c, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
