// Package distsup implements the distant-supervision training data
// generation of Auto-Detect (Section 3.1, Appendix F). Instead of human
// labels, it derives compatible value pairs T+ from corpus columns whose
// values are statistically verified compatible under the crude
// generalization G(), and incompatible pairs T− by mixing a value from one
// verified-compatible column into another, pruning mixes that are
// accidentally compatible.
package distsup

import (
	"errors"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Example is one labeled training pair.
type Example struct {
	// U and V are the raw values of the pair.
	U, V string
	// URuns and VRuns are the category-run encodings of U and V,
	// precomputed so calibration can generalize them under many languages
	// cheaply.
	URuns, VRuns pattern.Runs
	// Incompatible is true for T− examples.
	Incompatible bool
}

// Config parameterizes training-data generation.
type Config struct {
	// PositivePairs and NegativePairs are the target sizes of T+ and T−.
	PositivePairs, NegativePairs int
	// CompatThreshold is the minimum crude-NPMI between all value pairs of
	// a column for the column to join the verified-compatible set C+.
	// The paper uses 0.
	CompatThreshold float64
	// PruneThreshold drops candidate negatives (u, v) whose crude-NPMI is
	// at or above it, since such mixes may be compatible by coincidence.
	// The paper uses −0.3.
	PruneThreshold float64
	// PairsPerColumn bounds how many pairs one column contributes.
	PairsPerColumn int
	// MaxDistinct skips columns with more distinct values than this when
	// verifying compatibility (O(k²) check).
	MaxDistinct int
	// Seed drives all sampling.
	Seed int64
}

// DefaultConfig returns the paper's settings at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{
		PositivePairs:   50000,
		NegativePairs:   50000,
		CompatThreshold: 0,
		PruneThreshold:  -0.3,
		PairsPerColumn:  8,
		MaxDistinct:     40,
		Seed:            1,
	}
}

// Data is the generated training set plus provenance counters.
type Data struct {
	// Examples is T = T+ ∪ T−, shuffled.
	Examples []Example
	// CompatColumns is |C+|, the number of verified-compatible columns.
	CompatColumns int
	// PrunedNegatives counts candidate T− mixes dropped by the −0.3 rule.
	PrunedNegatives int
}

// Positives and Negatives return |T+| and |T−|.
func (d *Data) Positives() int {
	n := 0
	for _, e := range d.Examples {
		if !e.Incompatible {
			n++
		}
	}
	return n
}

// Negatives returns the number of incompatible examples.
func (d *Data) Negatives() int { return len(d.Examples) - d.Positives() }

// Generate builds T from the corpus. The crude statistics used for the
// compatibility checks are computed internally in one pass.
func Generate(c *corpus.Corpus, cfg Config) (*Data, error) {
	if c == nil || len(c.Columns) < 2 {
		return nil, errors.New("distsup: need a corpus with at least two columns")
	}
	if cfg.PairsPerColumn <= 0 {
		cfg.PairsPerColumn = 8
	}
	if cfg.MaxDistinct <= 0 {
		cfg.MaxDistinct = 40
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Pass 1: crude co-occurrence statistics over the whole corpus.
	// Unsmoothed: the Appendix F thresholds (0 for C+ membership, −0.3 for
	// negative pruning) are calibrated against raw NPMI, where a
	// never-co-occurring pair scores exactly −1.
	crude := stats.NewLanguageStats(pattern.Crude(), 0)
	type colCache struct {
		values   []string
		patterns []string
	}
	cache := make([]colCache, len(c.Columns))
	g := pattern.Crude()
	for i, col := range c.Columns {
		vs := col.DistinctValues()
		ps := make([]string, len(vs))
		for j, v := range vs {
			ps[j] = g.Generalize(v)
		}
		cache[i] = colCache{values: vs, patterns: ps}
		crude.AddColumn(vs)
	}

	// Pass 2: find C+, the statistically-compatible columns.
	var compat []int
	for i := range cache {
		vs := cache[i]
		if len(vs.values) < 2 || len(vs.values) > cfg.MaxDistinct {
			continue
		}
		if columnCompatible(crude, vs.patterns, cfg.CompatThreshold) {
			compat = append(compat, i)
		}
	}
	if len(compat) < 2 {
		return nil, errors.New("distsup: corpus yields fewer than two compatible columns")
	}

	d := &Data{CompatColumns: len(compat)}

	// T+: pairs sampled within compatible columns.
	for len(d.Examples) < cfg.PositivePairs {
		cc := cache[compat[r.Intn(len(compat))]]
		for p := 0; p < cfg.PairsPerColumn && len(d.Examples) < cfg.PositivePairs; p++ {
			i, j := r.Intn(len(cc.values)), r.Intn(len(cc.values))
			if i == j {
				continue
			}
			d.Examples = append(d.Examples, Example{
				U: cc.values[i], V: cc.values[j],
				URuns: pattern.Encode(cc.values[i]), VRuns: pattern.Encode(cc.values[j]),
			})
		}
	}

	// T−: mix a value u from one compatible column into another compatible
	// column C2, dropping mixes where u looks compatible with any value of
	// C2 under the crude statistics (Appendix F's −0.3 pruning).
	negatives := 0
	attempts := 0
	maxAttempts := cfg.NegativePairs * 50
	for negatives < cfg.NegativePairs && attempts < maxAttempts {
		attempts++
		c1 := cache[compat[r.Intn(len(compat))]]
		c2 := cache[compat[r.Intn(len(compat))]]
		ui := r.Intn(len(c1.values))
		u, up := c1.values[ui], c1.patterns[ui]
		if tooSimilar(crude, up, c2.patterns, cfg.PruneThreshold) {
			d.PrunedNegatives++
			continue
		}
		uRuns := pattern.Encode(u)
		for p := 0; p < cfg.PairsPerColumn && negatives < cfg.NegativePairs; p++ {
			v := c2.values[r.Intn(len(c2.values))]
			d.Examples = append(d.Examples, Example{
				U: u, V: v,
				URuns: uRuns, VRuns: pattern.Encode(v),
				Incompatible: true,
			})
			negatives++
		}
	}
	if negatives == 0 {
		return nil, errors.New("distsup: could not generate any incompatible pairs")
	}

	r.Shuffle(len(d.Examples), func(i, j int) {
		d.Examples[i], d.Examples[j] = d.Examples[j], d.Examples[i]
	})
	return d, nil
}

// columnCompatible reports whether every pattern pair of the column has
// crude NPMI above the threshold.
func columnCompatible(crude *stats.LanguageStats, patterns []string, thresh float64) bool {
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns); j++ {
			if patterns[i] == patterns[j] {
				continue
			}
			if crude.NPMI(patterns[i], patterns[j]) <= thresh {
				return false
			}
		}
	}
	return true
}

// tooSimilar reports whether u's crude pattern is compatible (NPMI at or
// above the prune threshold) with any pattern of the target column.
func tooSimilar(crude *stats.LanguageStats, up string, patterns []string, prune float64) bool {
	for _, p := range patterns {
		if up == p {
			return true
		}
		if crude.NPMI(up, p) >= prune {
			return true
		}
	}
	return false
}
