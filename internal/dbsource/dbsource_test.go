package dbsource

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/observe"
	"repro/internal/retry"
)

// seedDB builds the multi-table database the tests share: a users table
// with a hinted email column (one bad email planted), and an orders table
// with numeric and NULL-bearing columns.
func seedDB() *MemDB {
	db := NewMemDB()
	db.AddTable("users",
		MemCol{Name: "email", Type: "TEXT", Values: []any{
			"ann@example.com", "bob@example.com", "carol@example.com",
			"dave@example.com", "eve@example.com", "not-an-email",
			"frank@example.com", "grace@example.com", "heidi@example.com", "ivan@example.com",
		}},
		MemCol{Name: "name", Type: "TEXT", Values: []any{
			"Ann", "Bob", "Carol", "Dave", "Eve", "Mallory", "Frank", "Grace", "Heidi", "Ivan",
		}},
	)
	db.AddTable("orders",
		MemCol{Name: "amount", Type: "REAL", Values: []any{
			int64(12), 3.5, nil, int64(99), 7.25,
		}},
		MemCol{Name: "note", Type: "TEXT", Values: []any{
			"first", nil, "third", "fourth", nil,
		}},
	)
	return db
}

func TestDialectFor(t *testing.T) {
	for driver, want := range map[string]string{
		DriverName: "mem", "mem": "mem",
		"sqlite": "sqlite", "sqlite3": "sqlite",
		"postgres": "postgres", "pgx": "postgres", "pq": "postgres",
		"mysql": "mysql",
	} {
		d, err := DialectFor(driver)
		if err != nil {
			t.Fatalf("DialectFor(%q): %v", driver, err)
		}
		if d.Name() != want {
			t.Errorf("DialectFor(%q).Name() = %q, want %q", driver, d.Name(), want)
		}
	}
	if _, err := DialectFor("oracle"); err == nil {
		t.Error("DialectFor(oracle) should fail")
	}
}

func TestDialectQueryShapes(t *testing.T) {
	sq, _ := DialectFor("sqlite3")
	if got := sq.PageQuery(`us"ers`, "email"); !strings.Contains(got, `"us""ers"`) {
		t.Errorf("sqlite quoting broken: %s", got)
	}
	my, _ := DialectFor("mysql")
	if got := my.CountQuery("or`ders"); !strings.Contains(got, "`or``ders`") {
		t.Errorf("mysql quoting broken: %s", got)
	}
	pg, _ := DialectFor("postgres")
	if got := pg.ColumnsQuery(); !strings.Contains(got, "$1") {
		t.Errorf("postgres columns query should use $1 placeholders: %s", got)
	}
	if pg.StartKey() != "(0,0)" {
		t.Errorf("postgres StartKey = %v", pg.StartKey())
	}
}

func TestIntrospect(t *testing.T) {
	Register("introspect", seedDB())
	src, err := NewSource(context.Background(), Config{DSN: "mem://introspect"})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	sch := src.Schema()
	if len(sch.Tables) != 2 || sch.Tables[0].Name != "orders" || sch.Tables[1].Name != "users" {
		t.Fatalf("tables = %+v", sch.Tables)
	}
	if sch.Tables[1].Rows != 10 {
		t.Errorf("users rows = %d, want 10", sch.Tables[1].Rows)
	}
	units := src.Schema().Units()
	var names []string
	for _, u := range units {
		names = append(names, u.Name())
	}
	want := []string{"orders.amount", "orders.note", "users.email", "users.name"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("unit order = %v, want %v", names, want)
	}
	// The email column carries a name-derived hint; the others don't.
	for _, u := range units {
		wantHint := ""
		if u.Name() == "users.email" {
			wantHint = "email"
		}
		if u.Hint != wantHint {
			t.Errorf("%s hint = %q, want %q", u.Name(), u.Hint, wantHint)
		}
	}
}

func TestIntrospectTableFilter(t *testing.T) {
	Register("filter", seedDB())
	src, err := NewSource(context.Background(), Config{DSN: "mem://filter", Tables: []string{"orders"}})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Len() != 2 {
		t.Fatalf("filtered Len = %d, want 2", src.Len())
	}
	if _, err := NewSource(context.Background(), Config{DSN: "mem://filter", Tables: []string{"nope"}}); err == nil {
		t.Fatal("filter naming a missing table should fail")
	}
}

func TestSourceStreamAndNormalize(t *testing.T) {
	Register("stream", seedDB())
	src, err := NewSource(context.Background(), Config{DSN: "mem://stream", PageSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	col, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if col.Name != "orders.amount" || col.Source != DriverName || col.Table != "orders" {
		t.Fatalf("first column = %q source=%q table=%q", col.Name, col.Source, col.Table)
	}
	// int64, float64 and NULL all normalize to strings; NULL is "".
	want := []string{"12", "3.5", "", "99", "7.25"}
	if fmt.Sprint(col.Values) != fmt.Sprint(want) {
		t.Fatalf("amount values = %v, want %v", col.Values, want)
	}
	n := 1
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Values) == 0 {
			t.Errorf("column %s empty", c.Name)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("streamed %d columns, want 4", n)
	}
}

// TestPaginationBoundaries exercises page sizes around the row count,
// including one that divides it exactly (the ambiguous last-page case).
func TestPaginationBoundaries(t *testing.T) {
	db := NewMemDB()
	vals := make([]any, 10)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%02d", i)
	}
	db.AddTable("t", MemCol{Name: "c", Type: "TEXT", Values: vals})
	Register("pages", db)
	for _, pageSize := range []int{1, 2, 3, 5, 7, 10, 11, 100} {
		src, err := NewSource(context.Background(), Config{DSN: "mem://pages", PageSize: pageSize})
		if err != nil {
			t.Fatal(err)
		}
		got, err := src.FetchUnit(context.Background(), 0)
		src.Close()
		if err != nil {
			t.Fatalf("page size %d: %v", pageSize, err)
		}
		if len(got) != 10 || got[0] != "v00" || got[9] != "v09" {
			t.Fatalf("page size %d: got %v", pageSize, got)
		}
	}
}

func TestFingerprintStability(t *testing.T) {
	Register("fp1", seedDB())
	Register("fp2", seedDB())
	a, err := NewSource(context.Background(), Config{DSN: "mem://fp1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewSource(context.Background(), Config{DSN: "mem://fp2"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical databases fingerprint differently: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if !strings.HasPrefix(a.Fingerprint(), "db:"+DriverName+":") {
		t.Errorf("fingerprint shape: %s", a.Fingerprint())
	}
	// A row-count change moves the hash.
	mut := seedDB()
	mut.AddTable("users", MemCol{Name: "email", Type: "TEXT", Values: []any{"x@y.zz"}},
		MemCol{Name: "name", Type: "TEXT", Values: []any{"X"}})
	Register("fp3", mut)
	c, err := NewSource(context.Background(), Config{DSN: "mem://fp3"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("mutated database should fingerprint differently")
	}
}

func TestSkipColumns(t *testing.T) {
	Register("skip", seedDB())
	src, err := NewSource(context.Background(), Config{DSN: "mem://skip"})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	n, err := src.SkipColumns(3)
	if err != nil || n != 3 {
		t.Fatalf("SkipColumns(3) = %d, %v", n, err)
	}
	col, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if col.Name != "users.name" {
		t.Fatalf("after skip, Next = %s, want users.name", col.Name)
	}
	// Over-asking skips only what remains.
	if n, err := src.SkipColumns(10); err != nil || n != 0 {
		t.Fatalf("SkipColumns past end = %d, %v", n, err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("want EOF after skipping past end, got %v", err)
	}
}

// TestRetryOnTransientFault injects a connection-reset error on the first
// page read of one column and expects the retry policy to ride it out.
func TestRetryOnTransientFault(t *testing.T) {
	db := seedDB()
	Register("fault", db)
	var failures atomic.Int32
	failures.Store(2)
	db.SetQueryFault(func(query string) error {
		if strings.HasPrefix(query, "PAGE") && failures.Add(-1) >= 0 {
			return errors.New("read tcp 10.0.0.1:5432: connection reset by peer")
		}
		return nil
	})
	defer db.SetQueryFault(nil)
	src, err := NewSource(context.Background(), Config{
		DSN:   "mem://fault",
		Retry: retry.Policy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	vals, err := src.FetchUnit(context.Background(), 0)
	if err != nil {
		t.Fatalf("transient faults should be retried: %v", err)
	}
	if len(vals) != 5 {
		t.Fatalf("got %d values", len(vals))
	}
}

func TestMetricsFamilies(t *testing.T) {
	Register("metrics", seedDB())
	reg := observe.NewRegistry()
	src, err := NewSource(context.Background(), Config{DSN: "mem://metrics", Metrics: reg, PageSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for {
		if _, err := src.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, family := range []string{
		"autodetect_db_tables_total 2",
		"autodetect_db_columns_total 4",
		"autodetect_db_rows_total 30",
		"autodetect_db_pages_total",
		"autodetect_db_page_seconds",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metrics page missing %q", family)
		}
	}
}

// TestCSVDirectoryDSN loads the directory DSN form: one table per CSV,
// \N as NULL, values kept verbatim with types inferred for metadata only.
func TestCSVDirectoryDSN(t *testing.T) {
	dir := t.TempDir()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(os.WriteFile(filepath.Join(dir, "people.csv"),
		[]byte("id,zip\n007,10001\n008,\\N\n009,90210\n"), 0o644))
	must(os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644))
	src, err := NewSource(context.Background(), Config{DSN: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (people.id, people.zip)", src.Len())
	}
	col, err := src.Next() // people.id
	if err != nil {
		t.Fatal(err)
	}
	// "007" must stay "007": declared-type inference never rewrites values,
	// or a DB built from CSVs would not audit byte-identically to them.
	if fmt.Sprint(col.Values) != "[007 008 009]" {
		t.Fatalf("id values = %v", col.Values)
	}
	col, err = src.Next() // people.zip
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(col.Values) != "[10001  90210]" {
		t.Fatalf("zip values = %v (want \\N as empty)", col.Values)
	}
	if col.Domain != "zip" {
		t.Errorf("zip hint = %q", col.Domain)
	}
}

func TestNameHint(t *testing.T) {
	cases := []struct {
		name, typ, want string
	}{
		{"email", "TEXT", "email"},
		{"user_email", "varchar(80)", "email"},
		{"email", "INTEGER", ""}, // type veto: numeric email is a key
		{"phone", "TEXT", "phone"},
		{"billing_zip", "TEXT", "zip"},
		{"zip", "INTEGER", "zip"},
		{"homepage", "TEXT", "url"},
		{"ip", "TEXT", "ipv4"},
		{"guid", "uuid", "uuid"},
		{"country", "char(2)", "country_code"},
		{"hire_date", "TEXT", "date"},
		{"created", "timestamp with time zone", "date"},
		{"year", "INTEGER", "year"},
		{"amount", "REAL", ""},
		{"name", "TEXT", ""},
	}
	for _, c := range cases {
		if got := NameHint(c.name, c.typ); got != c.want {
			t.Errorf("NameHint(%q, %q) = %q, want %q", c.name, c.typ, got, c.want)
		}
	}
}
