package dbsource

import "repro/internal/observe"

// dbObs bundles the subsystem's metric families. Registration is
// idempotent, so every Source sharing a registry shares the counters —
// the families describe the process's database traffic, not one walk's.
type dbObs struct {
	tables  *observe.Counter
	columns *observe.Counter
	rows    *observe.Counter
	pages   *observe.Counter
	pageDur *observe.Histogram
}

func newDBObs(reg *observe.Registry) *dbObs {
	if reg == nil {
		return nil
	}
	return &dbObs{
		tables: reg.Counter("autodetect_db_tables_total",
			"Tables enumerated by database introspection."),
		columns: reg.Counter("autodetect_db_columns_total",
			"Columns enumerated by database introspection."),
		rows: reg.Counter("autodetect_db_rows_total",
			"Rows streamed out of database columns."),
		pages: reg.Counter("autodetect_db_pages_total",
			"Keyset pages read from database columns."),
		pageDur: reg.Histogram("autodetect_db_page_seconds",
			"Latency of one keyset page read.", observe.DefBuckets),
	}
}
