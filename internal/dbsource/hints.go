package dbsource

import "strings"

// NameHint maps a column's name and declared type onto a semantic-domain
// hint, or "" when the name says nothing. This is schema metadata the
// database hands us for free: a column literally named email should have
// its values checked against the email domain even when syntactic NPMI is
// ambiguous about them. The returned strings are exactly the domains
// semantic.CheckDomain knows how to validate — introspection copies them
// into job specs verbatim.
//
// The type class acts as a veto, not a signal: "year INTEGER" is a year,
// but "email INTEGER" is somebody's foreign key and hinting it would
// flag every value.
func NameHint(name, declaredType string) string {
	n := strings.ToLower(name)
	// Trim common prefixes/suffixes so user_email, email_addr, billing_zip
	// still land: keep the last underscore-separated token that matches,
	// falling back to the whole name.
	class := typeClass(declaredType)
	for _, tok := range candidateTokens(n) {
		if h := hintToken(tok, class); h != "" {
			return h
		}
	}
	return ""
}

// candidateTokens yields the full name first, then its underscore-split
// tokens from last to first (the trailing token usually carries the noun:
// user_email, shipping_zip).
func candidateTokens(n string) []string {
	toks := []string{n}
	parts := strings.Split(n, "_")
	for i := len(parts) - 1; i >= 0; i-- {
		if parts[i] != "" && parts[i] != n {
			toks = append(toks, parts[i])
		}
	}
	return toks
}

func hintToken(tok, class string) string {
	switch class {
	case "string":
		switch tok {
		case "email", "mail", "emailaddress":
			return "email"
		case "phone", "telephone", "tel", "mobile", "fax":
			return "phone"
		case "zip", "zipcode", "postcode", "postalcode":
			return "zip"
		case "url", "uri", "website", "homepage", "link":
			return "url"
		case "ip", "ipv4", "ipaddress", "addr4":
			return "ipv4"
		case "uuid", "guid":
			return "uuid"
		case "country", "countrycode":
			return "country_code"
		}
	case "numeric":
		switch tok {
		case "year", "yr":
			return "year"
		case "zip", "zipcode":
			// Numeric zips occur in schemas that store them as integers;
			// the validator accepts digit shapes either way.
			return "zip"
		}
	case "date":
		switch tok {
		case "date", "day", "birthday", "dob", "created", "updated":
			return "date"
		}
	}
	// Date-named string columns ("hire_date TEXT") are still dates.
	if class == "string" {
		switch tok {
		case "date", "dob", "birthday":
			return "date"
		case "year":
			return "year"
		}
	}
	return ""
}

// typeClass collapses a declared SQL type into string/numeric/date/other.
// Declared types are dialect-flavored free text (VARCHAR(40), TINYINT
// UNSIGNED, timestamp with time zone), so this matches on substrings of
// the lowercased type the way SQLite's own type affinity rules do.
func typeClass(declared string) string {
	t := strings.ToLower(declared)
	switch {
	case t == "":
		return "string" // untyped (SQLite views, mem driver defaults)
	case strings.Contains(t, "date") || strings.Contains(t, "time"):
		return "date"
	case strings.Contains(t, "char") || strings.Contains(t, "text") ||
		strings.Contains(t, "clob") || strings.Contains(t, "uuid") ||
		strings.Contains(t, "json") || strings.Contains(t, "enum"):
		return "string"
	case strings.Contains(t, "int") || strings.Contains(t, "dec") ||
		strings.Contains(t, "real") || strings.Contains(t, "floa") ||
		strings.Contains(t, "doub") || strings.Contains(t, "num"):
		return "numeric"
	default:
		return "other"
	}
}
