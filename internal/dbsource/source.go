// Package dbsource streams training and audit columns straight out of SQL
// databases. It layers on database/sql: a Dialect supplies the catalog and
// keyset-page query shapes for each engine (SQLite, Postgres, MySQL, plus
// the in-tree pure-Go "admem" driver that keeps tests and CI dependency-
// free), Introspect enumerates tables/columns/declared types, and Source
// walks every table.column as a pipeline.ColumnSource — deterministic
// order, bounded memory per page, stable fingerprint, and per-column
// resume so it composes with the existing checkpoint machinery.
package dbsource

import (
	"context"
	"database/sql"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/corpus"
	"repro/internal/observe"
	"repro/internal/retry"
)

// DefaultPageSize is the keyset page size when Config leaves it zero:
// large enough to amortize round trips, small enough that one page of
// wide values stays comfortably in memory.
const DefaultPageSize = 2048

// Config configures a database Source.
type Config struct {
	// Driver is the database/sql driver name (DriverName, "sqlite3",
	// "postgres", "mysql", ...); it also selects the dialect.
	Driver string
	// DSN is the driver's data source name.
	DSN string
	// Tables, when non-empty, restricts the walk to these tables; naming a
	// table the database lacks is an error.
	Tables []string
	// PageSize bounds rows fetched per keyset page (default
	// DefaultPageSize).
	PageSize int
	// Retry wraps every page and catalog read; the zero value retries
	// transient errors (which satellite work taught to recognize
	// driver.ErrBadConn, connection resets, deadlocks) with capped
	// exponential backoff.
	Retry retry.Policy
	// Metrics, when set, registers and feeds the autodetect_db_* families.
	Metrics *observe.Registry
}

// Source is a pipeline.ColumnSource that walks a database's table.column
// units in deterministic (lexicographic unit-name) order. It is not safe
// for concurrent use, matching the ColumnSource contract.
type Source struct {
	cfg     Config
	db      *sql.DB
	dialect Dialect
	schema  *Schema
	units   []Unit
	hash    string
	obs     *dbObs
	ctx     context.Context
	next    int // index of the unit the next Next() call streams
}

// NewSource opens the database, introspects it, and returns a Source
// positioned at the first unit. The schema snapshot — and therefore the
// fingerprint — is pinned at this moment; a database mutated later fails
// the hash check on resume rather than silently shifting the walk.
func NewSource(ctx context.Context, cfg Config) (*Source, error) {
	if cfg.DSN == "" {
		return nil, fmt.Errorf("dbsource: empty DSN")
	}
	if cfg.Driver == "" {
		cfg.Driver = DriverName
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	d, err := DialectFor(cfg.Driver)
	if err != nil {
		return nil, err
	}
	db, err := sql.Open(cfg.Driver, cfg.DSN)
	if err != nil {
		return nil, fmt.Errorf("dbsource: opening %s database: %w", cfg.Driver, err)
	}
	obs := newDBObs(cfg.Metrics)
	var sch *Schema
	if err := cfg.Retry.Do(ctx, func() error {
		var ierr error
		sch, ierr = Introspect(ctx, db, d, cfg.Tables, obs)
		return ierr
	}); err != nil {
		db.Close()
		return nil, err
	}
	return &Source{
		cfg:     cfg,
		db:      db,
		dialect: d,
		schema:  sch,
		units:   sch.Units(),
		hash:    sch.Hash(),
		obs:     obs,
		ctx:     ctx,
	}, nil
}

// BindContext adopts the pipeline run's context for subsequent reads.
func (s *Source) BindContext(ctx context.Context) { s.ctx = ctx }

// Close releases the database handle.
func (s *Source) Close() error { return s.db.Close() }

// Schema returns the pinned introspection snapshot.
func (s *Source) Schema() *Schema { return s.schema }

// SchemaHash returns the pinned schema hash (see Schema.Hash).
func (s *Source) SchemaHash() string { return s.hash }

// Len is the number of table.column units the walk visits.
func (s *Source) Len() int { return len(s.units) }

// Unit returns the i'th unit in walk order.
func (s *Source) Unit(i int) Unit { return s.units[i] }

// Fingerprint identifies the source for checkpoint compatibility: driver
// plus the schema hash, which already folds in table/column names, types,
// and row counts.
func (s *Source) Fingerprint() string {
	return "db:" + s.cfg.Driver + ":" + s.hash
}

// SkipColumns advances the walk past n units without reading their rows —
// the fast path a resumed pipeline takes instead of re-streaming and
// discarding already-counted columns. It returns how many units were
// actually skipped (fewer than n only when the walk ends first).
func (s *Source) SkipColumns(n uint64) (uint64, error) {
	remaining := uint64(len(s.units) - s.next)
	if n > remaining {
		n = remaining
	}
	s.next += int(n)
	return n, nil
}

// Next streams the next table.column as a corpus column. The column name
// is the qualified "table.column" unit name; Source and Table carry the
// provenance that audit findings surface.
func (s *Source) Next() (*corpus.Column, error) {
	if s.next >= len(s.units) {
		return nil, io.EOF
	}
	u := s.units[s.next]
	values, err := s.FetchUnit(s.ctx, s.next)
	if err != nil {
		return nil, err
	}
	s.next++
	return &corpus.Column{
		Name:   u.Name(),
		Domain: u.Hint,
		Values: values,
		Source: s.cfg.Driver,
		Table:  u.Table,
	}, nil
}

// FetchUnit reads every row of the i'th unit through keyset pages,
// normalized to strings. It does not move the walk cursor, so resumable
// jobs can fetch any unit directly.
func (s *Source) FetchUnit(ctx context.Context, i int) ([]string, error) {
	if i < 0 || i >= len(s.units) {
		return nil, fmt.Errorf("dbsource: unit index %d out of range [0,%d)", i, len(s.units))
	}
	u := s.units[i]
	ctx, done := observe.Span(ctx, "db_fetch_unit")
	defer done()
	observe.SetSpanAttr(ctx, "unit", u.Name())

	query := s.dialect.PageQuery(u.Table, u.Column)
	values := make([]string, 0, u.Rows)
	after := s.dialect.StartKey()
	for {
		var page []string
		var nextKey any
		err := s.cfg.Retry.DoCtx(ctx, func(ctx context.Context) error {
			var perr error
			page, nextKey, perr = s.readPage(ctx, query, after)
			return perr
		})
		if err != nil {
			observe.SetSpanError(ctx, err.Error())
			return nil, fmt.Errorf("dbsource: paging %s: %w", u.Name(), err)
		}
		values = append(values, page...)
		if len(page) < s.cfg.PageSize {
			break
		}
		after = nextKey
	}
	observe.SetSpanAttr(ctx, "rows", strconv.Itoa(len(values)))
	return values, nil
}

// readPage executes one keyset page, returning the normalized values and
// the last row key (the next page's cursor).
func (s *Source) readPage(ctx context.Context, query string, after any) ([]string, any, error) {
	start := time.Now()
	rows, err := s.db.QueryContext(ctx, query, after, int64(s.cfg.PageSize))
	if err != nil {
		return nil, nil, err
	}
	defer rows.Close()
	page := make([]string, 0, s.cfg.PageSize)
	lastKey := after
	for rows.Next() {
		var key, val any
		if err := rows.Scan(&key, &val); err != nil {
			return nil, nil, err
		}
		page = append(page, normalize(val))
		lastKey = normalizeKey(key)
	}
	if err := rows.Err(); err != nil {
		return nil, nil, err
	}
	if s.obs != nil {
		s.obs.pages.Inc()
		s.obs.rows.Add(float64(len(page)))
		s.obs.pageDur.ObserveExemplar(time.Since(start).Seconds(), observe.TraceIDFrom(ctx))
	}
	return page, lastKey, nil
}

// normalize maps a driver value onto the string the detector sees. NULL
// becomes the empty string — the same representation a missing CSV cell
// has — so a database and its CSV export audit identically.
func normalize(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case []byte:
		return string(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case time.Time:
		return x.UTC().Format(time.RFC3339)
	default:
		return fmt.Sprint(x)
	}
}

// normalizeKey keeps page cursors in driver-bindable types ([]byte keys —
// Postgres ctids scan as []byte — must outlive the Rows that produced
// them, so they are copied to strings).
func normalizeKey(k any) any {
	if b, ok := k.([]byte); ok {
		return string(b)
	}
	return k
}
