package dbsource

import (
	"context"
	"database/sql"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"repro/internal/observe"
)

// ColumnMeta is one column as the catalog describes it.
type ColumnMeta struct {
	Name string
	// DeclaredType is the catalog's type string, dialect-flavored
	// ("VARCHAR(40)", "timestamp with time zone"); may be empty.
	DeclaredType string
	// Hint is the semantic-domain hint derived from name + type via
	// NameHint; empty when the name says nothing.
	Hint string
}

// TableMeta is one table with its row count at introspection time.
type TableMeta struct {
	Name    string
	Rows    int64
	Columns []ColumnMeta
}

// A Unit is one streamable table.column with everything the walker needs.
type Unit struct {
	Table  string
	Column string
	Rows   int64
	Hint   string
}

// Name is the unit's "table.column" identifier — the column name audits
// and findings report.
func (u Unit) Name() string { return u.Table + "." + u.Column }

// Schema is an introspected database: what's in it and in what order we
// walk it.
type Schema struct {
	Driver string
	Tables []TableMeta
}

// Units flattens the schema into its walk order: every table.column,
// sorted lexicographically by unit name. The sort makes a whole-database
// audit's column order identical to a table job keyed by "table.column"
// strings — which is what lets the DB-vs-CSV equivalence property hold
// byte-for-byte.
func (s *Schema) Units() []Unit {
	var units []Unit
	for _, t := range s.Tables {
		for _, c := range t.Columns {
			units = append(units, Unit{Table: t.Name, Column: c.Name, Rows: t.Rows, Hint: c.Hint})
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Name() < units[j].Name() })
	return units
}

// Hash fingerprints the schema: driver, table names, row counts, column
// names and declared types, in walk order. Two introspections of an
// unchanged database hash identically; any DDL or row-count change moves
// it. Resumable jobs pin this hash so a database mutated mid-audit fails
// loudly instead of resuming into silently different findings.
func (s *Schema) Hash() string {
	h := fnv.New64a()
	sep := []byte{0}
	write := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write(sep)
		}
	}
	write(s.Driver)
	for _, t := range s.Tables {
		write(t.Name, strconv.FormatInt(t.Rows, 10))
		for _, c := range t.Columns {
			write(c.Name, c.DeclaredType)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Introspect enumerates the database's tables and columns through the
// dialect's catalog queries. tableFilter, when non-empty, restricts the
// schema to exactly those tables; naming a table the database doesn't
// have is an error (a typo'd filter silently auditing nothing is worse).
func Introspect(ctx context.Context, db *sql.DB, d Dialect, tableFilter []string, obs *dbObs) (*Schema, error) {
	ctx, done := observe.Span(ctx, "db_introspect")
	defer done()
	observe.SetSpanAttr(ctx, "dialect", d.Name())

	names, err := listTables(ctx, db, d)
	if err != nil {
		observe.SetSpanError(ctx, err.Error())
		return nil, err
	}
	if len(tableFilter) > 0 {
		names, err = applyFilter(names, tableFilter)
		if err != nil {
			observe.SetSpanError(ctx, err.Error())
			return nil, err
		}
	}

	sch := &Schema{Driver: d.Name()}
	for _, name := range names {
		t := TableMeta{Name: name}
		if err := db.QueryRowContext(ctx, d.CountQuery(name)).Scan(&t.Rows); err != nil {
			observe.SetSpanError(ctx, err.Error())
			return nil, fmt.Errorf("dbsource: counting %s: %w", name, err)
		}
		t.Columns, err = listColumns(ctx, db, d, name)
		if err != nil {
			observe.SetSpanError(ctx, err.Error())
			return nil, err
		}
		sch.Tables = append(sch.Tables, t)
		if obs != nil {
			obs.tables.Inc()
			obs.columns.Add(float64(len(t.Columns)))
		}
	}
	observe.SetSpanAttr(ctx, "tables", strconv.Itoa(len(sch.Tables)))
	observe.SetSpanAttr(ctx, "schema_hash", sch.Hash())
	return sch, nil
}

func listTables(ctx context.Context, db *sql.DB, d Dialect) ([]string, error) {
	rows, err := db.QueryContext(ctx, d.TablesQuery())
	if err != nil {
		return nil, fmt.Errorf("dbsource: listing tables: %w", err)
	}
	defer rows.Close()
	var names []string
	for rows.Next() {
		var name string
		// Catalogs differ on whether a row count rides along (the mem
		// driver's TABLES verb returns one); scan just the name column.
		dest := []any{&name}
		if cols, _ := rows.Columns(); len(cols) > 1 {
			sink := make([]any, len(cols)-1)
			for i := range sink {
				sink[i] = new(sql.RawBytes)
			}
			dest = append(dest, sink...)
		}
		if err := rows.Scan(dest...); err != nil {
			return nil, fmt.Errorf("dbsource: scanning table name: %w", err)
		}
		names = append(names, name)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("dbsource: listing tables: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

func listColumns(ctx context.Context, db *sql.DB, d Dialect, table string) ([]ColumnMeta, error) {
	rows, err := db.QueryContext(ctx, d.ColumnsQuery(), table)
	if err != nil {
		return nil, fmt.Errorf("dbsource: listing columns of %s: %w", table, err)
	}
	defer rows.Close()
	var cols []ColumnMeta
	for rows.Next() {
		var c ColumnMeta
		var typ sql.NullString
		if err := rows.Scan(&c.Name, &typ); err != nil {
			return nil, fmt.Errorf("dbsource: scanning column of %s: %w", table, err)
		}
		c.DeclaredType = typ.String
		c.Hint = NameHint(c.Name, c.DeclaredType)
		cols = append(cols, c)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("dbsource: listing columns of %s: %w", table, err)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("dbsource: table %s has no columns (dropped mid-introspection?)", table)
	}
	return cols, nil
}

func applyFilter(names, filter []string) ([]string, error) {
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	var out []string
	for _, want := range filter {
		if !have[want] {
			return nil, fmt.Errorf("dbsource: table filter names %q, which the database does not have", want)
		}
		out = append(out, want)
	}
	sort.Strings(out)
	return out, nil
}
