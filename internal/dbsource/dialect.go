package dbsource

import (
	"fmt"
	"strconv"
	"strings"
)

// A Dialect supplies the SQL shapes of one database engine: how to
// enumerate tables and columns from its metadata catalog, and how to walk
// a column in keyset pages. Only query *text* lives here — execution goes
// through database/sql — so the SQLite/Postgres/MySQL adapters compile and
// golden-test without their drivers linked; downstream builds that blank-
// import a real driver get working introspection for free.
//
// The page query contract is shared by every dialect:
//
//	SELECT <key>, <column> FROM <table> WHERE <key> > $1 ORDER BY <key> LIMIT $2
//
// with a dialect-specific row key: SQLite's rowid, Postgres's ctid, MySQL's
// _rowid alias (which requires a single-column integer primary key), and
// the in-memory driver's implicit 1-based row number. Keyset pagination —
// rather than OFFSET — keeps every page O(page size) regardless of how
// deep into the column the cursor is.
type Dialect interface {
	// Name is the dialect's identifier ("sqlite", "postgres", ...).
	Name() string
	// TablesQuery lists base-table names, ordered by name. No arguments.
	TablesQuery() string
	// ColumnsQuery lists (column_name, declared_type) rows in ordinal
	// position order for the table bound as the single query argument.
	ColumnsQuery() string
	// CountQuery counts the rows of the (quoted, interpolated) table.
	CountQuery(table string) string
	// PageQuery selects (key, value) rows of one column: everything with
	// key greater than argument 1, in key order, at most argument 2 rows.
	PageQuery(table, column string) string
	// StartKey is the key value strictly below every row key — the cursor
	// a fresh column walk starts from.
	StartKey() any
}

// DialectFor maps a database/sql driver name onto its dialect. Unknown
// drivers are an error rather than a guess: a wrong identifier-quoting
// style produces confusing SQL errors far from the real cause.
func DialectFor(driver string) (Dialect, error) {
	switch strings.ToLower(driver) {
	case DriverName, "mem":
		return memDialect{}, nil
	case "sqlite", "sqlite3":
		return sqliteDialect{}, nil
	case "postgres", "pgx", "pq":
		return postgresDialect{}, nil
	case "mysql":
		return mysqlDialect{}, nil
	default:
		return nil, fmt.Errorf("dbsource: no dialect for driver %q (known: %s, sqlite3, postgres, mysql)", driver, DriverName)
	}
}

// quoteDouble quotes an identifier in the SQL-standard style ("name",
// embedded quotes doubled) used by SQLite and Postgres.
func quoteDouble(ident string) string {
	return `"` + strings.ReplaceAll(ident, `"`, `""`) + `"`
}

// quoteBacktick quotes an identifier in MySQL's backtick style.
func quoteBacktick(ident string) string {
	return "`" + strings.ReplaceAll(ident, "`", "``") + "`"
}

type sqliteDialect struct{}

func (sqliteDialect) Name() string { return "sqlite" }
func (sqliteDialect) TablesQuery() string {
	return `SELECT name FROM sqlite_master WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY name`
}
func (sqliteDialect) ColumnsQuery() string {
	return `SELECT name, type FROM pragma_table_info(?) ORDER BY cid`
}
func (sqliteDialect) CountQuery(table string) string {
	return `SELECT COUNT(*) FROM ` + quoteDouble(table)
}
func (sqliteDialect) PageQuery(table, column string) string {
	return fmt.Sprintf(`SELECT rowid, %s FROM %s WHERE rowid > ? ORDER BY rowid LIMIT ?`,
		quoteDouble(column), quoteDouble(table))
}
func (sqliteDialect) StartKey() any { return int64(0) }

type postgresDialect struct{}

func (postgresDialect) Name() string { return "postgres" }
func (postgresDialect) TablesQuery() string {
	return `SELECT table_name FROM information_schema.tables WHERE table_schema = 'public' AND table_type = 'BASE TABLE' ORDER BY table_name`
}
func (postgresDialect) ColumnsQuery() string {
	return `SELECT column_name, data_type FROM information_schema.columns WHERE table_schema = 'public' AND table_name = $1 ORDER BY ordinal_position`
}
func (postgresDialect) CountQuery(table string) string {
	return `SELECT COUNT(*) FROM ` + quoteDouble(table)
}
func (postgresDialect) PageQuery(table, column string) string {
	return fmt.Sprintf(`SELECT ctid, %s FROM %s WHERE ctid > $1 ORDER BY ctid LIMIT $2`,
		quoteDouble(column), quoteDouble(table))
}

// StartKey is the tuple ID below every live Postgres row.
func (postgresDialect) StartKey() any { return "(0,0)" }

type mysqlDialect struct{}

func (mysqlDialect) Name() string { return "mysql" }
func (mysqlDialect) TablesQuery() string {
	return `SELECT table_name FROM information_schema.tables WHERE table_schema = DATABASE() AND table_type = 'BASE TABLE' ORDER BY table_name`
}
func (mysqlDialect) ColumnsQuery() string {
	return `SELECT column_name, data_type FROM information_schema.columns WHERE table_schema = DATABASE() AND table_name = ? ORDER BY ordinal_position`
}
func (mysqlDialect) CountQuery(table string) string {
	return `SELECT COUNT(*) FROM ` + quoteBacktick(table)
}

// PageQuery leans on MySQL's _rowid alias, which resolves to the table's
// single-column integer primary key; tables without one need a schema from
// this century (or a view exposing such a key) to be paged.
func (mysqlDialect) PageQuery(table, column string) string {
	return fmt.Sprintf("SELECT _rowid, %s FROM %s WHERE _rowid > ? ORDER BY _rowid LIMIT ?",
		quoteBacktick(column), quoteBacktick(table))
}
func (mysqlDialect) StartKey() any { return int64(0) }

// memDialect speaks the in-memory driver's verb language instead of SQL.
// The shapes are one-to-one with the SQL dialects' — same argument
// positions, same result columns — so the streaming layer is identical
// whichever backend executes underneath.
type memDialect struct{}

func (memDialect) Name() string        { return "mem" }
func (memDialect) TablesQuery() string { return "TABLES" }
func (memDialect) ColumnsQuery() string {
	return "COLUMNS"
}
func (memDialect) CountQuery(table string) string {
	return "COUNT " + strconv.Quote(table)
}
func (memDialect) PageQuery(table, column string) string {
	return "PAGE " + strconv.Quote(table) + " " + strconv.Quote(column)
}
func (memDialect) StartKey() any { return int64(0) }
