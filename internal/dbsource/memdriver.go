package dbsource

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DriverName is the in-tree pure-Go database/sql driver, registered by
// this package's init. It exists so every dbsource test, the CI smoke
// jobs, and dependency-free builds have a real database/sql stack to run
// against — introspection, keyset paging and the jobs executor all
// exercise the same sql.DB code path a linked SQLite/Postgres/MySQL driver
// would. Real drivers join downstream builds via blank imports.
//
// Two DSN forms are accepted:
//
//	mem://<name>    a registry entry seeded in-process via Register/NewMemDB
//	<directory>     a directory of <table>.csv files, loaded once per
//	                process (header row = column names, literal \N = NULL)
//
// The directory form is what lets CI seed a "database" for a real binary:
// in-memory state cannot cross a process boundary, CSV files can.
const DriverName = "admem"

func init() { sql.Register(DriverName, memDriver{}) }

// NULL literal in directory-loaded CSV cells.
const csvNull = `\N`

// MemCol is one column of an in-memory table.
type MemCol struct {
	// Name is the column name.
	Name string
	// Type is the declared type reported by introspection (TEXT, INTEGER,
	// REAL, ...). Directory loads infer it; Go-seeded tables set it.
	Type string
	// Values are the cell values in row order; nil is NULL. Allowed types
	// are the driver.Value set (string, int64, float64, bool, []byte).
	Values []any
}

// MemTable is one in-memory table, stored column-major.
type MemTable struct {
	Name string
	Cols []MemCol
}

// rows is the table's row count: the longest column (short columns read
// as NULL past their end, mirroring how ragged CSVs load).
func (t *MemTable) rows() int64 {
	var n int
	for _, c := range t.Cols {
		if len(c.Values) > n {
			n = len(c.Values)
		}
	}
	return int64(n)
}

// MemDB is a registrable in-memory database. Safe for concurrent readers;
// seed it fully before handing its name to sql.Open.
type MemDB struct {
	mu     sync.RWMutex
	tables map[string]*MemTable
	// fault, when set, runs before every query and may fail it — the
	// injection point for transient-error and retry tests.
	fault func(query string) error
}

// NewMemDB returns an empty in-memory database.
func NewMemDB() *MemDB {
	return &MemDB{tables: make(map[string]*MemTable)}
}

// AddTable adds (or replaces) a table.
func (m *MemDB) AddTable(name string, cols ...MemCol) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tables[name] = &MemTable{Name: name, Cols: cols}
}

// SetQueryFault installs a hook that runs before every query and may fail
// it; nil clears it. Tests use it to inject transient connection errors.
func (m *MemDB) SetQueryFault(f func(query string) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fault = f
}

// tableNames returns the table names sorted.
func (m *MemDB) tableNames() []string {
	names := make([]string, 0, len(m.tables))
	for n := range m.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// memRegistry resolves mem:// DSNs and caches directory loads.
var memRegistry = struct {
	sync.Mutex
	byName map[string]*MemDB
	byDir  map[string]*MemDB
}{byName: map[string]*MemDB{}, byDir: map[string]*MemDB{}}

// Register binds db to the DSN "mem://name" process-wide. Re-registering a
// name replaces the previous database (new connections see the new one).
func Register(name string, db *MemDB) {
	memRegistry.Lock()
	defer memRegistry.Unlock()
	memRegistry.byName[name] = db
}

// resolveDSN maps a DSN onto its MemDB, loading a CSV directory on first
// use.
func resolveDSN(dsn string) (*MemDB, error) {
	if name, ok := strings.CutPrefix(dsn, "mem://"); ok {
		memRegistry.Lock()
		db := memRegistry.byName[name]
		memRegistry.Unlock()
		if db == nil {
			return nil, fmt.Errorf("admem: no registered database %q (dbsource.Register it first)", name)
		}
		return db, nil
	}
	abs, err := filepath.Abs(dsn)
	if err != nil {
		return nil, fmt.Errorf("admem: resolving DSN %q: %w", dsn, err)
	}
	memRegistry.Lock()
	defer memRegistry.Unlock()
	if db, ok := memRegistry.byDir[abs]; ok {
		return db, nil
	}
	db, err := loadDir(abs)
	if err != nil {
		return nil, err
	}
	memRegistry.byDir[abs] = db
	return db, nil
}

// loadDir loads every <table>.csv directly under dir as one table. The
// first record is the header; a literal \N cell is NULL. Declared types
// are inferred per column (INTEGER, REAL, TEXT) from the non-NULL cells,
// but cell values stay verbatim strings so a database built from CSVs
// audits byte-identically to the CSVs themselves.
func loadDir(dir string) (*MemDB, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("admem: opening DSN directory: %w", err)
	}
	db := NewMemDB()
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.EqualFold(filepath.Ext(e.Name()), ".csv") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		table := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		cols, err := loadCSVTable(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("admem: loading table %q: %w", table, err)
		}
		db.AddTable(table, cols...)
		loaded++
	}
	if loaded == 0 {
		return nil, fmt.Errorf("admem: no .csv tables under %s", dir)
	}
	return db, nil
}

func loadCSVTable(path string) ([]MemCol, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	cols := make([]MemCol, len(header))
	for i, h := range header {
		cols[i].Name = h
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := range cols {
			var v any
			if i < len(rec) && rec[i] != csvNull {
				v = rec[i]
			}
			cols[i].Values = append(cols[i].Values, v)
		}
	}
	for i := range cols {
		cols[i].Type = inferType(cols[i].Values)
	}
	return cols, nil
}

// inferType classifies a column's declared type from its non-NULL cells.
func inferType(values []any) string {
	allInt, allNum, any := true, true, false
	for _, v := range values {
		s, ok := v.(string)
		if !ok {
			continue // NULL
		}
		any = true
		if _, err := strconv.ParseInt(s, 10, 64); err != nil {
			allInt = false
		}
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			allNum = false
		}
	}
	switch {
	case any && allInt:
		return "INTEGER"
	case any && allNum:
		return "REAL"
	default:
		return "TEXT"
	}
}

// --- driver plumbing ---

type memDriver struct{}

func (memDriver) Open(dsn string) (driver.Conn, error) {
	db, err := resolveDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &memConn{db: db}, nil
}

type memConn struct{ db *MemDB }

func (c *memConn) Prepare(string) (driver.Stmt, error) {
	return nil, errors.New("admem: prepared statements are not supported")
}
func (c *memConn) Close() error { return nil }
func (c *memConn) Begin() (driver.Tx, error) {
	return nil, errors.New("admem: transactions are not supported")
}

// QueryContext parses and executes one verb of the mem dialect's command
// language: TABLES · COLUMNS (table as arg) · COUNT "t" · PAGE "t" "c"
// (after, limit as args).
func (c *memConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.db.mu.RLock()
	fault := c.db.fault
	c.db.mu.RUnlock()
	if fault != nil {
		if err := fault(query); err != nil {
			return nil, err
		}
	}
	toks, err := splitCommand(query)
	if err != nil || len(toks) == 0 {
		return nil, fmt.Errorf("admem: bad query %q: %v", query, err)
	}
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	switch toks[0] {
	case "TABLES":
		names := c.db.tableNames()
		rows := make([][]driver.Value, 0, len(names))
		for _, n := range names {
			rows = append(rows, []driver.Value{n, c.db.tables[n].rows()})
		}
		return &memRows{cols: []string{"name", "row_count"}, rows: rows}, nil
	case "COLUMNS":
		if len(args) != 1 {
			return nil, errors.New("admem: COLUMNS wants the table name as its argument")
		}
		t, err := c.lookup(fmt.Sprint(args[0].Value))
		if err != nil {
			return nil, err
		}
		rows := make([][]driver.Value, 0, len(t.Cols))
		for _, col := range t.Cols {
			rows = append(rows, []driver.Value{col.Name, col.Type})
		}
		return &memRows{cols: []string{"name", "type"}, rows: rows}, nil
	case "COUNT":
		if len(toks) != 2 {
			return nil, fmt.Errorf("admem: bad COUNT %q", query)
		}
		t, err := c.lookup(toks[1])
		if err != nil {
			return nil, err
		}
		return &memRows{cols: []string{"count"}, rows: [][]driver.Value{{t.rows()}}}, nil
	case "PAGE":
		if len(toks) != 3 || len(args) != 2 {
			return nil, fmt.Errorf("admem: bad PAGE %q (want PAGE \"table\" \"column\" with after, limit args)", query)
		}
		return c.page(toks[1], toks[2], args[0].Value, args[1].Value)
	default:
		return nil, fmt.Errorf("admem: unknown verb %q", toks[0])
	}
}

func (c *memConn) lookup(name string) (*MemTable, error) {
	t := c.db.tables[name]
	if t == nil {
		return nil, fmt.Errorf("admem: no such table %q", name)
	}
	return t, nil
}

// page serves one keyset page: rows with 1-based row number strictly above
// after, in row order, at most limit of them.
func (c *memConn) page(table, column string, afterV, limitV any) (driver.Rows, error) {
	t, err := c.lookup(table)
	if err != nil {
		return nil, err
	}
	var col *MemCol
	for i := range t.Cols {
		if t.Cols[i].Name == column {
			col = &t.Cols[i]
			break
		}
	}
	if col == nil {
		return nil, fmt.Errorf("admem: no column %q in table %q", column, table)
	}
	after, ok := afterV.(int64)
	if !ok {
		return nil, fmt.Errorf("admem: PAGE after key must be int64, got %T", afterV)
	}
	limit, ok := limitV.(int64)
	if !ok {
		return nil, fmt.Errorf("admem: PAGE limit must be int64, got %T", limitV)
	}
	total := t.rows()
	var rows [][]driver.Value
	for rowid := after + 1; rowid <= total && int64(len(rows)) < limit; rowid++ {
		var v driver.Value
		if rowid <= int64(len(col.Values)) {
			v = col.Values[rowid-1]
		}
		rows = append(rows, []driver.Value{rowid, v})
	}
	return &memRows{cols: []string{"key", "value"}, rows: rows}, nil
}

// splitCommand tokenizes a verb string, honoring strconv.Quote-style
// quoted identifiers.
func splitCommand(s string) ([]string, error) {
	var toks []string
	for i := 0; i < len(s); {
		switch {
		case s[i] == ' ':
			i++
		case s[i] == '"':
			q, rest, err := cutQuoted(s[i:])
			if err != nil {
				return nil, err
			}
			toks = append(toks, q)
			i = len(s) - len(rest)
		default:
			j := strings.IndexByte(s[i:], ' ')
			if j < 0 {
				toks = append(toks, s[i:])
				i = len(s)
			} else {
				toks = append(toks, s[i:i+j])
				i += j
			}
		}
	}
	return toks, nil
}

// cutQuoted unquotes the leading Go-quoted token of s, returning it and
// the remainder.
func cutQuoted(s string) (string, string, error) {
	for j := 1; j < len(s); j++ {
		if s[j] == '\\' {
			j++
			continue
		}
		if s[j] == '"' {
			tok, err := strconv.Unquote(s[:j+1])
			return tok, s[j+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quote in %q", s)
}

type memRows struct {
	cols []string
	rows [][]driver.Value
	pos  int
}

func (r *memRows) Columns() []string { return r.cols }
func (r *memRows) Close() error      { return nil }
func (r *memRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rows) {
		return io.EOF
	}
	copy(dest, r.rows[r.pos])
	r.pos++
	return nil
}
