// Package table models relational tables and implements the column
// extraction pipeline Auto-Detect trains on: the paper extracts 350M
// columns from web tables "with some simple pruning" (Section 2.1). This
// package supplies the table structure, header detection, and the pruning
// heuristics that turn raw tables into training-quality columns.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/corpus"
	"repro/internal/pattern"
)

// Table is a rectangular grid of cells with an optional header row.
type Table struct {
	// Name identifies the table (file name, page title, ...).
	Name string
	// Header holds the column names; empty if the table has none.
	Header []string
	// Rows holds the data rows. Rows may be ragged; missing cells are "".
	Rows [][]string
}

// NumColumns returns the width of the widest row (or the header).
func (t *Table) NumColumns() int {
	w := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > w {
			w = len(r)
		}
	}
	return w
}

// Column returns column i as a value slice, padding ragged rows with "".
func (t *Table) Column(i int) []string {
	out := make([]string, len(t.Rows))
	for ri, row := range t.Rows {
		if i < len(row) {
			out[ri] = row[i]
		}
	}
	return out
}

// ColumnName returns the header name of column i, or "colN".
func (t *Table) ColumnName(i int) string {
	if i < len(t.Header) && strings.TrimSpace(t.Header[i]) != "" {
		return t.Header[i]
	}
	return fmt.Sprintf("col%d", i)
}

// ReadCSV parses a CSV stream into a Table, auto-detecting whether the
// first record is a header (see DetectHeader).
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading %s: %w", name, err)
	}
	t := &Table{Name: name, Rows: recs}
	if DetectHeader(recs) {
		t.Header = recs[0]
		t.Rows = recs[1:]
	}
	return t, nil
}

// DetectHeader reports whether the first record of a table looks like a
// header: its cells are non-numeric and pattern-wise unlike the body
// cells below them. This mirrors the header heuristics web-table extraction
// pipelines use.
func DetectHeader(recs [][]string) bool {
	if len(recs) < 3 {
		return false
	}
	first := recs[0]
	if len(first) == 0 {
		return false
	}
	g := pattern.Crude()
	votes, total := 0, 0
	for ci, cell := range first {
		cell = strings.TrimSpace(cell)
		if cell == "" {
			continue
		}
		total++
		// Numeric header cells are a strong anti-signal.
		if isNumericish(cell) {
			votes--
			continue
		}
		// A header cell whose pattern differs from the body cells below is
		// a pro signal.
		headPat := g.Generalize(cell)
		diff := 0
		seen := 0
		for ri := 1; ri < len(recs) && ri <= 6; ri++ {
			if ci >= len(recs[ri]) {
				continue
			}
			body := strings.TrimSpace(recs[ri][ci])
			if body == "" {
				continue
			}
			seen++
			if g.Generalize(body) != headPat {
				diff++
			}
		}
		if seen > 0 && diff*2 > seen {
			votes++
		}
	}
	return total > 0 && votes*2 > total
}

func isNumericish(s string) bool {
	digits, others := 0, 0
	for _, r := range s {
		switch pattern.Categorize(r) {
		case pattern.CatDigit:
			digits++
		case pattern.CatSymbol:
			// separators don't count either way
		default:
			others++
		}
	}
	return digits > 0 && others == 0
}

// PruneConfig tunes ExtractColumns. The defaults reproduce the "simple
// pruning" of Section 2.1: keep columns that look like homogeneous value
// lists and are usable for co-occurrence statistics.
type PruneConfig struct {
	// MinRows drops very short columns (default 3).
	MinRows int
	// MinDistinct drops near-constant columns (default 2).
	MinDistinct int
	// MaxAvgLength drops long free-text columns — prose paragraphs are not
	// value lists (default 60).
	MaxAvgLength int
	// MaxEmptyFraction drops mostly-empty columns (default 0.3).
	MaxEmptyFraction float64
}

// DefaultPruneConfig returns the default pruning thresholds.
func DefaultPruneConfig() PruneConfig {
	return PruneConfig{MinRows: 3, MinDistinct: 2, MaxAvgLength: 60, MaxEmptyFraction: 0.3}
}

// PruneReason explains why a column was dropped.
type PruneReason string

// Pruning outcomes.
const (
	// KeepColumn marks a usable column.
	KeepColumn PruneReason = ""
	// PruneTooShort marks columns with too few non-empty cells.
	PruneTooShort PruneReason = "too-short"
	// PruneConstant marks single-valued columns.
	PruneConstant PruneReason = "constant"
	// PruneFreeText marks prose-like columns.
	PruneFreeText PruneReason = "free-text"
	// PruneEmpty marks mostly-empty columns.
	PruneEmpty PruneReason = "mostly-empty"
)

// Classify applies the pruning rules to a raw column (with empty cells
// still present) and returns the kept values plus the outcome.
func Classify(values []string, cfg PruneConfig) ([]string, PruneReason) {
	if cfg.MinRows == 0 {
		cfg = DefaultPruneConfig()
	}
	kept := make([]string, 0, len(values))
	empty := 0
	totalLen := 0
	distinct := map[string]struct{}{}
	for _, v := range values {
		v = strings.TrimRight(v, "\r\n")
		if strings.TrimSpace(v) == "" {
			empty++
			continue
		}
		kept = append(kept, v)
		totalLen += len(v)
		distinct[v] = struct{}{}
	}
	if len(values) > 0 && float64(empty)/float64(len(values)) > cfg.MaxEmptyFraction {
		return nil, PruneEmpty
	}
	if len(kept) < cfg.MinRows {
		return nil, PruneTooShort
	}
	if len(distinct) < cfg.MinDistinct {
		return nil, PruneConstant
	}
	if totalLen/len(kept) > cfg.MaxAvgLength {
		return nil, PruneFreeText
	}
	return kept, KeepColumn
}

// ExtractStats summarizes an extraction run.
type ExtractStats struct {
	// Tables is the number of tables processed.
	Tables int
	// Kept is the number of columns extracted.
	Kept int
	// Pruned counts dropped columns by reason.
	Pruned map[PruneReason]int
}

// ExtractColumns turns tables into a training corpus, applying the pruning
// rules to every column.
func ExtractColumns(tables []*Table, cfg PruneConfig) (*corpus.Corpus, ExtractStats) {
	stats := ExtractStats{Pruned: map[PruneReason]int{}}
	c := &corpus.Corpus{Name: "extracted"}
	for _, t := range tables {
		stats.Tables++
		for ci := 0; ci < t.NumColumns(); ci++ {
			values, reason := Classify(t.Column(ci), cfg)
			if reason != KeepColumn {
				stats.Pruned[reason]++
				continue
			}
			stats.Kept++
			c.Columns = append(c.Columns, &corpus.Column{
				Name:   t.Name + "/" + t.ColumnName(ci),
				Values: values,
			})
		}
	}
	return c, stats
}
