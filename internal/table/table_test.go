package table

import (
	"strings"
	"testing"
)

func TestReadCSVWithHeader(t *testing.T) {
	csv := "Name,Year,Score\nAlice,2001,3-2\nBob,2004,1-0\nCarol,1999,4-4\n"
	tab, err := ReadCSV("demo", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Header) != 3 || tab.Header[1] != "Year" {
		t.Errorf("header = %v", tab.Header)
	}
	if len(tab.Rows) != 3 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	if got := tab.Column(1); len(got) != 3 || got[0] != "2001" {
		t.Errorf("Column(1) = %v", got)
	}
	if tab.ColumnName(1) != "Year" || tab.ColumnName(9) != "col9" {
		t.Error("ColumnName broken")
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	csv := "2001,3-2\n2004,1-0\n1999,4-4\n2011,2-2\n"
	tab, err := ReadCSV("nohdr", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Header) != 0 {
		t.Errorf("detected spurious header %v", tab.Header)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestDetectHeader(t *testing.T) {
	cases := []struct {
		recs [][]string
		want bool
	}{
		{[][]string{{"Name", "Year"}, {"Alice", "2001"}, {"Bob", "2004"}, {"Ann", "2011"}}, true},
		{[][]string{{"2001", "3"}, {"2004", "1"}, {"1999", "4"}}, false},
		{[][]string{{"Alice", "x"}}, false}, // too short to tell
		{nil, false},
		// All-text body: header cells look like body cells → no header.
		{[][]string{{"alpha", "bravo"}, {"cargo", "delta"}, {"ember", "falcon"}, {"garden", "harbor"}}, false},
	}
	for i, c := range cases {
		if got := DetectHeader(c.recs); got != c.want {
			t.Errorf("case %d: DetectHeader = %v, want %v", i, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	cfg := DefaultPruneConfig()
	longText := strings.Repeat("long prose sentence with many words ", 3)
	cases := []struct {
		name   string
		values []string
		want   PruneReason
	}{
		{"good", []string{"1", "2", "3", "4"}, KeepColumn},
		{"short", []string{"1", "2"}, PruneTooShort},
		{"constant", []string{"x", "x", "x", "x"}, PruneConstant},
		{"freetext", []string{longText, longText + "a", longText + "b"}, PruneFreeText},
		{"empty", []string{"1", "", "", "", "2"}, PruneEmpty},
	}
	for _, c := range cases {
		if _, got := Classify(c.values, cfg); got != c.want {
			t.Errorf("%s: reason = %q, want %q", c.name, got, c.want)
		}
	}
	// Kept values exclude blanks and trailing newlines.
	kept, reason := Classify([]string{"a\r\n", "b", "c", "", "d"}, PruneConfig{MinRows: 3, MinDistinct: 2, MaxAvgLength: 60, MaxEmptyFraction: 0.5})
	if reason != KeepColumn || len(kept) != 4 || kept[0] != "a" {
		t.Errorf("kept = %v reason = %q", kept, reason)
	}
}

func TestExtractColumns(t *testing.T) {
	tables := []*Table{
		{
			Name:   "t1",
			Header: []string{"Year", "Note"},
			Rows: [][]string{
				{"2001", "aaaa"},
				{"2004", "aaaa"},
				{"1999", "aaaa"},
				{"2011", "aaaa"},
			},
		},
		{
			Name: "t2",
			Rows: [][]string{{"1", ""}, {"2", ""}, {"3", ""}, {"4", ""}},
		},
	}
	c, stats := ExtractColumns(tables, DefaultPruneConfig())
	if stats.Tables != 2 {
		t.Errorf("tables = %d", stats.Tables)
	}
	// t1: Year kept, Note constant-pruned. t2: col0 kept, col1 empty-pruned.
	if stats.Kept != 2 || c.NumColumns() != 2 {
		t.Errorf("kept = %d, corpus = %d", stats.Kept, c.NumColumns())
	}
	if stats.Pruned[PruneConstant] != 1 || stats.Pruned[PruneEmpty] != 1 {
		t.Errorf("pruned = %v", stats.Pruned)
	}
	if c.Columns[0].Name != "t1/Year" {
		t.Errorf("column name = %q", c.Columns[0].Name)
	}
}

func TestRaggedRows(t *testing.T) {
	tab := &Table{Rows: [][]string{{"a", "b", "c"}, {"d"}, {"e", "f"}}}
	if tab.NumColumns() != 3 {
		t.Errorf("NumColumns = %d", tab.NumColumns())
	}
	if got := tab.Column(2); got[0] != "c" || got[1] != "" || got[2] != "" {
		t.Errorf("Column(2) = %v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("bad", strings.NewReader("a,\"unterminated\n")); err == nil {
		t.Error("malformed CSV should error")
	}
}
