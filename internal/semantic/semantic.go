// Package semantic implements value-level error detection — the extension
// the paper names as future work ("detecting errors in semantic data
// values", Section 6). Pattern-level generalization cannot see that
// "Seattle" does not belong in a column of US states: every value is
// `\U\l+`. But raw value co-occurrence can (Section 2.1 develops NPMI at
// the value level before generalizing): "Washington" and "Oregon" co-occur
// in thousands of columns, "Washington" and "Seattle" far more rarely
// relative to their popularity.
//
// To keep memory bounded without generalization, the model only keeps
// values above a support threshold; columns dominated by unsupported
// values yield no verdicts (the pattern-level detector handles those).
package semantic

import (
	"errors"
	"math"
	"sort"

	"repro/internal/corpus"
	"repro/internal/stats"
)

// Config tunes value-level training.
type Config struct {
	// MinSupport keeps only values occurring in at least this many columns
	// (default 5).
	MinSupport int
	// MaxValueLength ignores longer values (default 40 bytes).
	MaxValueLength int
	// Smoothing is the Jelinek–Mercer factor (default 0.1).
	Smoothing float64
	// Threshold flags pairs with NPMI at or below it (default −0.3).
	Threshold float64
}

// DefaultConfig returns the default value-level settings. Smoothing is far
// lighter than the pattern-level default: value marginals are small, so
// Jelinek–Mercer blending at f = 0.1 would lift genuinely disjoint value
// pairs well above any usable threshold.
func DefaultConfig() Config {
	return Config{MinSupport: 5, MaxValueLength: 40, Smoothing: 0.01, Threshold: -0.25}
}

// Finding is one suspected semantic error.
type Finding struct {
	// Value is the suspect.
	Value string
	// Index is the row of the first occurrence.
	Index int
	// Partner is the supported value it conflicts with most.
	Partner string
	// Confidence in [0,1] derives from the NPMI margin below the threshold.
	Confidence float64
}

// Model holds value-level co-occurrence statistics.
type Model struct {
	cfg Config
	n   uint64
	ids map[string]uint32
	occ []uint32
	prs *stats.MapPairStore
}

// Train builds the model from a corpus, keeping only supported values.
func Train(c *corpus.Corpus, cfg Config) (*Model, error) {
	if c == nil || len(c.Columns) == 0 {
		return nil, errors.New("semantic: empty corpus")
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 5
	}
	if cfg.MaxValueLength <= 0 {
		cfg.MaxValueLength = 40
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = -0.3
	}

	// Pass 1: column-level value support.
	support := map[string]int{}
	for _, col := range c.Columns {
		for _, v := range col.DistinctValues() {
			if len(v) <= cfg.MaxValueLength {
				support[v]++
			}
		}
	}
	m := &Model{cfg: cfg, ids: map[string]uint32{}, prs: stats.NewMapPairStore()}
	for v, s := range support {
		if s >= cfg.MinSupport {
			m.ids[v] = uint32(len(m.occ))
			m.occ = append(m.occ, 0)
		}
	}
	if len(m.ids) == 0 {
		return nil, errors.New("semantic: no value meets the support threshold")
	}

	// Pass 2: occurrence and co-occurrence over supported values.
	for _, col := range c.Columns {
		m.n++
		var ids []uint32
		for _, v := range col.DistinctValues() {
			if id, ok := m.ids[v]; ok {
				ids = append(ids, id)
				m.occ[id]++
			}
		}
		if len(ids) > 64 {
			ids = ids[:64]
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				m.prs.Add(ids[i], ids[j], 1)
			}
		}
	}
	return m, nil
}

// Supported reports whether the model has statistics for the value.
func (m *Model) Supported(v string) bool {
	_, ok := m.ids[v]
	return ok
}

// SupportedValues returns the number of values the model tracks.
func (m *Model) SupportedValues() int { return len(m.ids) }

// NPMI returns the value-level NPMI of two supported values; ok is false
// when either value lacks support.
func (m *Model) NPMI(v1, v2 string) (npmi float64, ok bool) {
	if v1 == v2 {
		return 1, true
	}
	id1, ok1 := m.ids[v1]
	id2, ok2 := m.ids[v2]
	if !ok1 || !ok2 || m.n == 0 {
		return 0, false
	}
	c1 := float64(m.occ[id1])
	c2 := float64(m.occ[id2])
	c12 := float64(m.prs.Get(id1, id2))
	n := float64(m.n)
	f := m.cfg.Smoothing
	c12s := (1-f)*c12 + f*c1*c2/n
	if c12s <= 0 {
		return -1, true
	}
	p12 := c12s / n
	pmi := math.Log(p12 / ((c1 / n) * (c2 / n)))
	denom := -math.Log(p12)
	if denom <= 0 {
		return 1, true
	}
	v := pmi / denom
	if v > 1 {
		v = 1
	}
	if v < -1 {
		v = -1
	}
	return v, true
}

// DetectColumn flags supported values that are value-level incompatible
// with the column's other supported values. Findings are ranked by
// descending confidence; columns with fewer than three supported distinct
// values yield nothing.
func (m *Model) DetectColumn(values []string) []Finding {
	type dv struct {
		value        string
		count, first int
	}
	var distinct []dv
	index := map[string]int{}
	for i, v := range values {
		if j, ok := index[v]; ok {
			distinct[j].count++
			continue
		}
		if !m.Supported(v) {
			continue
		}
		index[v] = len(distinct)
		distinct = append(distinct, dv{v, 1, i})
	}
	if len(distinct) < 3 {
		return nil
	}
	n := len(distinct)
	confSum := make([]float64, n)
	weight := make([]float64, n)
	bestConf := make([]float64, n)
	bestPartner := make([]int, n)
	for i := range bestPartner {
		bestPartner[i] = -1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s, ok := m.NPMI(distinct[i].value, distinct[j].value)
			if !ok {
				continue
			}
			weight[i] += float64(distinct[j].count)
			weight[j] += float64(distinct[i].count)
			if s > m.cfg.Threshold {
				continue
			}
			// Confidence from the margin below the threshold.
			conf := (m.cfg.Threshold - s) / (m.cfg.Threshold + 1)
			if conf > 1 {
				conf = 1
			}
			confSum[i] += conf * float64(distinct[j].count)
			confSum[j] += conf * float64(distinct[i].count)
			if conf > bestConf[i] {
				bestConf[i], bestPartner[i] = conf, j
			}
			if conf > bestConf[j] {
				bestConf[j], bestPartner[j] = conf, i
			}
		}
	}
	var out []Finding
	for i := 0; i < n; i++ {
		if bestPartner[i] < 0 || weight[i] == 0 {
			continue
		}
		out = append(out, Finding{
			Value:      distinct[i].value,
			Index:      distinct[i].first,
			Partner:    distinct[bestPartner[i]].value,
			Confidence: confSum[i] / weight[i],
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}
