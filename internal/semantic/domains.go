package semantic

import (
	"strconv"
	"strings"
)

// Domain validators for schema-primed checks. Database introspection maps
// column names and declared types onto one of these domains (a column
// named email, a DATE-typed column, ...), and CheckDomain then validates
// the values against the domain's shape even when syntactic NPMI is
// ambiguous about them. Validators are deliberately permissive shape
// checks, not RFC parsers: the goal is catching a phone number in the
// email column, not adjudicating exotic-but-legal addresses.

// domainValidators maps each known domain to its value predicate.
var domainValidators = map[string]func(string) bool{
	"email":        validEmail,
	"phone":        validPhone,
	"zip":          validZip,
	"url":          validURL,
	"ipv4":         validIPv4,
	"uuid":         validUUID,
	"date":         validDate,
	"year":         validYear,
	"country_code": validCountryCode,
	"bool":         validBool,
}

// KnownDomain reports whether CheckDomain can validate the named domain.
// Callers accepting hints from users (the jobs HTTP API) reject unknown
// names up front rather than silently skipping the check.
func KnownDomain(domain string) bool {
	_, ok := domainValidators[domain]
	return ok
}

// CheckDomain validates a column's values against a hinted semantic
// domain, flagging the values that don't conform. The hint is treated as
// evidence, not truth: if fewer than ConformityFloor of the non-empty
// values conform, the hint is judged wrong for this column (an "email"
// column holding user IDs) and no findings are returned. Empty values are
// ignored — NULL-ness is the completeness checker's business, not the
// format's. Each distinct non-conforming value is flagged once, at its
// first occurrence, with confidence equal to the column's conformity rate
// (the stronger the column's consensus, the more confident the outlier
// call). Unknown domains return nil.
func CheckDomain(domain string, values []string) []Finding {
	valid := domainValidators[domain]
	if valid == nil {
		return nil
	}
	nonEmpty, conforming := 0, 0
	for _, v := range values {
		if v == "" {
			continue
		}
		nonEmpty++
		if valid(v) {
			conforming++
		}
	}
	if nonEmpty == 0 || conforming == nonEmpty {
		return nil
	}
	rate := float64(conforming) / float64(nonEmpty)
	if rate < ConformityFloor {
		return nil
	}
	var findings []Finding
	seen := make(map[string]bool)
	for i, v := range values {
		if v == "" || valid(v) || seen[v] {
			continue
		}
		seen[v] = true
		findings = append(findings, Finding{
			Value:      v,
			Index:      i,
			Partner:    domain + " format",
			Confidence: rate,
		})
	}
	return findings
}

// ConformityFloor is the fraction of a column's non-empty values that must
// conform before a domain hint is trusted enough to flag the rest.
const ConformityFloor = 0.8

func validEmail(s string) bool {
	at := strings.IndexByte(s, '@')
	if at <= 0 || at == len(s)-1 || strings.ContainsAny(s, " \t") {
		return false
	}
	domain := s[at+1:]
	dot := strings.LastIndexByte(domain, '.')
	return !strings.ContainsRune(domain, '@') &&
		dot > 0 && dot < len(domain)-1
}

// validPhone accepts 7–15 digits with the usual punctuation (+, spaces,
// dots, dashes, parentheses).
func validPhone(s string) bool {
	digits := 0
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '+' && i == 0:
		case r == ' ' || r == '-' || r == '.' || r == '(' || r == ')':
		default:
			return false
		}
	}
	return digits >= 7 && digits <= 15
}

// validZip accepts US 5-digit (optionally ZIP+4) codes.
func validZip(s string) bool {
	if len(s) == 10 && s[5] == '-' {
		return allDigits(s[:5]) && allDigits(s[6:])
	}
	return len(s) == 5 && allDigits(s)
}

func validURL(s string) bool {
	rest, ok := strings.CutPrefix(s, "https://")
	if !ok {
		rest, ok = strings.CutPrefix(s, "http://")
	}
	return ok && rest != "" && !strings.ContainsAny(rest, " \t")
}

func validIPv4(s string) bool {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 || !allDigits(p) {
			return false
		}
		if n, _ := strconv.Atoi(p); n > 255 {
			return false
		}
	}
	return true
}

func validUUID(s string) bool {
	if len(s) != 36 {
		return false
	}
	for i, r := range s {
		if i == 8 || i == 13 || i == 18 || i == 23 {
			if r != '-' {
				return false
			}
			continue
		}
		if !isHex(byte(r)) {
			return false
		}
	}
	return true
}

// validDate accepts ISO dates (2006-01-02), optionally with a time part
// (RFC 3339 or "2006-01-02 15:04:05").
func validDate(s string) bool {
	if len(s) < 10 {
		return false
	}
	d := s[:10]
	if d[4] != '-' || d[7] != '-' ||
		!allDigits(d[:4]) || !allDigits(d[5:7]) || !allDigits(d[8:10]) {
		return false
	}
	month, _ := strconv.Atoi(d[5:7])
	day, _ := strconv.Atoi(d[8:10])
	if month < 1 || month > 12 || day < 1 || day > 31 {
		return false
	}
	return len(s) == 10 || s[10] == 'T' || s[10] == ' '
}

func validYear(s string) bool {
	if len(s) != 4 || !allDigits(s) {
		return false
	}
	y, _ := strconv.Atoi(s)
	return y >= 1000 && y <= 2999
}

// validCountryCode accepts ISO 3166-1 alpha-2 shapes (two ASCII letters).
func validCountryCode(s string) bool {
	return len(s) == 2 &&
		isLetter(s[0]) && isLetter(s[1])
}

func validBool(s string) bool {
	switch strings.ToLower(s) {
	case "true", "false", "t", "f", "yes", "no", "y", "n", "0", "1":
		return true
	}
	return false
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

func isHex(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func isLetter(b byte) bool {
	return b >= 'A' && b <= 'Z' || b >= 'a' && b <= 'z'
}
