package semantic

import (
	"sync"
	"testing"

	"repro/internal/corpus"
)

var (
	semOnce  sync.Once
	semModel *Model
	semErr   error
)

func sharedModel(t *testing.T) *Model {
	t.Helper()
	semOnce.Do(func() {
		c := corpus.Generate(corpus.WebProfile(), 6000, 21)
		semModel, semErr = Train(c, DefaultConfig())
	})
	if semErr != nil {
		t.Fatal(semErr)
	}
	return semModel
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("nil corpus should error")
	}
	if _, err := Train(&corpus.Corpus{}, DefaultConfig()); err == nil {
		t.Error("empty corpus should error")
	}
	// A corpus of all-unique values has nothing above support.
	c := &corpus.Corpus{Columns: []*corpus.Column{
		{Values: []string{"aaa1", "bbb2"}}, {Values: []string{"ccc3", "ddd4"}},
	}}
	if _, err := Train(c, DefaultConfig()); err == nil {
		t.Error("unsupported corpus should error")
	}
}

func TestSupport(t *testing.T) {
	m := sharedModel(t)
	if !m.Supported("Washington") || !m.Supported("Seattle") {
		t.Fatal("common values should be supported")
	}
	if m.Supported("zzz-never-seen") {
		t.Error("unseen value supported")
	}
	if m.SupportedValues() < 100 {
		t.Errorf("only %d supported values", m.SupportedValues())
	}
}

func TestValueLevelNPMI(t *testing.T) {
	m := sharedModel(t)
	states, ok := m.NPMI("Washington", "Oregon")
	if !ok {
		t.Fatal("states should be supported")
	}
	mixed, ok := m.NPMI("Washington", "Seattle")
	if !ok {
		t.Fatal("city should be supported")
	}
	if states <= 0 {
		t.Errorf("NPMI(Washington, Oregon) = %v, want > 0 (states co-occur)", states)
	}
	if mixed >= states {
		t.Errorf("state-city NPMI %v should be below state-state %v", mixed, states)
	}
	if s, _ := m.NPMI("Washington", "Washington"); s != 1 {
		t.Error("identical values should score 1")
	}
	if _, ok := m.NPMI("Washington", "zzz-never-seen"); ok {
		t.Error("unsupported value should report !ok")
	}
}

// TestDetectsSemanticMixing: "Seattle" among states is invisible to
// pattern-level detection (identical `\U\l+` shapes) but must be caught at
// the value level.
func TestDetectsSemanticMixing(t *testing.T) {
	m := sharedModel(t)
	col := []string{"Washington", "Oregon", "Texas", "Florida", "Ohio", "Seattle", "Nevada", "Utah"}
	findings := m.DetectColumn(col)
	if len(findings) == 0 {
		t.Fatal("no findings on the mixed column")
	}
	if findings[0].Value != "Seattle" {
		t.Errorf("top finding = %q (%.2f vs %q), want Seattle",
			findings[0].Value, findings[0].Confidence, findings[0].Partner)
	}
	if findings[0].Index != 5 {
		t.Errorf("index = %d", findings[0].Index)
	}
}

func TestCleanColumnsQuiet(t *testing.T) {
	m := sharedModel(t)
	clean := [][]string{
		{"Washington", "Oregon", "Texas", "Florida", "Ohio"},
		{"Seattle", "Boston", "Denver", "Austin", "Miami"},
	}
	for _, col := range clean {
		for _, f := range m.DetectColumn(col) {
			if f.Confidence > 0.5 {
				t.Errorf("flagged %q in clean column %v (%.2f)", f.Value, col, f.Confidence)
			}
		}
	}
}

func TestDetectColumnDegenerate(t *testing.T) {
	m := sharedModel(t)
	if m.DetectColumn(nil) != nil {
		t.Error("nil column")
	}
	if m.DetectColumn([]string{"Washington", "Oregon"}) != nil {
		t.Error("two supported values are not enough for a verdict")
	}
	// Columns of unsupported values yield nothing.
	if m.DetectColumn([]string{"q1x", "q2x", "q3x", "q4x"}) != nil {
		t.Error("unsupported column should be silent")
	}
}
