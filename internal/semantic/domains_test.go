package semantic

import "testing"

func TestKnownDomain(t *testing.T) {
	for _, d := range []string{"email", "phone", "zip", "url", "ipv4", "uuid", "date", "year", "country_code", "bool"} {
		if !KnownDomain(d) {
			t.Errorf("KnownDomain(%q) = false", d)
		}
	}
	if KnownDomain("ssn") {
		t.Error("KnownDomain(ssn) should be false")
	}
}

func TestCheckDomainFlagsOutliers(t *testing.T) {
	values := []string{
		"a@x.com", "b@x.com", "c@x.com", "d@x.com", "e@x.com",
		"not-an-email", "f@x.com", "g@x.com", "h@x.com", "", "not-an-email",
	}
	fs := CheckDomain("email", values)
	if len(fs) != 1 {
		t.Fatalf("findings = %+v, want exactly one (distinct values flagged once)", fs)
	}
	f := fs[0]
	if f.Value != "not-an-email" || f.Index != 5 {
		t.Errorf("finding = %+v, want first occurrence at index 5", f)
	}
	if f.Partner != "email format" {
		t.Errorf("partner = %q", f.Partner)
	}
	// 8 of 10 non-empty values conform (the empty cell is excluded).
	if f.Confidence != 0.8 {
		t.Errorf("confidence = %f, want 0.8", f.Confidence)
	}
}

func TestCheckDomainRejectsWrongHint(t *testing.T) {
	// A column of user IDs hinted as email: conformity is ~0, the hint is
	// judged wrong and nothing is flagged.
	values := []string{"u001", "u002", "u003", "u004", "a@x.com"}
	if fs := CheckDomain("email", values); fs != nil {
		t.Fatalf("wrong hint should yield no findings, got %+v", fs)
	}
}

func TestCheckDomainEdgeCases(t *testing.T) {
	if fs := CheckDomain("email", nil); fs != nil {
		t.Errorf("empty column: %+v", fs)
	}
	if fs := CheckDomain("email", []string{"", "", ""}); fs != nil {
		t.Errorf("all-NULL column: %+v", fs)
	}
	if fs := CheckDomain("email", []string{"a@x.com", "b@x.com"}); fs != nil {
		t.Errorf("fully conforming column: %+v", fs)
	}
	if fs := CheckDomain("nonsense", []string{"a"}); fs != nil {
		t.Errorf("unknown domain: %+v", fs)
	}
}

func TestValidators(t *testing.T) {
	cases := []struct {
		domain, value string
		want          bool
	}{
		{"email", "a@b.co", true},
		{"email", "a b@b.co", false},
		{"email", "a@b", false},
		{"phone", "+1 (555) 123-4567", true},
		{"phone", "555-0199", true},
		{"phone", "123", false},
		{"phone", "call me", false},
		{"zip", "10001", true},
		{"zip", "10001-1234", true},
		{"zip", "1000", false},
		{"url", "https://example.com/x", true},
		{"url", "example.com", false},
		{"ipv4", "192.168.0.1", true},
		{"ipv4", "192.168.0.256", false},
		{"ipv4", "192.168.0", false},
		{"uuid", "123e4567-e89b-12d3-a456-426614174000", true},
		{"uuid", "123e4567e89b12d3a456426614174000", false},
		{"date", "2024-02-29", true},
		{"date", "2024-13-01", false},
		{"date", "2024-02-29T12:00:00Z", true},
		{"date", "02/29/2024", false},
		{"year", "1999", true},
		{"year", "99", false},
		{"country_code", "US", true},
		{"country_code", "USA", false},
		{"bool", "true", true},
		{"bool", "Y", true},
		{"bool", "maybe", false},
	}
	for _, c := range cases {
		if got := domainValidators[c.domain](c.value); got != c.want {
			t.Errorf("%s(%q) = %v, want %v", c.domain, c.value, got, c.want)
		}
	}
}
