package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"repro/internal/envelope"
	"repro/internal/stats"
)

// Model file magics. Version 2 (current) wraps the payload in a length
// header and a CRC64 trailer so that truncated or bit-flipped files are
// rejected deterministically instead of deserializing into a silently
// broken detector. Version 1 files (no integrity envelope) remain
// readable.
var (
	magicV1 = []byte("AUTODETECT-GO/1\n")
	magicV2 = []byte("AUTODETECT-GO/2\n")
)

// ErrCorruptModel is wrapped by every Load failure: wrong magic, truncated
// stream, implausible counts, CRC mismatch, or undecodable statistics.
// Callers can test with errors.Is(err, ErrCorruptModel).
var ErrCorruptModel = errors.New("corrupt or invalid model")

// Decode-time sanity caps. A corrupted length field must never drive a
// multi-gigabyte allocation or an effectively unbounded read.
const (
	maxModelLanguages = 1024    // languages per model
	maxCurvePoints    = 1 << 24 // precision-curve entries per language
	maxStatsBlob      = 1 << 28 // serialized statistics bytes per language
	maxPayloadBytes   = 1 << 32 // total v2 payload bytes
)

// crcTable is the CRC64 polynomial used by the v2 integrity trailer; it is
// the shared envelope polynomial, so model files and pipeline checkpoint
// shards carry the same kind of trailer.
var crcTable = envelope.Table()

func corruptf(format string, args ...any) error {
	return fmt.Errorf("core: %w: %s", ErrCorruptModel, fmt.Sprintf(format, args...))
}

// Save serializes the detector in the v2 format:
//
//	magic "AUTODETECT-GO/2\n" | u64 payload length | payload | u64 CRC64(payload)
//
// The payload holds the aggregation strategy and, per language, the
// threshold, the empirical precision curve, and the corpus statistics.
// Sketch-compressed detectors cannot be saved; save before compressing.
func (d *Detector) Save(w io.Writer) error {
	var payload bytes.Buffer
	if err := d.encodePayload(&payload); err != nil {
		return err
	}
	return envelope.Write(w, magicV2, payload.Bytes())
}

// encodePayload writes the version-independent model body.
func (d *Detector) encodePayload(w io.Writer) error {
	var tmp [8]byte
	wu64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(tmp[:], v)
		_, err := w.Write(tmp[:])
		return err
	}
	if err := wu64(uint64(d.agg)); err != nil {
		return err
	}
	if err := wu64(uint64(len(d.cals))); err != nil {
		return err
	}
	for _, c := range d.cals {
		if err := wu64(math.Float64bits(c.Theta)); err != nil {
			return err
		}
		if err := wu64(math.Float64bits(c.TargetPrecision)); err != nil {
			return err
		}
		if err := wu64(uint64(len(c.scores))); err != nil {
			return err
		}
		for _, s := range c.scores {
			if err := wu64(math.Float64bits(s)); err != nil {
				return err
			}
		}
		for _, p := range c.prefixNeg {
			if err := wu64(uint64(p)); err != nil {
				return err
			}
		}
		blob, err := c.Stats.MarshalBinary()
		if err != nil {
			return fmt.Errorf("core: serializing statistics: %w", err)
		}
		if err := wu64(uint64(len(blob))); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	return nil
}

// Load deserializes a detector produced by Save. It accepts the current v2
// format (verifying the length header and CRC64 trailer) and legacy v1
// files (best-effort, no integrity envelope). Any failure — wrong magic,
// truncation, implausible counts, checksum mismatch — returns an error
// wrapping ErrCorruptModel and never panics.
func Load(r io.Reader) (*Detector, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, corruptf("reading model magic: %v", err)
	}
	switch {
	case bytes.Equal(magic, magicV2):
		return loadV2(br)
	case bytes.Equal(magic, magicV1):
		return decodePayload(br)
	default:
		return nil, corruptf("not an Auto-Detect model")
	}
}

// loadV2 decodes "u64 length | payload | u64 CRC64(payload)". The payload
// is decoded as a bounded stream while the checksum accumulates, so a
// corrupted length field cannot drive an unbounded allocation.
func loadV2(br *bufio.Reader) (*Detector, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(br, tmp[:]); err != nil {
		return nil, corruptf("reading payload length: %v", err)
	}
	plen := binary.LittleEndian.Uint64(tmp[:])
	if plen > maxPayloadBytes {
		return nil, corruptf("payload length %d exceeds cap", plen)
	}
	h := crc64.New(crcTable)
	cr := &countingReader{r: io.TeeReader(io.LimitReader(br, int64(plen)), h)}
	det, err := decodePayload(cr)
	if err != nil {
		return nil, err
	}
	if cr.n != int64(plen) {
		return nil, corruptf("payload length %d does not match decoded size %d", plen, cr.n)
	}
	if _, err := io.ReadFull(br, tmp[:]); err != nil {
		return nil, corruptf("reading checksum trailer: %v", err)
	}
	if want, got := binary.LittleEndian.Uint64(tmp[:]), h.Sum64(); want != got {
		return nil, corruptf("checksum mismatch: file says %016x, payload hashes to %016x", want, got)
	}
	return det, nil
}

// countingReader counts bytes consumed from the underlying reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// decodePayload reads the version-independent model body, validating every
// count and every structural invariant of the calibration data before
// allocating or trusting it.
func decodePayload(r io.Reader) (*Detector, error) {
	var tmp [8]byte
	ru64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, tmp[:]); err != nil {
			return 0, corruptf("truncated model: %v", err)
		}
		return binary.LittleEndian.Uint64(tmp[:]), nil
	}
	aggv, err := ru64()
	if err != nil {
		return nil, err
	}
	if aggv > uint64(AggWeightedMajorityVote) {
		return nil, corruptf("unknown aggregation strategy %d", aggv)
	}
	nl, err := ru64()
	if err != nil {
		return nil, err
	}
	if nl == 0 || nl > maxModelLanguages {
		return nil, corruptf("implausible language count %d", nl)
	}
	cals := make([]*Calibration, 0, nl)
	for i := uint64(0); i < nl; i++ {
		c := &Calibration{}
		th, err := ru64()
		if err != nil {
			return nil, err
		}
		c.Theta = math.Float64frombits(th)
		if math.IsNaN(c.Theta) {
			return nil, corruptf("language %d: threshold is NaN", i)
		}
		tp, err := ru64()
		if err != nil {
			return nil, err
		}
		c.TargetPrecision = math.Float64frombits(tp)
		if math.IsNaN(c.TargetPrecision) || c.TargetPrecision < 0 || c.TargetPrecision > 1 {
			return nil, corruptf("language %d: target precision out of range", i)
		}
		ns, err := ru64()
		if err != nil {
			return nil, err
		}
		if ns > maxCurvePoints {
			return nil, corruptf("language %d: implausible curve length %d", i, ns)
		}
		c.scores = make([]float64, ns)
		for j := range c.scores {
			v, err := ru64()
			if err != nil {
				return nil, err
			}
			s := math.Float64frombits(v)
			if math.IsNaN(s) {
				return nil, corruptf("language %d: curve score %d is NaN", i, j)
			}
			if j > 0 && s < c.scores[j-1] {
				return nil, corruptf("language %d: curve scores not sorted at %d", i, j)
			}
			c.scores[j] = s
		}
		c.prefixNeg = make([]int, ns)
		prev := uint64(0)
		for j := range c.prefixNeg {
			v, err := ru64()
			if err != nil {
				return nil, err
			}
			// prefixNeg[j] counts incompatible examples among scores[0..j]:
			// it must fit the prefix, never decrease, and grow by at most
			// one per step. That also guarantees the uint64→int cast is
			// safe on every platform.
			if v > uint64(j+1) || v < prev || v > prev+1 {
				return nil, corruptf("language %d: invalid precision-curve prefix at %d", i, j)
			}
			prev = v
			c.prefixNeg[j] = int(v)
		}
		bl, err := ru64()
		if err != nil {
			return nil, err
		}
		if bl > maxStatsBlob {
			return nil, corruptf("language %d: implausible statistics length %d", i, bl)
		}
		blob := make([]byte, bl)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, corruptf("language %d: truncated statistics: %v", i, err)
		}
		ls := &stats.LanguageStats{}
		if err := ls.UnmarshalBinary(blob); err != nil {
			return nil, corruptf("language %d statistics: %v", i, err)
		}
		c.Stats = ls
		c.coverage = NewBitset(0)
		cals = append(cals, c)
	}
	det, err := NewDetector(cals, Aggregation(aggv))
	if err != nil {
		return nil, corruptf("%v", err)
	}
	return det, nil
}
