package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/stats"
)

// modelMagic identifies serialized Auto-Detect models.
var modelMagic = []byte("AUTODETECT-GO/1\n")

// Save serializes the detector: aggregation strategy and, per language,
// the threshold, the empirical precision curve, and the corpus statistics.
// Sketch-compressed detectors cannot be saved; save before compressing.
func (d *Detector) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(modelMagic); err != nil {
		return err
	}
	var tmp [8]byte
	wu64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(tmp[:], v)
		_, err := bw.Write(tmp[:])
		return err
	}
	if err := wu64(uint64(d.agg)); err != nil {
		return err
	}
	if err := wu64(uint64(len(d.cals))); err != nil {
		return err
	}
	for _, c := range d.cals {
		if err := wu64(math.Float64bits(c.Theta)); err != nil {
			return err
		}
		if err := wu64(math.Float64bits(c.TargetPrecision)); err != nil {
			return err
		}
		if err := wu64(uint64(len(c.scores))); err != nil {
			return err
		}
		for _, s := range c.scores {
			if err := wu64(math.Float64bits(s)); err != nil {
				return err
			}
		}
		for _, p := range c.prefixNeg {
			if err := wu64(uint64(p)); err != nil {
				return err
			}
		}
		blob, err := c.Stats.MarshalBinary()
		if err != nil {
			return fmt.Errorf("core: serializing statistics: %w", err)
		}
		if err := wu64(uint64(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load deserializes a detector produced by Save.
func Load(r io.Reader) (*Detector, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading model magic: %w", err)
	}
	if string(magic) != string(modelMagic) {
		return nil, errors.New("core: not an Auto-Detect model")
	}
	var tmp [8]byte
	ru64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, tmp[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(tmp[:]), nil
	}
	aggv, err := ru64()
	if err != nil {
		return nil, err
	}
	nl, err := ru64()
	if err != nil {
		return nil, err
	}
	if nl == 0 || nl > 1024 {
		return nil, errors.New("core: corrupt language count")
	}
	cals := make([]*Calibration, 0, nl)
	for i := uint64(0); i < nl; i++ {
		c := &Calibration{}
		th, err := ru64()
		if err != nil {
			return nil, err
		}
		c.Theta = math.Float64frombits(th)
		tp, err := ru64()
		if err != nil {
			return nil, err
		}
		c.TargetPrecision = math.Float64frombits(tp)
		ns, err := ru64()
		if err != nil {
			return nil, err
		}
		if ns > 1<<30 {
			return nil, errors.New("core: corrupt curve length")
		}
		c.scores = make([]float64, ns)
		for j := range c.scores {
			v, err := ru64()
			if err != nil {
				return nil, err
			}
			c.scores[j] = math.Float64frombits(v)
		}
		c.prefixNeg = make([]int, ns)
		for j := range c.prefixNeg {
			v, err := ru64()
			if err != nil {
				return nil, err
			}
			c.prefixNeg[j] = int(v)
		}
		bl, err := ru64()
		if err != nil {
			return nil, err
		}
		if bl > 1<<32 {
			return nil, errors.New("core: corrupt statistics length")
		}
		blob := make([]byte, bl)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, err
		}
		ls := &stats.LanguageStats{}
		if err := ls.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("core: language %d statistics: %w", i, err)
		}
		c.Stats = ls
		c.coverage = NewBitset(0)
		cals = append(cals, c)
	}
	return NewDetector(cals, Aggregation(aggv))
}
