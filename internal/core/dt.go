package core

import (
	"errors"
	"sort"

	"repro/internal/distsup"
)

// SelectDT is a local-search heuristic for the DT-aggregation problem of
// Definition 4: choose a subset of languages AND a separate threshold θk
// per language so that the union of their predictions maximizes recall on
// T− subject to a global precision requirement and the memory budget. The
// paper proves the problem NP-hard and inapproximable (Theorem 1) and
// adopts the more tractable ST formulation; this heuristic exists for the
// ST-vs-DT ablation.
//
// The search seeds every language at its ST threshold, then repeatedly
// tries moving one language's threshold to an adjacent candidate value
// (the distinct negative scores of its training distribution), accepting
// moves that increase union recall while keeping union precision at or
// above the target. Finally, languages are greedily packed under the
// memory budget by marginal recall per byte.
//
// maxLanguages bounds the candidate pool (the per-example score matrix is
// materialized for the pool); 0 means 16.
func SelectDT(cands []*Calibration, data *distsup.Data, memoryBudget int, targetPrecision float64, maxLanguages int) (*Selection, error) {
	if len(cands) == 0 {
		return nil, errors.New("core: no candidate languages")
	}
	if memoryBudget <= 0 {
		return nil, errors.New("core: memory budget must be positive")
	}
	if targetPrecision <= 0 || targetPrecision > 1 {
		return nil, errors.New("core: target precision must be in (0,1]")
	}
	if maxLanguages <= 0 {
		maxLanguages = 16
	}

	// Pool: affordable candidates with the best ST coverage density.
	pool := make([]*Calibration, 0, len(cands))
	for _, c := range cands {
		if c.Bytes() <= memoryBudget && c.CoverageCount() > 0 {
			pool = append(pool, c)
		}
	}
	if len(pool) == 0 {
		return nil, errors.New("core: no affordable candidate covers anything")
	}
	sort.SliceStable(pool, func(i, j int) bool {
		return float64(pool[i].CoverageCount())/float64(pool[i].Bytes()+1) >
			float64(pool[j].CoverageCount())/float64(pool[j].Bytes()+1)
	})
	if len(pool) > maxLanguages {
		pool = pool[:maxLanguages]
	}

	// Score matrix over the training set (leave-one-out, as in
	// calibration).
	n := len(data.Examples)
	negTotal := 0
	for _, e := range data.Examples {
		if e.Incompatible {
			negTotal++
		}
	}
	if negTotal == 0 {
		return nil, errors.New("core: training data has no incompatible examples")
	}
	scores := make([][]float64, len(pool))
	for li, cal := range pool {
		row := make([]float64, n)
		for i, e := range data.Examples {
			row[i] = cal.Stats.NPMIRunsLOO(e.URuns, e.VRuns, !e.Incompatible)
		}
		scores[li] = row
	}

	// Candidate thresholds per language: distinct negative scores observed
	// on T−, ascending.
	candTheta := make([][]float64, len(pool))
	for li := range pool {
		seen := map[float64]bool{}
		var ts []float64
		for i, e := range data.Examples {
			s := scores[li][i]
			if e.Incompatible && s < 0 && !seen[s] {
				seen[s] = true
				ts = append(ts, s)
			}
		}
		sort.Float64s(ts)
		candTheta[li] = ts
	}

	// State: per-language threshold index into candTheta (−1 = never fire).
	idx := make([]int, len(pool))
	for li, cal := range pool {
		idx[li] = -1
		for i, t := range candTheta[li] {
			if t <= cal.Theta {
				idx[li] = i
			}
		}
	}

	thetaOf := func(li int) float64 {
		if idx[li] < 0 {
			return NoFireTheta
		}
		return candTheta[li][idx[li]]
	}
	// evaluate returns union recall (covered negatives) and precision.
	evaluate := func() (covered, falsePos int) {
		for i, e := range data.Examples {
			hit := false
			for li := range pool {
				if idx[li] >= 0 && scores[li][i] <= candTheta[li][idx[li]] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			if e.Incompatible {
				covered++
			} else {
				falsePos++
			}
		}
		return covered, falsePos
	}
	feasible := func(covered, falsePos int) bool {
		if covered+falsePos == 0 {
			return true
		}
		return float64(covered)/float64(covered+falsePos) >= targetPrecision
	}

	covered, falsePos := evaluate()
	// Local search: single-threshold moves, first-improvement, bounded
	// passes.
	for pass := 0; pass < 8; pass++ {
		improved := false
		for li := range pool {
			for _, delta := range []int{+1, -1} {
				ni := idx[li] + delta
				if ni < -1 || ni >= len(candTheta[li]) {
					continue
				}
				old := idx[li]
				idx[li] = ni
				c2, f2 := evaluate()
				if feasible(c2, f2) && c2 > covered {
					covered, falsePos = c2, f2
					improved = true
				} else {
					idx[li] = old
				}
			}
		}
		if !improved {
			break
		}
	}
	_ = falsePos

	// Greedy packing under the budget by marginal covered-negatives per
	// byte, with per-language coverage at the tuned thresholds.
	covSets := make([]*Bitset, len(pool))
	for li := range pool {
		bs := NewBitset(negTotal)
		ni := 0
		for i, e := range data.Examples {
			if !e.Incompatible {
				continue
			}
			if idx[li] >= 0 && scores[li][i] <= candTheta[li][idx[li]] {
				bs.Set(ni)
			}
			ni++
		}
		covSets[li] = bs
	}
	chosenMask := make([]bool, len(pool))
	union := NewBitset(negTotal)
	bytes := 0
	var chosen []*Calibration
	for {
		best, bestGain := -1, 0.0
		for li := range pool {
			if chosenMask[li] || pool[li].Bytes()+bytes > memoryBudget {
				continue
			}
			inc := union.UnionCount(covSets[li]) - union.Count()
			gain := float64(inc) / float64(pool[li].Bytes()+1)
			if gain > bestGain {
				bestGain, best = gain, li
			}
		}
		if best < 0 {
			break
		}
		chosenMask[best] = true
		union.Or(covSets[best])
		bytes += pool[best].Bytes()
		// Clone the calibration with the tuned threshold so the ST
		// calibration stays intact.
		cc := *pool[best]
		cc.Theta = thetaOf(best)
		cc.coverage = covSets[best]
		chosen = append(chosen, &cc)
	}
	if len(chosen) == 0 {
		return nil, errors.New("core: DT search selected nothing")
	}
	return &Selection{Chosen: chosen, Bytes: bytes, Coverage: union.Count()}, nil
}
