package core

import "repro/internal/observe"

// Detection hot-path counters. They are package-level striped atomics so
// the inner scoring loops pay at most a handful of uncontended atomic
// adds per column, not per pair: DetectColumn accumulates locally and
// publishes once per column, ScorePair publishes once per call. The
// service layer exposes them to /metrics via observe.CounterFunc.
var (
	hotValues    observe.HotCounter // cells submitted to DetectColumn
	hotPairs     observe.HotCounter // distinct value pairs scored
	hotLangPairs observe.HotCounter // pair evaluations × ensemble size
)

// HotPathStats is a snapshot of the detection hot-path counters since
// process start. Monotonic, not linearizable across fields.
type HotPathStats struct {
	// Values counts column cells submitted to DetectColumn.
	Values uint64
	// Pairs counts distinct value pairs scored (column pairs and
	// ScorePair calls).
	Pairs uint64
	// LanguagePairs counts per-language pair evaluations: every scored
	// pair is evaluated once per ensemble language, so this is the true
	// unit of NPMI scoring work.
	LanguagePairs uint64
}

// HotPath returns the current detection hot-path counters.
func HotPath() HotPathStats {
	return HotPathStats{
		Values:        hotValues.Load(),
		Pairs:         hotPairs.Load(),
		LanguagePairs: hotLangPairs.Load(),
	}
}
