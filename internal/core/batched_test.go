package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
)

// TestTrainBatchedMatchesTrain: batched training must select the same
// languages with the same thresholds as the all-at-once path, since it
// computes identical statistics in a different order.
func TestTrainBatchedMatchesTrain(t *testing.T) {
	c := corpus.Generate(corpus.WebProfile(), 2500, 23)
	cfg := DefaultTrainConfig()
	all := pattern.All()
	for i := 0; i < len(all); i += 5 {
		cfg.Languages = append(cfg.Languages, all[i])
	}
	ds := distsup.DefaultConfig()
	ds.PositivePairs, ds.NegativePairs = 2500, 2500
	cfg.DistSup = ds

	plain, plainRep, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, batchRep, err := TrainBatched(c, cfg, 7) // uneven batch size on purpose
	if err != nil {
		t.Fatal(err)
	}

	if len(plainRep.Selected) != len(batchRep.Selected) {
		t.Fatalf("selected %v vs batched %v", plainRep.Selected, batchRep.Selected)
	}
	for i := range plainRep.Selected {
		if plainRep.Selected[i] != batchRep.Selected[i] {
			t.Fatalf("language %d differs: %v vs %v", i, plainRep.Selected[i], batchRep.Selected[i])
		}
	}
	if plainRep.Coverage != batchRep.Coverage {
		t.Errorf("coverage %d vs %d", plainRep.Coverage, batchRep.Coverage)
	}
	for i := range plain.Languages() {
		a, b := plain.Languages()[i], batched.Languages()[i]
		if a.Theta != b.Theta {
			t.Errorf("theta differs for %v: %v vs %v", a.Stats.Language(), a.Theta, b.Theta)
		}
	}
	// Identical verdicts on probe pairs.
	for _, p := range [][2]string{
		{"2011-01-01", "2011/01/01"},
		{"2011-01-01", "2012-09-30"},
		{"1,000", "100"},
		{"3-2", "-"},
	} {
		x, y := plain.ScorePair(p[0], p[1]), batched.ScorePair(p[0], p[1])
		if x.Flagged != y.Flagged || x.Confidence != y.Confidence {
			t.Errorf("pair %v: %+v vs %+v", p, x, y)
		}
	}
}

func TestTrainBatchedValidation(t *testing.T) {
	if _, _, err := TrainBatched(nil, DefaultTrainConfig(), 8); err == nil {
		t.Error("nil corpus should error")
	}
}
