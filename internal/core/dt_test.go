package core

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
)

var (
	dtOnce  sync.Once
	dtPipe  *Pipeline
	dtCands []*Calibration
	dtErr   error
)

func dtFixture(t *testing.T) (*Pipeline, []*Calibration) {
	t.Helper()
	dtOnce.Do(func() {
		c := corpus.Generate(corpus.WebProfile(), 3000, 17)
		cfg := DefaultTrainConfig()
		// A 16-language subset with varied digit/symbol treatment.
		all := pattern.All()
		for i := 0; i < len(all); i += 5 {
			cfg.Languages = append(cfg.Languages, all[i])
		}
		ds := distsup.DefaultConfig()
		ds.PositivePairs, ds.NegativePairs = 3000, 3000
		cfg.DistSup = ds
		dtPipe, dtErr = NewPipeline(c, cfg)
		if dtErr != nil {
			return
		}
		dtCands, dtErr = dtPipe.Calibrate(0.95)
	})
	if dtErr != nil {
		t.Fatal(dtErr)
	}
	return dtPipe, dtCands
}

func TestSelectDTValidation(t *testing.T) {
	p, cands := dtFixture(t)
	if _, err := SelectDT(nil, p.Data, 1<<20, 0.95, 0); err == nil {
		t.Error("no candidates should error")
	}
	if _, err := SelectDT(cands, p.Data, 0, 0.95, 0); err == nil {
		t.Error("zero budget should error")
	}
	if _, err := SelectDT(cands, p.Data, 1<<20, 0, 0); err == nil {
		t.Error("zero precision should error")
	}
}

// TestSelectDTAtLeastMatchesST: seeded at the ST thresholds and only
// accepting feasible recall-improving moves, the DT heuristic's training
// coverage must be at least the greedy ST selection's.
func TestSelectDTAtLeastMatchesST(t *testing.T) {
	p, cands := dtFixture(t)
	budget := 64 << 20
	st, err := SelectGreedy(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := SelectDT(cands, p.Data, budget, 0.95, 16)
	if err != nil {
		t.Fatal(err)
	}
	if dt.Coverage < st.Coverage {
		t.Errorf("DT coverage %d < ST coverage %d", dt.Coverage, st.Coverage)
	}
	if dt.Bytes > budget {
		t.Errorf("DT selection exceeds budget: %d", dt.Bytes)
	}
	// Every tuned threshold must stay strictly negative (incompatibility
	// is negative correlation) or never-fire.
	for _, cal := range dt.Chosen {
		if cal.Theta >= 0 && cal.Theta != NoFireTheta {
			t.Errorf("DT produced non-negative threshold %v", cal.Theta)
		}
	}
}

// TestSelectDTMeetsPrecision: the union precision on the training set must
// satisfy the requirement.
func TestSelectDTMeetsPrecision(t *testing.T) {
	p, cands := dtFixture(t)
	dt, err := SelectDT(cands, p.Data, 64<<20, 0.95, 12)
	if err != nil {
		t.Fatal(err)
	}
	covered, falsePos := 0, 0
	for _, e := range p.Data.Examples {
		hit := false
		for _, cal := range dt.Chosen {
			if cal.Covers(cal.Stats.NPMIRunsLOO(e.URuns, e.VRuns, !e.Incompatible)) {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if e.Incompatible {
			covered++
		} else {
			falsePos++
		}
	}
	if covered+falsePos == 0 {
		t.Fatal("DT selection never fires on training data")
	}
	if prec := float64(covered) / float64(covered+falsePos); prec < 0.95 {
		t.Errorf("DT union training precision %.3f < 0.95", prec)
	}
	// A DT detector must be buildable and usable.
	det, err := NewDetector(dt.Chosen, AggMaxConfidence)
	if err != nil {
		t.Fatal(err)
	}
	if ps := det.ScorePair("2011-01-01", "2011/01/01"); !ps.Flagged {
		t.Errorf("DT detector misses mixed dates (conf %.2f)", ps.Confidence)
	}
}
