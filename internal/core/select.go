package core

import "errors"

// Selection is the result of the budgeted language selection of
// Definition 5.
type Selection struct {
	// Chosen are the selected calibrated languages, in selection order.
	Chosen []*Calibration
	// Bytes is the total statistics footprint of the selection.
	Bytes int
	// Coverage is |∪ H−k| over the chosen languages.
	Coverage int
	// UsedSingleton is true when the best single language beat the greedy
	// set (lines 8–12 of Algorithm 1).
	UsedSingleton bool
}

// SelectGreedy implements Algorithm 1: greedily add the language with the
// best marginal coverage of incompatible training examples per byte of
// statistics, subject to the memory budget; then compare against the best
// single affordable language and return the better of the two. The
// procedure is a ½(1−1/e)-approximation of the NP-hard ST-aggregation
// optimum (Lemma 3).
func SelectGreedy(candidates []*Calibration, memoryBudget int) (*Selection, error) {
	if len(candidates) == 0 {
		return nil, errors.New("core: no candidate languages")
	}
	if memoryBudget <= 0 {
		return nil, errors.New("core: memory budget must be positive")
	}
	negTotal := candidates[0].Coverage().Len()

	// Greedy phase (lines 2–7).
	var chosen []*Calibration
	used := make([]bool, len(candidates))
	covered := NewBitset(negTotal)
	bytes := 0
	for {
		best := -1
		bestGain := -1.0
		for i, cand := range candidates {
			if used[i] || cand.Bytes()+bytes > memoryBudget {
				continue
			}
			inc := covered.UnionCount(cand.Coverage()) - covered.Count()
			gain := float64(inc) / float64(cand.Bytes()+1)
			if gain > bestGain {
				bestGain = gain
				best = i
			}
		}
		if best < 0 || bestGain <= 0 {
			break
		}
		used[best] = true
		chosen = append(chosen, candidates[best])
		covered.Or(candidates[best].Coverage())
		bytes += candidates[best].Bytes()
	}

	// Best affordable singleton (line 8).
	singleIdx := -1
	singleCov := -1
	for i, cand := range candidates {
		if cand.Bytes() > memoryBudget {
			continue
		}
		if c := cand.CoverageCount(); c > singleCov {
			singleCov = c
			singleIdx = i
		}
	}

	if singleIdx >= 0 && singleCov > covered.Count() {
		single := candidates[singleIdx]
		return &Selection{
			Chosen:        []*Calibration{single},
			Bytes:         single.Bytes(),
			Coverage:      singleCov,
			UsedSingleton: true,
		}, nil
	}
	if len(chosen) == 0 {
		return nil, errors.New("core: no language fits the memory budget")
	}
	return &Selection{Chosen: chosen, Bytes: bytes, Coverage: covered.Count()}, nil
}
