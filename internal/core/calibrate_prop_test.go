package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCalibrationInvariants: for random score/label assignments, the
// derived threshold and coverage must satisfy the Definition 5 contract.
func TestCalibrationInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%60) + 5
		target := 0.5 + float64(pRaw%50)/100 // P ∈ [0.5, 0.99]
		r := rand.New(rand.NewSource(seed))
		scores := make([]float64, n)
		negs := make([]bool, n)
		hasNeg := false
		for i := range scores {
			scores[i] = r.Float64()*2 - 1
			negs[i] = r.Intn(2) == 0
			hasNeg = hasNeg || negs[i]
		}
		if !hasNeg {
			negs[0] = true
		}
		cal, err := calibrateScores(scores, negs, target)
		if err != nil {
			return false
		}

		// Invariant 1: a firing threshold is strictly negative.
		if cal.Theta >= 0 && cal.Theta != NoFireTheta {
			return false
		}
		// Invariant 2: if the language fires, its training precision at θ
		// meets the target.
		if cal.Theta >= -1 {
			neg, tot := 0, 0
			for i, s := range scores {
				if s <= cal.Theta {
					tot++
					if negs[i] {
						neg++
					}
				}
			}
			if tot == 0 || float64(neg)/float64(tot) < target {
				return false
			}
			// Invariant 3: coverage counts exactly the negatives at or
			// below θ.
			if cal.CoverageCount() != neg {
				return false
			}
			if cal.FalsePositives() != tot-neg {
				return false
			}
		} else if cal.CoverageCount() != 0 {
			return false
		}
		// Invariant 4: the precision curve is a valid prefix ratio at every
		// training score.
		for _, s := range scores {
			p := cal.PrecisionAt(s)
			if p < 0 || p > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestSelectionInvariants: greedy selection respects the budget and never
// reports more coverage than the union of its members.
func TestSelectionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nNeg := r.Intn(50) + 10
		nCands := r.Intn(8) + 2
		cands := make([]*Calibration, nCands)
		for i := range cands {
			scores := make([]float64, nNeg*2)
			negs := make([]bool, nNeg*2)
			for j := range scores {
				scores[j] = r.Float64()*2 - 1
				negs[j] = j < nNeg
			}
			cal, err := calibrateScores(scores, negs, 0.6)
			if err != nil {
				return false
			}
			cal.SizeOverride = r.Intn(1000) + 1
			cands[i] = cal
		}
		budget := r.Intn(3000) + 500
		sel, err := SelectGreedy(cands, budget)
		if err != nil {
			return true // nothing selectable is legal
		}
		if sel.Bytes > budget {
			return false
		}
		union := NewBitset(cands[0].Coverage().Len())
		total := 0
		for _, c := range sel.Chosen {
			union.Or(c.Coverage())
			total += c.Bytes()
		}
		return sel.Coverage == union.Count() && sel.Bytes == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
