package core

import (
	"errors"
	"sort"

	"repro/internal/distsup"
	"repro/internal/stats"
)

// Calibration is the trained state of one generalization language: its
// corpus statistics, the NPMI scores it assigns to the distant-supervision
// training set, the static threshold θk meeting the target precision
// (Equation 8), and the set H−k of incompatible training examples it covers
// at that threshold.
type Calibration struct {
	// Stats are the language's corpus statistics.
	Stats *stats.LanguageStats

	// Theta is the static threshold θk: pairs scoring ≤ Theta are predicted
	// incompatible. A value below −1 means the language cannot reach the
	// target precision on any prefix and never fires.
	Theta float64

	// TargetPrecision is the precision requirement P used to derive Theta.
	TargetPrecision float64

	// SizeOverride, when positive, replaces the statistics footprint
	// reported by Bytes. Used by tests, what-if ablations, and batched
	// training (where Stats is dropped between calibration and selection).
	SizeOverride int

	// langID remembers the language when Stats has been dropped (batched
	// training).
	langID int

	// scores are the training scores sorted ascending, with prefixNeg[i]
	// counting incompatible examples among scores[0..i]. Together they form
	// the empirical precision curve Pk(s).
	scores    []float64
	prefixNeg []int

	// coverage marks which T− examples (indexed in training order) score
	// ≤ Theta: the H−k set of the selection objective.
	coverage *Bitset
	// posCovered counts T+ examples scoring ≤ Theta (false positives of
	// the language at its threshold).
	posCovered int
}

// NoFireTheta is the sentinel threshold of a language that never fires.
const NoFireTheta = -2

// Calibrate scores every training example under the language, derives the
// largest threshold whose every prefix meets the target precision
// (Equation 8), and records coverage. The data must contain at least one
// incompatible example.
func Calibrate(ls *stats.LanguageStats, data *distsup.Data, targetPrecision float64) (*Calibration, error) {
	if len(data.Examples) == 0 {
		return nil, errors.New("core: empty training data")
	}
	if targetPrecision <= 0 || targetPrecision > 1 {
		return nil, errors.New("core: target precision must be in (0,1]")
	}
	scores := make([]float64, len(data.Examples))
	negs := make([]bool, len(data.Examples))
	for i, e := range data.Examples {
		// Leave-one-out: the pair's source columns are inside the corpus
		// statistics; discount them so sparse languages cannot separate
		// T+ from T− via their own contribution.
		scores[i] = ls.NPMIRunsLOO(e.URuns, e.VRuns, !e.Incompatible)
		negs[i] = e.Incompatible
	}
	c, err := calibrateScores(scores, negs, targetPrecision)
	if err != nil {
		return nil, err
	}
	c.Stats = ls
	return c, nil
}

// calibrateScores derives the Equation 8 threshold, the empirical
// precision curve and the H−k coverage set from raw per-example scores.
// negs[i] marks incompatible (T−) examples; the i-th negative (in input
// order) occupies bit i of the coverage set.
func calibrateScores(scores []float64, negs []bool, targetPrecision float64) (*Calibration, error) {
	type scored struct {
		s      float64
		neg    bool
		negIdx int
	}
	rows := make([]scored, len(scores))
	negTotal := 0
	for i, s := range scores {
		rows[i] = scored{s: s, neg: negs[i], negIdx: -1}
		if negs[i] {
			rows[i].negIdx = negTotal
			negTotal++
		}
	}
	if negTotal == 0 {
		return nil, errors.New("core: training data has no incompatible examples")
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].s < rows[j].s })

	c := &Calibration{
		TargetPrecision: targetPrecision,
		Theta:           NoFireTheta,
		scores:          make([]float64, len(rows)),
		prefixNeg:       make([]int, len(rows)),
		coverage:        NewBitset(negTotal),
	}
	neg := 0
	for i, r := range rows {
		if r.neg {
			neg++
		}
		c.scores[i] = r.s
		c.prefixNeg[i] = neg
	}

	// Equation 8 as instantiated by Example 4 / Table 2:
	// θk = max{ s < 0 : precision(s) ≥ P }. Candidate thresholds are
	// restricted to negative NPMI scores — incompatibility means negative
	// correlation (Section 2.1), so a language must never fire on
	// non-negatively correlated pairs regardless of precision. This is the
	// unique reading under which all three thresholds of the paper's
	// worked example (−0.5, −0.6, −0.5) come out.
	for i := 0; i < len(rows); {
		j := i
		for j+1 < len(rows) && c.scores[j+1] == c.scores[i] {
			j++
		}
		if c.scores[i] >= 0 {
			break
		}
		if precision := float64(c.prefixNeg[j]) / float64(j+1); precision >= targetPrecision {
			c.Theta = c.scores[i]
		}
		i = j + 1
	}

	if c.Theta >= -1 {
		for _, r := range rows {
			if r.s > c.Theta {
				break
			}
			if r.neg {
				c.coverage.Set(r.negIdx)
			} else {
				c.posCovered++
			}
		}
	}
	return c, nil
}

// PrecisionAt returns the empirical precision Pk(s) of predicting
// incompatibility for every training pair scoring ≤ s: the confidence the
// detector assigns to a prediction with score s (Appendix B).
func (c *Calibration) PrecisionAt(s float64) float64 {
	// Largest index with scores[idx] ≤ s.
	idx := sort.Search(len(c.scores), func(i int) bool { return c.scores[i] > s }) - 1
	if idx < 0 {
		// More extreme than anything seen in training: at least as precise
		// as the smallest observed prefix.
		if len(c.prefixNeg) > 0 && c.prefixNeg[0] == 1 {
			return 1
		}
		return 0
	}
	return float64(c.prefixNeg[idx]) / float64(idx+1)
}

// Covers reports whether the language fires on score s (s ≤ θk).
func (c *Calibration) Covers(s float64) bool { return c.Theta >= -1 && s <= c.Theta }

// Coverage returns H−k as a bitset over T− indices. The caller must not
// modify it.
func (c *Calibration) Coverage() *Bitset { return c.coverage }

// CoverageCount returns |H−k|.
func (c *Calibration) CoverageCount() int { return c.coverage.Count() }

// FalsePositives returns |H+k|, the compatible training pairs the language
// flags at its threshold.
func (c *Calibration) FalsePositives() int { return c.posCovered }

// Bytes returns the memory footprint of the language's statistics — the
// size(L) of the selection problem.
func (c *Calibration) Bytes() int {
	if c.SizeOverride > 0 {
		return c.SizeOverride
	}
	if c.Stats == nil {
		return 0
	}
	return c.Stats.Bytes()
}

// TrainingPrecision returns the precision the language achieves at θk on
// the training set.
func (c *Calibration) TrainingPrecision() float64 {
	covered := c.coverage.Count() + c.posCovered
	if covered == 0 {
		return 1
	}
	return float64(c.coverage.Count()) / float64(covered)
}
