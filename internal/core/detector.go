package core

import (
	"errors"
	"sort"

	"repro/internal/pattern"
)

// Aggregation selects how per-language scores combine into one prediction
// (Section 4.8 / Appendix B).
type Aggregation int

// Aggregation strategies compared in Figure 8(b).
const (
	// AggMaxConfidence is the paper's choice: trust the single most
	// confident language, Q = max_k Pk(sk) (Equation 11), and flag a pair
	// if any language fires (union semantics).
	AggMaxConfidence Aggregation = iota
	// AggAvgNPMI ranks by the average NPMI across languages.
	AggAvgNPMI
	// AggMinNPMI ranks by the minimum NPMI across languages.
	AggMinNPMI
	// AggMajorityVote counts languages firing at their thresholds and
	// requires a majority.
	AggMajorityVote
	// AggWeightedMajorityVote weights each vote by the magnitude of the
	// language's NPMI score.
	AggWeightedMajorityVote
)

// String names the aggregation.
func (a Aggregation) String() string {
	switch a {
	case AggMaxConfidence:
		return "Auto-Detect"
	case AggAvgNPMI:
		return "AvgNPMI"
	case AggMinNPMI:
		return "MinNPMI"
	case AggMajorityVote:
		return "MV"
	case AggWeightedMajorityVote:
		return "WMV"
	default:
		return "unknown"
	}
}

// LangScore is one language's verdict on a value pair.
type LangScore struct {
	// LanguageID identifies the generalization language.
	LanguageID int
	// NPMI is sk(u,v).
	NPMI float64
	// Fires is sk ≤ θk.
	Fires bool
	// Precision is the estimated precision Pk(sk).
	Precision float64
}

// PairScore is the aggregated verdict on a value pair.
type PairScore struct {
	// Confidence is the ranking score in [0,1]; higher means more likely
	// incompatible.
	Confidence float64
	// Flagged is the binary prediction at the configured precision target.
	Flagged bool
	// ByLanguage holds the per-language verdicts.
	ByLanguage []LangScore
}

// Finding is one suspected error in a column.
type Finding struct {
	// Value is the suspected erroneous value.
	Value string
	// Index is the row of the value's first occurrence.
	Index int
	// Partner is the compatible-majority value Value conflicts with most
	// confidently.
	Partner string
	// Confidence is the count-weighted aggregated confidence in [0,1].
	Confidence float64
}

// Detector predicts incompatible values using an ensemble of calibrated
// generalization languages.
type Detector struct {
	cals []*Calibration
	agg  Aggregation

	// maxDistinct caps the distinct values scored pairwise per column.
	maxDistinct int
}

// NewDetector builds a detector from calibrated languages.
func NewDetector(cals []*Calibration, agg Aggregation) (*Detector, error) {
	if len(cals) == 0 {
		return nil, errors.New("core: detector needs at least one language")
	}
	return &Detector{cals: cals, agg: agg, maxDistinct: 100}, nil
}

// Languages returns the detector's calibrated languages.
func (d *Detector) Languages() []*Calibration { return d.cals }

// Aggregation returns the configured aggregation strategy.
func (d *Detector) Aggregation() Aggregation { return d.agg }

// SetAggregation switches the aggregation strategy (used by the Figure 8b
// ablation; the calibrated languages are unchanged).
func (d *Detector) SetAggregation(a Aggregation) { d.agg = a }

// Bytes returns the total statistics footprint.
func (d *Detector) Bytes() int {
	b := 0
	for _, c := range d.cals {
		b += c.Bytes()
	}
	return b
}

// ScorePair scores a pair of raw values.
func (d *Detector) ScorePair(u, v string) PairScore {
	hotPairs.Add(uintptr(len(u)), 1)
	hotLangPairs.Add(uintptr(len(v)), uint64(len(d.cals)))
	ur, vr := pattern.Encode(u), pattern.Encode(v)
	return d.scoreRuns(ur, vr)
}

func (d *Detector) scoreRuns(ur, vr pattern.Runs) PairScore {
	ps := PairScore{ByLanguage: make([]LangScore, len(d.cals))}
	for i, c := range d.cals {
		s := c.Stats.NPMIRuns(ur, vr)
		ps.ByLanguage[i] = LangScore{
			LanguageID: c.Stats.Language().ID,
			NPMI:       s,
			Fires:      c.Covers(s),
			Precision:  c.PrecisionAt(s),
		}
	}
	d.aggregate(&ps)
	return ps
}

// aggregate fills Confidence and Flagged from ByLanguage.
func (d *Detector) aggregate(ps *PairScore) {
	k := len(ps.ByLanguage)
	switch d.agg {
	case AggMaxConfidence:
		for _, ls := range ps.ByLanguage {
			if ls.Fires {
				ps.Flagged = true
				if ls.Precision > ps.Confidence {
					ps.Confidence = ls.Precision
				}
			}
		}
		if !ps.Flagged {
			// Still produce a (low) ranking score for recall-oriented
			// inspection below the precision target.
			best := 0.0
			for _, ls := range ps.ByLanguage {
				if p := ls.Precision * 0.5; p > best {
					best = p
				}
			}
			ps.Confidence = best
		}
	case AggAvgNPMI:
		sum := 0.0
		for _, ls := range ps.ByLanguage {
			sum += ls.NPMI
		}
		avg := sum / float64(k)
		ps.Confidence = (1 - avg) / 2
		ps.Flagged = ps.Confidence > 0.5
	case AggMinNPMI:
		min := 1.0
		for _, ls := range ps.ByLanguage {
			if ls.NPMI < min {
				min = ls.NPMI
			}
		}
		ps.Confidence = (1 - min) / 2
		ps.Flagged = ps.Confidence > 0.5
	case AggMajorityVote:
		votes := 0
		for _, ls := range ps.ByLanguage {
			if ls.Fires {
				votes++
			}
		}
		ps.Confidence = float64(votes) / float64(k)
		ps.Flagged = 2*votes > k
	case AggWeightedMajorityVote:
		weight := 0.0
		for _, ls := range ps.ByLanguage {
			if ls.Fires {
				// Weight each vote by the magnitude of the (negative) NPMI.
				w := -ls.NPMI
				if w < 0 {
					w = 0
				}
				weight += w
			}
		}
		ps.Confidence = weight / float64(k)
		if ps.Confidence > 1 {
			ps.Confidence = 1
		}
		ps.Flagged = ps.Confidence > 0.25
	}
}

// DetectColumn scores all distinct value pairs of a column and attributes
// conflicts to suspect values: a value's confidence is the count-weighted
// confidence of its flagged conflicts with the rest of the column, so a
// lone error conflicting with everything scores near the per-pair
// confidence while majority values conflicting only with the error score
// near zero. Findings are sorted by descending confidence.
func (d *Detector) DetectColumn(values []string) []Finding {
	hotValues.Add(uintptr(len(values)), uint64(len(values)))
	type dv struct {
		value string
		runs  pattern.Runs
		count int
		first int
	}
	var distinct []dv
	index := map[string]int{}
	for i, v := range values {
		if v == "" {
			continue // empty cells are missing data, not errors
		}
		if j, ok := index[v]; ok {
			distinct[j].count++
			continue
		}
		index[v] = len(distinct)
		distinct = append(distinct, dv{value: v, runs: pattern.Encode(v), count: 1, first: i})
	}
	if len(distinct) < 2 {
		return nil
	}
	if len(distinct) > d.maxDistinct {
		distinct = distinct[:d.maxDistinct]
	}

	n := len(distinct)
	// One publish per column for the whole pair loop below, so the
	// instrumentation cost is independent of n².
	pairs := uint64(n) * uint64(n-1) / 2
	hotPairs.Add(uintptr(n), pairs)
	hotLangPairs.Add(uintptr(n), pairs*uint64(len(d.cals)))
	confSum := make([]float64, n)   // Σ over conflicting partners: count·conf
	weightSum := make([]float64, n) // Σ over all partners: count
	bestConf := make([]float64, n)
	bestPartner := make([]int, n)
	for i := range bestPartner {
		bestPartner[i] = -1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ps := d.scoreRuns(distinct[i].runs, distinct[j].runs)
			weightSum[i] += float64(distinct[j].count)
			weightSum[j] += float64(distinct[i].count)
			if !ps.Flagged {
				continue
			}
			confSum[i] += ps.Confidence * float64(distinct[j].count)
			confSum[j] += ps.Confidence * float64(distinct[i].count)
			if ps.Confidence > bestConf[i] {
				bestConf[i], bestPartner[i] = ps.Confidence, j
			}
			if ps.Confidence > bestConf[j] {
				bestConf[j], bestPartner[j] = ps.Confidence, i
			}
		}
	}

	var out []Finding
	for i := 0; i < n; i++ {
		if bestPartner[i] < 0 || weightSum[i] == 0 {
			continue
		}
		out = append(out, Finding{
			Value:      distinct[i].value,
			Index:      distinct[i].first,
			Partner:    distinct[bestPartner[i]].value,
			Confidence: confSum[i] / weightSum[i],
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}
