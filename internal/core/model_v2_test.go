package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// saveModel serializes the tiny fixture detector once per test.
func saveModel(t *testing.T) (*Detector, []byte) {
	t.Helper()
	det := tinyDetector(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return det, buf.Bytes()
}

func TestSaveWritesV2Envelope(t *testing.T) {
	_, data := saveModel(t)
	if !bytes.HasPrefix(data, magicV2) {
		t.Fatalf("model does not start with v2 magic: %q", data[:16])
	}
	plen := binary.LittleEndian.Uint64(data[len(magicV2):])
	// magic + length header + payload + crc trailer
	if want := uint64(len(data) - len(magicV2) - 16); plen != want {
		t.Fatalf("length header %d, want %d", plen, want)
	}
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestLoadV1Legacy(t *testing.T) {
	det, _ := saveModel(t)
	var v1 bytes.Buffer
	v1.Write(magicV1)
	if err := det.encodePayload(&v1); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("legacy v1 model failed to load: %v", err)
	}
	a, b := det.ScorePair("2011-01-01", "2011/01/01"), back.ScorePair("2011-01-01", "2011/01/01")
	if a.Confidence != b.Confidence || a.Flagged != b.Flagged {
		t.Errorf("v1 round trip scored differently: %+v vs %+v", a, b)
	}
}

// TestLoadCorruptionTable: systematic truncations and bit flips must all be
// rejected with ErrCorruptModel and must never panic.
func TestLoadCorruptionTable(t *testing.T) {
	_, valid := saveModel(t)

	check := func(t *testing.T, name string, data []byte) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("%s: panic: %v", name, p)
			}
		}()
		_, err := Load(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: corrupted model loaded without error", name)
			return
		}
		if !errors.Is(err, ErrCorruptModel) {
			t.Errorf("%s: error does not wrap ErrCorruptModel: %v", name, err)
		}
	}

	t.Run("truncations", func(t *testing.T) {
		// Every length from empty up to one byte short, sampled densely at
		// the envelope boundaries and sparsely through the payload.
		for n := 0; n < 64 && n < len(valid); n++ {
			check(t, "head", valid[:n])
		}
		for i := 1; i <= 16; i++ {
			check(t, "decile", valid[:(len(valid)-1)*i/16])
		}
		check(t, "one-short", valid[:len(valid)-1])
	})

	t.Run("bit-flips", func(t *testing.T) {
		// Flip every bit of the envelope (magic, length header, trailer)
		// and a stride of payload bytes: the CRC must catch every one.
		flip := func(pos int, bit byte) {
			data := append([]byte(nil), valid...)
			data[pos] ^= 1 << bit
			check(t, "flip", data)
		}
		for pos := 0; pos < 24 && pos < len(valid); pos++ {
			for bit := byte(0); bit < 8; bit++ {
				flip(pos, bit)
			}
		}
		for pos := 24; pos < len(valid); pos += 97 {
			flip(pos, byte(pos%8))
		}
		for pos := len(valid) - 8; pos < len(valid); pos++ {
			flip(pos, byte(pos%8))
		}
	})

	t.Run("implausible-counts", func(t *testing.T) {
		// Overwrite the language count (first payload u64 after the
		// aggregation strategy) with absurd values.
		for _, n := range []uint64{0, maxModelLanguages + 1, 1 << 62} {
			data := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(data[len(magicV2)+8+8:], n)
			check(t, "lang-count", data)
		}
	})

	t.Run("trailing-garbage-in-payload", func(t *testing.T) {
		// Inflate the length header without supplying payload bytes.
		data := append([]byte(nil), valid...)
		plen := binary.LittleEndian.Uint64(data[len(magicV2):])
		binary.LittleEndian.PutUint64(data[len(magicV2):], plen+8)
		check(t, "length-mismatch", data)
	})

	t.Run("not-a-model", func(t *testing.T) {
		check(t, "garbage", []byte("definitely not a model file at all"))
		if _, err := Load(strings.NewReader("")); !errors.Is(err, ErrCorruptModel) {
			t.Errorf("empty input: %v", err)
		}
	})
}
