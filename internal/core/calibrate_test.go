package core

import (
	"math"
	"testing"
)

// Table 1 of the paper: per-language NPMI scores of the ten training
// examples t1..t5 (compatible) and t6..t10 (incompatible).
var (
	table1Negs = []bool{false, false, false, false, false, true, true, true, true, true}
	table1L1   = []float64{0.5, 0.5, -0.7, 0.4, 0.5, -0.5, 0.9, -0.6, -0.7, 0.2}
	table1L2   = []float64{0.5, 0.5, 0.4, -0.8, 0.5, 0.9, -0.6, 0.2, -0.7, -0.7}
	table1L3   = []float64{0.4, 0.5, 0.5, 0.6, 0.5, -0.6, -0.6, -0.7, -0.5, 0.9}
)

// coverageSet converts a coverage bitset into the set of covered t−
// example numbers (t6..t10 occupy negative indices 0..4).
func coverageSet(c *Calibration) map[int]bool {
	out := map[int]bool{}
	for i := 0; i < c.Coverage().Len(); i++ {
		if c.Coverage().Get(i) {
			out[i+6] = true
		}
	}
	return out
}

// TestExample4Thresholds reproduces Example 4 / Table 2 of the paper: at
// target precision P = 0.75 the derived thresholds are θ1 = −0.5,
// θ2 = −0.6, θ3 = −0.5 with the stated coverage sets and precisions.
func TestExample4Thresholds(t *testing.T) {
	cases := []struct {
		name      string
		scores    []float64
		theta     float64
		covered   []int
		falsePos  int
		precision float64
	}{
		{"L1", table1L1, -0.5, []int{6, 8, 9}, 1, 0.75},
		{"L2", table1L2, -0.6, []int{7, 9, 10}, 1, 0.75},
		{"L3", table1L3, -0.5, []int{6, 7, 8, 9}, 0, 1.0},
	}
	for _, c := range cases {
		cal, err := calibrateScores(c.scores, table1Negs, 0.75)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cal.Theta != c.theta {
			t.Errorf("%s: θ = %v, want %v", c.name, cal.Theta, c.theta)
		}
		got := coverageSet(cal)
		if len(got) != len(c.covered) {
			t.Errorf("%s: coverage %v, want %v", c.name, got, c.covered)
		}
		for _, want := range c.covered {
			if !got[want] {
				t.Errorf("%s: t%d not covered", c.name, want)
			}
		}
		if cal.FalsePositives() != c.falsePos {
			t.Errorf("%s: false positives = %d, want %d", c.name, cal.FalsePositives(), c.falsePos)
		}
		if p := cal.TrainingPrecision(); math.Abs(p-c.precision) > 1e-9 {
			t.Errorf("%s: training precision = %v, want %v", c.name, p, c.precision)
		}
	}
}

// TestExample5Selection reproduces Example 5: with sizes 200/300/400 MB and
// budget 500 MB, greedy selection picks {L1, L2} (coverage 5), which beats
// the best singleton {L3} (coverage 4).
func TestExample5Selection(t *testing.T) {
	mb := 1 << 20
	cands := make([]*Calibration, 3)
	for i, scores := range [][]float64{table1L1, table1L2, table1L3} {
		cal, err := calibrateScores(scores, table1Negs, 0.75)
		if err != nil {
			t.Fatal(err)
		}
		cal.SizeOverride = (200 + 100*i) * mb
		cands[i] = cal
	}
	sel, err := SelectGreedy(cands, 500*mb)
	if err != nil {
		t.Fatal(err)
	}
	if sel.UsedSingleton {
		t.Error("greedy set should beat the singleton")
	}
	if len(sel.Chosen) != 2 || sel.Chosen[0] != cands[0] || sel.Chosen[1] != cands[1] {
		t.Errorf("selected %d languages, want {L1, L2}", len(sel.Chosen))
	}
	if sel.Coverage != 5 {
		t.Errorf("coverage = %d, want 5", sel.Coverage)
	}
	if sel.Bytes != 500*mb {
		t.Errorf("bytes = %d", sel.Bytes)
	}
}

// TestExample5SingletonFallback: shrink the budget so only one language
// fits; Algorithm 1's lines 8–12 must return the best affordable singleton.
func TestExample5SingletonFallback(t *testing.T) {
	mb := 1 << 20
	cands := make([]*Calibration, 3)
	for i, scores := range [][]float64{table1L1, table1L2, table1L3} {
		cal, _ := calibrateScores(scores, table1Negs, 0.75)
		cal.SizeOverride = (200 + 100*i) * mb
		cands[i] = cal
	}
	// Budget 400 MB: greedy picks L1 (gain 3/200 beats 3/300 and 4/400),
	// then nothing else fits except nothing... L2 costs 300 > 200 left.
	// Best singleton is L3 with coverage 4 > greedy's 3.
	sel, err := SelectGreedy(cands, 400*mb)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.UsedSingleton || len(sel.Chosen) != 1 || sel.Chosen[0] != cands[2] {
		t.Errorf("want singleton {L3}, got %d languages (singleton=%v)", len(sel.Chosen), sel.UsedSingleton)
	}
	if sel.Coverage != 4 {
		t.Errorf("coverage = %d, want 4", sel.Coverage)
	}
}

func TestSelectGreedyErrors(t *testing.T) {
	if _, err := SelectGreedy(nil, 100); err == nil {
		t.Error("no candidates should error")
	}
	cal, _ := calibrateScores(table1L1, table1Negs, 0.75)
	cal.SizeOverride = 1000
	if _, err := SelectGreedy([]*Calibration{cal}, 0); err == nil {
		t.Error("zero budget should error")
	}
	if _, err := SelectGreedy([]*Calibration{cal}, 10); err == nil {
		t.Error("budget below every language should error")
	}
}

func TestCalibrateScoresValidation(t *testing.T) {
	if _, err := calibrateScores([]float64{0.1}, []bool{false}, 0.9); err == nil {
		t.Error("no negatives should error")
	}
}

func TestThetaNeverNonNegative(t *testing.T) {
	// Even a perfectly separating language must not adopt a threshold ≥ 0:
	// incompatibility is negative correlation.
	scores := []float64{0.2, 0.5, 0.1, 0.9}
	negs := []bool{true, true, true, true}
	cal, err := calibrateScores(scores, negs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Theta != NoFireTheta {
		t.Errorf("θ = %v, want never-fire", cal.Theta)
	}
	if cal.Covers(0.1) {
		t.Error("never-fire language must not cover anything")
	}
}

func TestUnreachablePrecision(t *testing.T) {
	// Negatives and positives perfectly interleaved at the same scores:
	// precision 0.5 everywhere, target 0.9 unreachable.
	scores := []float64{-0.5, -0.5, -0.4, -0.4}
	negs := []bool{true, false, true, false}
	cal, err := calibrateScores(scores, negs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Theta != NoFireTheta {
		t.Errorf("θ = %v, want never-fire", cal.Theta)
	}
	if cal.CoverageCount() != 0 {
		t.Error("never-fire language must cover nothing")
	}
}

func TestPrecisionAtCurve(t *testing.T) {
	cal, err := calibrateScores(table1L1, table1Negs, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix at −0.5 contains {−0.7+, −0.7−, −0.6−, −0.5−}: precision 3/4.
	if p := cal.PrecisionAt(-0.5); math.Abs(p-0.75) > 1e-9 {
		t.Errorf("P(-0.5) = %v", p)
	}
	// Prefix at −0.7 is one positive and one negative.
	if p := cal.PrecisionAt(-0.7); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P(-0.7) = %v", p)
	}
	// Below everything: extrapolates from the smallest prefix.
	if p := cal.PrecisionAt(-0.99); p != 0 && p != 1 {
		t.Errorf("P(-0.99) = %v, want a degenerate 0 or 1", p)
	}
	// At the top everything is covered: precision = |T−|/|T|.
	if p := cal.PrecisionAt(1.0); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("P(1.0) = %v", p)
	}
	// Monotone lookup between knots uses the floor.
	if p := cal.PrecisionAt(-0.55); math.Abs(p-cal.PrecisionAt(-0.6)) > 1e-9 {
		t.Errorf("P(-0.55) = %v, want P(-0.6)", p)
	}
}

func TestCoversRespectsTheta(t *testing.T) {
	cal, _ := calibrateScores(table1L1, table1Negs, 0.75)
	if !cal.Covers(-0.5) || !cal.Covers(-0.9) {
		t.Error("scores at or below θ must be covered")
	}
	if cal.Covers(-0.49) || cal.Covers(0.3) {
		t.Error("scores above θ must not be covered")
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 || !b.Get(64) || b.Get(63) {
		t.Error("set/get broken")
	}
	o := NewBitset(130)
	o.Set(64)
	o.Set(100)
	if b.UnionCount(o) != 4 {
		t.Errorf("UnionCount = %d", b.UnionCount(o))
	}
	cl := b.Clone()
	cl.Or(o)
	if cl.Count() != 4 || b.Count() != 3 {
		t.Error("Clone/Or broken")
	}
}
