// Package core implements the Auto-Detect algorithm (Huang & He, SIGMOD
// 2018): distant-supervision calibration of generalization languages
// against a table corpus, precision-constrained threshold derivation
// (Equation 8), memory-budgeted greedy language selection (Algorithm 1),
// and the ensemble detector with max-confidence aggregation (Appendix B).
package core

import (
	"errors"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/distsup"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// TrainConfig parameterizes end-to-end training.
type TrainConfig struct {
	// Languages are the candidate generalization languages; nil means the
	// full 144-language candidate space.
	Languages []pattern.Language
	// TargetPrecision is the precision requirement P (paper default 0.95).
	TargetPrecision float64
	// MemoryBudget is the statistics budget M in bytes.
	MemoryBudget int
	// Smoothing is the Jelinek–Mercer factor f (paper default 0.1).
	Smoothing float64
	// DistSup configures training-pair generation; zero value uses
	// distsup.DefaultConfig.
	DistSup distsup.Config
	// SketchRatio, when in (0,1), compresses each selected language's
	// co-occurrence store to that fraction of its exact size using a
	// count-min sketch (Section 3.4). 0 or 1 keeps exact dictionaries.
	SketchRatio float64
	// Aggregation is the ensemble strategy (default AggMaxConfidence).
	Aggregation Aggregation
}

// DefaultTrainConfig returns the paper's defaults at laptop scale.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		TargetPrecision: 0.95,
		MemoryBudget:    64 << 20,
		Smoothing:       stats.DefaultSmoothing,
		DistSup:         distsup.DefaultConfig(),
	}
}

// TrainReport summarizes a training run.
type TrainReport struct {
	// CandidateLanguages is the size of the candidate space considered.
	CandidateLanguages int
	// TrainingExamples is |T| = |T+| + |T−|.
	TrainingExamples int
	// CompatColumns is |C+|.
	CompatColumns int
	// Selected lists the chosen languages.
	Selected []pattern.Language
	// SelectedBytes is the statistics footprint of the selection.
	SelectedBytes int
	// Coverage is |∪ H−k| on the training negatives.
	Coverage int
	// UsedSingleton reports whether Algorithm 1 fell back to the best
	// single language.
	UsedSingleton bool
}

// Pipeline holds the reusable products of the expensive training stages —
// per-language corpus statistics and distant-supervision training data —
// so parameter sweeps (memory budgets, smoothing factors, sketch ratios,
// precision targets) can recalibrate and reselect without another corpus
// pass.
type Pipeline struct {
	// Languages are the candidate languages, parallel to Stats.
	Languages []pattern.Language
	// Stats are the per-language corpus statistics.
	Stats []*stats.LanguageStats
	// Data is the distant-supervision training set.
	Data *distsup.Data
}

// NewPipeline runs the corpus passes of training: statistics for every
// candidate language plus distant-supervision pair generation.
func NewPipeline(c *corpus.Corpus, cfg TrainConfig) (*Pipeline, error) {
	if c == nil || len(c.Columns) == 0 {
		return nil, errors.New("core: empty training corpus")
	}
	if cfg.Smoothing == 0 {
		cfg.Smoothing = stats.DefaultSmoothing
	}
	langs := cfg.Languages
	if langs == nil {
		langs = pattern.All()
	}
	ds := cfg.DistSup
	if ds.PositivePairs == 0 && ds.NegativePairs == 0 {
		ds = distsup.DefaultConfig()
	}

	builder := stats.NewBuilder(langs, cfg.Smoothing)
	for _, col := range c.Columns {
		builder.AddColumn(col.Values)
	}
	data, err := distsup.Generate(c, ds)
	if err != nil {
		return nil, fmt.Errorf("core: generating training data: %w", err)
	}
	return &Pipeline{Languages: langs, Stats: builder.Stats(), Data: data}, nil
}

// Calibrate derives thresholds, precision curves and coverage for every
// candidate language at the given precision target.
func (p *Pipeline) Calibrate(targetPrecision float64) ([]*Calibration, error) {
	cands := make([]*Calibration, 0, len(p.Stats))
	for _, ls := range p.Stats {
		cal, err := Calibrate(ls, p.Data, targetPrecision)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %v: %w", ls.Language(), err)
		}
		cands = append(cands, cal)
	}
	return cands, nil
}

// SetSmoothing changes the Jelinek–Mercer factor on every candidate's
// statistics (used by the Figure 17a smoothing sweep; recalibrate after).
func (p *Pipeline) SetSmoothing(f float64) {
	for _, ls := range p.Stats {
		ls.SetSmoothing(f)
	}
}

// BuildDetector selects languages under the memory budget from calibrated
// candidates, optionally compresses the selected statistics with a
// count-min sketch, and assembles the detector.
func BuildDetector(cands []*Calibration, memoryBudget int, agg Aggregation, sketchRatio float64) (*Detector, *TrainReport, error) {
	sel, err := SelectGreedy(cands, memoryBudget)
	if err != nil {
		return nil, nil, err
	}
	chosen := sel.Chosen
	if sketchRatio > 0 && sketchRatio < 1 {
		// Compress copies so the exact calibrations stay reusable.
		compressed := make([]*Calibration, len(chosen))
		for i, cal := range chosen {
			sk, err := cal.Stats.SketchCopy(sketchRatio, 4)
			if err != nil {
				return nil, nil, fmt.Errorf("core: compressing statistics: %w", err)
			}
			cc := *cal
			cc.Stats = sk
			compressed[i] = &cc
		}
		chosen = compressed
	}
	det, err := NewDetector(chosen, agg)
	if err != nil {
		return nil, nil, err
	}
	report := &TrainReport{
		SelectedBytes: sel.Bytes,
		Coverage:      sel.Coverage,
		UsedSingleton: sel.UsedSingleton,
	}
	for _, cal := range chosen {
		report.Selected = append(report.Selected, cal.Stats.Language())
	}
	if sketchRatio > 0 && sketchRatio < 1 {
		report.SelectedBytes = det.Bytes()
	}
	return det, report, nil
}

// Train builds corpus statistics for every candidate language, generates
// distant-supervision training data from the same corpus, calibrates each
// language to the target precision, selects an ensemble under the memory
// budget, and returns the ready-to-use detector.
func Train(c *corpus.Corpus, cfg TrainConfig) (*Detector, *TrainReport, error) {
	if cfg.TargetPrecision == 0 {
		cfg.TargetPrecision = 0.95
	}
	if cfg.MemoryBudget == 0 {
		cfg.MemoryBudget = 64 << 20
	}
	p, err := NewPipeline(c, cfg)
	if err != nil {
		return nil, nil, err
	}
	cands, err := p.Calibrate(cfg.TargetPrecision)
	if err != nil {
		return nil, nil, err
	}
	det, report, err := BuildDetector(cands, cfg.MemoryBudget, cfg.Aggregation, cfg.SketchRatio)
	if err != nil {
		return nil, nil, err
	}
	report.CandidateLanguages = len(p.Languages)
	report.TrainingExamples = len(p.Data.Examples)
	report.CompatColumns = p.Data.CompatColumns
	return det, report, nil
}
