package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestLoadCorruptionFuzz: randomly corrupted model payloads must either
// fail to load or load into a detector that does not panic — never crash.
func TestLoadCorruptionFuzz(t *testing.T) {
	det, err := NewDetector(fixtureCalibrations(t), AggMaxConfidence)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	r := rand.New(rand.NewSource(99))

	check := func(data []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic on corrupted model: %v", p)
			}
		}()
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// If it loaded, it must be usable.
		_ = loaded.ScorePair("2011-01-01", "2011/01/01")
		_ = loaded.DetectColumn([]string{"a", "b", "c"})
	}

	// Truncations at every length decile plus small offsets.
	for i := 0; i <= 10; i++ {
		check(valid[:len(valid)*i/10])
	}
	// Random single-byte flips.
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), valid...)
		pos := r.Intn(len(data))
		data[pos] ^= byte(1 + r.Intn(255))
		check(data)
	}
	// Random multi-byte splices.
	for trial := 0; trial < 50; trial++ {
		data := append([]byte(nil), valid...)
		pos := r.Intn(len(data))
		n := r.Intn(32) + 1
		for i := 0; i < n && pos+i < len(data); i++ {
			data[pos+i] = byte(r.Intn(256))
		}
		check(data)
	}
	// Garbage of assorted sizes.
	for _, n := range []int{0, 1, 16, 100, 10000} {
		data := make([]byte, n)
		r.Read(data)
		check(data)
	}
}
